#include "dataplane/interp.h"

#include <set>
#include <stdexcept>

#include "core/objective.h"

namespace hermes::dataplane {

namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

std::uint64_t fnv1a(std::uint64_t hash, const void* data, std::size_t size) {
    const auto* bytes = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < size; ++i) {
        hash ^= bytes[i];
        hash *= kFnvPrime;
    }
    return hash;
}

std::uint64_t fnv1a_string(std::uint64_t hash, const std::string& s) {
    return fnv1a(hash, s.data(), s.size());
}

// Executes one MAT on the packet; records the trace entry and any writes.
void execute_mat(const tdg::Tdg& t, tdg::NodeId node, net::SwitchId switch_id, int stage,
                 Packet& packet, std::map<std::string, FieldValue>& writes,
                 std::vector<ExecutionRecord>& trace) {
    const tdg::Mat& mat = t.node(node);

    std::vector<FieldValue> inputs;
    bool matched = true;
    for (const tdg::Field& f : mat.match_fields()) {
        const auto value = packet.field(f.name);
        if (!value) {
            matched = false;
            break;
        }
        inputs.push_back(*value);
    }
    trace.push_back(ExecutionRecord{node, switch_id, stage, matched});
    if (!matched || mat.actions().empty()) return;

    // Deterministic action selection: both the monolithic reference and the
    // distributed execution see the same inputs, hence run the same action.
    std::uint64_t selector = fnv1a_string(kFnvOffset, mat.name());
    for (const FieldValue& in : inputs) selector = fnv1a(selector, &in.value, 8);
    const tdg::Action& action =
        mat.actions()[selector % mat.actions().size()];

    for (const tdg::Field& f : action.writes) {
        const std::uint64_t value = action_value(mat.name(), action.name, inputs,
                                                 f.size_bytes);
        packet.set_field(f.name, f.is_metadata(), value, f.size_bytes);
        writes[f.name] = FieldValue{value, f.size_bytes};
    }
}

}  // namespace

std::uint64_t action_value(const std::string& table, const std::string& action,
                           const std::vector<FieldValue>& inputs, int size_bytes) {
    std::uint64_t hash = fnv1a_string(kFnvOffset, table);
    hash = fnv1a_string(hash, action);
    for (const FieldValue& in : inputs) {
        hash = fnv1a(hash, &in.value, 8);
        hash = fnv1a(hash, &in.size_bytes, sizeof(in.size_bytes));
    }
    if (size_bytes >= 8) return hash;
    const std::uint64_t mask = (std::uint64_t{1} << (8 * size_bytes)) - 1;
    return hash & mask;
}

InterpResult run_monolithic(const tdg::Tdg& t, Packet packet) {
    InterpResult result;
    for (const tdg::NodeId v : t.topological_order()) {
        execute_mat(t, v, 0, 0, packet, result.writes, result.trace);
    }
    result.packet = std::move(packet);
    return result;
}

InterpResult run_deployment(const tdg::Tdg& t, const net::Network& net,
                            const core::Deployment& d, const NetworkConfig& configs,
                            Packet packet) {
    (void)net;
    InterpResult result;
    const std::vector<net::SwitchId> traversal = core::traversal_order(t, d);

    // In-flight piggyback bag: destination switch -> field name -> value.
    std::map<net::SwitchId, std::map<std::string, FieldValue>> bag;
    auto bag_bytes = [&] {
        // Physical header space: each distinct field name rides once.
        std::map<std::string, int> unique;
        for (const auto& [dest, fields] : bag) {
            for (const auto& [name, value] : fields) unique[name] = value.size_bytes;
        }
        int total = 0;
        for (const auto& [name, size] : unique) total += size;
        return total;
    };

    for (std::size_t k = 0; k < traversal.size(); ++k) {
        const net::SwitchId u = traversal[k];
        const auto config_it = configs.find(u);
        if (config_it == configs.end()) {
            throw std::runtime_error("run_deployment: no config for an occupied switch");
        }
        const SwitchConfig& config = config_it->second;

        // Switch boundary: scratch metadata dies; configured piggyback
        // fields destined here are extracted into fresh metadata.
        packet.clear_metadata();
        if (const auto delivered = bag.find(u); delivered != bag.end()) {
            for (const auto& [name, value] : delivered->second) {
                packet.set_metadata(name, value.value, value.size_bytes);
            }
            bag.erase(delivered);
        }

        for (const TableEntry& entry : config.tables) {
            execute_mat(t, entry.node, u, entry.stage, packet, result.writes,
                        result.trace);
        }

        // Egress: capture piggyback fields for downstream switches.
        for (const EgressDirective& directive : config.egress) {
            for (const auto& [name, size] : directive.fields) {
                const auto value = packet.field(name);
                if (!value) continue;  // producing MAT missed; consumers miss too
                bag[directive.next_switch][name] = *value;
            }
        }
        if (k + 1 < traversal.size()) result.wire_bytes.push_back(bag_bytes());
    }
    result.packet = std::move(packet);
    return result;
}

}  // namespace hermes::dataplane
