// Switch configurations: the output of the Hermes backend (§VI-A
// "Implementation"). The backend takes the framework's decision variables
// (a core::Deployment) and emits, per switch, the staged MAT programs plus
// the inter-switch coordination directives: which metadata fields to expect
// piggybacked on ingress and which to piggyback toward each downstream
// switch on egress.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "core/deployment.h"

namespace hermes::dataplane {

// One MAT instance installed on a stage.
struct TableEntry {
    tdg::NodeId node = 0;   // id in the deployed TDG
    int stage = 0;
};

// Metadata fields (name -> byte size) to piggyback toward one downstream
// switch.
struct EgressDirective {
    net::SwitchId next_switch = 0;
    std::map<std::string, int> fields;

    [[nodiscard]] int total_bytes() const noexcept {
        int total = 0;
        for (const auto& [name, size] : fields) total += size;
        return total;
    }
};

struct SwitchConfig {
    net::SwitchId switch_id = 0;
    // Tables ordered by (stage, node id) — the execution order.
    std::vector<TableEntry> tables;
    // Metadata expected from upstream switches (ingress extraction).
    std::set<std::string> ingress_fields;
    // Per-downstream piggyback sets (egress attachment).
    std::vector<EgressDirective> egress;

    [[nodiscard]] int max_egress_bytes() const noexcept {
        int best = 0;
        for (const EgressDirective& e : egress) best = std::max(best, e.total_bytes());
        return best;
    }
};

// Full network configuration keyed by switch.
using NetworkConfig = std::map<net::SwitchId, SwitchConfig>;

}  // namespace hermes::dataplane
