// Software data plane interpreter.
//
// Executes MAT programs on packets — the functional stand-in for the Tofino
// pipeline. Action semantics are deterministic: an action's written value is
// a hash of (table, action, matched values), so any two executions that see
// the same inputs write the same outputs. That makes distributed-vs-
// monolithic equivalence checkable: running the merged TDG on one giant
// virtual switch must produce exactly the field writes of running the
// deployed configuration across switches with metadata piggybacking.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "dataplane/backend.h"
#include "dataplane/packet.h"

namespace hermes::dataplane {

// One table execution record, for tracing/debugging.
struct ExecutionRecord {
    tdg::NodeId node = 0;
    net::SwitchId switch_id = 0;
    int stage = 0;
    bool matched = false;  // all match fields were present
};

struct InterpResult {
    Packet packet;  // final packet state
    // Last value written to each field across the whole pipeline: the
    // observable processing outcome used for equivalence checks.
    std::map<std::string, FieldValue> writes;
    std::vector<ExecutionRecord> trace;
    // Piggybacked metadata bytes on the wire after each traversal hop
    // (size = #occupied switches - 1).
    std::vector<int> wire_bytes;
};

// Deterministic action value: hash of table name, action name, and the
// matched input values, truncated to the field size.
[[nodiscard]] std::uint64_t action_value(const std::string& table,
                                         const std::string& action,
                                         const std::vector<FieldValue>& inputs,
                                         int size_bytes);

// Runs all MATs of `t` in topological order on one virtual switch — the
// semantics reference.
[[nodiscard]] InterpResult run_monolithic(const tdg::Tdg& t, Packet packet);

// Runs the deployed configuration: traverses the occupied switches in
// deployment order, clearing metadata at each boundary and carrying only the
// configured piggyback fields. A table whose match fields are missing
// records a miss and writes nothing — so a broken coordination config shows
// up as a write divergence from run_monolithic, which the tests assert on.
[[nodiscard]] InterpResult run_deployment(const tdg::Tdg& t, const net::Network& net,
                                          const core::Deployment& d,
                                          const NetworkConfig& configs, Packet packet);

}  // namespace hermes::dataplane
