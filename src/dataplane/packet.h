// Packet model for the software data plane.
//
// A packet carries named header fields plus a metadata scratchpad. Header
// fields persist end to end; metadata is per-switch state that vanishes at
// the switch boundary *unless* the deployment's coordination config
// piggybacks it to the next switch — exactly the mechanism whose byte cost
// Hermes minimizes.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>

namespace hermes::dataplane {

// A field value: up to 8 significant bytes (longer fields hash down to 8;
// placement decisions never depend on values beyond equality, so this loses
// nothing observable).
struct FieldValue {
    std::uint64_t value = 0;
    int size_bytes = 0;

    friend bool operator==(const FieldValue&, const FieldValue&) = default;
    friend auto operator<=>(const FieldValue&, const FieldValue&) = default;
};

class Packet {
public:
    // Header fields (ethernet/ipv4/l4/... namespaces).
    void set_header(const std::string& name, std::uint64_t value, int size_bytes);
    [[nodiscard]] std::optional<FieldValue> header(const std::string& name) const;

    // Metadata fields (meta.* namespace).
    void set_metadata(const std::string& name, std::uint64_t value, int size_bytes);
    [[nodiscard]] std::optional<FieldValue> metadata(const std::string& name) const;

    // Any field by name: metadata namespace first, then headers.
    [[nodiscard]] std::optional<FieldValue> field(const std::string& name) const;
    void set_field(const std::string& name, bool is_metadata, std::uint64_t value,
                   int size_bytes);

    // Clears the metadata scratchpad (switch boundary crossing).
    void clear_metadata() { metadata_.clear(); }

    [[nodiscard]] const std::map<std::string, FieldValue>& headers() const noexcept {
        return headers_;
    }
    [[nodiscard]] const std::map<std::string, FieldValue>& metadata_fields() const noexcept {
        return metadata_;
    }

private:
    std::map<std::string, FieldValue> headers_;
    std::map<std::string, FieldValue> metadata_;
};

}  // namespace hermes::dataplane
