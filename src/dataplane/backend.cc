#include "dataplane/backend.h"

#include <algorithm>
#include <stdexcept>

namespace hermes::dataplane {

std::map<std::string, int> piggyback_fields(const tdg::Mat& upstream) {
    std::map<std::string, int> fields;
    for (const tdg::Field& f : upstream.modified_fields()) {
        if (f.is_metadata()) fields.emplace(f.name, f.size_bytes);
    }
    return fields;
}

NetworkConfig build_configs(const tdg::Tdg& t, const net::Network& net,
                            const core::Deployment& d) {
    if (d.placements.size() != t.node_count()) {
        throw std::invalid_argument("build_configs: deployment/TDG shape mismatch");
    }
    NetworkConfig configs;

    // Staged table programs.
    for (const net::SwitchId u : d.occupied_switches()) {
        if (u >= net.switch_count()) {
            throw std::invalid_argument("build_configs: deployment uses unknown switch");
        }
        SwitchConfig config;
        config.switch_id = u;
        for (const tdg::NodeId v : d.mats_on(u)) {
            config.tables.push_back(TableEntry{v, d.placements[v].stage});
        }
        configs.emplace(u, std::move(config));
    }

    // Coordination directives per cross-switch dependency. Reverse-match
    // edges order execution but deliver nothing.
    for (const tdg::Edge& e : t.edges()) {
        if (e.type == tdg::DepType::kReverseMatch) continue;
        const net::SwitchId u = d.switch_of(e.from);
        const net::SwitchId v = d.switch_of(e.to);
        if (u == v) continue;
        const std::map<std::string, int> fields = piggyback_fields(t.node(e.from));
        if (fields.empty()) continue;

        SwitchConfig& up = configs.at(u);
        auto directive =
            std::find_if(up.egress.begin(), up.egress.end(),
                         [&](const EgressDirective& eg) { return eg.next_switch == v; });
        if (directive == up.egress.end()) {
            up.egress.push_back(EgressDirective{v, {}});
            directive = up.egress.end() - 1;
        }
        directive->fields.insert(fields.begin(), fields.end());

        SwitchConfig& down = configs.at(v);
        for (const auto& [name, size] : fields) down.ingress_fields.insert(name);
    }
    return configs;
}

}  // namespace hermes::dataplane
