// The Hermes backend: decision variables -> switch configurations.
//
// For every cross-switch dependency (a, b) the upstream switch must
// piggyback the metadata a produced for b. The backend derives, per switch,
// the staged table program plus ingress-extract / egress-attach directives,
// mirroring what the paper's implementation feeds to the vendor compiler.
#pragma once

#include "dataplane/config.h"

namespace hermes::dataplane {

// Builds the network-wide configuration for a verified deployment. Throws
// std::invalid_argument when the deployment's shape does not match the TDG.
[[nodiscard]] NetworkConfig build_configs(const tdg::Tdg& t, const net::Network& net,
                                          const core::Deployment& d);

// The piggybacked metadata field set for one dependency edge: the metadata
// fields the upstream MAT produces (dedup by name). This is the physically
// transferable subset of the analyzer's A(a,b) accounting — for action-type
// edges the analyzer additionally counts the downstream MAT's own fields,
// so sizes here are always <= A(a,b).
[[nodiscard]] std::map<std::string, int> piggyback_fields(const tdg::Mat& upstream);

}  // namespace hermes::dataplane
