#include "dataplane/packet.h"

#include <stdexcept>

namespace hermes::dataplane {

namespace {
void validate(const std::string& name, int size_bytes) {
    if (name.empty()) throw std::invalid_argument("Packet: empty field name");
    if (size_bytes <= 0) throw std::invalid_argument("Packet: non-positive field size");
}
}  // namespace

void Packet::set_header(const std::string& name, std::uint64_t value, int size_bytes) {
    validate(name, size_bytes);
    headers_[name] = FieldValue{value, size_bytes};
}

std::optional<FieldValue> Packet::header(const std::string& name) const {
    const auto it = headers_.find(name);
    if (it == headers_.end()) return std::nullopt;
    return it->second;
}

void Packet::set_metadata(const std::string& name, std::uint64_t value, int size_bytes) {
    validate(name, size_bytes);
    metadata_[name] = FieldValue{value, size_bytes};
}

std::optional<FieldValue> Packet::metadata(const std::string& name) const {
    const auto it = metadata_.find(name);
    if (it == metadata_.end()) return std::nullopt;
    return it->second;
}

std::optional<FieldValue> Packet::field(const std::string& name) const {
    if (const auto m = metadata(name)) return m;
    return header(name);
}

void Packet::set_field(const std::string& name, bool is_metadata, std::uint64_t value,
                       int size_bytes) {
    if (is_metadata) set_metadata(name, value, size_bytes);
    else set_header(name, value, size_bytes);
}

}  // namespace hermes::dataplane
