#include "fault/injector.h"

#include "obs/obs.h"

namespace hermes::fault {

Injector::Injector(net::Network& net, net::PathOracle* oracle, obs::Sink* sink)
    : net_(&net), oracle_(oracle), sink_(sink) {}

bool Injector::apply(const FaultEvent& e) {
    bool changed = false;
    switch (e.kind) {
        case FaultKind::kLinkDown:
            changed = net_->fail_link(e.a, e.b);
            if (changed && oracle_ != nullptr) oracle_->on_link_down(e.a, e.b);
            break;
        case FaultKind::kLinkUp:
            changed = net_->recover_link(e.a, e.b);
            if (changed && oracle_ != nullptr) oracle_->on_link_up(e.a, e.b);
            break;
        case FaultKind::kSwitchDown:
            changed = net_->fail_switch(e.a);
            if (changed && oracle_ != nullptr) oracle_->on_switch_down(e.a);
            break;
        case FaultKind::kSwitchUp:
            changed = net_->recover_switch(e.a);
            if (changed && oracle_ != nullptr) oracle_->on_switch_up(e.a);
            break;
    }
    if (changed) {
        ++applied_;
    } else {
        ++noops_;
    }
    if (sink_ != nullptr) {
        sink_->counter(changed ? "fault.applied" : "fault.noops").add(1);
    }
    return changed;
}

std::size_t Injector::apply_all(const std::vector<FaultEvent>& events) {
    std::size_t changed = 0;
    for (const FaultEvent& e : events) {
        if (apply(e)) ++changed;
    }
    return changed;
}

}  // namespace hermes::fault
