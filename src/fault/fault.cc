#include "fault/fault.h"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <utility>

#include "util/rng.h"

namespace hermes::fault {

namespace {

// Stable ascending-time order: equal times keep their script order so a
// deliberate fail-then-recover pair at one instant stays a pair.
void sort_by_time(std::vector<FaultEvent>& events) {
    std::stable_sort(events.begin(), events.end(),
                     [](const FaultEvent& x, const FaultEvent& y) {
                         return x.at_us < y.at_us;
                     });
}

}  // namespace

const char* to_string(FaultKind k) noexcept {
    switch (k) {
        case FaultKind::kLinkDown: return "link-down";
        case FaultKind::kLinkUp: return "link-up";
        case FaultKind::kSwitchDown: return "switch-down";
        case FaultKind::kSwitchUp: return "switch-up";
    }
    return "?";
}

std::optional<FaultKind> parse_fault_kind(std::string_view text) noexcept {
    if (text == "link-down") return FaultKind::kLinkDown;
    if (text == "link-up") return FaultKind::kLinkUp;
    if (text == "switch-down") return FaultKind::kSwitchDown;
    if (text == "switch-up") return FaultKind::kSwitchUp;
    return std::nullopt;
}

std::string format_fault_script(const std::vector<FaultEvent>& events) {
    std::ostringstream os;
    for (const FaultEvent& e : events) {
        os << e.at_us << ' ' << to_string(e.kind) << ' ' << e.a;
        if (e.is_link()) os << ' ' << e.b;
        os << '\n';
    }
    return os.str();
}

util::StatusOr<std::vector<FaultEvent>> parse_fault_script(std::string_view text) {
    std::vector<FaultEvent> events;
    std::istringstream in{std::string(text)};
    std::string line;
    int lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        const auto hash = line.find('#');
        if (hash != std::string::npos) line.erase(hash);
        std::istringstream fields(line);
        double at_us = 0.0;
        std::string kind_word;
        if (!(fields >> at_us)) {
            // Blank (or comment-only) line.
            std::string rest;
            fields.clear();
            if (!(std::istringstream(line) >> rest)) continue;
            return util::Status::invalid("fault script: bad event time",
                                         {"", lineno, 0});
        }
        if (!(fields >> kind_word)) {
            return util::Status::invalid("fault script: missing event kind",
                                         {"", lineno, 0});
        }
        FaultEvent e;
        e.at_us = at_us;
        const std::optional<FaultKind> kind = parse_fault_kind(kind_word);
        if (!kind.has_value()) {
            return util::Status::invalid("fault script: unknown event kind '" +
                                             kind_word + "'",
                                         {"", lineno, 0});
        }
        e.kind = *kind;
        if (!(fields >> e.a) || (e.is_link() && !(fields >> e.b))) {
            return util::Status::invalid(
                std::string("fault script: ") + to_string(e.kind) + " needs " +
                    (e.is_link() ? "two switch ids" : "one switch id"),
                {"", lineno, 0});
        }
        std::string extra;
        if (fields >> extra) {
            return util::Status::invalid("fault script: trailing field '" + extra + "'",
                                         {"", lineno, 0});
        }
        if (e.is_link() && e.a == e.b) {
            return util::Status::invalid("fault script: self-loop link event",
                                         {"", lineno, 0});
        }
        events.push_back(e);
    }
    sort_by_time(events);
    return events;
}

util::StatusOr<std::vector<FaultEvent>> load_fault_script(const std::string& path) {
    std::ifstream in(path);
    if (!in) return util::Status::io("cannot open fault script: " + path);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    auto parsed = parse_fault_script(buffer.str());
    if (!parsed.ok()) return parsed.status().with_file(path);
    return parsed;
}

std::vector<FaultEvent> random_fault_script(const net::Network& net, std::uint64_t seed,
                                            const ScriptConfig& config) {
    std::vector<FaultEvent> events;
    if (net.switch_count() == 0 || config.events == 0) return events;
    util::SplitMix64 rng(seed);

    // The generator tracks its own view of what it failed so far; it never
    // consults live network state beyond the initial element lists, so the
    // script depends only on (topology, seed, config).
    struct OpenFault {
        bool is_switch = false;
        net::SwitchId a = 0;
        net::SwitchId b = 0;
    };
    std::vector<OpenFault> open;

    std::vector<std::pair<net::SwitchId, net::SwitchId>> up_links;
    for (const net::Link& l : net.links()) {
        if (l.up) up_links.emplace_back(l.a, l.b);
    }
    std::vector<net::SwitchId> up_switches;
    for (net::SwitchId u = 0; u < net.switch_count(); ++u) {
        if (net.switch_up(u)) up_switches.push_back(u);
    }

    // Times are drawn up front and sorted so kinds are assigned in replay
    // order — a recovery always refers to a failure that precedes it in time,
    // and max_concurrent genuinely bounds the simultaneous damage.
    std::vector<double> times(config.events);
    for (double& at : times) at = rng.uniform_real(0.0, config.window_us);
    std::sort(times.begin(), times.end());

    for (const double at : times) {
        const bool must_recover = open.size() >= std::max<std::size_t>(1, config.max_concurrent);
        const bool want_recover =
            !open.empty() && (must_recover || rng.chance(config.recover_probability));
        if (want_recover) {
            const auto idx = static_cast<std::size_t>(
                rng.uniform_int(0, static_cast<std::int64_t>(open.size()) - 1));
            const OpenFault f = open[idx];
            open.erase(open.begin() + static_cast<std::ptrdiff_t>(idx));
            FaultEvent e;
            e.at_us = at;
            e.kind = f.is_switch ? FaultKind::kSwitchUp : FaultKind::kLinkUp;
            e.a = f.a;
            e.b = f.b;
            events.push_back(e);
            if (f.is_switch) {
                up_switches.push_back(f.a);
            } else {
                up_links.emplace_back(f.a, f.b);
            }
            continue;
        }
        const bool hit_switch = config.allow_switch_failures && !up_switches.empty() &&
                                (up_links.empty() || rng.chance(config.switch_fraction));
        FaultEvent e;
        e.at_us = at;
        if (hit_switch) {
            const auto idx = static_cast<std::size_t>(
                rng.uniform_int(0, static_cast<std::int64_t>(up_switches.size()) - 1));
            e.kind = FaultKind::kSwitchDown;
            e.a = up_switches[idx];
            up_switches.erase(up_switches.begin() + static_cast<std::ptrdiff_t>(idx));
            open.push_back({true, e.a, 0});
        } else if (!up_links.empty()) {
            const auto idx = static_cast<std::size_t>(
                rng.uniform_int(0, static_cast<std::int64_t>(up_links.size()) - 1));
            e.kind = FaultKind::kLinkDown;
            e.a = up_links[idx].first;
            e.b = up_links[idx].second;
            up_links.erase(up_links.begin() + static_cast<std::ptrdiff_t>(idx));
            open.push_back({false, e.a, e.b});
        } else {
            continue;  // nothing left to fail this round
        }
        events.push_back(e);
    }
    sort_by_time(events);
    return events;
}

}  // namespace hermes::fault
