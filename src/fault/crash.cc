#include "fault/crash.h"

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <atomic>
#include <map>
#include <mutex>

#include <unistd.h>

namespace hermes::fault {

namespace {

// Armed flag mirrors CrashState under the mutex; kept atomic so disarm/arm
// from a harness thread is well-defined against seam hits.
std::atomic<bool> g_armed{false};

struct CrashState {
    std::string armed_name;
    std::int64_t armed_nth = 0;
    std::map<std::string, std::int64_t, std::less<>> hits;
    bool env_checked = false;
};

std::mutex& state_mutex() {
    static std::mutex m;
    return m;
}

CrashState& state() {
    static CrashState s;
    return s;
}

// HERMES_CRASH_POINT=<name>[:<nth>]; parsed once, lazily, under the mutex.
void check_env_locked(CrashState& s) {
    if (s.env_checked) return;
    s.env_checked = true;
    const char* env = std::getenv("HERMES_CRASH_POINT");
    if (env == nullptr || *env == '\0') return;
    std::string spec(env);
    std::int64_t nth = 1;
    if (const std::size_t colon = spec.rfind(':'); colon != std::string::npos) {
        const std::string tail = spec.substr(colon + 1);
        char* end = nullptr;
        const long long parsed = std::strtoll(tail.c_str(), &end, 10);
        if (end != nullptr && *end == '\0' && parsed > 0) {
            nth = parsed;
            spec.resize(colon);
        }
    }
    s.armed_name = std::move(spec);
    s.armed_nth = nth;
    g_armed.store(true, std::memory_order_release);
}

[[noreturn]] void die(const char* name) {
    // stderr marker for harness logs; SIGKILL is not catchable or flushable,
    // so write(2) directly instead of touching stdio buffers.
    char line[160];
    const int n = std::snprintf(line, sizeof line, "crash_point: %s\n", name);
    if (n > 0) {
        (void)!::write(STDERR_FILENO, line, static_cast<std::size_t>(n));
    }
    (void)::raise(SIGKILL);
    std::abort();  // unreachable; keeps [[noreturn]] honest if SIGKILL is blocked
}

}  // namespace

const std::vector<std::string>& crash_point_names() {
    static const std::vector<std::string> names{
        "journal.append.header",  "journal.append.payload",
        "journal.append.pre_sync", "journal.snapshot.tmp",
        "journal.snapshot.renamed", "engine.apply.journaled",
        "engine.apply.resolved",
    };
    return names;
}

void arm_crash_point(std::string name, std::int64_t nth) {
    std::lock_guard<std::mutex> lock(state_mutex());
    CrashState& s = state();
    s.env_checked = true;  // explicit arming overrides the environment
    s.armed_name = std::move(name);
    s.armed_nth = nth > 0 ? nth : 1;
    g_armed.store(true, std::memory_order_release);
}

void disarm_crash_points() {
    std::lock_guard<std::mutex> lock(state_mutex());
    CrashState& s = state();
    s.armed_name.clear();
    s.armed_nth = 0;
    s.hits.clear();
    s.env_checked = true;
    g_armed.store(false, std::memory_order_release);
}

std::int64_t crash_point_hits(std::string_view name) {
    std::lock_guard<std::mutex> lock(state_mutex());
    const CrashState& s = state();
    const auto it = s.hits.find(name);
    return it == s.hits.end() ? 0 : it->second;
}

void crash_point(const char* name) noexcept {
    std::lock_guard<std::mutex> lock(state_mutex());
    CrashState& s = state();
    check_env_locked(s);
    const std::int64_t count = ++s.hits[std::string(name)];
    if (!g_armed.load(std::memory_order_acquire)) return;
    if (s.armed_name == name && count >= s.armed_nth) die(name);
}

}  // namespace hermes::fault
