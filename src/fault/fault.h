// Fault model: scripted or seeded link/switch failure and recovery events.
//
// A fault script is a time-ordered list of events applied to a net::Network
// through fault::Injector (injector.h). Scripts come from three places: the
// text format below (hermes_cli --fault-script), programmatic construction
// in tests, and the seeded generator random_fault_script — the same script
// always replays the same way, so every failure experiment is reproducible
// from its seed or file alone.
//
// Text format, one event per line (blank lines and '#' comments ignored):
//
//   <at_us> link-down   <a> <b>
//   <at_us> link-up     <a> <b>
//   <at_us> switch-down <u>
//   <at_us> switch-up   <u>
//
// Times are microseconds into the failure window; ids are switch indices.
// parse_fault_script validates shape only (ids are checked against the
// network when the script is applied).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "net/network.h"
#include "util/status.h"

namespace hermes::fault {

enum class FaultKind : std::uint8_t {
    kLinkDown,
    kLinkUp,
    kSwitchDown,
    kSwitchUp,
};

[[nodiscard]] const char* to_string(FaultKind k) noexcept;

// Inverse of to_string ("link-down", "switch-up", ...); nullopt on anything
// else. Shared by the script parser and the serve wire protocol.
[[nodiscard]] std::optional<FaultKind> parse_fault_kind(std::string_view text) noexcept;

struct FaultEvent {
    double at_us = 0.0;
    FaultKind kind = FaultKind::kLinkDown;
    net::SwitchId a = 0;  // the switch for switch events; one link endpoint otherwise
    net::SwitchId b = 0;  // the other link endpoint (unused for switch events)

    [[nodiscard]] bool is_link() const noexcept {
        return kind == FaultKind::kLinkDown || kind == FaultKind::kLinkUp;
    }
    [[nodiscard]] bool is_failure() const noexcept {
        return kind == FaultKind::kLinkDown || kind == FaultKind::kSwitchDown;
    }
};

// One line per event, in the text format above (round-trips through
// parse_fault_script).
[[nodiscard]] std::string format_fault_script(const std::vector<FaultEvent>& events);

// Parses the text format; events are returned sorted by time (stable for
// equal times). kInvalidInput with a 1-based line number on malformed lines.
[[nodiscard]] util::StatusOr<std::vector<FaultEvent>> parse_fault_script(
    std::string_view text);

// Reads and parses a script file (kIo when unreadable).
[[nodiscard]] util::StatusOr<std::vector<FaultEvent>> load_fault_script(
    const std::string& path);

// Knobs for the seeded generator.
struct ScriptConfig {
    std::size_t events = 10;          // total events (failures + recoveries)
    double window_us = 1000.0;        // event times uniform in [0, window_us)
    double switch_fraction = 0.25;    // chance a new failure hits a switch
    double recover_probability = 0.5; // chance an event recovers an open failure
    // Cap on simultaneously failed elements; once reached, the generator
    // emits recoveries until a slot frees up. Keeps seeded scripts from
    // partitioning sparse topologies outright.
    std::size_t max_concurrent = 2;
    bool allow_switch_failures = true;
};

// Deterministic failure/recovery script against `net`'s live elements:
// failures pick uniformly among currently-up links (or up programmable-and
// -plain switches), recoveries among this script's own open failures.
// Event times are sorted ascending. Only elements present in `net` are
// referenced; an empty network yields an empty script.
[[nodiscard]] std::vector<FaultEvent> random_fault_script(const net::Network& net,
                                                          std::uint64_t seed,
                                                          const ScriptConfig& config = {});

}  // namespace hermes::fault
