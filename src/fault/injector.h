// Applies fault scripts to a live Network, keeping a PathOracle in sync.
//
// The injector is the one place that pairs each Network::fail_*/recover_*
// mutation with the matching PathOracle::on_*() notification, so consumers
// holding the shared oracle never observe a stale cache (the epoch contract
// in net/path_oracle.h). Events referencing unknown elements throw
// std::out_of_range (the network's own id checks); events that are no-ops —
// failing an already-failed link, recovering an up switch — are counted and
// skipped without touching the oracle.
#pragma once

#include <cstdint>
#include <vector>

#include "fault/fault.h"
#include "net/network.h"
#include "net/path_oracle.h"

namespace hermes::obs {
class Sink;
}  // namespace hermes::obs

namespace hermes::fault {

class Injector {
public:
    // `oracle` (optional) must cache paths of `net`; `sink` (optional)
    // records fault.applied / fault.noops counters.
    explicit Injector(net::Network& net, net::PathOracle* oracle = nullptr,
                      obs::Sink* sink = nullptr);

    // Applies one event. Returns true when the network actually changed
    // state, false for a no-op.
    bool apply(const FaultEvent& e);

    // Applies every event in order; returns how many changed state.
    std::size_t apply_all(const std::vector<FaultEvent>& events);

    [[nodiscard]] std::int64_t applied() const noexcept { return applied_; }
    [[nodiscard]] std::int64_t noops() const noexcept { return noops_; }

private:
    net::Network* net_;
    net::PathOracle* oracle_;
    obs::Sink* sink_;
    std::int64_t applied_ = 0;
    std::int64_t noops_ = 0;
};

}  // namespace hermes::fault
