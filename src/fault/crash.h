// Crash-injection seams for the crash-safety harness (tools/hermes_crashtest).
//
// A *crash point* is a named call compiled permanently into the journal and
// engine apply paths (core/journal.cc, core/engine.cc). The seams sit on
// per-epoch control-plane paths (never per-packet loops), so the unarmed
// cost — a short mutex-protected hit-count bump — is noise. Armed — either
// programmatically via arm_crash_point() (the fork-based harness) or through
// the environment for an externally launched daemon:
//
//   HERMES_CRASH_POINT=<name>[:<nth>]   # SIGKILL self at the nth hit (1-based)
//
// — the process raises SIGKILL at the requested hit of that point, exactly
// like an operator's `kill -9` landing at the worst possible instruction.
// The harness then restarts the daemon with the same journal and asserts the
// recovered engine is bit-identical to an uninterrupted run.
//
// The canonical crash-point map (kept in sync with the call sites; see
// DESIGN.md §5k):
//
//   journal.append.header    header written, payload not yet
//   journal.append.payload   payload half-written (torn record)
//   journal.append.pre_sync  record complete, fsync not yet issued
//   journal.snapshot.tmp     snapshot tmp file written, rename not yet
//   journal.snapshot.renamed snapshot swapped in, old log gone
//   engine.apply.journaled   epoch record durable, state not yet mutated
//   engine.apply.resolved    state mutated and re-solved, reply not yet sent
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace hermes::fault {

// Every compiled-in crash point name, in seam order. The harness iterates
// this list; a name here without a live call site is a bug the crashtest
// reports as "unreached".
[[nodiscard]] const std::vector<std::string>& crash_point_names();

// Arms `name`: the process raises SIGKILL at its `nth` hit (1-based).
// Overrides any HERMES_CRASH_POINT arming. Unknown names arm harmlessly
// (they never fire).
void arm_crash_point(std::string name, std::int64_t nth = 1);

// Disarms everything and resets hit counters (test seam).
void disarm_crash_points();

// Hits recorded for `name` since process start / the last disarm. Counted
// whether or not the point is armed.
[[nodiscard]] std::int64_t crash_point_hits(std::string_view name);

// The seam: counts the hit and SIGKILLs the process when armed for this
// name and the hit count just reached the armed threshold.
void crash_point(const char* name) noexcept;

}  // namespace hermes::fault
