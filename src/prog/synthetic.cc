#include "prog/synthetic.h"

#include <stdexcept>
#include <string>

#include "prog/library.h"
#include "tdg/field.h"

namespace hermes::prog {

using tdg::Action;
using tdg::DepType;
using tdg::Field;
using tdg::Mat;
using tdg::header_field;
using tdg::metadata_field;

namespace {

// Metadata field sizes follow Table I plus small generic result fields.
int pick_metadata_size(util::SplitMix64& rng) {
    static constexpr int kSizes[] = {1, 2, 4, 4, 6, 8, 12};
    return kSizes[rng.uniform_int(0, std::size(kSizes) - 1)];
}

DepType pick_dep_type(util::SplitMix64& rng) {
    const double r = rng.uniform_real(0.0, 1.0);
    if (r < 0.40) return DepType::kMatch;
    if (r < 0.65) return DepType::kAction;
    if (r < 0.85) return DepType::kSuccessor;
    return DepType::kReverseMatch;
}

}  // namespace

Program synthetic_program(const SyntheticConfig& config, std::uint64_t seed, int index) {
    if (config.min_mats < 1 || config.max_mats < config.min_mats) {
        throw std::invalid_argument("synthetic_program: bad MAT count range");
    }
    if (config.dependency_probability < 0.0 || config.dependency_probability > 1.0) {
        throw std::invalid_argument("synthetic_program: bad dependency probability");
    }
    // Mix the index into the seed so each program draws an independent stream.
    util::SplitMix64 rng(seed ^ (0x51ed2701a3c5u * static_cast<std::uint64_t>(index + 1)));

    const std::string tag = "syn" + std::to_string(index);
    Program p("synthetic_" + tag);

    const int mat_count =
        static_cast<int>(rng.uniform_int(config.min_mats, config.max_mats));
    for (int m = 0; m < mat_count; ++m) {
        const std::string mat_tag = tag + "_m" + std::to_string(m);
        // Unique field names per MAT: dependencies are injected explicitly
        // below, never accidentally through shared names.
        std::vector<Field> matches = {header_field("hdr." + mat_tag + ".key", 4)};
        std::vector<Field> writes;
        const int field_count = static_cast<int>(
            rng.uniform_int(config.min_metadata_fields, config.max_metadata_fields));
        for (int f = 0; f < field_count; ++f) {
            if (rng.chance(config.shared_field_probability)) {
                // A Table I common field, shared across concurrent programs.
                static const Field catalog[] = {
                    tdg::common_metadata::switch_identifier(),
                    tdg::common_metadata::queue_lengths(),
                    tdg::common_metadata::timestamps(),
                    tdg::common_metadata::counter_index(),
                };
                writes.push_back(catalog[rng.uniform_int(0, std::size(catalog) - 1)]);
                continue;
            }
            writes.push_back(metadata_field(
                "meta." + mat_tag + ".out" + std::to_string(f), pick_metadata_size(rng)));
        }
        const double resource = rng.uniform_real(config.min_resource, config.max_resource);
        const auto capacity = rng.uniform_int(64, 4096);
        p.add_mat(Mat("mat_" + mat_tag, std::move(matches),
                      {Action{"act_" + mat_tag, std::move(writes)}}, capacity, resource));
    }
    for (int i = 0; i < mat_count; ++i) {
        for (int j = i + 1; j < mat_count; ++j) {
            if (!rng.chance(config.dependency_probability)) continue;
            p.add_explicit_edge(p.mat(static_cast<std::size_t>(i)).name(),
                                p.mat(static_cast<std::size_t>(j)).name(),
                                pick_dep_type(rng));
        }
    }
    return p;
}

std::vector<Program> synthetic_programs(const SyntheticConfig& config, std::uint64_t seed,
                                        int count) {
    if (count < 0) throw std::invalid_argument("synthetic_programs: negative count");
    std::vector<Program> out;
    out.reserve(static_cast<std::size_t>(count));
    for (int i = 0; i < count; ++i) out.push_back(synthetic_program(config, seed, i));
    return out;
}

std::vector<Program> paper_workload(int count, std::uint64_t seed) {
    if (count < 1) throw std::invalid_argument("paper_workload: count must be >= 1");
    std::vector<Program> out = real_programs();
    if (static_cast<int>(out.size()) > count) {
        out.erase(out.begin() + count, out.end());
        return out;
    }
    const int extra = count - static_cast<int>(out.size());
    for (Program& p : synthetic_programs(SyntheticConfig{}, seed, extra)) {
        out.push_back(std::move(p));
    }
    return out;
}

}  // namespace hermes::prog
