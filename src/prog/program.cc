#include "prog/program.h"

#include <algorithm>
#include <stdexcept>

namespace hermes::prog {

Program::Program(std::string name) : name_(std::move(name)) {
    if (name_.empty()) throw std::invalid_argument("Program: empty name");
}

std::size_t Program::add_mat(tdg::Mat mat) {
    for (const tdg::Mat& existing : mats_) {
        if (existing.name() == mat.name()) {
            throw std::invalid_argument("Program::add_mat: duplicate MAT name '" +
                                        mat.name() + "'");
        }
    }
    mats_.push_back(std::move(mat));
    return mats_.size() - 1;
}

const tdg::Mat& Program::mat(std::size_t i) const {
    if (i >= mats_.size()) throw std::out_of_range("Program::mat: bad index");
    return mats_[i];
}

std::size_t Program::index_of(const std::string& mat_name) const {
    for (std::size_t i = 0; i < mats_.size(); ++i) {
        if (mats_[i].name() == mat_name) return i;
    }
    throw std::out_of_range("Program '" + name_ + "': no MAT named '" + mat_name + "'");
}

void Program::add_gate(const std::string& upstream, const std::string& downstream) {
    add_gate(index_of(upstream), index_of(downstream));
}

void Program::add_gate(std::size_t upstream, std::size_t downstream) {
    if (upstream >= mats_.size() || downstream >= mats_.size()) {
        throw std::out_of_range("Program::add_gate: bad MAT index");
    }
    if (upstream >= downstream) {
        throw std::invalid_argument("Program::add_gate: gate must point forward (" +
                                    mats_[upstream].name() + " -> " +
                                    mats_[downstream].name() + ")");
    }
    gates_.emplace_back(upstream, downstream);
}

void Program::add_explicit_edge(const std::string& from, const std::string& to,
                                tdg::DepType type) {
    add_explicit_edge(index_of(from), index_of(to), type);
}

void Program::add_explicit_edge(std::size_t from, std::size_t to, tdg::DepType type) {
    if (from >= mats_.size() || to >= mats_.size()) {
        throw std::out_of_range("Program::add_explicit_edge: bad MAT index");
    }
    if (from == to) throw std::invalid_argument("Program::add_explicit_edge: self-loop");
    explicit_edges_.push_back(ExplicitEdge{from, to, type});
}

Program Program::with_scaled_resources(double factor) const {
    if (factor <= 0.0) {
        throw std::invalid_argument("with_scaled_resources: factor must be > 0");
    }
    Program scaled(name_);
    for (const tdg::Mat& m : mats_) {
        scaled.add_mat(tdg::Mat(m.name(), m.match_fields(), m.actions(),
                                m.rule_capacity(), m.resource_units() * factor,
                                m.match_kind()));
    }
    scaled.gates_ = gates_;
    scaled.explicit_edges_ = explicit_edges_;
    return scaled;
}

tdg::Tdg Program::to_tdg() const {
    tdg::Tdg t;
    for (const tdg::Mat& m : mats_) t.add_node(m);

    auto gated = [&](std::size_t i, std::size_t j) {
        return std::any_of(gates_.begin(), gates_.end(),
                           [&](const auto& g) { return g.first == i && g.second == j; });
    };
    for (std::size_t i = 0; i < mats_.size(); ++i) {
        for (std::size_t j = i + 1; j < mats_.size(); ++j) {
            const auto dep = tdg::infer_dependency(mats_[i], mats_[j], gated(i, j));
            if (dep) t.add_edge(i, j, *dep);
        }
    }
    for (const ExplicitEdge& e : explicit_edges_) {
        if (!t.find_edge(e.from, e.to)) t.add_edge(e.from, e.to, e.type);
    }
    return t;
}

}  // namespace hermes::prog
