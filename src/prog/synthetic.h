// Synthetic program generator (§VI-A).
//
// Reproduces the paper's synthetic workload: each program has 10-20 MATs,
// each MAT consumes 10%-50% of one pipeline stage, and each ordered MAT pair
// carries a dependency with probability 30%. MATs write metadata fields
// drawn from the Table I catalog (plus generic result fields), so the
// analyzer derives realistic A(a,b) values.
#pragma once

#include <cstdint>
#include <vector>

#include "prog/program.h"
#include "util/rng.h"

namespace hermes::prog {

struct SyntheticConfig {
    int min_mats = 10;
    int max_mats = 20;
    double dependency_probability = 0.30;
    double min_resource = 0.10;  // fraction of one stage
    double max_resource = 0.50;
    int min_metadata_fields = 1;  // metadata fields written per MAT
    int max_metadata_fields = 3;
    // Probability that a written metadata field is one of the Table I
    // *common* fields (switch id, queue lengths, timestamps, counter index)
    // instead of a program-private one. Shared fields couple concurrent
    // programs exactly the way the paper's common metadata does: the merged
    // pipeline must order their accesses, so cutting the TDG anywhere
    // between them costs header bytes.
    double shared_field_probability = 0.15;
};

// One synthetic program. Deterministic in (config, seed, index).
[[nodiscard]] Program synthetic_program(const SyntheticConfig& config,
                                        std::uint64_t seed, int index);

// A batch of `count` synthetic programs from one master seed.
[[nodiscard]] std::vector<Program> synthetic_programs(const SyntheticConfig& config,
                                                      std::uint64_t seed, int count);

// The paper's mixed workload: the ten real programs followed by enough
// synthetic ones to reach `count` total (the evaluation deploys up to 50).
[[nodiscard]] std::vector<Program> paper_workload(int count, std::uint64_t seed);

}  // namespace hermes::prog
