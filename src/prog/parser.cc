#include "prog/parser.h"

#include <fstream>
#include <optional>
#include <sstream>
#include <stdexcept>

#include "util/strings.h"

namespace hermes::prog {

using tdg::Action;
using tdg::DepType;
using tdg::Field;
using tdg::FieldKind;
using tdg::MatchKind;

namespace {

[[noreturn]] void fail(std::size_t line_no, const std::string& message) {
    throw util::StatusError(util::Status::invalid(
        message, util::SourceLoc{"", static_cast<int>(line_no), 0}));
}

Field parse_field(std::string_view spec, std::size_t line_no) {
    const auto parts = util::split(spec, ':');
    if (parts.size() != 3) fail(line_no, "field must be name:bytes:kind");
    const auto bytes = util::parse_int(parts[1]);
    if (bytes <= 0) fail(line_no, "field size must be positive");
    if (parts[2] == "h") return tdg::header_field(parts[0], static_cast<int>(bytes));
    if (parts[2] == "m") return tdg::metadata_field(parts[0], static_cast<int>(bytes));
    fail(line_no, "field kind must be 'h' or 'm'");
}

MatchKind parse_match_kind(std::string_view s, std::size_t line_no) {
    if (s == "exact") return MatchKind::kExact;
    if (s == "lpm") return MatchKind::kLpm;
    if (s == "ternary") return MatchKind::kTernary;
    if (s == "range") return MatchKind::kRange;
    fail(line_no, "unknown match kind '" + std::string(s) + "'");
}

DepType parse_dep_type(std::string_view s, std::size_t line_no) {
    if (s == "M") return DepType::kMatch;
    if (s == "A") return DepType::kAction;
    if (s == "R") return DepType::kReverseMatch;
    if (s == "S") return DepType::kSuccessor;
    fail(line_no, "dependency type must be one of M A R S");
}

char dep_letter(DepType t) {
    switch (t) {
        case DepType::kMatch: return 'M';
        case DepType::kAction: return 'A';
        case DepType::kReverseMatch: return 'R';
        case DepType::kSuccessor: return 'S';
    }
    return '?';
}

// Accumulates one `mat` block until it can be flushed into the program.
struct MatDraft {
    std::string name;
    std::int64_t capacity = 0;
    double resource = 0.0;
    MatchKind kind = MatchKind::kExact;
    std::vector<Field> matches;
    std::vector<Action> actions;
};

void flush(std::optional<MatDraft>& draft, Program& program, std::size_t line_no) {
    if (!draft) return;
    if (draft->matches.empty()) fail(line_no, "mat '" + draft->name + "' has no match");
    if (draft->actions.empty()) fail(line_no, "mat '" + draft->name + "' has no write");
    program.add_mat(tdg::Mat(draft->name, std::move(draft->matches),
                             std::move(draft->actions), draft->capacity, draft->resource,
                             draft->kind));
    draft.reset();
}

}  // namespace

namespace {
Program parse_program_impl(std::string_view text) {
    std::optional<Program> program;
    std::optional<MatDraft> draft;
    std::size_t line_no = 0;

    std::istringstream in{std::string(text)};
    std::string raw;
    while (std::getline(in, raw)) {
        ++line_no;
        std::string_view line{raw};
        if (const auto hash = line.find('#'); hash != std::string_view::npos) {
            line = line.substr(0, hash);
        }
        line = util::trim(line);
        if (line.empty()) continue;

        const auto tokens = util::split(line, ' ');
        const std::string& keyword = tokens.front();

        if (keyword == "program") {
            if (program) fail(line_no, "duplicate 'program' directive");
            if (tokens.size() != 2) fail(line_no, "usage: program <name>");
            program.emplace(tokens[1]);
            continue;
        }
        if (!program) fail(line_no, "file must start with 'program <name>'");

        if (keyword == "mat") {
            flush(draft, *program, line_no);
            if (tokens.size() < 2) fail(line_no, "usage: mat <name> key=value...");
            MatDraft d;
            d.name = tokens[1];
            for (std::size_t i = 2; i < tokens.size(); ++i) {
                const auto kv = util::split(tokens[i], '=');
                if (kv.size() != 2) fail(line_no, "expected key=value, got '" + tokens[i] + "'");
                if (kv[0] == "capacity") d.capacity = util::parse_int(kv[1]);
                else if (kv[0] == "resource") d.resource = util::parse_double(kv[1]);
                else if (kv[0] == "kind") d.kind = parse_match_kind(kv[1], line_no);
                else fail(line_no, "unknown mat attribute '" + kv[0] + "'");
            }
            draft = std::move(d);
            continue;
        }
        if (keyword == "match") {
            if (!draft) fail(line_no, "'match' outside a mat block");
            if (tokens.size() < 2) fail(line_no, "usage: match <field>...");
            for (std::size_t i = 1; i < tokens.size(); ++i) {
                draft->matches.push_back(parse_field(tokens[i], line_no));
            }
            continue;
        }
        if (keyword == "write") {
            if (!draft) fail(line_no, "'write' outside a mat block");
            if (tokens.size() < 3) fail(line_no, "usage: write <action> <field>...");
            Action a{tokens[1], {}};
            for (std::size_t i = 2; i < tokens.size(); ++i) {
                a.writes.push_back(parse_field(tokens[i], line_no));
            }
            draft->actions.push_back(std::move(a));
            continue;
        }
        if (keyword == "gate") {
            flush(draft, *program, line_no);
            if (tokens.size() != 3) fail(line_no, "usage: gate <up> <down>");
            program->add_gate(tokens[1], tokens[2]);
            continue;
        }
        if (keyword == "edge") {
            flush(draft, *program, line_no);
            if (tokens.size() != 4) fail(line_no, "usage: edge <from> <to> <M|A|R|S>");
            program->add_explicit_edge(tokens[1], tokens[2],
                                       parse_dep_type(tokens[3], line_no));
            continue;
        }
        fail(line_no, "unknown directive '" + keyword + "'");
    }
    if (!program) {
        throw util::StatusError(util::Status::invalid("parse_program: empty input"));
    }
    flush(draft, *program, line_no);
    return std::move(*program);
}
}  // namespace

util::StatusOr<Program> try_parse_program(std::string_view text) {
    try {
        return parse_program_impl(text);
    } catch (const util::StatusError& e) {
        return e.status();
    }
}

util::StatusOr<Program> try_load_program_file(const std::string& path) {
    std::ifstream in(path);
    if (!in) {
        return util::Status::io("load_program_file: cannot open '" + path + "'");
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    try {
        return parse_program_impl(buffer.str());
    } catch (const util::StatusError& e) {
        return e.status().with_file(path);
    }
}

// A StatusError already is the std::invalid_argument the historical API
// promised, so the impl's exceptions propagate unchanged.
Program parse_program(std::string_view text) { return parse_program_impl(text); }

Program load_program_file(const std::string& path) {
    util::StatusOr<Program> result = try_load_program_file(path);
    result.status().throw_if_error();
    return std::move(result).value();
}

std::string to_text(const Program& p) {
    std::ostringstream out;
    out << "program " << p.name() << '\n';
    auto field_spec = [](const Field& f) {
        return f.name + ':' + std::to_string(f.size_bytes) + ':' +
               (f.kind == FieldKind::kMetadata ? 'm' : 'h');
    };
    auto kind_name = [](MatchKind k) {
        switch (k) {
            case MatchKind::kExact: return "exact";
            case MatchKind::kLpm: return "lpm";
            case MatchKind::kTernary: return "ternary";
            case MatchKind::kRange: return "range";
        }
        return "exact";
    };
    for (const tdg::Mat& m : p.mats()) {
        out << "mat " << m.name() << " capacity=" << m.rule_capacity()
            << " resource=" << m.resource_units() << " kind=" << kind_name(m.match_kind())
            << '\n';
        out << "  match";
        for (const Field& f : m.match_fields()) out << ' ' << field_spec(f);
        out << '\n';
        for (const Action& a : m.actions()) {
            out << "  write " << a.name;
            for (const Field& f : a.writes) out << ' ' << field_spec(f);
            out << '\n';
        }
    }
    const tdg::Tdg t = p.to_tdg();
    for (const tdg::Edge& e : t.edges()) {
        out << "edge " << t.node(e.from).name() << ' ' << t.node(e.to).name() << ' '
            << dep_letter(e.type) << '\n';
    }
    return out.str();
}

}  // namespace hermes::prog
