// Data plane program model.
//
// A Program is an ordered list of MATs (program order = control-flow order,
// exactly what a P4 control block provides) plus explicit gate relations
// (if-conditions whose outcome decides whether a downstream table runs).
// `to_tdg()` performs the paper's "enumerate every pair of MATs" step: for
// each ordered pair it infers the dependency type from the MATs' field sets
// and emits a typed TDG edge.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "tdg/deps.h"
#include "tdg/tdg.h"

namespace hermes::prog {

class Program {
public:
    explicit Program(std::string name);

    [[nodiscard]] const std::string& name() const noexcept { return name_; }

    // Rebinds the program name. Resident engines key tenants by name, so a
    // serve client may install the same library program twice under
    // different names.
    void set_name(std::string name) { name_ = std::move(name); }

    // Appends a MAT in program order; returns its position.
    std::size_t add_mat(tdg::Mat mat);

    [[nodiscard]] std::size_t mat_count() const noexcept { return mats_.size(); }
    [[nodiscard]] const tdg::Mat& mat(std::size_t i) const;
    [[nodiscard]] const std::vector<tdg::Mat>& mats() const noexcept { return mats_; }

    // Declares that `upstream`'s result gates `downstream`'s execution
    // (successor dependency). Both MATs must already exist; upstream must
    // precede downstream in program order.
    void add_gate(const std::string& upstream, const std::string& downstream);
    void add_gate(std::size_t upstream, std::size_t downstream);

    // Forces an explicit dependency edge regardless of field analysis
    // (used by the parser and by tests to build exact TDG shapes).
    void add_explicit_edge(const std::string& from, const std::string& to,
                           tdg::DepType type);
    void add_explicit_edge(std::size_t from, std::size_t to, tdg::DepType type);

    // An explicit edge as recorded: MAT positions plus the forced type.
    struct ExplicitEdge {
        std::size_t from;
        std::size_t to;
        tdg::DepType type;
    };

    // Structural read access, so the serve journal (core/journal.h) can
    // serialize a program exactly and rebuild it on recovery.
    [[nodiscard]] const std::vector<std::pair<std::size_t, std::size_t>>& gates()
        const noexcept {
        return gates_;
    }
    [[nodiscard]] const std::vector<ExplicitEdge>& explicit_edges() const noexcept {
        return explicit_edges_;
    }

    // Builds the TDG: nodes in program order; edges from pairwise dependency
    // inference plus all explicit edges.
    [[nodiscard]] tdg::Tdg to_tdg() const;

    // Position of a MAT by name; throws std::out_of_range when absent.
    [[nodiscard]] std::size_t index_of(const std::string& mat_name) const;

    // Copy of this program with every MAT's resource footprint multiplied by
    // `factor` (> 0). Used to study resource-pressure regimes — e.g. to model
    // switch.p4-scale programs with the compact library entries.
    [[nodiscard]] Program with_scaled_resources(double factor) const;

private:
    std::string name_;
    std::vector<tdg::Mat> mats_;
    std::vector<std::pair<std::size_t, std::size_t>> gates_;
    std::vector<ExplicitEdge> explicit_edges_;
};

}  // namespace hermes::prog
