// Library of realistic data plane programs.
//
// The paper's testbed experiments deploy "ten real programs", each a
// specific version of switch.p4 (per the SPEED setup), and Exp#6 deploys ten
// sketch-based measurement programs. This library models both families at
// the MAT granularity the analyzer consumes: every MAT declares its match
// fields, action write-sets (header vs metadata), rule capacity, and
// resource footprint (fraction of one pipeline stage).
#pragma once

#include <string>
#include <vector>

#include "prog/program.h"

namespace hermes::prog {

// Names of the ten realistic programs, in a fixed order.
[[nodiscard]] std::vector<std::string> program_names();

// Builds one realistic program by name; throws std::out_of_range on an
// unknown name.
[[nodiscard]] Program make_program(const std::string& name);

// All ten realistic programs (the paper's Exp#1 workload).
[[nodiscard]] std::vector<Program> real_programs();

// Names of the ten sketch algorithms used by Exp#6.
[[nodiscard]] std::vector<std::string> sketch_names();

// Builds one sketch program. All sketches share a structurally identical
// hash-index MAT, so TDG merging deduplicates that work — the redundancy the
// paper's merging step exists to exploit.
[[nodiscard]] Program sketch_program(const std::string& kind);

// All ten sketch programs.
[[nodiscard]] std::vector<Program> sketch_programs();

}  // namespace hermes::prog
