#include "prog/library.h"

#include <stdexcept>

#include "tdg/field.h"

namespace hermes::prog {

using tdg::Action;
using tdg::Field;
using tdg::Mat;
using tdg::MatchKind;
using tdg::header_field;
using tdg::metadata_field;
namespace cm = tdg::common_metadata;

namespace {

// -- Shared header fields -----------------------------------------------
Field eth_dst() { return header_field("ethernet.dst_addr", 6); }
Field eth_src() { return header_field("ethernet.src_addr", 6); }
Field ipv4_dst() { return header_field("ipv4.dst_addr", 4); }
Field ipv4_src() { return header_field("ipv4.src_addr", 4); }
Field ipv4_ttl() { return header_field("ipv4.ttl", 1); }
Field ipv4_proto() { return header_field("ipv4.protocol", 1); }
Field l4_sport() { return header_field("l4.src_port", 2); }
Field l4_dport() { return header_field("l4.dst_port", 2); }
Field ig_port() { return header_field("intrinsic.ingress_port", 2); }

std::vector<Field> five_tuple() {
    return {ipv4_src(), ipv4_dst(), ipv4_proto(), l4_sport(), l4_dport()};
}

// -- Program definitions --------------------------------------------------

Program l2l3_routing() {
    Program p("l2l3_routing");
    p.add_mat(Mat("port_mapping", {ig_port()},
                  {Action{"set_vrf", {metadata_field("meta.vrf", 2)}}}, 256, 0.15));
    p.add_mat(Mat("ipv4_lpm", {ipv4_dst(), metadata_field("meta.vrf", 2)},
                  {Action{"set_nexthop", {metadata_field("meta.nexthop_id", 4)}}}, 16384,
                  0.45, MatchKind::kLpm));
    p.add_mat(Mat("nexthop_resolve", {metadata_field("meta.nexthop_id", 4)},
                  {Action{"rewrite_dmac",
                          {eth_dst(), metadata_field("meta.egress_port", 2)}}},
                  4096, 0.30));
    p.add_mat(Mat("smac_rewrite", {metadata_field("meta.egress_port", 2)},
                  {Action{"rewrite_smac", {eth_src(), ipv4_ttl()}}}, 128, 0.15));
    return p;
}

Program acl_firewall() {
    Program p("acl_firewall");
    p.add_mat(Mat("acl_ipv4", five_tuple(),
                  {Action{"set_verdict", {metadata_field("meta.acl_verdict", 1)}}}, 8192,
                  0.50, MatchKind::kTernary));
    p.add_mat(Mat("acl_meter", {metadata_field("meta.acl_verdict", 1)},
                  {Action{"police", {metadata_field("meta.drop_flag", 1)}}}, 256, 0.20));
    p.add_mat(Mat("acl_stats",
                  {metadata_field("meta.acl_verdict", 1)},
                  {Action{"count", {cm::counter_index()}}}, 1024, 0.25));
    return p;
}

Program nat() {
    Program p("nat");
    p.add_mat(Mat("nat_lookup", five_tuple(),
                  {Action{"hit", {metadata_field("meta.nat_index", 4),
                                  metadata_field("meta.nat_hit", 1)}}},
                  4096, 0.40, MatchKind::kExact));
    p.add_mat(Mat("nat_rewrite", {metadata_field("meta.nat_index", 4)},
                  {Action{"rewrite", {ipv4_src(), l4_sport()}}}, 4096, 0.35));
    p.add_mat(Mat("nat_miss", {metadata_field("meta.nat_hit", 1)},
                  {Action{"to_cpu", {metadata_field("meta.cpu_reason", 2)}}}, 16, 0.10));
    return p;
}

Program ecmp_lb() {
    Program p("ecmp_lb");
    p.add_mat(Mat("ecmp_group", {ipv4_dst()},
                  {Action{"pick_group", {metadata_field("meta.ecmp_group_id", 2)}}}, 2048,
                  0.30, MatchKind::kLpm));
    p.add_mat(Mat("ecmp_hash", {metadata_field("meta.ecmp_group_id", 2)},
                  {Action{"hash", {cm::counter_index()}}}, 64, 0.15));
    p.add_mat(Mat("ecmp_select",
                  {metadata_field("meta.ecmp_group_id", 2), cm::counter_index()},
                  {Action{"set_port", {metadata_field("meta.egress_port", 2)}}}, 2048,
                  0.30));
    return p;
}

Program vxlan_tunnel() {
    Program p("vxlan_tunnel");
    p.add_mat(Mat("tunnel_classify", {ipv4_dst(), ipv4_proto()},
                  {Action{"classify", {metadata_field("meta.tunnel_id", 3)}}}, 1024, 0.25));
    p.add_mat(Mat("tunnel_decap", {metadata_field("meta.tunnel_id", 3)},
                  {Action{"decap", {header_field("vxlan.vni", 3),
                                    metadata_field("meta.inner_valid", 1)}}},
                  512, 0.30));
    p.add_mat(Mat("tunnel_encap", {metadata_field("meta.tunnel_id", 3)},
                  {Action{"encap", {header_field("vxlan.vni", 3), ipv4_dst()}}}, 512, 0.30));
    p.add_gate("tunnel_classify", "tunnel_encap");
    return p;
}

Program int_telemetry() {
    Program p("int_telemetry");
    p.add_mat(Mat("int_source", {ipv4_dst(), l4_dport()},
                  {Action{"stamp", {cm::switch_identifier(), cm::timestamps()}}}, 512,
                  0.30));
    p.add_mat(Mat("int_transit", {cm::switch_identifier()},
                  {Action{"append", {cm::queue_lengths()}}}, 64, 0.25));
    p.add_mat(Mat("int_sink",
                  {cm::switch_identifier(), cm::queue_lengths()},
                  {Action{"report", {metadata_field("meta.report_flag", 1)}}}, 64, 0.20));
    return p;
}

Program countmin() {
    Program p("countmin_sketch");
    p.add_mat(Mat("cm_hash", five_tuple(),
                  {Action{"hash", {cm::counter_index()}}}, 16, 0.15));
    p.add_mat(Mat("cm_update", {cm::counter_index()},
                  {Action{"update", {metadata_field("meta.cm_count", 4)}}}, 16, 0.25));
    p.add_mat(Mat("cm_threshold", {metadata_field("meta.cm_count", 4)},
                  {Action{"flag", {metadata_field("meta.hh_flag", 1)}}}, 32, 0.10));
    return p;
}

Program bloom_filter() {
    Program p("bloom_filter");
    p.add_mat(Mat("bf_hash", five_tuple(),
                  {Action{"hash", {cm::counter_index()}}}, 16, 0.15));
    p.add_mat(Mat("bf_test", {cm::counter_index()},
                  {Action{"test", {metadata_field("meta.bf_member", 1)}}}, 16, 0.20));
    p.add_mat(Mat("bf_set", {metadata_field("meta.bf_member", 1)},
                  {Action{"set", {metadata_field("meta.bf_updated", 1)}}}, 16, 0.20));
    return p;
}

Program flow_stats() {
    Program p("flow_stats");
    p.add_mat(Mat("fr_hash", five_tuple(),
                  {Action{"hash", {cm::counter_index()}}}, 16, 0.15));
    p.add_mat(Mat("fr_encode", {cm::counter_index()},
                  {Action{"encode", {metadata_field("meta.flow_xor", 4),
                                     metadata_field("meta.flow_count", 4)}}},
                  16, 0.35));
    p.add_mat(Mat("fr_export", {metadata_field("meta.flow_count", 4)},
                  {Action{"export", {metadata_field("meta.report_flag", 1)}}}, 32, 0.10));
    return p;
}

Program qos_meter() {
    Program p("qos_meter");
    p.add_mat(Mat("qos_classify", {ipv4_dst(), header_field("ipv4.dscp", 1)},
                  {Action{"set_tc", {metadata_field("meta.traffic_class", 1)}}}, 1024,
                  0.25, MatchKind::kTernary));
    p.add_mat(Mat("qos_police", {metadata_field("meta.traffic_class", 1)},
                  {Action{"color", {metadata_field("meta.color", 1)}}}, 128, 0.25));
    p.add_mat(Mat("qos_wred", {metadata_field("meta.color", 1)},
                  {Action{"mark_drop", {metadata_field("meta.drop_flag", 1)}}}, 64, 0.15));
    return p;
}

Program congestion_control() {
    Program p("congestion_control");
    p.add_mat(Mat("cc_probe", {ipv4_proto()},
                  {Action{"probe", {cm::queue_lengths(), cm::timestamps()}}}, 64, 0.25));
    p.add_mat(Mat("cc_decide", {cm::queue_lengths()},
                  {Action{"decide", {metadata_field("meta.cc_window", 4)}}}, 256, 0.30));
    p.add_mat(Mat("cc_feedback", {metadata_field("meta.cc_window", 4)},
                  {Action{"feedback", {header_field("tcp.ecn", 1)}}}, 16, 0.15));
    return p;
}

}  // namespace

std::vector<std::string> program_names() {
    return {"l2l3_routing", "acl_firewall",  "nat",        "ecmp_lb",
            "vxlan_tunnel", "int_telemetry", "countmin_sketch", "bloom_filter",
            "flow_stats",   "qos_meter"};
}

Program make_program(const std::string& name) {
    if (name == "l2l3_routing") return l2l3_routing();
    if (name == "acl_firewall") return acl_firewall();
    if (name == "nat") return nat();
    if (name == "ecmp_lb") return ecmp_lb();
    if (name == "vxlan_tunnel") return vxlan_tunnel();
    if (name == "int_telemetry") return int_telemetry();
    if (name == "countmin_sketch") return countmin();
    if (name == "bloom_filter") return bloom_filter();
    if (name == "flow_stats") return flow_stats();
    if (name == "qos_meter") return qos_meter();
    if (name == "congestion_control") return congestion_control();
    throw std::out_of_range("make_program: unknown program '" + name + "'");
}

std::vector<Program> real_programs() {
    std::vector<Program> out;
    for (const std::string& n : program_names()) out.push_back(make_program(n));
    return out;
}

std::vector<std::string> sketch_names() {
    return {"countmin", "countsketch", "kary",    "bloom", "hyperloglog",
            "univmon",  "elastic",     "mvsketch", "fcm",   "deltoid"};
}

Program sketch_program(const std::string& kind) {
    const auto names = sketch_names();
    bool known = false;
    for (const auto& n : names) known = known || n == kind;
    if (!known) throw std::out_of_range("sketch_program: unknown sketch '" + kind + "'");

    Program p("sketch_" + kind);
    // Every sketch starts from the same structural hash-index computation —
    // identical match fields, actions, and capacity — so merging collapses
    // the hash MATs of concurrently deployed sketches into one.
    p.add_mat(Mat("hash_index_" + kind, five_tuple(),
                  {Action{"hash", {cm::counter_index()}}}, 16, 0.15));
    p.add_mat(Mat(kind + "_update", {cm::counter_index()},
                  {Action{"update", {metadata_field("meta." + kind + "_value", 4)}}}, 16,
                  0.30));
    p.add_mat(Mat(kind + "_report", {metadata_field("meta." + kind + "_value", 4)},
                  {Action{"report", {metadata_field("meta." + kind + "_flag", 1)}}}, 32,
                  0.10));
    return p;
}

std::vector<Program> sketch_programs() {
    std::vector<Program> out;
    for (const std::string& n : sketch_names()) out.push_back(sketch_program(n));
    return out;
}

}  // namespace hermes::prog
