// Textual program format (.prog).
//
// A small line-based exchange format so examples and tooling can load
// programs from disk, mirroring what a P4C TDG dump provides:
//
//   program l3_demo
//   mat ipv4_lpm capacity=1024 resource=0.4 kind=lpm
//     match ipv4.dst_addr:4:h
//     write set_nexthop meta.nexthop:4:m
//   mat nexthop capacity=256 resource=0.2
//     match meta.nexthop:4:m
//     write rewrite ethernet.dst_addr:6:h
//   gate ipv4_lpm nexthop          # optional successor relation
//   edge ipv4_lpm nexthop M        # optional explicit typed edge
//
// Field syntax is name:bytes:kind with kind 'h' (header) or 'm' (metadata).
// '#' starts a comment; blank lines are ignored.
#pragma once

#include <string>
#include <string_view>

#include "prog/program.h"
#include "util/status.h"

namespace hermes::prog {

// Parses a program from text. Errors carry the offending line in the
// status location ("<input>:line: message").
[[nodiscard]] util::StatusOr<Program> try_parse_program(std::string_view text);

// Loads and parses a .prog file. An unreadable file yields a kIo status;
// parse errors carry the path in their location ("path:line: message").
[[nodiscard]] util::StatusOr<Program> try_load_program_file(const std::string& path);

// Throwing wrapper around try_parse_program: throws std::invalid_argument
// (with the status's file:line: message) on malformed input.
[[nodiscard]] Program parse_program(std::string_view text);

// Throwing wrapper around try_load_program_file: std::runtime_error when the
// file cannot be read, std::invalid_argument on malformed content.
[[nodiscard]] Program load_program_file(const std::string& path);

// Serializes a program (MAT declarations plus the edges of its TDG as
// explicit edges). parse_program(to_text(p)) reproduces p's TDG.
[[nodiscard]] std::string to_text(const Program& p);

}  // namespace hermes::prog
