// mini-P4 front end: a P4-16-flavored subset that lowers to prog::Program,
// standing in for the paper's P4C pipeline (program text -> TDG).
//
// Grammar (informal):
//
//   program flow_monitor;
//
//   header ipv4 { dst_addr: 32; src_addr: 32; ttl: 8; }    // widths in bits
//   metadata meta { counter_index: 32; flow_count: 32; }
//
//   action set_index() { writes meta.counter_index; }
//   action mark(color) { writes meta.color; writes ipv4.ttl; }
//
//   table mon_hash {
//     key = { ipv4.src_addr; ipv4.dst_addr: lpm; }  // optional match kind
//     actions = { set_index; }
//     size = 1024;        // rule capacity
//     resource = 0.4;     // fraction of one pipeline stage
//   }
//
//   control {
//     apply(mon_hash);
//     if (meta.counter_index) {   // gates on a field: the last applied
//       apply(mon_count);         // table writing it becomes the gate
//     }
//     apply(mon_report);
//   }
//
// Lowering rules:
//  - header fields are packet headers; metadata fields are switch metadata
//    (bit widths are rounded up to whole bytes);
//  - a table becomes one MAT: key -> match fields, actions -> write sets,
//    size -> rule capacity, resource -> stage fraction;
//  - apply order inside `control` is the MAT program order;
//  - an `if (field)` block gates each directly applied table on the last
//    table before the block that writes `field` (successor dependencies).
#pragma once

#include <string>
#include <string_view>

#include "prog/program.h"
#include "util/status.h"

namespace hermes::p4 {

// Compiles mini-P4 source into a Program. Lexical, syntactic, and semantic
// errors (unknown fields, unknown tables, tables applied twice, missing
// control block, ...) come back as a status whose location carries the
// line — and, for token-anchored errors, the column.
[[nodiscard]] util::StatusOr<prog::Program> try_compile(std::string_view source);

// Loads and compiles a .p4mini file. An unreadable file yields a kIo status;
// compile errors carry the path in their location ("path:line:col: message").
[[nodiscard]] util::StatusOr<prog::Program> try_compile_file(const std::string& path);

// Throwing wrapper around try_compile: throws std::invalid_argument with the
// status's line:col message on any compile error.
[[nodiscard]] prog::Program compile(std::string_view source);

// Throwing wrapper around try_compile_file: std::runtime_error when the file
// cannot be read, std::invalid_argument on compile errors.
[[nodiscard]] prog::Program compile_file(const std::string& path);

}  // namespace hermes::p4
