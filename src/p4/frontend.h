// mini-P4 front end: a P4-16-flavored subset that lowers to prog::Program,
// standing in for the paper's P4C pipeline (program text -> TDG).
//
// Grammar (informal):
//
//   program flow_monitor;
//
//   header ipv4 { dst_addr: 32; src_addr: 32; ttl: 8; }    // widths in bits
//   metadata meta { counter_index: 32; flow_count: 32; }
//
//   action set_index() { writes meta.counter_index; }
//   action mark(color) { writes meta.color; writes ipv4.ttl; }
//
//   table mon_hash {
//     key = { ipv4.src_addr; ipv4.dst_addr: lpm; }  // optional match kind
//     actions = { set_index; }
//     size = 1024;        // rule capacity
//     resource = 0.4;     // fraction of one pipeline stage
//   }
//
//   control {
//     apply(mon_hash);
//     if (meta.counter_index) {   // gates on a field: the last applied
//       apply(mon_count);         // table writing it becomes the gate
//     }
//     apply(mon_report);
//   }
//
// Lowering rules:
//  - header fields are packet headers; metadata fields are switch metadata
//    (bit widths are rounded up to whole bytes);
//  - a table becomes one MAT: key -> match fields, actions -> write sets,
//    size -> rule capacity, resource -> stage fraction;
//  - apply order inside `control` is the MAT program order;
//  - an `if (field)` block gates each directly applied table on the last
//    table before the block that writes `field` (successor dependencies).
#pragma once

#include <string>
#include <string_view>

#include "prog/program.h"

namespace hermes::p4 {

// Compiles mini-P4 source into a Program. Throws std::invalid_argument with
// a line number and message on lexical, syntactic, or semantic errors
// (unknown fields, unknown tables, tables applied twice, missing control
// block, ...).
[[nodiscard]] prog::Program compile(std::string_view source);

// Loads and compiles a .p4mini file; throws std::runtime_error when the file
// cannot be read.
[[nodiscard]] prog::Program compile_file(const std::string& path);

}  // namespace hermes::p4
