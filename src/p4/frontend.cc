#include "p4/frontend.h"

#include <fstream>
#include <map>
#include <optional>
#include <set>
#include <sstream>
#include <stdexcept>

#include "p4/lexer.h"
#include "util/status.h"
#include "util/strings.h"

namespace hermes::p4 {

namespace {

using tdg::Field;
using tdg::MatchKind;

struct TableDecl {
    std::string name;
    std::vector<std::pair<std::string, MatchKind>> keys;  // field name, kind
    std::vector<std::string> actions;
    std::int64_t size = 0;
    double resource = 0.0;
    int line = 0;
};

struct ApplyStmt;
struct IfStmt;

struct Statement {
    // Exactly one of these is set.
    std::string apply_table;           // non-empty for apply
    std::string if_field;              // non-empty for if
    std::vector<Statement> if_body;    // body of the if
};

class Parser {
public:
    explicit Parser(std::string_view source) : tokens_(tokenize(source)) {}

    prog::Program run() {
        expect_keyword("program");
        const std::string program_name = expect(TokenKind::kIdentifier).text;
        expect(TokenKind::kSemicolon);

        while (!at_end()) {
            const Token& tok = peek();
            if (tok.kind != TokenKind::kIdentifier) {
                fail_at(tok, "expected a declaration, got " + describe(tok));
            }
            if (tok.text == "header" || tok.text == "metadata") parse_fields();
            else if (tok.text == "action") parse_action();
            else if (tok.text == "table") parse_table();
            else if (tok.text == "control") parse_control();
            else fail_at(tok, "unknown declaration '" + tok.text + "'");
        }
        if (!control_) fail(last_line(), "program has no control block");
        return lower(program_name);
    }

private:
    // ---- token plumbing -----------------------------------------------------
    [[nodiscard]] const Token& peek() const { return tokens_[index_]; }
    [[nodiscard]] bool at_end() const { return peek().kind == TokenKind::kEnd; }
    [[nodiscard]] int last_line() const { return tokens_.back().line; }

    const Token& advance() { return tokens_[index_++]; }

    const Token& expect(TokenKind kind) {
        const Token& tok = advance();
        if (tok.kind != kind) {
            fail_at(tok, std::string("expected ") + to_string(kind) + ", got " + describe(tok));
        }
        return tok;
    }

    void expect_keyword(const std::string& word) {
        const Token& tok = expect(TokenKind::kIdentifier);
        if (tok.text != word) {
            fail_at(tok, "expected '" + word + "', got '" + tok.text + "'");
        }
    }

    [[nodiscard]] bool match_keyword(const std::string& word) {
        if (peek().kind == TokenKind::kIdentifier && peek().text == word) {
            advance();
            return true;
        }
        return false;
    }

    [[noreturn]] static void fail(int line, const std::string& message) {
        throw util::StatusError(
            util::Status::invalid(message, util::SourceLoc{"", line, 0}));
    }

    // Token-anchored failure: points at the token's exact line:col.
    [[noreturn]] static void fail_at(const Token& tok, const std::string& message) {
        throw util::StatusError(
            util::Status::invalid(message, util::SourceLoc{"", tok.line, tok.col}));
    }

    [[nodiscard]] static std::string describe(const Token& tok) {
        if (tok.kind == TokenKind::kIdentifier || tok.kind == TokenKind::kNumber ||
            tok.kind == TokenKind::kReal) {
            return std::string(to_string(tok.kind)) + " '" + tok.text + "'";
        }
        return to_string(tok.kind);
    }

    // ---- declarations ---------------------------------------------------------
    void parse_fields() {
        const Token& kw = advance();  // header | metadata
        const bool is_metadata = kw.text == "metadata";
        const std::string prefix = expect(TokenKind::kIdentifier).text;
        expect(TokenKind::kLBrace);
        while (peek().kind != TokenKind::kRBrace) {
            const Token& name = expect(TokenKind::kIdentifier);
            expect(TokenKind::kColon);
            const Token& width = expect(TokenKind::kNumber);
            expect(TokenKind::kSemicolon);
            const long bits = util::parse_int(width.text);
            if (bits <= 0) fail_at(width, "field width must be positive");
            const int bytes = static_cast<int>((bits + 7) / 8);
            const std::string full = prefix + "." + name.text;
            if (fields_.count(full)) fail_at(name, "duplicate field '" + full + "'");
            fields_.emplace(full, is_metadata ? tdg::metadata_field(full, bytes)
                                              : tdg::header_field(full, bytes));
        }
        expect(TokenKind::kRBrace);
    }

    void parse_action() {
        advance();  // action
        const Token& name = expect(TokenKind::kIdentifier);
        if (actions_.count(name.text)) {
            fail_at(name, "duplicate action '" + name.text + "'");
        }
        expect(TokenKind::kLParen);
        // Formal parameters are accepted and ignored (they carry rule data,
        // not placement-relevant structure).
        while (peek().kind == TokenKind::kIdentifier) {
            advance();
            if (peek().kind == TokenKind::kComma) advance();
        }
        expect(TokenKind::kRParen);
        expect(TokenKind::kLBrace);
        std::vector<std::string> writes;
        while (peek().kind != TokenKind::kRBrace) {
            expect_keyword("writes");
            const Token& field = expect(TokenKind::kIdentifier);
            if (!fields_.count(field.text)) {
                fail_at(field, "unknown field '" + field.text + "'");
            }
            writes.push_back(field.text);
            expect(TokenKind::kSemicolon);
        }
        expect(TokenKind::kRBrace);
        actions_.emplace(name.text, std::move(writes));
    }

    [[nodiscard]] static MatchKind parse_match_kind(const Token& tok) {
        if (tok.text == "exact") return MatchKind::kExact;
        if (tok.text == "lpm") return MatchKind::kLpm;
        if (tok.text == "ternary") return MatchKind::kTernary;
        if (tok.text == "range") return MatchKind::kRange;
        fail_at(tok, "unknown match kind '" + tok.text + "'");
    }

    void parse_table() {
        advance();  // table
        TableDecl decl;
        const Token& name = expect(TokenKind::kIdentifier);
        decl.name = name.text;
        decl.line = name.line;
        if (tables_.count(decl.name)) fail_at(name, "duplicate table '" + decl.name + "'");
        expect(TokenKind::kLBrace);
        while (peek().kind != TokenKind::kRBrace) {
            const Token& prop = expect(TokenKind::kIdentifier);
            expect(TokenKind::kEquals);
            if (prop.text == "key") {
                expect(TokenKind::kLBrace);
                while (peek().kind != TokenKind::kRBrace) {
                    const Token& field = expect(TokenKind::kIdentifier);
                    if (!fields_.count(field.text)) {
                        fail_at(field, "unknown field '" + field.text + "'");
                    }
                    MatchKind kind = MatchKind::kExact;
                    if (peek().kind == TokenKind::kColon) {
                        advance();
                        kind = parse_match_kind(expect(TokenKind::kIdentifier));
                    }
                    decl.keys.emplace_back(field.text, kind);
                    expect(TokenKind::kSemicolon);
                }
                expect(TokenKind::kRBrace);
            } else if (prop.text == "actions") {
                expect(TokenKind::kLBrace);
                while (peek().kind != TokenKind::kRBrace) {
                    const Token& action = expect(TokenKind::kIdentifier);
                    if (!actions_.count(action.text)) {
                        fail_at(action, "unknown action '" + action.text + "'");
                    }
                    decl.actions.push_back(action.text);
                    expect(TokenKind::kSemicolon);
                }
                expect(TokenKind::kRBrace);
            } else if (prop.text == "size") {
                decl.size = util::parse_int(expect(TokenKind::kNumber).text);
            } else if (prop.text == "resource") {
                const Token& value = advance();
                if (value.kind != TokenKind::kReal && value.kind != TokenKind::kNumber) {
                    fail_at(value, "resource must be a number");
                }
                decl.resource = util::parse_double(value.text);
            } else {
                fail_at(prop, "unknown table property '" + prop.text + "'");
            }
            if (peek().kind == TokenKind::kSemicolon) advance();
        }
        expect(TokenKind::kRBrace);
        if (decl.keys.empty()) fail(decl.line, "table '" + decl.name + "' has no key");
        if (decl.actions.empty()) {
            fail(decl.line, "table '" + decl.name + "' has no actions");
        }
        if (decl.size <= 0) fail(decl.line, "table '" + decl.name + "' needs size > 0");
        if (decl.resource <= 0.0) {
            fail(decl.line, "table '" + decl.name + "' needs resource > 0");
        }
        tables_.emplace(decl.name, std::move(decl));
    }

    std::vector<Statement> parse_block() {
        std::vector<Statement> body;
        expect(TokenKind::kLBrace);
        while (peek().kind != TokenKind::kRBrace) {
            const Token& tok = expect(TokenKind::kIdentifier);
            if (tok.text == "apply") {
                expect(TokenKind::kLParen);
                Statement stmt;
                stmt.apply_table = expect(TokenKind::kIdentifier).text;
                if (!tables_.count(stmt.apply_table)) {
                    fail_at(tok, "unknown table '" + stmt.apply_table + "'");
                }
                expect(TokenKind::kRParen);
                expect(TokenKind::kSemicolon);
                body.push_back(std::move(stmt));
            } else if (tok.text == "if") {
                expect(TokenKind::kLParen);
                Statement stmt;
                stmt.if_field = expect(TokenKind::kIdentifier).text;
                if (!fields_.count(stmt.if_field)) {
                    fail_at(tok, "unknown field '" + stmt.if_field + "'");
                }
                expect(TokenKind::kRParen);
                stmt.if_body = parse_block();
                body.push_back(std::move(stmt));
            } else {
                fail_at(tok, "expected 'apply' or 'if', got '" + tok.text + "'");
            }
        }
        expect(TokenKind::kRBrace);
        return body;
    }

    void parse_control() {
        const Token& kw = advance();  // control
        if (control_) fail_at(kw, "duplicate control block");
        control_ = parse_block();
    }

    // ---- lowering ---------------------------------------------------------------
    void lower_block(const std::vector<Statement>& block, prog::Program& program,
                     std::map<std::string, std::string>& last_writer,
                     const std::optional<std::string>& gate) {
        for (const Statement& stmt : block) {
            if (!stmt.apply_table.empty()) {
                const TableDecl& decl = tables_.at(stmt.apply_table);
                if (applied_.count(decl.name)) {
                    fail(decl.line, "table '" + decl.name + "' applied twice");
                }
                applied_.insert(decl.name);

                std::vector<Field> matches;
                MatchKind kind = MatchKind::kExact;
                for (const auto& [field, key_kind] : decl.keys) {
                    matches.push_back(fields_.at(field));
                    // The strongest key kind names the table's match kind.
                    if (static_cast<int>(key_kind) > static_cast<int>(kind)) {
                        kind = key_kind;
                    }
                }
                std::vector<tdg::Action> actions;
                for (const std::string& action_name : decl.actions) {
                    tdg::Action action{action_name, {}};
                    for (const std::string& field : actions_.at(action_name)) {
                        action.writes.push_back(fields_.at(field));
                    }
                    actions.push_back(std::move(action));
                }
                program.add_mat(tdg::Mat(decl.name, std::move(matches), std::move(actions),
                                         decl.size, decl.resource, kind));
                if (gate) program.add_gate(*gate, decl.name);
                for (const std::string& action_name : decl.actions) {
                    for (const std::string& field : actions_.at(action_name)) {
                        last_writer[field] = decl.name;
                    }
                }
            } else {
                const auto writer = last_writer.find(stmt.if_field);
                if (writer == last_writer.end()) {
                    fail(last_line(), "if (" + stmt.if_field +
                                          "): no applied table writes this field");
                }
                lower_block(stmt.if_body, program, last_writer,
                            std::optional<std::string>(writer->second));
            }
        }
    }

    prog::Program lower(const std::string& name) {
        prog::Program program(name);
        std::map<std::string, std::string> last_writer;
        lower_block(*control_, program, last_writer, std::nullopt);
        if (program.mat_count() == 0) {
            fail(last_line(), "control block applies no tables");
        }
        return program;
    }

    std::vector<Token> tokens_;
    std::size_t index_ = 0;

    std::map<std::string, Field> fields_;
    std::map<std::string, std::vector<std::string>> actions_;
    std::map<std::string, TableDecl> tables_;
    std::optional<std::vector<Statement>> control_;
    std::set<std::string> applied_;
};

}  // namespace

util::StatusOr<prog::Program> try_compile(std::string_view source) {
    try {
        return Parser(source).run();
    } catch (const util::StatusError& e) {
        return e.status();
    }
}

util::StatusOr<prog::Program> try_compile_file(const std::string& path) {
    std::ifstream in(path);
    if (!in) {
        return util::Status::io("p4::compile_file: cannot open '" + path + "'");
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    try {
        return Parser(buffer.str()).run();
    } catch (const util::StatusError& e) {
        return e.status().with_file(path);
    }
}

// A StatusError already is the std::invalid_argument the historical API
// promised, so the parser's exceptions propagate unchanged.
prog::Program compile(std::string_view source) { return Parser(source).run(); }

prog::Program compile_file(const std::string& path) {
    util::StatusOr<prog::Program> result = try_compile_file(path);
    result.status().throw_if_error();
    return std::move(result).value();
}

}  // namespace hermes::p4
