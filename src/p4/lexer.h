// Lexer for mini-P4, the P4-16-flavored subset this repository accepts in
// place of the paper's P4C front end (see p4/frontend.h for the grammar).
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace hermes::p4 {

enum class TokenKind : std::uint8_t {
    kIdentifier,  // table names, field paths (dotted)
    kNumber,      // integer literals
    kReal,        // floating literals (resource fractions)
    kLBrace,      // {
    kRBrace,      // }
    kLParen,      // (
    kRParen,      // )
    kSemicolon,   // ;
    kColon,       // :
    kComma,       // ,
    kEquals,      // =
    kEnd,         // end of input
};

struct Token {
    TokenKind kind = TokenKind::kEnd;
    std::string text;
    int line = 0;
    int col = 0;  // 1-based column of the token's first character
};

[[nodiscard]] const char* to_string(TokenKind k) noexcept;

// Tokenizes mini-P4 source. '//' comments run to end of line. Throws
// util::StatusError (a std::invalid_argument carrying a line:col location)
// on unexpected characters.
[[nodiscard]] std::vector<Token> tokenize(std::string_view source);

}  // namespace hermes::p4
