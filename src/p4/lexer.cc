#include "p4/lexer.h"

#include <cctype>

#include "util/status.h"

namespace hermes::p4 {

const char* to_string(TokenKind k) noexcept {
    switch (k) {
        case TokenKind::kIdentifier: return "identifier";
        case TokenKind::kNumber: return "number";
        case TokenKind::kReal: return "real";
        case TokenKind::kLBrace: return "'{'";
        case TokenKind::kRBrace: return "'}'";
        case TokenKind::kLParen: return "'('";
        case TokenKind::kRParen: return "')'";
        case TokenKind::kSemicolon: return "';'";
        case TokenKind::kColon: return "':'";
        case TokenKind::kComma: return "','";
        case TokenKind::kEquals: return "'='";
        case TokenKind::kEnd: return "end of input";
    }
    return "?";
}

std::vector<Token> tokenize(std::string_view source) {
    std::vector<Token> tokens;
    int line = 1;
    std::size_t i = 0;
    std::size_t line_begin = 0;  // index of the current line's first character
    const std::size_t n = source.size();
    auto col_at = [&](std::size_t pos) { return static_cast<int>(pos - line_begin) + 1; };

    auto is_ident_start = [](char c) {
        return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
    };
    auto is_ident_char = [&](char c) {
        return is_ident_start(c) || std::isdigit(static_cast<unsigned char>(c)) != 0 ||
               c == '.';  // dotted field paths are single identifiers
    };

    while (i < n) {
        const char c = source[i];
        if (c == '\n') {
            ++line;
            ++i;
            line_begin = i;
            continue;
        }
        if (std::isspace(static_cast<unsigned char>(c))) {
            ++i;
            continue;
        }
        if (c == '/' && i + 1 < n && source[i + 1] == '/') {
            while (i < n && source[i] != '\n') ++i;
            continue;
        }
        if (is_ident_start(c)) {
            std::size_t begin = i;
            while (i < n && is_ident_char(source[i])) ++i;
            tokens.push_back(Token{TokenKind::kIdentifier,
                                   std::string(source.substr(begin, i - begin)), line,
                                   col_at(begin)});
            continue;
        }
        if (std::isdigit(static_cast<unsigned char>(c))) {
            std::size_t begin = i;
            bool real = false;
            while (i < n && (std::isdigit(static_cast<unsigned char>(source[i])) != 0 ||
                             source[i] == '.')) {
                real = real || source[i] == '.';
                ++i;
            }
            tokens.push_back(Token{real ? TokenKind::kReal : TokenKind::kNumber,
                                   std::string(source.substr(begin, i - begin)), line,
                                   col_at(begin)});
            continue;
        }
        TokenKind kind;
        switch (c) {
            case '{': kind = TokenKind::kLBrace; break;
            case '}': kind = TokenKind::kRBrace; break;
            case '(': kind = TokenKind::kLParen; break;
            case ')': kind = TokenKind::kRParen; break;
            case ';': kind = TokenKind::kSemicolon; break;
            case ':': kind = TokenKind::kColon; break;
            case ',': kind = TokenKind::kComma; break;
            case '=': kind = TokenKind::kEquals; break;
            default:
                throw util::StatusError(util::Status::invalid(
                    "unexpected character '" + std::string(1, c) + "'",
                    util::SourceLoc{"", line, col_at(i)}));
        }
        tokens.push_back(Token{kind, std::string(1, c), line, col_at(i)});
        ++i;
    }
    tokens.push_back(Token{TokenKind::kEnd, "", line, col_at(i)});
    return tokens;
}

}  // namespace hermes::p4
