// Deployment decisions: where every MAT lives and how switches communicate.
//
// This is the output side of the paper's decision variables: x(a,i,u)
// becomes Placement{switch, stage} per MAT, and y(u,v,p) becomes the chosen
// Path per communicating ordered switch pair.
#pragma once

#include <map>
#include <optional>
#include <utility>
#include <vector>

#include "net/network.h"
#include "net/paths.h"
#include "tdg/tdg.h"

namespace hermes::core {

struct Placement {
    net::SwitchId sw = 0;
    int stage = 0;
};

struct Deployment {
    // Indexed by TDG node id.
    std::vector<Placement> placements;
    // Chosen inter-switch path per ordered communicating pair (u, v).
    std::map<std::pair<net::SwitchId, net::SwitchId>, net::Path> routes;

    [[nodiscard]] bool empty() const noexcept { return placements.empty(); }

    // Switch hosting a MAT.
    [[nodiscard]] net::SwitchId switch_of(tdg::NodeId a) const;

    // Distinct switches used, ascending.
    [[nodiscard]] std::vector<net::SwitchId> occupied_switches() const;

    // Node ids placed on switch u, sorted by stage then id.
    [[nodiscard]] std::vector<tdg::NodeId> mats_on(net::SwitchId u) const;
};

// Assigns pipeline stages to the nodes of `segment` (a subset of t's nodes)
// on a switch with `stages` stages of `stage_capacity` resources each:
// topological first-fit that respects intra-segment dependencies
// (stage(a) < stage(b) for every edge) and per-stage capacity. Returns the
// stage per segment node (parallel to `segment`), or nullopt when the
// segment cannot fit.
[[nodiscard]] std::optional<std::vector<int>> assign_stages(
    const tdg::Tdg& t, const std::vector<tdg::NodeId>& segment, int stages,
    double stage_capacity);

// Exact variant: backtracking search over stage assignments (first-fit can
// fail on packings that still exist). Exponential worst case, bounded by
// `node_budget` explored states; returns nullopt when no packing exists or
// the budget runs out. Used when decoding MILP solutions, where the model's
// aggregate resource constraint admits sets that first-fit cannot place.
[[nodiscard]] std::optional<std::vector<int>> assign_stages_exact(
    const tdg::Tdg& t, const std::vector<tdg::NodeId>& segment, int stages,
    double stage_capacity, std::size_t node_budget = 200'000);

// True when `segment` fits one switch with the given geometry (both the
// paper's aggregate test ΣR(a) <= C_stage * C_res and actual stage packing).
[[nodiscard]] bool segment_fits(const tdg::Tdg& t, const std::vector<tdg::NodeId>& segment,
                                int stages, double stage_capacity);

}  // namespace hermes::core
