// Retained reference implementation of Algorithm 2's splitting pipeline.
//
// These are the original (pre-indexing) edge-rescanning implementations of
// split_tdg / split_tdg_first_fit / coalesce_segments and the serial,
// uncached anchor search. They exist for two reasons:
//   1. the golden equivalence suite asserts the production indexed rewrites
//      in core/greedy.h produce bit-identical segments on seeded random
//      TDGs, and
//   2. bench/micro_greedy uses them as the "before" side of the
//      BENCH_greedy.json speedup trajectory.
// They are not called anywhere on the production path.
#pragma once

#include "core/greedy.h"

namespace hermes::core::reference {

// Recursive min-metadata prefix-cut split; rescans every TDG edge at every
// prefix position (O(V·E) per split level).
[[nodiscard]] std::vector<std::vector<tdg::NodeId>> split_tdg(
    const tdg::Tdg& t, std::vector<tdg::NodeId> nodes, int stages, double stage_capacity);

// Topological first-fit split; re-packs the whole open segment per node.
[[nodiscard]] std::vector<std::vector<tdg::NodeId>> split_tdg_first_fit(
    const tdg::Tdg& t, std::vector<tdg::NodeId> nodes, int stages, double stage_capacity);

// Adjacent-pair coalescing; rescans every edge per pair per merge round.
[[nodiscard]] std::vector<std::vector<tdg::NodeId>> coalesce_segments(
    const tdg::Tdg& t, std::vector<std::vector<tdg::NodeId>> segments, std::size_t target,
    int stages, double stage_capacity);

// Serial anchor search with a fresh Dijkstra per hop and a full segment-list
// copy per anchor (the seed code path of deploy_segments_on_chain).
[[nodiscard]] GreedyResult deploy_segments_on_chain(
    const tdg::Tdg& t, const net::Network& net,
    std::vector<std::vector<tdg::NodeId>> segments, const GreedyOptions& options = {});

// Full seed Algorithm 2 (reference split + serial uncached anchor search,
// including the small-instance DP refinement), for end-to-end before/after
// benchmarking.
[[nodiscard]] GreedyResult greedy_deploy(const tdg::Tdg& t, const net::Network& net,
                                         const GreedyOptions& options = {});

}  // namespace hermes::core::reference
