#include "core/repair.h"

#include <chrono>
#include <stdexcept>

#include "core/greedy.h"
#include "core/hermes.h"
#include "core/objective.h"
#include "core/verifier.h"
#include "net/paths.h"
#include "obs/obs.h"

namespace hermes::core {

namespace {

using Clock = std::chrono::steady_clock;

std::int64_t count_moved_mats(const Deployment& before, const Deployment& after) {
    std::int64_t moved = 0;
    for (std::size_t i = 0; i < before.placements.size() && i < after.placements.size();
         ++i) {
        if (before.placements[i].sw != after.placements[i].sw) ++moved;
    }
    return moved;
}

}  // namespace

bool route_alive(const net::Network& net, const net::Path& path) {
    for (const net::SwitchId s : path.switches) {
        if (s >= net.switch_count() || !net.switch_up(s)) return false;
    }
    for (std::size_t i = 0; i + 1 < path.switches.size(); ++i) {
        if (!net.link_up(path.switches[i], path.switches[i + 1])) return false;
    }
    return true;
}

DamageReport classify_damage(const tdg::Tdg& t, const net::Network& net,
                             const Deployment& d) {
    (void)t;  // the placement vector is already node-indexed
    DamageReport report;
    for (tdg::NodeId a = 0; a < d.placements.size(); ++a) {
        const net::SwitchId sw = d.placements[a].sw;
        if (sw >= net.switch_count() || !net.switch_up(sw)) {
            report.stranded_mats.push_back(a);
        }
    }
    for (const auto& [pair, path] : d.routes) {
        if (!route_alive(net, path)) report.dead_routes.push_back(pair);
    }
    return report;
}

RepairResult repair(const tdg::Tdg& t, const net::Network& net, const Deployment& broken,
                    const RepairOptions& options) {
    obs::Span span(options.sink, "repair");
    const auto start = Clock::now();
    obs::Sink* const sink = options.sink;
    if (sink != nullptr) {
        // Register every repair.* counter up front so exported metrics carry
        // them at 0 even on repairs that never reach the later rungs.
        sink->counter("repair.events").add(1);
        sink->counter("repair.reroute_only").add(0);
        sink->counter("repair.replaced_mats").add(0);
        sink->counter("repair.deadline_aborts").add(0);
    }

    RepairResult result;
    result.deployment = broken;
    auto finish = [&](const char* status, bool ok) -> RepairResult& {
        result.status = status;
        result.ok = ok;
        result.repair_seconds =
            std::chrono::duration<double>(Clock::now() - start).count();
        return result;
    };

    {
        obs::Span cspan(sink, "repair.classify");
        result.damage = classify_damage(t, net, broken);
    }
    if (result.damage.intact()) return finish("intact", true);

    // One token bounds the whole ladder; a plain wall-clock budget is
    // converted so every rung polls the same thing.
    Deadline deadline = options.deadline;
    if (!deadline.active() && options.time_limit_seconds > 0.0 &&
        options.time_limit_seconds < 1e17) {
        deadline = Deadline::after(options.time_limit_seconds);
    }

    VerifyOptions verify_options;
    static_cast<CommonOptions&>(verify_options) =
        static_cast<const CommonOptions&>(options);
    verify_options.epsilon1 = options.epsilon1;
    verify_options.epsilon2 = options.epsilon2;

    // Rung 1: reroute-only — every placement survives, only paths died.
    if (result.damage.stranded_mats.empty()) {
        obs::Span rspan(sink, "repair.reroute");
        Deployment candidate = broken;
        bool rewired = true;
        std::int64_t pairs = 0;
        for (const auto& pair : result.damage.dead_routes) {
            auto path = options.oracle != nullptr
                            ? options.oracle->path(pair.first, pair.second)
                            : net::shortest_path(net, pair.first, pair.second);
            if (!path) {
                rewired = false;
                break;
            }
            candidate.routes[pair] = std::move(*path);
            ++pairs;
        }
        if (rewired && verify(t, net, candidate, verify_options).ok) {
            result.deployment = std::move(candidate);
            result.rerouted_pairs = pairs;
            if (sink != nullptr) sink->counter("repair.reroute_only").add(1);
            return finish("reroute", true);
        }
    }

    // Rung 2: greedy re-placement on the surviving topology (the live
    // adjacency and programmable_switches() already exclude failed elements).
    Deployment incumbent;
    bool have_incumbent = false;
    {
        obs::Span gspan(sink, "repair.replace");
        GreedyOptions greedy_options;
        static_cast<CommonOptions&>(greedy_options) =
            static_cast<const CommonOptions&>(options);
        greedy_options.deadline = deadline;
        greedy_options.epsilon1 = options.epsilon1;
        greedy_options.epsilon2 = options.epsilon2;
        try {
            GreedyResult g = greedy_deploy(t, net, greedy_options, options.oracle);
            if (verify(t, net, g.deployment, verify_options).ok) {
                incumbent = std::move(g.deployment);
                have_incumbent = true;
            }
        } catch (const std::runtime_error&) {
            // Surviving capacity may genuinely be short; MILP (or infeasible)
            // decides below.
        }
    }

    // Rung 3: opt-in exact re-solve, warm started from the incumbent.
    bool milp_completed = false;
    if (options.allow_milp && !deadline.expired()) {
        obs::Span mspan(sink, "repair.milp");
        HermesOptions hermes_options;
        static_cast<CommonOptions&>(hermes_options) =
            static_cast<const CommonOptions&>(options);
        hermes_options.deadline = deadline;
        hermes_options.epsilon1 = options.epsilon1;
        hermes_options.epsilon2 = options.epsilon2;
        hermes_options.oracle = options.oracle;
        hermes_options.milp = options.milp;
        hermes_options.milp.deadline = deadline;
        util::StatusOr<DeployOutcome> exact_result =
            try_deploy_optimal(t, net, hermes_options);
        // A non-ok status means no MILP incumbent within the budget; the
        // greedy one stands.
        if (exact_result.ok()) {
            DeployOutcome outcome = std::move(exact_result).value();
            const bool exact = outcome.solver_status == "optimal" ||
                               outcome.solver_status == "feasible";
            if (verify(t, net, outcome.deployment, verify_options).ok &&
                (!have_incumbent ||
                 max_pair_metadata(t, outcome.deployment) <=
                     max_pair_metadata(t, incumbent))) {
                incumbent = std::move(outcome.deployment);
                have_incumbent = true;
                milp_completed = exact;
            }
        }
    }

    const bool deadline_tripped = deadline.active() && deadline.expired();
    if (have_incumbent) {
        result.replaced_mats = count_moved_mats(broken, incumbent);
        result.deployment = std::move(incumbent);
        if (sink != nullptr) {
            sink->counter("repair.replaced_mats").add(result.replaced_mats);
        }
        if (milp_completed) return finish("milp", true);
        if (deadline_tripped) {
            if (sink != nullptr) sink->counter("repair.deadline_aborts").add(1);
            return finish("fallback(deadline)", true);
        }
        return finish("replace", true);
    }
    if (deadline_tripped && sink != nullptr) {
        sink->counter("repair.deadline_aborts").add(1);
    }
    result.deployment = broken;  // untouched original, explicitly
    return finish("infeasible", false);
}

}  // namespace hermes::core
