// Cooperative cancellation token shared by every interruptible stage.
//
// A Deadline combines an optional wall-clock expiry with an optional shared
// cancel flag. Copies are cheap and all refer to the same cancellation state,
// so one token can be handed to a branch-and-bound worker pool, the simplex
// pivot loops, and the greedy anchor search at once; each of them polls
// expired() at a coarse granularity and unwinds to its best-known-feasible
// answer instead of throwing. A default-constructed Deadline is inactive:
// expired() is always false and the poll costs two branches, so passing one
// through options structs that rarely set it is free.
//
// The repair pipeline (core/repair.h) is the main producer: it creates one
// Deadline per repair attempt and the whole ladder — reroute, re-placement,
// MILP escalation — degrades gracefully when it trips.
#pragma once

#include <atomic>
#include <chrono>
#include <limits>
#include <memory>

namespace hermes::core {

class Deadline {
public:
    using Clock = std::chrono::steady_clock;

    // Inactive token: never expires, cancel() is a no-op.
    Deadline() = default;

    // Expires `seconds` from now; seconds <= 0 yields an already-expired
    // token (useful in tests), non-finite/huge values an inactive one.
    [[nodiscard]] static Deadline after(double seconds) {
        Deadline d;
        if (seconds < 1e17) {
            d.at_ = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                       std::chrono::duration<double>(seconds));
        }
        return d;
    }

    // Token with a manual trip wire (and optionally a wall-clock expiry on
    // top). Any copy may cancel(); every copy observes it.
    [[nodiscard]] static Deadline cancellable(
        double seconds = std::numeric_limits<double>::infinity()) {
        Deadline d = after(seconds);
        d.flag_ = std::make_shared<std::atomic<bool>>(false);
        return d;
    }

    // True when the token can ever expire (time bound or cancel flag set up).
    [[nodiscard]] bool active() const noexcept {
        return flag_ != nullptr || at_ != Clock::time_point::max();
    }

    [[nodiscard]] bool expired() const noexcept {
        if (flag_ && flag_->load(std::memory_order_relaxed)) return true;
        return at_ != Clock::time_point::max() && Clock::now() >= at_;
    }

    // Seconds until expiry: +inf for inactive tokens, 0 once expired.
    [[nodiscard]] double remaining_seconds() const noexcept {
        if (flag_ && flag_->load(std::memory_order_relaxed)) return 0.0;
        if (at_ == Clock::time_point::max()) {
            return std::numeric_limits<double>::infinity();
        }
        const double s = std::chrono::duration<double>(at_ - Clock::now()).count();
        return s > 0.0 ? s : 0.0;
    }

    // Trips a cancellable() token from any thread; no-op on other tokens.
    void cancel() const noexcept {
        if (flag_) flag_->store(true, std::memory_order_relaxed);
    }

private:
    Clock::time_point at_ = Clock::time_point::max();
    std::shared_ptr<std::atomic<bool>> flag_;
};

}  // namespace hermes::core
