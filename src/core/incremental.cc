#include "core/incremental.h"

#include <algorithm>
#include <map>
#include <set>
#include <stdexcept>

#include "core/objective.h"
#include "tdg/analyzer.h"
#include "tdg/merge.h"

namespace hermes::core {

tdg::Tdg extend_programs(const tdg::Tdg& base,
                         const std::vector<prog::Program>& additions) {
    tdg::Tdg combined = base;
    for (const prog::Program& p : additions) {
        combined = tdg::graph_union(combined, p.to_tdg());
    }
    tdg::add_write_conflict_edges(combined);
    tdg::analyze(combined);
    return combined;
}

std::optional<IncrementalResult> incremental_deploy(const tdg::Tdg& combined,
                                                    std::size_t base_count,
                                                    const Deployment& existing,
                                                    const net::Network& net,
                                                    net::PathOracle* oracle) {
    if (existing.placements.size() != base_count || base_count > combined.node_count()) {
        throw std::invalid_argument("incremental_deploy: base/deployment shape mismatch");
    }
    // A new MAT ordered before an old one cannot be placed without moving
    // the old one: bail out.
    for (const tdg::Edge& e : combined.edges()) {
        if (e.from >= base_count && e.to < base_count) return std::nullopt;
    }
    // An existing placement on a failed switch cannot be extended in place;
    // the caller must repair (core/repair.h) before adding programs.
    for (const Placement& p : existing.placements) {
        if (p.sw < net.switch_count() && !net.switch_up(p.sw)) return std::nullopt;
    }

    // Chain: the existing traversal order followed by untouched programmable
    // switches (nearest-first to the chain tail would need a metric; id
    // order keeps it deterministic).
    tdg::Tdg base_view = combined;  // traversal_order only reads placements' nodes
    std::vector<net::SwitchId> chain;
    if (base_count > 0) {
        // Build a base-only view for the traversal (placements cover the
        // prefix only).
        Deployment base_deployment = existing;
        // traversal_order needs a TDG whose node count matches; construct
        // the order directly from the combined TDG restricted to old nodes.
        std::map<net::SwitchId, std::size_t> first_pos;
        const std::vector<tdg::NodeId> topo = combined.topological_order();
        std::vector<std::size_t> pos(combined.node_count());
        for (std::size_t i = 0; i < topo.size(); ++i) pos[topo[i]] = i;
        for (tdg::NodeId v = 0; v < base_count; ++v) {
            const net::SwitchId u = existing.placements[v].sw;
            const auto it = first_pos.find(u);
            if (it == first_pos.end() || pos[v] < it->second) first_pos[u] = pos[v];
        }
        chain.reserve(first_pos.size());
        for (const auto& [u, p] : first_pos) chain.push_back(u);
        std::sort(chain.begin(), chain.end(), [&](net::SwitchId a, net::SwitchId b) {
            return first_pos.at(a) < first_pos.at(b);
        });
    }
    for (const net::SwitchId u : net.programmable_switches()) {
        if (std::find(chain.begin(), chain.end(), u) == chain.end()) chain.push_back(u);
    }
    if (chain.empty()) return std::nullopt;

    // Residual per-switch stage loads from the existing placements.
    std::map<net::SwitchId, std::vector<double>> load;
    for (const net::SwitchId u : chain) {
        load[u].assign(static_cast<std::size_t>(net.props(u).stages), 0.0);
    }
    for (tdg::NodeId v = 0; v < base_count; ++v) {
        const Placement& p = existing.placements[v];
        load[p.sw][static_cast<std::size_t>(p.stage)] += combined.node(v).resource_units();
    }

    IncrementalResult result;
    result.deployment.placements.resize(combined.node_count());
    std::copy(existing.placements.begin(), existing.placements.end(),
              result.deployment.placements.begin());
    result.deployment.routes = existing.routes;

    std::map<net::SwitchId, std::size_t> chain_index;
    for (std::size_t i = 0; i < chain.size(); ++i) chain_index[chain[i]] = i;

    std::vector<bool> placed(combined.node_count(), false);
    for (tdg::NodeId v = 0; v < base_count; ++v) placed[v] = true;

    for (const tdg::NodeId v : combined.topological_order()) {
        if (v < base_count) continue;
        std::size_t first = 0;
        for (const tdg::Edge& e : combined.edges()) {
            if (e.to != v || !placed[e.from]) continue;
            first = std::max(first,
                             chain_index.at(result.deployment.placements[e.from].sw));
        }
        const double need = combined.node(v).resource_units();
        bool done = false;
        for (std::size_t k = first; k < chain.size() && !done; ++k) {
            const net::SwitchId u = chain[k];
            int min_stage = 0;
            for (const tdg::Edge& e : combined.edges()) {
                if (e.to != v || !placed[e.from]) continue;
                if (result.deployment.placements[e.from].sw == u) {
                    min_stage = std::max(min_stage,
                                         result.deployment.placements[e.from].stage + 1);
                }
            }
            std::vector<double>& stages = load.at(u);
            for (std::size_t s = static_cast<std::size_t>(std::max(min_stage, 0));
                 s < stages.size() && !done; ++s) {
                if (stages[s] + need > net.props(u).stage_capacity + 1e-9) continue;
                stages[s] += need;
                result.deployment.placements[v] =
                    Placement{u, static_cast<int>(s)};
                placed[v] = true;
                done = true;
            }
        }
        if (!done) return std::nullopt;  // residual capacity exhausted
    }

    // Routes for any newly crossing pairs.
    std::set<std::pair<net::SwitchId, net::SwitchId>> crossing;
    for (const tdg::Edge& e : combined.edges()) {
        const net::SwitchId u = result.deployment.switch_of(e.from);
        const net::SwitchId v2 = result.deployment.switch_of(e.to);
        if (u != v2) crossing.insert({u, v2});
    }
    for (const auto& [u, v2] : crossing) {
        if (result.deployment.routes.count({u, v2})) continue;
        auto path = oracle ? oracle->path(u, v2) : net::shortest_path(net, u, v2);
        if (!path) return std::nullopt;
        result.deployment.routes[{u, v2}] = std::move(*path);
    }

    // Overhead delta: combined deployment vs the old nodes alone.
    tdg::Tdg base_only = base_view;  // metadata already annotated on combined
    (void)base_only;
    std::int64_t old_overhead = 0;
    {
        std::map<std::pair<net::SwitchId, net::SwitchId>, std::int64_t> pair_bytes;
        for (const tdg::Edge& e : combined.edges()) {
            if (e.from >= base_count || e.to >= base_count) continue;
            const net::SwitchId u = existing.switch_of(e.from);
            const net::SwitchId w = existing.switch_of(e.to);
            if (u != w) pair_bytes[{u, w}] += e.metadata_bytes;
        }
        for (const auto& [p, b] : pair_bytes) old_overhead = std::max(old_overhead, b);
    }
    result.added_overhead_bytes =
        max_pair_metadata(combined, result.deployment) - old_overhead;
    return result;
}

}  // namespace hermes::core
