// Shared solver-facing knobs.
//
// Every options struct in the optimization pipeline (milp::MilpOptions,
// milp::LpOptions, core::GreedyOptions, core::HermesOptions,
// core::FormulationOptions, core::VerifyOptions, baselines::BaselineOptions)
// embeds CommonOptions as a base, so threads / seed / limits / verbosity and
// the observability sink are spelled identically everywhere and injected per
// call instead of through globals. Because the fields are inherited, the
// historical spellings (`options.threads`, `options.time_limit_seconds`)
// keep compiling unchanged. The one-release [[deprecated]] aliases that
// bridged the rename (HermesOptions::greedy_threads, the LpOptions
// max_iterations/max_seconds spellings) have been removed; use the
// CommonOptions fields directly.
#pragma once

#include <cstdint>
#include <limits>
#include <thread>

#include "core/deadline.h"

namespace hermes::obs {
class Sink;
}  // namespace hermes::obs

namespace hermes::core {

struct CommonOptions {
    // Worker threads for any parallel phase; 0 = hardware concurrency.
    int threads = 1;
    // RNG seed for any randomized choice a stage makes (all current solver
    // paths are deterministic; synthetic workload generators honor it).
    std::uint64_t seed = 1;
    // Wall-clock budget in seconds; derived structs tighten the default.
    double time_limit_seconds = 1e18;
    // Cap on the stage's dominant unit of work (simplex pivots for LP/MILP).
    std::int64_t iteration_limit = std::numeric_limits<std::int64_t>::max();
    // 0 = silent; higher values may print progress to stderr.
    int verbosity = 0;
    // Observability sink (obs/obs.h). Null disables all instrumentation at
    // near-zero cost; non-null makes every pipeline stage record trace spans
    // and metrics into it.
    obs::Sink* sink = nullptr;
    // Cooperative cancellation token (core/deadline.h). Inactive by default;
    // an active token is polled by the branch-and-bound workers, the simplex
    // pivot loops, and the greedy anchor search, each of which unwinds to its
    // best incumbent when the token trips instead of throwing.
    Deadline deadline{};

    [[nodiscard]] int resolved_threads() const noexcept {
        if (threads > 0) return threads;
        const unsigned hw = std::thread::hardware_concurrency();
        return hw == 0 ? 1 : static_cast<int>(hw);
    }
};

}  // namespace hermes::core
