#include "core/formulation.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <queue>
#include <set>
#include <stdexcept>

#include "core/greedy.h"
#include "core/objective.h"
#include "obs/obs.h"

namespace hermes::core {

using milp::LinExpr;
using milp::Sense;
using milp::VarId;

namespace {
constexpr double kHalf = 0.5;

// Largest model we will assemble before declaring the instance out of reach
// for exact solving. The bound reflects the dense-tableau simplex core: a
// model with V variables and C constraints yields a tableau of roughly
// (C + V) x (V + C) doubles, so V + C beyond a few thousand is memory- and
// time-prohibitive. Larger instances must use segment_level/candidate_limit
// — or, like the paper's two-hour Gurobi runs, accept a time-limit fallback.
constexpr std::size_t kMaxModelSize = 9'000;  // est. variables + constraints
}  // namespace

P1Formulation::P1Formulation(const tdg::Tdg& t, const net::Network& net,
                             FormulationOptions options)
    : t_(t), net_(net), options_(options) {
    // Candidate switches: all programmable ones, optionally capped. When
    // capped, prefer the greedy chain (a known-feasible backbone) padded
    // with the switches nearest to its anchor.
    const std::vector<net::SwitchId> programmable = net_.programmable_switches();
    if (programmable.empty()) {
        throw std::invalid_argument("P1Formulation: no programmable switches");
    }
    if (options_.segment_level && options_.candidate_limit == 0) {
        // Auto-cap: the segment model needs one switch per segment plus a
        // little placement freedom; unbounded candidate sets blow the model
        // up quadratically for nothing.
        const net::SwitchProps& reference = net_.props(programmable.front());
        std::vector<tdg::NodeId> all(t_.node_count());
        for (tdg::NodeId v = 0; v < t_.node_count(); ++v) all[v] = v;
        const std::size_t segment_count =
            (options_.segment_split == SegmentSplit::kMinMetadataCut
                 ? split_tdg(t_, std::move(all), reference.stages,
                             reference.stage_capacity)
                 : split_tdg_first_fit(t_, std::move(all), reference.stages,
                                       reference.stage_capacity))
                .size();
        options_.candidate_limit = segment_count + 4;
    }
    if (options_.candidate_limit == 0 || options_.candidate_limit >= programmable.size()) {
        candidates_ = programmable;
    } else {
        std::set<net::SwitchId> chosen;
        try {
            GreedyOptions pre;
            pre.epsilon1 = options_.epsilon1;
            pre.epsilon2 = options_.epsilon2;
            pre.sink = options_.sink;
            const GreedyResult g = greedy_deploy(t_, net_, pre, options_.oracle);
            for (const net::SwitchId u : g.deployment.occupied_switches()) chosen.insert(u);
            const std::vector<double> dist =
                options_.oracle ? options_.oracle->latencies(g.anchor)
                                : net::shortest_latencies(net_, g.anchor);
            std::vector<net::SwitchId> by_distance = programmable;
            std::sort(by_distance.begin(), by_distance.end(),
                      [&](net::SwitchId a, net::SwitchId b) { return dist[a] < dist[b]; });
            for (const net::SwitchId u : by_distance) {
                if (chosen.size() >= options_.candidate_limit) break;
                chosen.insert(u);
            }
        } catch (const std::runtime_error&) {
            for (const net::SwitchId u : programmable) {
                if (chosen.size() >= options_.candidate_limit) break;
                chosen.insert(u);
            }
        }
        candidates_.assign(chosen.begin(), chosen.end());
    }
    {
        obs::Span span(options_.sink, "formulation.build_units");
        build_units();
    }
    {
        obs::Span span(options_.sink, "formulation.build_model");
        build_model();
    }
    if (obs::Sink* sink = options_.sink) {
        sink->counter("formulation.candidates").add(static_cast<std::int64_t>(candidates_.size()));
        sink->counter("formulation.units").add(static_cast<std::int64_t>(units_.size()));
        sink->counter("formulation.variables")
            .add(static_cast<std::int64_t>(model_.variable_count()));
        sink->counter("formulation.constraints")
            .add(static_cast<std::int64_t>(model_.constraint_count()));
    }
}

void P1Formulation::build_units() {
    if (options_.segment_level) {
        const net::SwitchProps& reference = net_.props(candidates_.front());
        std::vector<tdg::NodeId> all(t_.node_count());
        for (tdg::NodeId v = 0; v < t_.node_count(); ++v) all[v] = v;
        units_ = options_.segment_split == SegmentSplit::kMinMetadataCut
                     ? split_tdg(t_, std::move(all), reference.stages,
                                 reference.stage_capacity)
                     : split_tdg_first_fit(t_, std::move(all), reference.stages,
                                           reference.stage_capacity);
        if (units_.size() > candidates_.size()) {
            // One segment per switch: coalesce or the model is trivially
            // infeasible regardless of placement.
            units_ = coalesce_segments(t_, std::move(units_), candidates_.size(),
                                       reference.stages, reference.stage_capacity);
        }
    } else {
        units_.resize(t_.node_count());
        for (tdg::NodeId v = 0; v < t_.node_count(); ++v) units_[v] = {v};
    }
    unit_resource_.assign(units_.size(), 0.0);
    std::vector<std::size_t> unit_of(t_.node_count());
    for (std::size_t u = 0; u < units_.size(); ++u) {
        for (const tdg::NodeId v : units_[u]) {
            unit_of[v] = u;
            unit_resource_[u] += t_.node(v).resource_units();
        }
    }
    // Aggregate TDG edges between units.
    std::map<std::pair<std::size_t, std::size_t>, std::int64_t> agg;
    for (const tdg::Edge& e : t_.edges()) {
        const std::size_t from = unit_of[e.from];
        const std::size_t to = unit_of[e.to];
        if (from == to) continue;
        agg[{from, to}] += e.metadata_bytes;
    }
    for (const auto& [pair, bytes] : agg) {
        unit_edges_.push_back(UnitEdge{pair.first, pair.second, bytes});
    }
}

std::size_t P1Formulation::pair_index(std::size_t p, std::size_t q) const {
    return p * candidates_.size() + q;
}

void P1Formulation::build_model() {
    const std::size_t n = units_.size();
    const std::size_t np = candidates_.size();
    const std::size_t pair_total = np * np;

    const int stage_count = net_.props(candidates_.front()).stages;
    std::size_t metadata_edges = 0;
    for (const UnitEdge& e : unit_edges_) metadata_edges += e.metadata_bytes > 0 ? 1 : 0;
    const std::size_t stage_vars =
        options_.segment_level ? 0
                               : n * (static_cast<std::size_t>(stage_count) * (np + 1) + 1);
    const std::size_t estimated_variables = n * np + metadata_edges * np * np +
                                            3 * np * np + 2 * np + stage_vars;
    const std::size_t estimated_constraints =
        n + np + unit_edges_.size() * np * np + 4 * estimated_variables;
    if (estimated_variables + estimated_constraints > kMaxModelSize) {
        throw std::runtime_error(
            "P1Formulation: instance too large for the exact model (~" +
            std::to_string(estimated_variables) + " vars, ~" +
            std::to_string(estimated_constraints) +
            " constraints); use segment_level or candidate_limit");
    }

    // L[a][p] + unique placement (6).
    var_l_.assign(n, {});
    for (std::size_t a = 0; a < n; ++a) {
        LinExpr sum;
        for (std::size_t p = 0; p < np; ++p) {
            const VarId v = model_.add_binary("L_" + std::to_string(a) + "_" +
                                              std::to_string(p));
            var_l_[a].push_back(v);
            sum += LinExpr::term(v);
        }
        row_groups_.assignment.push_back(model_.constraint_count());
        model_.add_constraint(sum, Sense::kEq, 1.0, "assign_" + std::to_string(a));
    }

    // Resources (9), aggregated per switch.
    for (std::size_t p = 0; p < np; ++p) {
        const net::SwitchProps& props = net_.props(candidates_[p]);
        LinExpr load;
        if (options_.segment_level) {
            // One whole-switch segment per switch.
            for (std::size_t a = 0; a < n; ++a) load += LinExpr::term(var_l_[a][p]);
            row_groups_.capacity.push_back(model_.constraint_count());
            model_.add_constraint(load, Sense::kLe, 1.0, "seg_cap_" + std::to_string(p));
        } else {
            for (std::size_t a = 0; a < n; ++a) {
                load += LinExpr::term(var_l_[a][p], unit_resource_[a]);
            }
            row_groups_.capacity.push_back(model_.constraint_count());
            model_.add_constraint(load, Sense::kLe, props.stages * props.stage_capacity,
                                  "cap_" + std::to_string(p));
            // Two MATs larger than half a stage can never share one, so at
            // most `stages` of them fit a switch — a valid cut that removes
            // most aggregate-capacity solutions the decoder cannot pack.
            LinExpr large;
            for (std::size_t a = 0; a < n; ++a) {
                if (unit_resource_[a] > props.stage_capacity / 2.0) {
                    large += LinExpr::term(var_l_[a][p]);
                }
            }
            if (!large.empty()) {
                row_groups_.capacity.push_back(model_.constraint_count());
                model_.add_constraint(std::move(large), Sense::kLe,
                                      static_cast<double>(props.stages),
                                      "large_" + std::to_string(p));
            }
        }
    }

    // Stage assignment + intra-switch order (8) + exact per-stage capacity
    // (9); MAT-level only. Binary w[a][i] places MAT a in stage i; the
    // integer stage index s[a] = Σ i·w[a][i] drives the ordering big-M; the
    // product z = AND(L[a][p], w[a][i]) makes per-(switch, stage) capacity
    // exact — the aggregate constraint alone admits unpackable solutions.
    if (!options_.segment_level) {
        const int stages = net_.props(candidates_.front()).stages;
        var_w_.assign(n, {});
        var_z_.assign(n, {});
        std::vector<std::vector<VarId>>& w = var_w_;
        var_s_.resize(n);
        for (std::size_t a = 0; a < n; ++a) {
            LinExpr one;
            LinExpr stage_index;
            for (int i = 0; i < stages; ++i) {
                const VarId wv = model_.add_binary("w_" + std::to_string(a) + "_" +
                                                   std::to_string(i));
                w[a].push_back(wv);
                one += LinExpr::term(wv);
                stage_index += LinExpr::term(wv, static_cast<double>(i));
            }
            model_.add_constraint(std::move(one), Sense::kEq, 1.0);
            var_s_[a] = model_.add_integer(0, stages - 1, "s_" + std::to_string(a));
            model_.add_constraint(LinExpr::term(var_s_[a]) - stage_index, Sense::kEq, 0.0);
        }
        for (const UnitEdge& e : unit_edges_) {
            for (std::size_t p = 0; p < np; ++p) {
                const double m = net_.props(candidates_[p]).stages;
                // s[a] - s[b] + m*L[a][p] + m*L[b][p] <= 2m - 1
                LinExpr lhs = LinExpr::term(var_s_[e.from]) - LinExpr::term(var_s_[e.to]);
                lhs += LinExpr::term(var_l_[e.from][p], m);
                lhs += LinExpr::term(var_l_[e.to][p], m);
                model_.add_constraint(std::move(lhs), Sense::kLe, 2.0 * m - 1.0);
            }
        }
        for (std::size_t a = 0; a < n; ++a) {
            var_z_[a].assign(static_cast<std::size_t>(stages),
                             std::vector<VarId>(np, -1));
        }
        for (std::size_t p = 0; p < np; ++p) {
            const net::SwitchProps& props = net_.props(candidates_[p]);
            std::vector<LinExpr> stage_load(static_cast<std::size_t>(props.stages));
            for (std::size_t a = 0; a < n; ++a) {
                if (unit_resource_[a] <= 0.0) continue;
                for (int i = 0; i < props.stages; ++i) {
                    const VarId z = model_.add_binary(
                        "z_" + std::to_string(a) + "_" + std::to_string(i) + "_" +
                        std::to_string(p));
                    var_z_[a][static_cast<std::size_t>(i)][p] = z;
                    model_.add_constraint(LinExpr::term(z) - LinExpr::term(var_l_[a][p]),
                                          Sense::kLe, 0.0);
                    model_.add_constraint(
                        LinExpr::term(z) - LinExpr::term(w[a][static_cast<std::size_t>(i)]),
                        Sense::kLe, 0.0);
                    LinExpr lb = LinExpr::term(z) - LinExpr::term(var_l_[a][p]) -
                                 LinExpr::term(w[a][static_cast<std::size_t>(i)]);
                    model_.add_constraint(std::move(lb), Sense::kGe, -1.0);
                    stage_load[static_cast<std::size_t>(i)] +=
                        LinExpr::term(z, unit_resource_[a]);
                }
            }
            for (int i = 0; i < props.stages; ++i) {
                model_.add_constraint(stage_load[static_cast<std::size_t>(i)], Sense::kLe,
                                      props.stage_capacity,
                                      "stage_cap_" + std::to_string(p) + "_" +
                                          std::to_string(i));
            }
        }
    }

    // Traversal order + big-M precedence (7).
    var_ord_.resize(np);
    for (std::size_t p = 0; p < np; ++p) {
        var_ord_[p] = model_.add_continuous(0.0, static_cast<double>(np),
                                            "ord_" + std::to_string(p));
    }
    const double big_m = static_cast<double>(np) + 1.0;
    for (const UnitEdge& e : unit_edges_) {
        for (std::size_t p = 0; p < np; ++p) {
            for (std::size_t q = 0; q < np; ++q) {
                if (p == q) continue;
                // ord[p] + 1 <= ord[q] + M(2 - L[a][p] - L[b][q])
                LinExpr lhs = LinExpr::term(var_ord_[p]) - LinExpr::term(var_ord_[q]);
                lhs += LinExpr::term(var_l_[e.from][p], big_m);
                lhs += LinExpr::term(var_l_[e.to][q], big_m);
                model_.add_constraint(std::move(lhs), Sense::kLe, 2.0 * big_m - 1.0);
            }
        }
    }

    // comm / y coupling and t_e2e (2)(4).
    var_comm_.assign(pair_total, -1);
    var_y_.assign(pair_total, {});
    pair_paths_.assign(pair_total, {});
    LinExpr t_e2e;
    for (std::size_t p = 0; p < np; ++p) {
        for (std::size_t q = 0; q < np; ++q) {
            if (p == q) continue;
            const std::size_t idx = pair_index(p, q);
            var_comm_[idx] = model_.add_binary("comm_" + std::to_string(p) + "_" +
                                               std::to_string(q));
            pair_paths_[idx] =
                options_.oracle
                    ? options_.oracle->k_paths(candidates_[p], candidates_[q],
                                               options_.k_paths)
                    : net::k_shortest_paths(net_, candidates_[p], candidates_[q],
                                            options_.k_paths);
            if (pair_paths_[idx].empty()) {
                // Disconnected pair: may never communicate. A bound, not a
                // singleton row — the solver's presolve would only convert
                // it back, and bounds never enter the simplex matrix.
                model_.set_upper(var_comm_[idx], 0.0);
                continue;
            }
            LinExpr y_sum;
            for (std::size_t k = 0; k < pair_paths_[idx].size(); ++k) {
                const VarId y = model_.add_binary("y_" + std::to_string(p) + "_" +
                                                  std::to_string(q) + "_" +
                                                  std::to_string(k));
                var_y_[idx].push_back(y);
                y_sum += LinExpr::term(y);
                t_e2e += LinExpr::term(y, pair_paths_[idx][k].latency_us);
            }
            y_sum -= LinExpr::term(var_comm_[idx]);
            row_groups_.coupling.push_back(model_.constraint_count());
            model_.add_constraint(std::move(y_sum), Sense::kEq, 0.0);
        }
    }
    for (const UnitEdge& e : unit_edges_) {
        for (std::size_t p = 0; p < np; ++p) {
            for (std::size_t q = 0; q < np; ++q) {
                if (p == q) continue;
                // comm[pq] >= L[a][p] + L[b][q] - 1
                LinExpr lhs = LinExpr::term(var_comm_[pair_index(p, q)]) -
                              LinExpr::term(var_l_[e.from][p]) -
                              LinExpr::term(var_l_[e.to][q]);
                model_.add_constraint(std::move(lhs), Sense::kGe, -1.0);
            }
        }
    }
    if (std::isfinite(options_.epsilon1)) {
        model_.add_constraint(t_e2e, Sense::kLe, options_.epsilon1, "epsilon1");
    }
    const LinExpr t_e2e_expr = t_e2e;  // reused by the latency objective

    // occ / Q_occ (3)(5).
    var_occ_.resize(np);
    for (std::size_t p = 0; p < np; ++p) {
        var_occ_[p] = model_.add_binary("occ_" + std::to_string(p));
        LinExpr upper = LinExpr::term(var_occ_[p]);
        for (std::size_t a = 0; a < n; ++a) {
            model_.add_constraint(
                LinExpr::term(var_occ_[p]) - LinExpr::term(var_l_[a][p]), Sense::kGe, 0.0);
            upper -= LinExpr::term(var_l_[a][p]);
        }
        model_.add_constraint(std::move(upper), Sense::kLe, 0.0);
    }
    if (options_.epsilon2 < static_cast<std::int64_t>(np) + 1) {
        LinExpr occ_sum;
        for (std::size_t p = 0; p < np; ++p) occ_sum += LinExpr::term(var_occ_[p]);
        model_.add_constraint(std::move(occ_sum), Sense::kLe,
                              static_cast<double>(options_.epsilon2), "epsilon2");
    }

    // cross[e][pq] = L[a][p] AND L[b][q] for metadata edges; A_max (1).
    std::int64_t total_metadata = 0;
    for (const UnitEdge& e : unit_edges_) total_metadata += e.metadata_bytes;
    var_amax_ = model_.add_continuous(0.0, static_cast<double>(total_metadata), "A_max");

    var_cross_.clear();
    metadata_edge_index_.clear();
    for (std::size_t ei = 0; ei < unit_edges_.size(); ++ei) {
        if (unit_edges_[ei].metadata_bytes <= 0) continue;
        std::vector<VarId> row(pair_total, -1);
        const UnitEdge& e = unit_edges_[ei];
        for (std::size_t p = 0; p < np; ++p) {
            for (std::size_t q = 0; q < np; ++q) {
                if (p == q) continue;
                const VarId z = model_.add_binary("x_" + std::to_string(ei) + "_" +
                                                  std::to_string(p) + "_" +
                                                  std::to_string(q));
                row[pair_index(p, q)] = z;
                model_.add_constraint(
                    LinExpr::term(z) - LinExpr::term(var_l_[e.from][p]), Sense::kLe, 0.0);
                model_.add_constraint(
                    LinExpr::term(z) - LinExpr::term(var_l_[e.to][q]), Sense::kLe, 0.0);
                LinExpr lb = LinExpr::term(z) - LinExpr::term(var_l_[e.from][p]) -
                             LinExpr::term(var_l_[e.to][q]);
                model_.add_constraint(std::move(lb), Sense::kGe, -1.0);
            }
        }
        var_cross_.push_back(std::move(row));
        metadata_edge_index_.push_back(ei);
    }
    for (std::size_t p = 0; p < np; ++p) {
        for (std::size_t q = 0; q < np; ++q) {
            if (p == q) continue;
            LinExpr crossing;
            for (std::size_t r = 0; r < var_cross_.size(); ++r) {
                const UnitEdge& e = unit_edges_[metadata_edge_index_[r]];
                const VarId z = var_cross_[r][pair_index(p, q)];
                crossing += LinExpr::term(z, static_cast<double>(e.metadata_bytes));
            }
            if (crossing.empty()) continue;
            row_groups_.amax.push_back(model_.constraint_count());
            model_.add_constraint(LinExpr::term(var_amax_) - crossing, Sense::kGe, 0.0);
        }
    }

    // Objective selection: Hermes minimizes A_max; the comparison frameworks
    // reuse the identical constraint system with their own goals.
    switch (options_.objective) {
        case P1Objective::kMinAmax:
            model_.minimize(LinExpr::term(var_amax_));
            break;
        case P1Objective::kMinLatency:
            model_.minimize(t_e2e_expr);
            break;
        case P1Objective::kMinOccupied: {
            LinExpr occ_sum;
            for (std::size_t p = 0; p < np; ++p) occ_sum += LinExpr::term(var_occ_[p]);
            model_.minimize(std::move(occ_sum));
            break;
        }
        case P1Objective::kMinMaxMatsPerSwitch: {
            const VarId mmax = model_.add_continuous(
                0.0, static_cast<double>(t_.node_count()), "mats_max");
            var_mats_max_ = mmax;
            for (std::size_t p = 0; p < np; ++p) {
                LinExpr load = LinExpr::term(mmax);
                for (std::size_t a = 0; a < n; ++a) {
                    load -= LinExpr::term(var_l_[a][p],
                                          static_cast<double>(units_[a].size()));
                }
                model_.add_constraint(std::move(load), Sense::kGe, 0.0);
            }
            model_.minimize(LinExpr::term(mmax));
            break;
        }
        case P1Objective::kMinMaxStage: {
            if (options_.segment_level) {
                // No stage variables at segment granularity; fall back to the
                // closest proxy, pipeline occupation = occupied switches.
                LinExpr occ_sum;
                for (std::size_t p = 0; p < np; ++p) occ_sum += LinExpr::term(var_occ_[p]);
                model_.minimize(std::move(occ_sum));
            } else {
                const int stages = net_.props(candidates_.front()).stages;
                const VarId smax =
                    model_.add_continuous(0.0, static_cast<double>(stages), "stage_max");
                var_stage_max_ = smax;
                for (std::size_t a = 0; a < n; ++a) {
                    model_.add_constraint(
                        LinExpr::term(smax) - LinExpr::term(var_s_[a]), Sense::kGe, 0.0);
                }
                model_.minimize(LinExpr::term(smax));
            }
            break;
        }
    }
}

Deployment P1Formulation::decode(const std::vector<double>& values) const {
    if (values.size() != model_.variable_count()) {
        throw std::invalid_argument("P1Formulation::decode: assignment size mismatch");
    }
    const std::size_t np = candidates_.size();

    // Unit -> switch.
    std::vector<std::size_t> unit_switch(units_.size(), np);
    for (std::size_t a = 0; a < units_.size(); ++a) {
        for (std::size_t p = 0; p < np; ++p) {
            if (values[static_cast<std::size_t>(var_l_[a][p])] > kHalf) {
                unit_switch[a] = p;
                break;
            }
        }
        if (unit_switch[a] == np) {
            throw std::runtime_error("P1Formulation::decode: unit " + std::to_string(a) +
                                     " is unplaced");
        }
    }

    Deployment d;
    d.placements.resize(t_.node_count());
    if (!options_.segment_level) {
        // MAT-level: the model carries its own exact stage assignment.
        for (std::size_t a = 0; a < units_.size(); ++a) {
            const int stage = static_cast<int>(
                std::lround(values[static_cast<std::size_t>(var_s_[a])]));
            d.placements[units_[a].front()] =
                Placement{candidates_[unit_switch[a]], stage};
        }
    } else {
        for (std::size_t p = 0; p < np; ++p) {
            std::vector<tdg::NodeId> members;
            for (std::size_t a = 0; a < units_.size(); ++a) {
                if (unit_switch[a] != p) continue;
                members.insert(members.end(), units_[a].begin(), units_[a].end());
            }
            if (members.empty()) continue;
            const net::SwitchProps& props = net_.props(candidates_[p]);
            // First-fit packing, then exact backtracking.
            auto stages = assign_stages(t_, members, props.stages, props.stage_capacity);
            if (!stages) {
                stages =
                    assign_stages_exact(t_, members, props.stages, props.stage_capacity);
            }
            if (!stages) {
                throw std::runtime_error(
                    "P1Formulation::decode: stage packing failed on " + props.name);
            }
            for (std::size_t j = 0; j < members.size(); ++j) {
                d.placements[members[j]] = Placement{candidates_[p], (*stages)[j]};
            }
        }
    }

    // Routes for every ordered pair that actually carries a dependency.
    std::set<std::pair<std::size_t, std::size_t>> crossing;
    for (const UnitEdge& e : unit_edges_) {
        const std::size_t p = unit_switch[e.from];
        const std::size_t q = unit_switch[e.to];
        if (p != q) crossing.insert({p, q});
    }
    for (const auto& [p, q] : crossing) {
        const std::size_t idx = pair_index(p, q);
        if (pair_paths_[idx].empty()) {
            throw std::runtime_error("P1Formulation::decode: no path between switches");
        }
        std::size_t chosen = 0;
        for (std::size_t k = 0; k < var_y_[idx].size(); ++k) {
            if (values[static_cast<std::size_t>(var_y_[idx][k])] > kHalf) {
                chosen = k;
                break;
            }
        }
        d.routes[{candidates_[p], candidates_[q]}] = pair_paths_[idx][chosen];
    }
    return d;
}

std::optional<std::vector<double>> P1Formulation::encode(const Deployment& d) const {
    if (d.placements.size() != t_.node_count()) return std::nullopt;
    const std::size_t np = candidates_.size();
    std::map<net::SwitchId, std::size_t> candidate_index;
    for (std::size_t p = 0; p < np; ++p) candidate_index[candidates_[p]] = p;

    // Every unit's members must share one candidate switch.
    std::vector<std::size_t> unit_switch(units_.size());
    for (std::size_t a = 0; a < units_.size(); ++a) {
        const net::SwitchId sw = d.switch_of(units_[a].front());
        const auto it = candidate_index.find(sw);
        if (it == candidate_index.end()) return std::nullopt;
        for (const tdg::NodeId v : units_[a]) {
            if (d.switch_of(v) != sw) return std::nullopt;
        }
        unit_switch[a] = it->second;
    }

    std::vector<double> values(model_.variable_count(), 0.0);
    for (std::size_t a = 0; a < units_.size(); ++a) {
        values[static_cast<std::size_t>(var_l_[a][unit_switch[a]])] = 1.0;
    }
    if (!options_.segment_level) {
        for (std::size_t a = 0; a < units_.size(); ++a) {
            const int stage = d.placements[units_[a].front()].stage;
            values[static_cast<std::size_t>(var_s_[a])] = static_cast<double>(stage);
            if (stage < 0 || static_cast<std::size_t>(stage) >= var_w_[a].size()) {
                return std::nullopt;  // stage outside this model's geometry
            }
            values[static_cast<std::size_t>(var_w_[a][static_cast<std::size_t>(stage)])] =
                1.0;
            const VarId z = var_z_[a][static_cast<std::size_t>(stage)][unit_switch[a]];
            if (z >= 0) values[static_cast<std::size_t>(z)] = 1.0;
        }
    }

    // Crossing pairs, comm, y (shortest path), cross products, A_max.
    std::set<std::pair<std::size_t, std::size_t>> crossing;
    std::vector<std::int64_t> pair_bytes(np * np, 0);
    for (std::size_t r = 0; r < var_cross_.size(); ++r) {
        const UnitEdge& e = unit_edges_[metadata_edge_index_[r]];
        const std::size_t p = unit_switch[e.from];
        const std::size_t q = unit_switch[e.to];
        if (p == q) continue;
        const std::size_t idx = pair_index(p, q);
        values[static_cast<std::size_t>(var_cross_[r][idx])] = 1.0;
        pair_bytes[idx] += e.metadata_bytes;
    }
    for (const UnitEdge& e : unit_edges_) {
        const std::size_t p = unit_switch[e.from];
        const std::size_t q = unit_switch[e.to];
        if (p != q) crossing.insert({p, q});
    }
    std::int64_t a_max = 0;
    for (const std::int64_t b : pair_bytes) a_max = std::max(a_max, b);
    values[static_cast<std::size_t>(var_amax_)] = static_cast<double>(a_max);
    for (const auto& [p, q] : crossing) {
        const std::size_t idx = pair_index(p, q);
        if (var_y_[idx].empty()) return std::nullopt;  // disconnected pair
        values[static_cast<std::size_t>(var_comm_[idx])] = 1.0;
        values[static_cast<std::size_t>(var_y_[idx][0])] = 1.0;
    }

    // occ + traversal order (topological over crossing arcs).
    std::vector<int> in_degree(np, 0);
    for (const auto& [p, q] : crossing) ++in_degree[q];
    std::priority_queue<std::size_t, std::vector<std::size_t>, std::greater<>> ready;
    for (std::size_t p = 0; p < np; ++p) {
        if (in_degree[p] == 0) ready.push(p);
    }
    std::size_t position = 0;
    std::size_t emitted = 0;
    std::vector<double> ord(np, 0.0);
    while (!ready.empty()) {
        const std::size_t p = ready.top();
        ready.pop();
        ord[p] = static_cast<double>(position++);
        ++emitted;
        for (const auto& [a, b] : crossing) {
            if (a == p && --in_degree[b] == 0) ready.push(b);
        }
    }
    if (emitted != np) return std::nullopt;  // cyclic switch precedence
    for (std::size_t p = 0; p < np; ++p) {
        values[static_cast<std::size_t>(var_ord_[p])] = ord[p];
        bool occupied = false;
        for (std::size_t a = 0; a < units_.size(); ++a) {
            occupied = occupied || unit_switch[a] == p;
        }
        values[static_cast<std::size_t>(var_occ_[p])] = occupied ? 1.0 : 0.0;
    }

    // Auxiliary objective variables must also be feasible in a warm start.
    if (var_mats_max_ >= 0) {
        std::vector<double> mats(np, 0.0);
        for (std::size_t a = 0; a < units_.size(); ++a) {
            mats[unit_switch[a]] += static_cast<double>(units_[a].size());
        }
        values[static_cast<std::size_t>(var_mats_max_)] =
            *std::max_element(mats.begin(), mats.end());
    }
    if (var_stage_max_ >= 0) {
        double smax = 0.0;
        for (const Placement& p : d.placements) smax = std::max(smax, double(p.stage));
        values[static_cast<std::size_t>(var_stage_max_)] = smax;
    }
    return values;
}

}  // namespace hermes::core
