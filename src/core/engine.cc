#include "core/engine.h"

#include <algorithm>
#include <chrono>
#include <set>
#include <utility>

#include "core/incremental.h"
#include "core/repair.h"
#include "core/verifier.h"
#include "fault/crash.h"
#include "fault/injector.h"
#include "obs/obs.h"
#include "tdg/analyzer.h"
#include "tdg/merge.h"
#include "util/crc.h"

namespace hermes::core {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
    return std::chrono::duration<double>(Clock::now() - start).count();
}

// Cache key for one ordered program set. Program names cannot contain
// newlines (the wire protocol is line-delimited), so '\n' is a safe joiner.
std::string merge_key(const std::vector<std::string>& names) {
    std::string key;
    for (const std::string& n : names) {
        key += n;
        key += '\n';
    }
    return key;
}

// One epoch op as journaled ({"op": ...}); inverse below. These live here —
// not in journal.h — because Mutation is the engine's own type.
util::Json mutation_to_json(const Engine::Mutation& m) {
    util::JsonObject o;
    switch (m.kind) {
        case Engine::Mutation::Kind::kAddProgram:
            o.emplace_back("op", "add_program");
            o.emplace_back("program", program_to_json(*m.program));
            break;
        case Engine::Mutation::Kind::kRemoveProgram:
            o.emplace_back("op", "remove_program");
            o.emplace_back("name", m.name);
            break;
        case Engine::Mutation::Kind::kRetarget:
            o.emplace_back("op", "retarget");
            break;
        case Engine::Mutation::Kind::kFault:
            o.emplace_back("op", "fault");
            o.emplace_back("kind", fault::to_string(m.fault.kind));
            o.emplace_back("a", m.fault.a);
            o.emplace_back("b", m.fault.b);
            o.emplace_back("at_us", m.fault.at_us);
            break;
    }
    return util::Json(std::move(o));
}

util::StatusOr<Engine::Mutation> mutation_from_json(const util::Json& j) {
    if (!j.is_object() || !j.get("op").is_string()) {
        return util::Status::invalid("journal: malformed epoch op");
    }
    const std::string& op = j.get("op").string_value();
    Engine::Mutation m;
    if (op == "add_program") {
        util::StatusOr<prog::Program> program = program_from_json(j.get("program"));
        if (!program.ok()) return program.status();
        m.kind = Engine::Mutation::Kind::kAddProgram;
        m.program = std::move(program).value();
    } else if (op == "remove_program") {
        if (!j.get("name").is_string()) {
            return util::Status::invalid("journal: remove_program without a name");
        }
        m.kind = Engine::Mutation::Kind::kRemoveProgram;
        m.name = j.get("name").string_value();
    } else if (op == "retarget") {
        m.kind = Engine::Mutation::Kind::kRetarget;
    } else if (op == "fault") {
        const std::optional<fault::FaultKind> kind =
            fault::parse_fault_kind(j.get("kind").string_value());
        if (!kind.has_value()) {
            return util::Status::invalid("journal: unknown fault kind");
        }
        m.kind = Engine::Mutation::Kind::kFault;
        m.fault.kind = *kind;
        m.fault.a = static_cast<net::SwitchId>(j.get("a").int_value());
        m.fault.b = static_cast<net::SwitchId>(j.get("b").int_value());
        m.fault.at_us = j.get("at_us").double_value();
    } else {
        return util::Status::invalid("journal: unknown epoch op '" + op + "'");
    }
    return m;
}

// Ordered switch pairs that exchange metadata under `placements`.
std::set<std::pair<net::SwitchId, net::SwitchId>> crossing_pairs(
    const tdg::Tdg& t, const std::vector<Placement>& placements) {
    std::set<std::pair<net::SwitchId, net::SwitchId>> pairs;
    for (const tdg::Edge& e : t.edges()) {
        const net::SwitchId u = placements[e.from].sw;
        const net::SwitchId v = placements[e.to].sw;
        if (u != v) pairs.insert({u, v});
    }
    return pairs;
}

}  // namespace

Engine::Engine(net::Network network, EngineOptions options)
    : network_(std::move(network)), options_(std::move(options)), oracle_(network_) {}

void Engine::bump(const char* counter, std::int64_t delta) const {
    if (options_.sink != nullptr) options_.sink->counter(counter).add(delta);
}

std::vector<std::string> Engine::program_names() const {
    std::vector<std::string> names;
    names.reserve(programs_.size());
    for (const ProgramEntry& p : programs_) names.push_back(p.name);
    return names;
}

HermesOptions Engine::hermes_options(const Deadline& deadline) {
    HermesOptions h;
    static_cast<CommonOptions&>(h) = static_cast<const CommonOptions&>(options_);
    h.deadline = deadline;
    h.epsilon1 = options_.epsilon1;
    h.epsilon2 = options_.epsilon2;
    h.oracle = &oracle_;
    h.milp = options_.milp;
    h.milp.threads = options_.resolved_threads();
    h.segment_level_milp = merged_.node_count() > 40;
    return h;
}

const tdg::Tdg& Engine::merged_for(const std::vector<ProgramEntry>& programs) {
    std::vector<std::string> names;
    names.reserve(programs.size());
    for (const ProgramEntry& p : programs) names.push_back(p.name);
    const std::string key = merge_key(names);
    ++merge_clock_;
    if (const auto it = merge_cache_.find(key); it != merge_cache_.end()) {
        it->second.last_used = merge_clock_;
        bump("engine.merge_hits");
        return it->second.tdg;
    }
    bump("engine.merge_misses");

    // Extend the longest cached proper prefix instead of re-merging from
    // scratch — the common churn pattern (add one tenant) reuses the whole
    // standing merge and only pays conflict ordering + annotation.
    tdg::Tdg combined;
    std::size_t have = 0;
    for (std::size_t take = programs.size(); take-- > 1;) {
        std::vector<std::string> prefix(names.begin(),
                                        names.begin() + static_cast<std::ptrdiff_t>(take));
        const auto it = merge_cache_.find(merge_key(prefix));
        if (it != merge_cache_.end()) {
            it->second.last_used = merge_clock_;
            combined = it->second.tdg;
            have = take;
            bump("engine.merge_extends");
            break;
        }
    }
    if (have == 0) {
        combined = programs.front().tdg;
        have = 1;
    }
    for (std::size_t i = have; i < programs.size(); ++i) {
        combined = tdg::graph_union(combined, programs[i].tdg);
    }
    tdg::add_write_conflict_edges(combined);
    tdg::analyze(combined);

    if (merge_cache_.size() >= options_.merge_cache_limit && !merge_cache_.empty()) {
        auto victim = merge_cache_.begin();
        for (auto it = merge_cache_.begin(); it != merge_cache_.end(); ++it) {
            if (it->second.last_used < victim->second.last_used) victim = it;
        }
        merge_cache_.erase(victim);
    }
    auto [it, inserted] =
        merge_cache_.emplace(key, MergeEntry{std::move(combined), merge_clock_});
    (void)inserted;
    return it->second.tdg;
}

util::StatusOr<DeltaOutcome> Engine::add_program(prog::Program program) {
    std::vector<Mutation> batch(1);
    batch[0].kind = Mutation::Kind::kAddProgram;
    batch[0].program = std::move(program);
    return apply(std::move(batch));
}

util::StatusOr<DeltaOutcome> Engine::remove_program(const std::string& name) {
    std::vector<Mutation> batch(1);
    batch[0].kind = Mutation::Kind::kRemoveProgram;
    batch[0].name = name;
    return apply(std::move(batch));
}

util::StatusOr<DeltaOutcome> Engine::retarget_traffic() {
    std::vector<Mutation> batch(1);
    batch[0].kind = Mutation::Kind::kRetarget;
    return apply(std::move(batch));
}

util::StatusOr<DeltaOutcome> Engine::apply_fault(const fault::FaultEvent& e) {
    std::vector<Mutation> batch(1);
    batch[0].kind = Mutation::Kind::kFault;
    batch[0].fault = e;
    return apply(std::move(batch));
}

util::StatusOr<DeltaOutcome> Engine::apply(std::vector<Mutation> batch) {
    obs::Span span(options_.sink, "engine.epoch");
    bump("engine.epochs");

    // ---- Validate the whole batch before touching any state. ----
    std::vector<std::string> working = program_names();
    bool want_retarget = false;
    bool have_fault = false;
    bool programs_changed = false;
    for (const Mutation& m : batch) {
        switch (m.kind) {
            case Mutation::Kind::kAddProgram: {
                if (!m.program.has_value() || m.program->name().empty()) {
                    return util::Status::invalid("add_program: program with a name required");
                }
                const std::string& name = m.program->name();
                if (name.find('\n') != std::string::npos) {
                    return util::Status::invalid("add_program: name must not contain newlines");
                }
                if (std::find(working.begin(), working.end(), name) != working.end()) {
                    return util::Status::invalid("add_program: duplicate program '" + name +
                                                 "'");
                }
                working.push_back(name);
                programs_changed = true;
                break;
            }
            case Mutation::Kind::kRemoveProgram: {
                const auto it = std::find(working.begin(), working.end(), m.name);
                if (it == working.end()) {
                    return util::Status::invalid("remove_program: unknown program '" +
                                                 m.name + "'");
                }
                working.erase(it);
                programs_changed = true;
                break;
            }
            case Mutation::Kind::kRetarget:
                want_retarget = true;
                break;
            case Mutation::Kind::kFault: {
                const std::size_t n = network_.switch_count();
                if (m.fault.a >= n || (m.fault.is_link() && m.fault.b >= n)) {
                    return util::Status::invalid("fault: switch id out of range");
                }
                have_fault = true;
                break;
            }
        }
    }

    // ---- Write-ahead: the epoch must be durable before any state mutates.
    // A crash after this append replays the batch on recovery; a crash
    // during it leaves a torn record the recovery scan truncates — either
    // way the journal and the state agree.
    if (journal_.has_value() && !replaying_) {
        util::JsonObject record;
        record.emplace_back("type", "epoch");
        record.emplace_back("epoch", epoch_ + 1);
        util::JsonArray ops;
        for (const Mutation& m : batch) ops.push_back(mutation_to_json(m));
        record.emplace_back("ops", std::move(ops));
        const util::Status appended = journal_->append(util::Json(std::move(record)));
        if (!appended.ok()) {
            // Refuse to mutate state the log could not replay.
            bump("journal.append_failures");
            return appended;
        }
        fault::crash_point("engine.apply.journaled");
    }

    // ---- Apply program-set changes (rolled back on failure below). ----
    const std::vector<ProgramEntry> programs_before = programs_;
    std::vector<ProgramEntry> next;
    std::vector<bool> survived(programs_.size(), true);
    for (const Mutation& m : batch) {
        if (m.kind != Mutation::Kind::kRemoveProgram) continue;
        for (std::size_t i = 0; i < programs_.size(); ++i) {
            if (survived[i] && programs_[i].name == m.name) {
                survived[i] = false;
                break;
            }
        }
    }
    for (std::size_t i = 0; i < programs_.size(); ++i) {
        if (survived[i]) next.push_back(programs_[i]);
    }
    for (Mutation& m : batch) {
        if (m.kind != Mutation::Kind::kAddProgram) continue;
        tdg::Tdg program_tdg = m.program->to_tdg();
        const std::size_t node_count = program_tdg.node_count();
        next.push_back(ProgramEntry{m.program->name(), std::move(*m.program),
                                    std::move(program_tdg), node_count});
    }

    // Remap the incumbent's placements onto the next merge's id space: a
    // surviving program's nodes shift down by the node counts of the removed
    // programs that preceded it; additions have no placements yet.
    std::vector<Placement> preserved;
    std::size_t preserved_count = 0;
    bool placements_survive = incumbent_ok_ && !next.empty();
    if (placements_survive) {
        std::size_t old_offset = 0;
        for (std::size_t i = 0; i < programs_before.size(); ++i) {
            const std::size_t count = programs_before[i].node_count;
            if (survived[i]) {
                for (std::size_t k = 0; k < count; ++k) {
                    preserved.push_back(incumbent_.placements[old_offset + k]);
                }
            }
            old_offset += count;
        }
        preserved_count = preserved.size();
    }

    programs_ = std::move(next);

    // ---- Apply fault events through the injector (oracle kept in sync). ----
    if (have_fault) {
        fault::Injector injector(network_, &oracle_, options_.sink);
        for (const Mutation& m : batch) {
            if (m.kind == Mutation::Kind::kFault) (void)injector.apply(m.fault);
        }
    }

    Deadline deadline = options_.deadline;
    if (!deadline.active() && options_.epoch_deadline_seconds > 0.0) {
        deadline = Deadline::after(options_.epoch_deadline_seconds);
    }

    util::StatusOr<DeltaOutcome> outcome =
        resolve_epoch(preserved, preserved_count, placements_survive, want_retarget,
                      programs_changed, deadline);
    if (!outcome.ok()) {
        // Program changes roll back; faults are physical and stay. The old
        // incumbent survives only if it still verifies on the (possibly
        // mutated) topology against the restored merge.
        programs_ = programs_before;
        merged_ = programs_.empty() ? tdg::Tdg{} : merged_for(programs_);
        if (incumbent_ok_ && have_fault) {
            VerifyOptions vo;
            vo.epsilon1 = options_.epsilon1;
            vo.epsilon2 = options_.epsilon2;
            incumbent_ok_ =
                !programs_.empty() && verify(merged_, network_, incumbent_, vo).ok;
        }
        bump("engine.failed_epochs");
    }
    fault::crash_point("engine.apply.resolved");
    if (journal_.has_value() && !replaying_ && journal_->should_rotate()) {
        const util::Status rotated = journal_->rotate(snapshot_json());
        if (!rotated.ok()) bump("journal.rotate_failures");
    }
    return outcome;
}

util::StatusOr<DeltaOutcome> Engine::resolve_epoch(
    const std::vector<Placement>& preserved, std::size_t preserved_count,
    bool placements_survive, bool want_retarget, bool programs_changed,
    const Deadline& deadline) {
    const auto start = Clock::now();
    ++epoch_;

    DeltaOutcome outcome;
    outcome.epoch = epoch_;

    if (programs_.empty()) {
        merged_ = tdg::Tdg{};
        incumbent_ = Deployment{};
        metrics_ = DeploymentMetrics{};
        incumbent_ok_ = true;
        outcome.status = "empty";
        outcome.delta = true;
        outcome.solve_seconds = seconds_since(start);
        bump("serve.delta_resolves");
        return outcome;
    }

    merged_ = merged_for(programs_);

    VerifyOptions verify_options;
    static_cast<CommonOptions&>(verify_options) =
        static_cast<const CommonOptions&>(options_);
    verify_options.epsilon1 = options_.epsilon1;
    verify_options.epsilon2 = options_.epsilon2;

    const Deployment previous = incumbent_;
    const bool previous_ok = incumbent_ok_;

    auto finish = [&](Deployment d, const char* status, bool delta) -> DeltaOutcome& {
        if (placements_survive) {
            std::int64_t moved = 0;
            for (std::size_t i = 0; i < preserved_count && i < d.placements.size(); ++i) {
                if (d.placements[i].sw != preserved[i].sw) ++moved;
            }
            outcome.moved_mats = moved;
        }
        incumbent_ = std::move(d);
        metrics_ = evaluate(merged_, network_, incumbent_);
        incumbent_ok_ = true;
        outcome.status = status;
        outcome.delta = delta;
        outcome.solve_seconds = seconds_since(start);
        outcome.metrics = metrics_;
        bump(delta ? "serve.delta_resolves" : "serve.cold_resolves");
        return outcome;
    };

    // ---- Delta rungs: patch the surviving placements in place. ----
    // Preconditions: an incumbent exists, every preserved placement sits on
    // a live switch (stranded MATs need the re-place rung), and the merge
    // did not order a new MAT before an old one.
    if (placements_survive) {
        obs::Span dspan(options_.sink, "engine.delta");
        bool stranded = false;
        for (std::size_t i = 0; i < preserved_count; ++i) {
            const net::SwitchId sw = preserved[i].sw;
            if (sw >= network_.switch_count() || !network_.switch_up(sw)) {
                stranded = true;
                break;
            }
        }
        if (!stranded) {
            Deployment candidate;
            bool candidate_ok = true;
            std::int64_t rerouted = 0;
            const bool additions = preserved_count < merged_.node_count();
            if (additions) {
                // Greedy re-place of the affected TDG slice only: the new
                // nodes pack into residual stage capacity around the fixed
                // survivors.
                Deployment existing;
                existing.placements = preserved;
                std::optional<IncrementalResult> inc = incremental_deploy(
                    merged_, preserved_count, existing, network_, &oracle_);
                if (inc.has_value()) {
                    candidate = std::move(inc->deployment);
                } else {
                    candidate_ok = false;
                }
            } else {
                candidate.placements = preserved;
            }

            if (candidate_ok) {
                // Routes: keep live recorded routes (unless retargeting),
                // re-wire the rest from the shared oracle, and drop stale
                // pairs that no longer exchange metadata.
                const auto pairs = crossing_pairs(merged_, candidate.placements);
                std::map<std::pair<net::SwitchId, net::SwitchId>, net::Path> routes;
                for (const auto& pair : pairs) {
                    const auto it = candidate.routes.find(pair);
                    const auto old_it = previous.routes.find(pair);
                    const net::Path* keep = nullptr;
                    if (!want_retarget) {
                        if (it != candidate.routes.end() && route_alive(network_, it->second)) {
                            keep = &it->second;
                        } else if (old_it != previous.routes.end() &&
                                   route_alive(network_, old_it->second)) {
                            keep = &old_it->second;
                        }
                    }
                    if (keep != nullptr) {
                        routes[pair] = *keep;
                        continue;
                    }
                    std::optional<net::Path> path = oracle_.path(pair.first, pair.second);
                    if (!path.has_value()) {
                        candidate_ok = false;
                        break;
                    }
                    const bool changed =
                        old_it == previous.routes.end() ||
                        old_it->second.switches != path->switches;
                    if (changed && (want_retarget || old_it != previous.routes.end())) {
                        ++rerouted;
                    }
                    routes[pair] = std::move(*path);
                }
                if (candidate_ok) {
                    candidate.routes = std::move(routes);
                    if (verify(merged_, network_, candidate, verify_options).ok) {
                        outcome.rerouted_pairs = rerouted;
                        const char* status = additions     ? "incremental"
                                             : want_retarget ? "retarget"
                                             : rerouted > 0  ? "reroute"
                                                             : "intact";
                        return finish(std::move(candidate), status, /*delta=*/true);
                    }
                }
            }
        }
        dspan.end();
    }

    // ---- Cold rungs: full re-solve of the whole merged TDG. ----
    HermesOptions h = hermes_options(deadline);
    if (!options_.always_optimal) {
        obs::Span gspan(options_.sink, "engine.greedy");
        util::StatusOr<DeployOutcome> greedy = try_deploy_greedy(merged_, network_, h);
        if (greedy.ok() &&
            verify(merged_, network_, greedy.value().deployment, verify_options).ok) {
            const bool replaced = placements_survive;
            return finish(std::move(greedy).value().deployment,
                          replaced ? "replace" : "greedy", /*delta=*/false);
        }
    }

    if (options_.allow_milp || options_.always_optimal) {
        obs::Span mspan(options_.sink, "engine.milp");
        bump("serve.escalations");
        outcome.escalated = true;
        util::StatusOr<DeployOutcome> exact = try_deploy_optimal(merged_, network_, h);
        if (exact.ok() &&
            verify(merged_, network_, exact.value().deployment, verify_options).ok) {
            return finish(std::move(exact).value().deployment, "milp", /*delta=*/false);
        }
    }

    // ---- Degrade rung: the epoch deadline expired before any rung could
    // finish. When the program set is unchanged this epoch (so the previous
    // incumbent lives in the current merge's id space) and that incumbent
    // still verifies on the (possibly faulted) topology, serving stale-but-
    // verified placements beats reporting infeasible.
    if (deadline.active() && deadline.expired() && !programs_changed && previous_ok &&
        previous.placements.size() == merged_.node_count() &&
        verify(merged_, network_, previous, verify_options).ok) {
        bump("serve.deadline_degrades");
        outcome.degraded = true;
        Deployment keep = previous;
        return finish(std::move(keep), "degraded", /*delta=*/true);
    }

    // No rung produced a verifiable deployment: keep the previous incumbent
    // visible (apply() decides whether it still verifies) and report why.
    incumbent_ = previous;
    incumbent_ok_ = previous_ok;
    return util::Status::infeasible(
        "engine: no rung produced a verifiable deployment for this epoch");
}

util::StatusOr<DeployOutcome> Engine::solve() {
    obs::Span span(options_.sink, "engine.solve");
    if (journal_.has_value() && !replaying_) {
        util::JsonObject record;
        record.emplace_back("type", "epoch");
        record.emplace_back("epoch", epoch_ + 1);
        util::JsonObject op;
        op.emplace_back("op", "solve");
        record.emplace_back("ops", util::JsonArray{util::Json(std::move(op))});
        const util::Status appended = journal_->append(util::Json(std::move(record)));
        if (!appended.ok()) {
            bump("journal.append_failures");
            return appended;
        }
        fault::crash_point("engine.apply.journaled");
    }
    ++epoch_;
    if (programs_.empty()) {
        merged_ = tdg::Tdg{};
        incumbent_ = Deployment{};
        metrics_ = DeploymentMetrics{};
        incumbent_ok_ = true;
        DeployOutcome outcome;
        outcome.solver_status = "empty";
        return outcome;
    }
    merged_ = merged_for(programs_);

    Deadline deadline = options_.deadline;
    if (!deadline.active() && options_.epoch_deadline_seconds > 0.0) {
        deadline = Deadline::after(options_.epoch_deadline_seconds);
    }
    const HermesOptions h = hermes_options(deadline);
    util::StatusOr<DeployOutcome> outcome =
        options_.always_optimal ? try_deploy_optimal(merged_, network_, h)
                                : try_deploy_greedy(merged_, network_, h);
    if (!outcome.ok()) return outcome;

    VerifyOptions verify_options;
    verify_options.sink = options_.sink;
    verify_options.epsilon1 = options_.epsilon1;
    verify_options.epsilon2 = options_.epsilon2;
    if (!verify(merged_, network_, outcome.value().deployment, verify_options).ok) {
        return util::Status::infeasible("engine: solve produced an unverifiable deployment");
    }
    incumbent_ = outcome.value().deployment;
    metrics_ = outcome.value().metrics;
    incumbent_ok_ = true;
    bump("serve.cold_resolves");
    if (journal_.has_value() && !replaying_ && journal_->should_rotate()) {
        const util::Status rotated = journal_->rotate(snapshot_json());
        if (!rotated.ok()) bump("journal.rotate_failures");
    }
    return outcome;
}

util::Status Engine::enable_journal(const std::string& path, JournalOptions options) {
    if (journal_.has_value()) {
        return util::Status::invalid("engine: journal already enabled");
    }
    if (options.sink == nullptr) options.sink = options_.sink;
    util::StatusOr<Journal> journal = Journal::open(path, options);
    if (!journal.ok()) return journal.status();
    journal_ = std::move(journal).value();
    return {};
}

util::Json Engine::snapshot_json() const {
    util::JsonObject o;
    o.emplace_back("type", "snapshot");
    o.emplace_back("epoch", epoch_);
    util::JsonArray programs;
    for (const ProgramEntry& p : programs_) {
        programs.push_back(program_to_json(p.program));
    }
    o.emplace_back("programs", std::move(programs));
    // The base topology is the owner's to rebuild; only the fault deltas are
    // state the journal must carry.
    util::JsonArray down_switches;
    for (net::SwitchId u = 0; u < network_.switch_count(); ++u) {
        if (!network_.switch_up(u)) down_switches.push_back(util::Json(u));
    }
    o.emplace_back("down_switches", std::move(down_switches));
    util::JsonArray down_links;
    for (const net::Link& l : network_.links()) {
        if (!l.up) {
            down_links.push_back(
                util::Json(util::JsonArray{util::Json(l.a), util::Json(l.b)}));
        }
    }
    o.emplace_back("down_links", std::move(down_links));
    o.emplace_back("incumbent_ok", incumbent_ok_);
    o.emplace_back("incumbent", deployment_to_json(incumbent_));
    util::JsonObject m;
    m.emplace_back("max_pair_metadata_bytes", metrics_.max_pair_metadata_bytes);
    m.emplace_back("max_inflight_metadata_bytes", metrics_.max_inflight_metadata_bytes);
    m.emplace_back("route_latency_us", metrics_.route_latency_us);
    m.emplace_back("occupied_switches", metrics_.occupied_switches);
    m.emplace_back("total_resource_units", metrics_.total_resource_units);
    o.emplace_back("metrics", std::move(m));
    return util::Json(std::move(o));
}

util::Status Engine::restore_snapshot(const util::Json& snapshot) {
    if (epoch_ != 0 || !programs_.empty()) {
        return util::Status::invalid("engine: snapshot restore requires a fresh engine");
    }
    if (!snapshot.is_object() || snapshot.get("type").string_value() != "snapshot" ||
        !snapshot.get("epoch").is_int() || !snapshot.get("programs").is_array() ||
        !snapshot.get("incumbent").is_object()) {
        return util::Status::invalid("engine: malformed snapshot record");
    }
    std::vector<ProgramEntry> next;
    for (const util::Json& pj : snapshot.get("programs").array()) {
        util::StatusOr<prog::Program> program = program_from_json(pj);
        if (!program.ok()) return program.status();
        tdg::Tdg program_tdg = program.value().to_tdg();
        const std::size_t node_count = program_tdg.node_count();
        next.push_back(ProgramEntry{program.value().name(), std::move(program).value(),
                                    std::move(program_tdg), node_count});
    }
    util::StatusOr<Deployment> incumbent =
        deployment_from_json(snapshot.get("incumbent"));
    if (!incumbent.ok()) return incumbent.status();

    // Reapply the recorded fault deltas through the injector so the path
    // oracle stays in sync with the network. Links first: a link's own down
    // flag is independent of its endpoints' state.
    fault::Injector injector(network_, &oracle_, options_.sink);
    for (const util::Json& lj : snapshot.get("down_links").array()) {
        if (!lj.is_array() || lj.array().size() != 2) {
            return util::Status::invalid("engine: malformed snapshot link");
        }
        fault::FaultEvent e;
        e.kind = fault::FaultKind::kLinkDown;
        e.a = static_cast<net::SwitchId>(lj.array()[0].int_value());
        e.b = static_cast<net::SwitchId>(lj.array()[1].int_value());
        (void)injector.apply(e);
    }
    for (const util::Json& sj : snapshot.get("down_switches").array()) {
        fault::FaultEvent e;
        e.kind = fault::FaultKind::kSwitchDown;
        e.a = static_cast<net::SwitchId>(sj.int_value());
        (void)injector.apply(e);
    }

    programs_ = std::move(next);
    merged_ = programs_.empty() ? tdg::Tdg{} : merged_for(programs_);
    incumbent_ = std::move(incumbent).value();
    incumbent_ok_ = snapshot.get("incumbent_ok").bool_value();
    metrics_ = DeploymentMetrics{};
    epoch_ = snapshot.get("epoch").int_value();

    if (incumbent_ok_ && !programs_.empty()) {
        VerifyOptions verify_options;
        verify_options.epsilon1 = options_.epsilon1;
        verify_options.epsilon2 = options_.epsilon2;
        if (incumbent_.placements.size() == merged_.node_count() &&
            verify(merged_, network_, incumbent_, verify_options).ok) {
            // Recomputing beats trusting the serialized metrics: evaluate()
            // is deterministic, so this matches the uninterrupted run bit
            // for bit and can never disagree with the restored incumbent.
            metrics_ = evaluate(merged_, network_, incumbent_);
        } else {
            incumbent_ok_ = false;
            bump("engine.recovery_reverify_failures");
        }
    }
    return {};
}

util::StatusOr<Engine::RecoveryReport> Engine::recover(const std::string& path,
                                                       JournalOptions options) {
    if (epoch_ != 0 || !programs_.empty() || journal_.has_value()) {
        return util::Status::invalid("engine: recover requires a fresh engine");
    }
    RecoveryReport report;
    util::StatusOr<Journal::ScanResult> scanned = Journal::scan(path);
    if (!scanned.ok()) return scanned.status();
    const Journal::ScanResult& s = scanned.value();
    report.journal_found = s.found;
    report.truncated_bytes = s.torn_bytes;

    // Latest snapshot wins; everything after it replays through the normal
    // apply() ladder with journaling suppressed.
    std::size_t start = 0;
    for (std::size_t i = 0; i < s.records.size(); ++i) {
        if (s.records[i].get("type").string_value() == "snapshot") start = i + 1;
    }
    if (start > 0) {
        const util::Status restored = restore_snapshot(s.records[start - 1]);
        if (!restored.ok()) return restored;
        report.snapshot_epoch = epoch_;
    }

    replaying_ = true;
    for (std::size_t i = start; i < s.records.size(); ++i) {
        const util::Json& record = s.records[i];
        if (record.get("type").string_value() != "epoch") continue;
        if (record.get("epoch").is_int() && record.get("epoch").int_value() <= epoch_) {
            continue;  // stale duplicate; already covered by the snapshot
        }
        const util::JsonArray& ops = record.get("ops").array();
        if (ops.size() == 1 && ops[0].get("op").string_value() == "solve") {
            const util::StatusOr<DeployOutcome> solved = solve();
            if (solved.ok()) {
                ++report.replayed_epochs;
            } else {
                ++report.failed_replays;
            }
            continue;
        }
        std::vector<Mutation> batch;
        bool decoded = true;
        for (const util::Json& oj : ops) {
            util::StatusOr<Mutation> m = mutation_from_json(oj);
            if (!m.ok()) {
                decoded = false;
                break;
            }
            batch.push_back(std::move(m).value());
        }
        if (!decoded) {
            ++report.failed_replays;
            continue;
        }
        const util::StatusOr<DeltaOutcome> outcome = apply(std::move(batch));
        if (outcome.ok()) {
            ++report.replayed_epochs;
        } else {
            // Epochs that failed in the original run fail here the same
            // deterministic way — their side effects (fault events, epoch
            // advance) are re-applied exactly.
            ++report.failed_replays;
        }
    }
    replaying_ = false;

    if (options.sink == nullptr) options.sink = options_.sink;
    util::StatusOr<Journal> journal = Journal::open(path, options);
    if (!journal.ok()) return journal.status();
    journal_ = std::move(journal).value();
    if (!s.records.empty()) {
        // Compact immediately: the next restart restores one snapshot and
        // replays nothing.
        const util::Status rotated = journal_->rotate(snapshot_json());
        if (!rotated.ok()) bump("journal.rotate_failures");
    }
    report.epoch = epoch_;
    if (s.found) bump("serve.recoveries");
    return report;
}

std::uint32_t Engine::fingerprint() const {
    util::JsonObject o;
    o.emplace_back("epoch", epoch_);
    util::JsonArray names;
    for (const ProgramEntry& p : programs_) names.push_back(util::Json(p.name));
    o.emplace_back("programs", std::move(names));
    o.emplace_back("incumbent_ok", incumbent_ok_);
    o.emplace_back("incumbent", deployment_to_json(incumbent_));
    util::JsonObject m;
    m.emplace_back("max_pair_metadata_bytes", metrics_.max_pair_metadata_bytes);
    m.emplace_back("max_inflight_metadata_bytes", metrics_.max_inflight_metadata_bytes);
    m.emplace_back("route_latency_us", metrics_.route_latency_us);
    m.emplace_back("occupied_switches", metrics_.occupied_switches);
    m.emplace_back("total_resource_units", metrics_.total_resource_units);
    o.emplace_back("metrics", std::move(m));
    return util::crc32c(util::Json(std::move(o)).dump());
}

}  // namespace hermes::core
