#include "core/engine.h"

#include <algorithm>
#include <chrono>
#include <set>
#include <utility>

#include "core/incremental.h"
#include "core/repair.h"
#include "core/verifier.h"
#include "fault/injector.h"
#include "obs/obs.h"
#include "tdg/analyzer.h"
#include "tdg/merge.h"

namespace hermes::core {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
    return std::chrono::duration<double>(Clock::now() - start).count();
}

// Cache key for one ordered program set. Program names cannot contain
// newlines (the wire protocol is line-delimited), so '\n' is a safe joiner.
std::string merge_key(const std::vector<std::string>& names) {
    std::string key;
    for (const std::string& n : names) {
        key += n;
        key += '\n';
    }
    return key;
}

// Ordered switch pairs that exchange metadata under `placements`.
std::set<std::pair<net::SwitchId, net::SwitchId>> crossing_pairs(
    const tdg::Tdg& t, const std::vector<Placement>& placements) {
    std::set<std::pair<net::SwitchId, net::SwitchId>> pairs;
    for (const tdg::Edge& e : t.edges()) {
        const net::SwitchId u = placements[e.from].sw;
        const net::SwitchId v = placements[e.to].sw;
        if (u != v) pairs.insert({u, v});
    }
    return pairs;
}

}  // namespace

Engine::Engine(net::Network network, EngineOptions options)
    : network_(std::move(network)), options_(std::move(options)), oracle_(network_) {}

void Engine::bump(const char* counter, std::int64_t delta) const {
    if (options_.sink != nullptr) options_.sink->counter(counter).add(delta);
}

std::vector<std::string> Engine::program_names() const {
    std::vector<std::string> names;
    names.reserve(programs_.size());
    for (const ProgramEntry& p : programs_) names.push_back(p.name);
    return names;
}

HermesOptions Engine::hermes_options(const Deadline& deadline) {
    HermesOptions h;
    static_cast<CommonOptions&>(h) = static_cast<const CommonOptions&>(options_);
    h.deadline = deadline;
    h.epsilon1 = options_.epsilon1;
    h.epsilon2 = options_.epsilon2;
    h.oracle = &oracle_;
    h.milp = options_.milp;
    h.milp.threads = options_.resolved_threads();
    h.segment_level_milp = merged_.node_count() > 40;
    return h;
}

const tdg::Tdg& Engine::merged_for(const std::vector<ProgramEntry>& programs) {
    std::vector<std::string> names;
    names.reserve(programs.size());
    for (const ProgramEntry& p : programs) names.push_back(p.name);
    const std::string key = merge_key(names);
    ++merge_clock_;
    if (const auto it = merge_cache_.find(key); it != merge_cache_.end()) {
        it->second.last_used = merge_clock_;
        bump("engine.merge_hits");
        return it->second.tdg;
    }
    bump("engine.merge_misses");

    // Extend the longest cached proper prefix instead of re-merging from
    // scratch — the common churn pattern (add one tenant) reuses the whole
    // standing merge and only pays conflict ordering + annotation.
    tdg::Tdg combined;
    std::size_t have = 0;
    for (std::size_t take = programs.size(); take-- > 1;) {
        std::vector<std::string> prefix(names.begin(),
                                        names.begin() + static_cast<std::ptrdiff_t>(take));
        const auto it = merge_cache_.find(merge_key(prefix));
        if (it != merge_cache_.end()) {
            it->second.last_used = merge_clock_;
            combined = it->second.tdg;
            have = take;
            bump("engine.merge_extends");
            break;
        }
    }
    if (have == 0) {
        combined = programs.front().tdg;
        have = 1;
    }
    for (std::size_t i = have; i < programs.size(); ++i) {
        combined = tdg::graph_union(combined, programs[i].tdg);
    }
    tdg::add_write_conflict_edges(combined);
    tdg::analyze(combined);

    if (merge_cache_.size() >= options_.merge_cache_limit && !merge_cache_.empty()) {
        auto victim = merge_cache_.begin();
        for (auto it = merge_cache_.begin(); it != merge_cache_.end(); ++it) {
            if (it->second.last_used < victim->second.last_used) victim = it;
        }
        merge_cache_.erase(victim);
    }
    auto [it, inserted] =
        merge_cache_.emplace(key, MergeEntry{std::move(combined), merge_clock_});
    (void)inserted;
    return it->second.tdg;
}

util::StatusOr<DeltaOutcome> Engine::add_program(prog::Program program) {
    std::vector<Mutation> batch(1);
    batch[0].kind = Mutation::Kind::kAddProgram;
    batch[0].program = std::move(program);
    return apply(std::move(batch));
}

util::StatusOr<DeltaOutcome> Engine::remove_program(const std::string& name) {
    std::vector<Mutation> batch(1);
    batch[0].kind = Mutation::Kind::kRemoveProgram;
    batch[0].name = name;
    return apply(std::move(batch));
}

util::StatusOr<DeltaOutcome> Engine::retarget_traffic() {
    std::vector<Mutation> batch(1);
    batch[0].kind = Mutation::Kind::kRetarget;
    return apply(std::move(batch));
}

util::StatusOr<DeltaOutcome> Engine::apply_fault(const fault::FaultEvent& e) {
    std::vector<Mutation> batch(1);
    batch[0].kind = Mutation::Kind::kFault;
    batch[0].fault = e;
    return apply(std::move(batch));
}

util::StatusOr<DeltaOutcome> Engine::apply(std::vector<Mutation> batch) {
    obs::Span span(options_.sink, "engine.epoch");
    bump("engine.epochs");

    // ---- Validate the whole batch before touching any state. ----
    std::vector<std::string> working = program_names();
    bool want_retarget = false;
    bool have_fault = false;
    for (const Mutation& m : batch) {
        switch (m.kind) {
            case Mutation::Kind::kAddProgram: {
                if (!m.program.has_value() || m.program->name().empty()) {
                    return util::Status::invalid("add_program: program with a name required");
                }
                const std::string& name = m.program->name();
                if (name.find('\n') != std::string::npos) {
                    return util::Status::invalid("add_program: name must not contain newlines");
                }
                if (std::find(working.begin(), working.end(), name) != working.end()) {
                    return util::Status::invalid("add_program: duplicate program '" + name +
                                                 "'");
                }
                working.push_back(name);
                break;
            }
            case Mutation::Kind::kRemoveProgram: {
                const auto it = std::find(working.begin(), working.end(), m.name);
                if (it == working.end()) {
                    return util::Status::invalid("remove_program: unknown program '" +
                                                 m.name + "'");
                }
                working.erase(it);
                break;
            }
            case Mutation::Kind::kRetarget:
                want_retarget = true;
                break;
            case Mutation::Kind::kFault: {
                const std::size_t n = network_.switch_count();
                if (m.fault.a >= n || (m.fault.is_link() && m.fault.b >= n)) {
                    return util::Status::invalid("fault: switch id out of range");
                }
                have_fault = true;
                break;
            }
        }
    }

    // ---- Apply program-set changes (rolled back on failure below). ----
    const std::vector<ProgramEntry> programs_before = programs_;
    std::vector<ProgramEntry> next;
    std::vector<bool> survived(programs_.size(), true);
    for (const Mutation& m : batch) {
        if (m.kind != Mutation::Kind::kRemoveProgram) continue;
        for (std::size_t i = 0; i < programs_.size(); ++i) {
            if (survived[i] && programs_[i].name == m.name) {
                survived[i] = false;
                break;
            }
        }
    }
    for (std::size_t i = 0; i < programs_.size(); ++i) {
        if (survived[i]) next.push_back(programs_[i]);
    }
    for (Mutation& m : batch) {
        if (m.kind != Mutation::Kind::kAddProgram) continue;
        tdg::Tdg program_tdg = m.program->to_tdg();
        const std::size_t node_count = program_tdg.node_count();
        next.push_back(ProgramEntry{m.program->name(), std::move(*m.program),
                                    std::move(program_tdg), node_count});
    }

    // Remap the incumbent's placements onto the next merge's id space: a
    // surviving program's nodes shift down by the node counts of the removed
    // programs that preceded it; additions have no placements yet.
    std::vector<Placement> preserved;
    std::size_t preserved_count = 0;
    bool placements_survive = incumbent_ok_ && !next.empty();
    if (placements_survive) {
        std::size_t old_offset = 0;
        for (std::size_t i = 0; i < programs_before.size(); ++i) {
            const std::size_t count = programs_before[i].node_count;
            if (survived[i]) {
                for (std::size_t k = 0; k < count; ++k) {
                    preserved.push_back(incumbent_.placements[old_offset + k]);
                }
            }
            old_offset += count;
        }
        preserved_count = preserved.size();
    }

    programs_ = std::move(next);

    // ---- Apply fault events through the injector (oracle kept in sync). ----
    if (have_fault) {
        fault::Injector injector(network_, &oracle_, options_.sink);
        for (const Mutation& m : batch) {
            if (m.kind == Mutation::Kind::kFault) (void)injector.apply(m.fault);
        }
    }

    Deadline deadline = options_.deadline;
    if (!deadline.active() && options_.epoch_deadline_seconds > 0.0) {
        deadline = Deadline::after(options_.epoch_deadline_seconds);
    }

    util::StatusOr<DeltaOutcome> outcome = resolve_epoch(
        preserved, preserved_count, placements_survive, want_retarget, deadline);
    if (!outcome.ok()) {
        // Program changes roll back; faults are physical and stay. The old
        // incumbent survives only if it still verifies on the (possibly
        // mutated) topology against the restored merge.
        programs_ = programs_before;
        merged_ = programs_.empty() ? tdg::Tdg{} : merged_for(programs_);
        if (incumbent_ok_ && have_fault) {
            VerifyOptions vo;
            vo.epsilon1 = options_.epsilon1;
            vo.epsilon2 = options_.epsilon2;
            incumbent_ok_ =
                !programs_.empty() && verify(merged_, network_, incumbent_, vo).ok;
        }
        bump("engine.failed_epochs");
    }
    return outcome;
}

util::StatusOr<DeltaOutcome> Engine::resolve_epoch(
    const std::vector<Placement>& preserved, std::size_t preserved_count,
    bool placements_survive, bool want_retarget, const Deadline& deadline) {
    const auto start = Clock::now();
    ++epoch_;

    DeltaOutcome outcome;
    outcome.epoch = epoch_;

    if (programs_.empty()) {
        merged_ = tdg::Tdg{};
        incumbent_ = Deployment{};
        metrics_ = DeploymentMetrics{};
        incumbent_ok_ = true;
        outcome.status = "empty";
        outcome.delta = true;
        outcome.solve_seconds = seconds_since(start);
        bump("serve.delta_resolves");
        return outcome;
    }

    merged_ = merged_for(programs_);

    VerifyOptions verify_options;
    static_cast<CommonOptions&>(verify_options) =
        static_cast<const CommonOptions&>(options_);
    verify_options.epsilon1 = options_.epsilon1;
    verify_options.epsilon2 = options_.epsilon2;

    const Deployment previous = incumbent_;
    const bool previous_ok = incumbent_ok_;

    auto finish = [&](Deployment d, const char* status, bool delta) -> DeltaOutcome& {
        if (placements_survive) {
            std::int64_t moved = 0;
            for (std::size_t i = 0; i < preserved_count && i < d.placements.size(); ++i) {
                if (d.placements[i].sw != preserved[i].sw) ++moved;
            }
            outcome.moved_mats = moved;
        }
        incumbent_ = std::move(d);
        metrics_ = evaluate(merged_, network_, incumbent_);
        incumbent_ok_ = true;
        outcome.status = status;
        outcome.delta = delta;
        outcome.solve_seconds = seconds_since(start);
        outcome.metrics = metrics_;
        bump(delta ? "serve.delta_resolves" : "serve.cold_resolves");
        return outcome;
    };

    // ---- Delta rungs: patch the surviving placements in place. ----
    // Preconditions: an incumbent exists, every preserved placement sits on
    // a live switch (stranded MATs need the re-place rung), and the merge
    // did not order a new MAT before an old one.
    if (placements_survive) {
        obs::Span dspan(options_.sink, "engine.delta");
        bool stranded = false;
        for (std::size_t i = 0; i < preserved_count; ++i) {
            const net::SwitchId sw = preserved[i].sw;
            if (sw >= network_.switch_count() || !network_.switch_up(sw)) {
                stranded = true;
                break;
            }
        }
        if (!stranded) {
            Deployment candidate;
            bool candidate_ok = true;
            std::int64_t rerouted = 0;
            const bool additions = preserved_count < merged_.node_count();
            if (additions) {
                // Greedy re-place of the affected TDG slice only: the new
                // nodes pack into residual stage capacity around the fixed
                // survivors.
                Deployment existing;
                existing.placements = preserved;
                std::optional<IncrementalResult> inc = incremental_deploy(
                    merged_, preserved_count, existing, network_, &oracle_);
                if (inc.has_value()) {
                    candidate = std::move(inc->deployment);
                } else {
                    candidate_ok = false;
                }
            } else {
                candidate.placements = preserved;
            }

            if (candidate_ok) {
                // Routes: keep live recorded routes (unless retargeting),
                // re-wire the rest from the shared oracle, and drop stale
                // pairs that no longer exchange metadata.
                const auto pairs = crossing_pairs(merged_, candidate.placements);
                std::map<std::pair<net::SwitchId, net::SwitchId>, net::Path> routes;
                for (const auto& pair : pairs) {
                    const auto it = candidate.routes.find(pair);
                    const auto old_it = previous.routes.find(pair);
                    const net::Path* keep = nullptr;
                    if (!want_retarget) {
                        if (it != candidate.routes.end() && route_alive(network_, it->second)) {
                            keep = &it->second;
                        } else if (old_it != previous.routes.end() &&
                                   route_alive(network_, old_it->second)) {
                            keep = &old_it->second;
                        }
                    }
                    if (keep != nullptr) {
                        routes[pair] = *keep;
                        continue;
                    }
                    std::optional<net::Path> path = oracle_.path(pair.first, pair.second);
                    if (!path.has_value()) {
                        candidate_ok = false;
                        break;
                    }
                    const bool changed =
                        old_it == previous.routes.end() ||
                        old_it->second.switches != path->switches;
                    if (changed && (want_retarget || old_it != previous.routes.end())) {
                        ++rerouted;
                    }
                    routes[pair] = std::move(*path);
                }
                if (candidate_ok) {
                    candidate.routes = std::move(routes);
                    if (verify(merged_, network_, candidate, verify_options).ok) {
                        outcome.rerouted_pairs = rerouted;
                        const char* status = additions     ? "incremental"
                                             : want_retarget ? "retarget"
                                             : rerouted > 0  ? "reroute"
                                                             : "intact";
                        return finish(std::move(candidate), status, /*delta=*/true);
                    }
                }
            }
        }
        dspan.end();
    }

    // ---- Cold rungs: full re-solve of the whole merged TDG. ----
    HermesOptions h = hermes_options(deadline);
    if (!options_.always_optimal) {
        obs::Span gspan(options_.sink, "engine.greedy");
        util::StatusOr<DeployOutcome> greedy = try_deploy_greedy(merged_, network_, h);
        if (greedy.ok() &&
            verify(merged_, network_, greedy.value().deployment, verify_options).ok) {
            const bool replaced = placements_survive;
            return finish(std::move(greedy).value().deployment,
                          replaced ? "replace" : "greedy", /*delta=*/false);
        }
    }

    if (options_.allow_milp || options_.always_optimal) {
        obs::Span mspan(options_.sink, "engine.milp");
        bump("serve.escalations");
        outcome.escalated = true;
        util::StatusOr<DeployOutcome> exact = try_deploy_optimal(merged_, network_, h);
        if (exact.ok() &&
            verify(merged_, network_, exact.value().deployment, verify_options).ok) {
            return finish(std::move(exact).value().deployment, "milp", /*delta=*/false);
        }
    }

    // No rung produced a verifiable deployment: keep the previous incumbent
    // visible (apply() decides whether it still verifies) and report why.
    incumbent_ = previous;
    incumbent_ok_ = previous_ok;
    return util::Status::infeasible(
        "engine: no rung produced a verifiable deployment for this epoch");
}

util::StatusOr<DeployOutcome> Engine::solve() {
    obs::Span span(options_.sink, "engine.solve");
    ++epoch_;
    if (programs_.empty()) {
        merged_ = tdg::Tdg{};
        incumbent_ = Deployment{};
        metrics_ = DeploymentMetrics{};
        incumbent_ok_ = true;
        DeployOutcome outcome;
        outcome.solver_status = "empty";
        return outcome;
    }
    merged_ = merged_for(programs_);

    Deadline deadline = options_.deadline;
    if (!deadline.active() && options_.epoch_deadline_seconds > 0.0) {
        deadline = Deadline::after(options_.epoch_deadline_seconds);
    }
    const HermesOptions h = hermes_options(deadline);
    util::StatusOr<DeployOutcome> outcome =
        options_.always_optimal ? try_deploy_optimal(merged_, network_, h)
                                : try_deploy_greedy(merged_, network_, h);
    if (!outcome.ok()) return outcome;

    VerifyOptions verify_options;
    verify_options.sink = options_.sink;
    verify_options.epsilon1 = options_.epsilon1;
    verify_options.epsilon2 = options_.epsilon2;
    if (!verify(merged_, network_, outcome.value().deployment, verify_options).ok) {
        return util::Status::infeasible("engine: solve produced an unverifiable deployment");
    }
    incumbent_ = outcome.value().deployment;
    metrics_ = outcome.value().metrics;
    incumbent_ok_ = true;
    bump("serve.cold_resolves");
    return outcome;
}

}  // namespace hermes::core
