// Self-healing redeployment after switch/link failures (DESIGN.md §5g).
//
// Given a deployment that failures may have broken, repair() classifies the
// damage and climbs an escalation ladder, cheapest rung first:
//
//   1. reroute — no MAT sits on a failed switch, only inter-switch routes
//      died: re-wire each dead (u,v) pair with a live shortest path and keep
//      every placement. The cheapest repair and the common case for single
//      link failures.
//   2. replace — stranded MATs (or reroute infeasible): rerun Algorithm 2 on
//      the surviving topology. Network::programmable_switches() and the live
//      adjacency already exclude failed elements, so the greedy search
//      naturally places onto survivors only.
//   3. milp — opt-in (RepairOptions::allow_milp): exact re-solve warm-started
//      from the greedy incumbent, under whatever budget remains.
//
// Deadline semantics: an active RepairOptions::deadline (or a positive
// time_limit_seconds, converted to one) is threaded into every rung. When it
// trips, the ladder stops where it is and returns the best verified
// incumbent found so far with status "fallback(deadline)" — cooperative
// degradation, never an exception. With no incumbent at all the result is
// ok=false / "infeasible" and the original deployment is returned untouched.
//
// Observability (RepairOptions::sink): repair.events, repair.reroute_only,
// repair.replaced_mats, repair.deadline_aborts counters plus a span per rung
// (repair.classify / repair.reroute / repair.replace / repair.milp) under an
// enclosing "repair" span. All four counters are registered on every call so
// exported metrics JSON always carries them (CI asserts on their values).
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "core/deployment.h"
#include "core/options.h"
#include "milp/solver.h"
#include "net/path_oracle.h"

namespace hermes::core {

// Inherits core::CommonOptions: `deadline` (or time_limit_seconds) bounds
// the whole repair, `threads` drives the greedy anchor search, `sink`
// records the repair.* metrics.
struct RepairOptions : CommonOptions {
    double epsilon1 = std::numeric_limits<double>::infinity();         // t_e2e bound
    std::int64_t epsilon2 = std::numeric_limits<std::int64_t>::max();  // Q_occ bound
    // Escalate to the exact MILP re-solve when the greedy incumbent exists
    // (or failed). Off by default: the exact solve can dwarf the repair
    // budget on anything but small instances.
    bool allow_milp = false;
    // Budget knobs for the opt-in escalation (its deadline is overridden by
    // the repair deadline).
    milp::MilpOptions milp;
    // Shared per-Network path cache, kept in sync by fault::Injector. Null =
    // private caches per rung.
    net::PathOracle* oracle = nullptr;
};

// What the failures broke in a deployment.
struct DamageReport {
    // MATs placed on failed (or unknown) switches.
    std::vector<tdg::NodeId> stranded_mats;
    // Route pairs whose recorded path crosses a failed link or switch.
    std::vector<std::pair<net::SwitchId, net::SwitchId>> dead_routes;

    [[nodiscard]] bool intact() const noexcept {
        return stranded_mats.empty() && dead_routes.empty();
    }
};

// True when the recorded path is fully live: every switch up, every hop a
// live link. Shared by the repair ladder and the Engine's delta re-solve.
[[nodiscard]] bool route_alive(const net::Network& net, const net::Path& path);

// Classifies `d` against the network's current up/down state. Pure
// inspection: touches no caches, never throws on damage.
[[nodiscard]] DamageReport classify_damage(const tdg::Tdg& t, const net::Network& net,
                                           const Deployment& d);

struct RepairResult {
    // True when `deployment` verifies on the surviving topology. False only
    // for "infeasible" (deployment is then the unrepaired original).
    bool ok = false;
    Deployment deployment;
    DamageReport damage;
    // "intact" | "reroute" | "replace" | "milp" | "fallback(deadline)" |
    // "infeasible" — the rung that produced `deployment`.
    std::string status;
    std::int64_t replaced_mats = 0;   // MATs whose switch changed
    std::int64_t rerouted_pairs = 0;  // dead pairs re-wired in place
    double repair_seconds = 0.0;
};

// Repairs `broken` against the network's current state via the ladder above.
[[nodiscard]] RepairResult repair(const tdg::Tdg& t, const net::Network& net,
                                  const Deployment& broken,
                                  const RepairOptions& options = {});

}  // namespace hermes::core
