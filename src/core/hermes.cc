#include "core/hermes.h"

#include <chrono>

#include "obs/obs.h"
#include "tdg/analyzer.h"

namespace hermes::core {

namespace {
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
    return std::chrono::duration<double>(Clock::now() - start).count();
}

GreedyOptions greedy_options_from(const HermesOptions& options) {
    GreedyOptions g;
    static_cast<CommonOptions&>(g) = static_cast<const CommonOptions&>(options);
    g.epsilon1 = options.epsilon1;
    g.epsilon2 = options.epsilon2;
    return g;
}

// Counts the shared oracle's cache activity during one deploy call as the
// delta against the entry snapshot; privately created oracles report their
// own stats where they are created (greedy.cc), so nothing double-counts.
class OracleStatsScope {
public:
    OracleStatsScope(obs::Sink* sink, const net::PathOracle* oracle)
        : sink_(sink), oracle_(oracle) {
        if (sink_ && oracle_) before_ = oracle_->stats();
    }
    ~OracleStatsScope() {
        if (!sink_ || !oracle_) return;
        const net::PathOracle::Stats after = oracle_->stats();
        sink_->counter("oracle.tree_hits")
            .add(static_cast<std::int64_t>(after.tree_hits - before_.tree_hits));
        sink_->counter("oracle.tree_misses")
            .add(static_cast<std::int64_t>(after.tree_misses - before_.tree_misses));
        sink_->counter("oracle.k_hits")
            .add(static_cast<std::int64_t>(after.k_hits - before_.k_hits));
        sink_->counter("oracle.k_misses")
            .add(static_cast<std::int64_t>(after.k_misses - before_.k_misses));
    }
    OracleStatsScope(const OracleStatsScope&) = delete;
    OracleStatsScope& operator=(const OracleStatsScope&) = delete;

private:
    obs::Sink* sink_;
    const net::PathOracle* oracle_;
    net::PathOracle::Stats before_;
};
}  // namespace

tdg::Tdg analyze(const std::vector<prog::Program>& programs, obs::Sink* sink) {
    obs::Span span(sink, "analyze");
    std::vector<tdg::Tdg> tdgs;
    tdgs.reserve(programs.size());
    for (const prog::Program& p : programs) tdgs.push_back(p.to_tdg());
    return tdg::analyze_programs(std::move(tdgs), sink);
}

util::StatusOr<DeployOutcome> try_deploy_greedy(const tdg::Tdg& t,
                                                const net::Network& net,
                                                const HermesOptions& options) {
    const auto start = Clock::now();
    obs::Span span(options.sink, "deploy_greedy");
    OracleStatsScope oracle_stats(options.sink, options.oracle);
    GreedyResult g;
    try {
        g = greedy_deploy(t, net, greedy_options_from(options), options.oracle);
    } catch (const std::runtime_error& ex) {
        // Algorithm 2 signals infeasibility (no anchor yields enough
        // switches, a MAT exceeds a stage) by throwing; surface it as a
        // status so resident sessions never unwind across the engine.
        return util::Status::infeasible(ex.what());
    }
    DeployOutcome outcome;
    outcome.deployment = std::move(g.deployment);
    outcome.solve_seconds = seconds_since(start);
    outcome.metrics = evaluate(t, net, outcome.deployment);
    outcome.solver_status = "greedy";
    return outcome;
}

util::StatusOr<DeployOutcome> try_deploy_optimal(const tdg::Tdg& t,
                                                 const net::Network& net,
                                                 const HermesOptions& options) {
    const auto start = Clock::now();
    obs::Span span(options.sink, "deploy_optimal");
    OracleStatsScope oracle_stats(options.sink, options.oracle);
    FormulationOptions fopts;
    static_cast<CommonOptions&>(fopts) = static_cast<const CommonOptions&>(options);
    fopts.epsilon1 = options.epsilon1;
    fopts.epsilon2 = options.epsilon2;
    fopts.k_paths = options.k_paths;
    fopts.candidate_limit = options.candidate_limit;
    fopts.segment_level = options.segment_level_milp;
    fopts.oracle = options.oracle;

    std::optional<P1Formulation> maybe_formulation;
    try {
        obs::Span fspan(options.sink, "formulation");
        maybe_formulation.emplace(t, net, fopts);
    } catch (const std::runtime_error&) {
        // Instance beyond exact reach (the regime where the paper's Gurobi
        // runs exceed their two-hour budget): return the best incumbent we
        // can produce — the greedy solution — flagged as a time-limit hit.
        util::StatusOr<DeployOutcome> greedy = try_deploy_greedy(t, net, options);
        if (!greedy.ok()) return greedy;
        DeployOutcome outcome = std::move(greedy).value();
        outcome.solve_seconds =
            std::max(seconds_since(start), options.milp.time_limit_seconds);
        outcome.solver_status = "time-limit(model)";
        return outcome;
    }
    P1Formulation& formulation = *maybe_formulation;

    milp::MilpOptions milp_options = options.milp;
    if (!milp_options.sink) milp_options.sink = options.sink;
    // The facade's cancellation token reaches the branch and bound (and its
    // node LPs) unless the caller armed a MILP-specific one.
    if (!milp_options.deadline.active()) milp_options.deadline = options.deadline;
    if (options.warm_start_from_greedy && !milp_options.warm_start) {
        util::StatusOr<DeployOutcome> greedy = try_deploy_greedy(t, net, options);
        if (greedy.ok()) {
            milp_options.warm_start = formulation.encode(greedy.value().deployment);
        }
        // No greedy incumbent: branch and bound starts cold.
    }

    milp::MilpResult result;
    {
        obs::Span mspan(options.sink, "milp.solve");
        result = milp::solve_milp(formulation.model(), milp_options);
    }
    if (!result.has_solution()) {
        const std::string message =
            std::string("deploy_optimal: MILP ended with status ") +
            milp::to_string(result.status);
        return result.status == milp::MilpStatus::kInfeasible
                   ? util::Status::infeasible(message)
                   : util::Status::unavailable(message);
    }
    DeployOutcome outcome;
    {
        obs::Span dspan(options.sink, "decode");
        outcome.deployment = formulation.decode(result.values);
    }
    outcome.solve_seconds = seconds_since(start);
    outcome.metrics = evaluate(t, net, outcome.deployment);
    outcome.solver_status = milp::to_string(result.status);
    outcome.optimal = result.status == milp::MilpStatus::kOptimal;
    return outcome;
}

}  // namespace hermes::core
