#include "core/hermes.h"

#include <chrono>

#include "tdg/analyzer.h"

namespace hermes::core {

namespace {
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
    return std::chrono::duration<double>(Clock::now() - start).count();
}
}  // namespace

tdg::Tdg analyze(const std::vector<prog::Program>& programs) {
    std::vector<tdg::Tdg> tdgs;
    tdgs.reserve(programs.size());
    for (const prog::Program& p : programs) tdgs.push_back(p.to_tdg());
    return tdg::analyze_programs(std::move(tdgs));
}

DeployOutcome deploy_greedy(const tdg::Tdg& t, const net::Network& net,
                            const HermesOptions& options) {
    const auto start = Clock::now();
    GreedyResult g = greedy_deploy(
        t, net, GreedyOptions{options.epsilon1, options.epsilon2, options.greedy_threads},
        options.oracle);
    DeployOutcome outcome;
    outcome.deployment = std::move(g.deployment);
    outcome.solve_seconds = seconds_since(start);
    outcome.metrics = evaluate(t, net, outcome.deployment);
    outcome.solver_status = "greedy";
    return outcome;
}

DeployOutcome deploy_optimal(const tdg::Tdg& t, const net::Network& net,
                             const HermesOptions& options) {
    const auto start = Clock::now();
    FormulationOptions fopts;
    fopts.epsilon1 = options.epsilon1;
    fopts.epsilon2 = options.epsilon2;
    fopts.k_paths = options.k_paths;
    fopts.candidate_limit = options.candidate_limit;
    fopts.segment_level = options.segment_level_milp;
    fopts.oracle = options.oracle;

    std::optional<P1Formulation> maybe_formulation;
    try {
        maybe_formulation.emplace(t, net, fopts);
    } catch (const std::runtime_error&) {
        // Instance beyond exact reach (the regime where the paper's Gurobi
        // runs exceed their two-hour budget): return the best incumbent we
        // can produce — the greedy solution — flagged as a time-limit hit.
        GreedyResult g = greedy_deploy(
            t, net,
            GreedyOptions{options.epsilon1, options.epsilon2, options.greedy_threads},
            options.oracle);
        DeployOutcome outcome;
        outcome.deployment = std::move(g.deployment);
        outcome.solve_seconds =
            std::max(seconds_since(start), options.milp.time_limit_seconds);
        outcome.metrics = evaluate(t, net, outcome.deployment);
        outcome.solver_status = "time-limit(model)";
        return outcome;
    }
    P1Formulation& formulation = *maybe_formulation;

    milp::MilpOptions milp_options = options.milp;
    if (options.warm_start_from_greedy && !milp_options.warm_start) {
        try {
            const GreedyResult g = greedy_deploy(
                t, net,
                GreedyOptions{options.epsilon1, options.epsilon2, options.greedy_threads},
                options.oracle);
            milp_options.warm_start = formulation.encode(g.deployment);
        } catch (const std::runtime_error&) {
            // No greedy incumbent; branch and bound starts cold.
        }
    }

    const milp::MilpResult result = milp::solve_milp(formulation.model(), milp_options);
    if (!result.has_solution()) {
        throw std::runtime_error(std::string("deploy_optimal: MILP ended with status ") +
                                 milp::to_string(result.status));
    }
    DeployOutcome outcome;
    outcome.deployment = formulation.decode(result.values);
    outcome.solve_seconds = seconds_since(start);
    outcome.metrics = evaluate(t, net, outcome.deployment);
    outcome.solver_status = milp::to_string(result.status);
    outcome.optimal = result.status == milp::MilpStatus::kOptimal;
    return outcome;
}

}  // namespace hermes::core
