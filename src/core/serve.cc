#include "core/serve.h"

#include <charconv>
#include <stdexcept>
#include <utility>

#include "obs/obs.h"
#include "prog/library.h"
#include "prog/synthetic.h"

namespace hermes::core {

namespace {

const char* wire_code(util::StatusCode code) {
    switch (code) {
        case util::StatusCode::kOk: return "ok";
        case util::StatusCode::kInvalidInput: return "invalid_input";
        case util::StatusCode::kIo: return "io";
        case util::StatusCode::kInfeasible: return "infeasible";
        case util::StatusCode::kUnavailable: return "unavailable";
        case util::StatusCode::kResourceExhausted: return "resource_exhausted";
    }
    return "error";
}

// Errors a client should retry after the current epoch drains, as opposed to
// requests that are wrong (invalid_input) or unsatisfiable (infeasible).
bool retryable(util::StatusCode code) {
    return code == util::StatusCode::kResourceExhausted ||
           code == util::StatusCode::kUnavailable;
}

bool parse_u64(std::string_view text, std::uint64_t& out) {
    const char* const end = text.data() + text.size();
    const auto [ptr, ec] = std::from_chars(text.data(), end, out);
    return ec == std::errc{} && ptr == end;
}

// Required non-negative integer field; kInvalidInput otherwise.
util::StatusOr<net::SwitchId> switch_id_field(const util::Json& request,
                                              std::string_view key) {
    const util::Json& value = request.get(key);
    if (!value.is_number() || value.int_value() < 0) {
        return util::Status::invalid(std::string("request: '") + std::string(key) +
                                     "' must be a non-negative switch id");
    }
    return static_cast<net::SwitchId>(value.int_value());
}

util::Json metrics_json(const DeploymentMetrics& metrics) {
    util::Json m{util::JsonObject{}};
    m.set("a_max_bytes", metrics.max_pair_metadata_bytes);
    m.set("inflight_bytes", metrics.max_inflight_metadata_bytes);
    m.set("latency_us", metrics.route_latency_us);
    m.set("switches", metrics.occupied_switches);
    return m;
}

}  // namespace

util::StatusOr<prog::Program> resolve_program_spec(std::string_view spec) {
    const std::size_t colon = spec.find(':');
    const std::string_view head = spec.substr(0, colon);
    const std::string_view rest =
        colon == std::string_view::npos ? std::string_view{} : spec.substr(colon + 1);
    try {
        if (head == "real") {
            return prog::make_program(std::string(rest));
        }
        if (head == "sketch") {
            return prog::sketch_program(std::string(rest));
        }
        if (head == "synthetic") {
            const std::size_t colon2 = rest.find(':');
            std::uint64_t seed = 0;
            std::uint64_t index = 0;
            const std::string_view seed_text = rest.substr(0, colon2);
            if (!parse_u64(seed_text, seed) ||
                (colon2 != std::string_view::npos &&
                 !parse_u64(rest.substr(colon2 + 1), index))) {
                return util::Status::invalid(
                    "program spec: synthetic:<seed>[:<index>] takes integers");
            }
            return prog::synthetic_program({}, seed, static_cast<int>(index));
        }
    } catch (const std::exception& ex) {
        return util::Status::invalid(std::string("program spec: ") + ex.what());
    }
    return util::Status::invalid("program spec: expected real:<name>, sketch:<kind>, "
                                 "or synthetic:<seed>[:<index>], got '" +
                                 std::string(spec) + "'");
}

util::StatusOr<ServeRequest> parse_request(std::string_view line) {
    util::StatusOr<util::Json> parsed = util::parse_json(line);
    if (!parsed.ok()) return parsed.status();
    const util::Json& root = parsed.value();
    if (!root.is_object()) {
        return util::Status::invalid("request: expected a JSON object");
    }

    ServeRequest request;
    request.id = root.get("id");
    const util::Json& op = root.get("op");
    if (!op.is_string()) {
        return util::Status::invalid("request: 'op' (string) is required");
    }
    request.op = op.string_value();

    if (request.op == "add_program") {
        const util::Json& name = root.get("name");
        const util::Json& spec = root.get("spec");
        if (!name.is_string() || name.string_value().empty()) {
            return util::Status::invalid("add_program: 'name' (string) is required");
        }
        if (!spec.is_string() || spec.string_value().empty()) {
            return util::Status::invalid("add_program: 'spec' (string) is required");
        }
        request.name = name.string_value();
        request.spec = spec.string_value();
        return request;
    }
    if (request.op == "remove_program") {
        const util::Json& name = root.get("name");
        if (!name.is_string() || name.string_value().empty()) {
            return util::Status::invalid("remove_program: 'name' (string) is required");
        }
        request.name = name.string_value();
        return request;
    }
    if (request.op == "retarget_traffic" || request.op == "query" ||
        request.op == "snapshot") {
        return request;
    }
    if (request.op == "inject_fault" || request.op == "recover") {
        const bool inject = request.op == "inject_fault";
        const util::Json& kind = root.get("kind");
        if (kind.is_null() && !inject) return request;  // bare recover = recover all
        if (!kind.is_string()) {
            return util::Status::invalid(request.op + ": 'kind' (string) is required");
        }
        const std::optional<fault::FaultKind> parsed_kind =
            fault::parse_fault_kind(kind.string_value());
        if (!parsed_kind.has_value()) {
            return util::Status::invalid(request.op + ": unknown kind '" +
                                         kind.string_value() + "'");
        }
        request.has_kind = true;
        request.fault.kind = *parsed_kind;
        if (request.fault.is_failure() != inject) {
            return util::Status::invalid(request.op + ": kind '" + kind.string_value() +
                                         (inject ? "' is a recovery event"
                                                 : "' is a failure event"));
        }
        util::StatusOr<net::SwitchId> a = switch_id_field(root, "a");
        if (!a.ok()) return a.status();
        request.fault.a = a.value();
        if (request.fault.is_link()) {
            util::StatusOr<net::SwitchId> b = switch_id_field(root, "b");
            if (!b.ok()) return b.status();
            request.fault.b = b.value();
        }
        return request;
    }
    return util::Status::invalid("request: unknown op '" + request.op + "'");
}

std::string format_ok(const util::Json& id, util::Json result) {
    util::Json response{util::JsonObject{}};
    response.set("id", id);
    response.set("ok", true);
    response.set("result", std::move(result));
    return response.dump();
}

std::string format_error(const util::Json& id, const util::Status& status) {
    util::Json error{util::JsonObject{}};
    error.set("code", wire_code(status.code()));
    error.set("message", status.message());
    if (retryable(status.code())) error.set("retryable", true);
    util::Json response{util::JsonObject{}};
    response.set("id", id);
    response.set("ok", false);
    response.set("error", std::move(error));
    return response.dump();
}

util::Json delta_outcome_json(const DeltaOutcome& outcome, std::size_t batched) {
    util::Json result{util::JsonObject{}};
    result.set("epoch", outcome.epoch);
    result.set("status", outcome.status);
    result.set("delta", outcome.delta);
    result.set("escalated", outcome.escalated);
    result.set("degraded", outcome.degraded);
    result.set("batched", batched);
    result.set("moved_mats", outcome.moved_mats);
    result.set("rerouted_pairs", outcome.rerouted_pairs);
    result.set("solve_seconds", outcome.solve_seconds);
    result.set("metrics", metrics_json(outcome.metrics));
    return result;
}

ServeSession::ServeSession(Engine& engine, ServeOptions options)
    : engine_(engine), options_(std::move(options)) {
    if (options_.resolver == nullptr) options_.resolver = resolve_program_spec;
    if (options_.sink != nullptr) {
        // Register the CI-asserted metrics up front so exported JSON carries
        // them at 0 even before the first epoch.
        options_.sink->counter("serve.requests").add(0);
        options_.sink->counter("serve.malformed").add(0);
        options_.sink->counter("serve.batches").add(0);
        options_.sink->counter("serve.delta_resolves").add(0);
        options_.sink->counter("serve.escalations").add(0);
        options_.sink->counter("serve.oversized").add(0);
        options_.sink->counter("serve.shed").add(0);
        options_.sink->counter("serve.recoveries").add(0);
        options_.sink->counter("serve.deadline_degrades").add(0);
        options_.sink->counter("verify.violations").add(0);
    }
}

void ServeSession::reject_oversized(std::size_t bytes, std::string& out) {
    ++requests_;
    if (options_.sink != nullptr) {
        options_.sink->counter("serve.requests").add(1);
        options_.sink->counter("serve.oversized").add(1);
    }
    out += format_error(util::Json{},
                        util::Status::resource_exhausted(
                            "request exceeds max_request_bytes (" +
                            std::to_string(bytes) + " > " +
                            std::to_string(options_.max_request_bytes) + ")"));
    out += '\n';
}

void ServeSession::observe_latency(double start_ns) {
    if (options_.sink == nullptr) return;
    const double us = (static_cast<double>(obs::now_ns()) - start_ns) / 1000.0;
    options_.sink
        ->histogram("serve.request_us", obs::geometric_bounds(1.0, 2.0, 24))
        .observe(us);
}

void ServeSession::handle_line(std::string_view line, std::string& out) {
    const auto start_ns = static_cast<double>(obs::now_ns());
    if (options_.max_request_bytes > 0 && line.size() > options_.max_request_bytes) {
        // Belt and braces: the transports enforce the cap while assembling
        // lines, but direct callers (tests, stdio without the assembler)
        // reach here.
        reject_oversized(line.size(), out);
        return;
    }
    ++requests_;
    if (options_.sink != nullptr) options_.sink->counter("serve.requests").add(1);

    util::StatusOr<ServeRequest> parsed = parse_request(line);
    if (!parsed.ok()) {
        // Flush first: the mangled line may have been meant as a mutation,
        // and replying from stale state would reorder the client's view.
        flush(out);
        if (options_.sink != nullptr) options_.sink->counter("serve.malformed").add(1);
        out += format_error(util::Json{}, parsed.status());
        out += '\n';
        observe_latency(start_ns);
        return;
    }
    ServeRequest& request = parsed.value();

    if (request.op == "query") {
        flush(out);
        answer_query(request, out);
        observe_latency(start_ns);
        return;
    }
    if (request.op == "snapshot") {
        flush(out);
        answer_snapshot(request, out);
        observe_latency(start_ns);
        return;
    }

    // Backpressure: a pipelining client can stage at most max_epoch_ops
    // mutations into one epoch; past that the request is shed with a
    // retryable error rather than growing the batch (and the one re-solve
    // covering it) without bound.
    if (options_.max_epoch_ops > 0 && staged_.size() >= options_.max_epoch_ops) {
        if (options_.sink != nullptr) options_.sink->counter("serve.shed").add(1);
        out += format_error(
            request.id,
            util::Status::resource_exhausted(
                "epoch already holds " + std::to_string(staged_.size()) +
                " staged ops (max_epoch_ops); retry after the epoch drains"));
        out += '\n';
        observe_latency(start_ns);
        return;
    }

    Staged staged;
    staged.id = request.id;
    staged.op = request.op;
    staged.arrival_ns = start_ns;
    if (request.op == "add_program") {
        util::StatusOr<prog::Program> program = options_.resolver(request.spec);
        if (!program.ok()) {
            if (options_.sink != nullptr) {
                options_.sink->counter("serve.malformed").add(1);
            }
            out += format_error(request.id, program.status());
            out += '\n';
            observe_latency(start_ns);
            return;
        }
        prog::Program resolved = std::move(program).value();
        resolved.set_name(request.name);
        Engine::Mutation m;
        m.kind = Engine::Mutation::Kind::kAddProgram;
        m.program = std::move(resolved);
        staged.mutations.push_back(std::move(m));
    } else if (request.op == "remove_program") {
        Engine::Mutation m;
        m.kind = Engine::Mutation::Kind::kRemoveProgram;
        m.name = request.name;
        staged.mutations.push_back(std::move(m));
    } else if (request.op == "retarget_traffic") {
        Engine::Mutation m;
        m.kind = Engine::Mutation::Kind::kRetarget;
        staged.mutations.push_back(std::move(m));
    } else if (request.has_kind) {
        Engine::Mutation m;
        m.kind = Engine::Mutation::Kind::kFault;
        m.fault = request.fault;
        staged.mutations.push_back(std::move(m));
    } else {
        // Bare recover: one up event per currently failed element.
        const net::Network& net = engine_.network();
        for (net::SwitchId s = 0; s < net.switch_count(); ++s) {
            if (net.switch_up(s)) continue;
            Engine::Mutation m;
            m.kind = Engine::Mutation::Kind::kFault;
            m.fault.kind = fault::FaultKind::kSwitchUp;
            m.fault.a = s;
            staged.mutations.push_back(std::move(m));
        }
        for (const net::Link& link : net.links()) {
            if (net.link_up(link.a, link.b)) continue;
            Engine::Mutation m;
            m.kind = Engine::Mutation::Kind::kFault;
            m.fault.kind = fault::FaultKind::kLinkUp;
            m.fault.a = link.a;
            m.fault.b = link.b;
            staged.mutations.push_back(std::move(m));
        }
    }
    staged_.push_back(std::move(staged));
}

void ServeSession::flush(std::string& out) {
    if (staged_.empty()) return;
    std::vector<Staged> batch;
    batch.swap(staged_);
    if (options_.sink != nullptr) options_.sink->counter("serve.batches").add(1);

    std::vector<Engine::Mutation> mutations;
    for (Staged& s : batch) {
        for (Engine::Mutation& m : s.mutations) mutations.push_back(std::move(m));
    }
    util::StatusOr<DeltaOutcome> outcome = engine_.apply(std::move(mutations));
    if (outcome.ok()) {
        const util::Json result = delta_outcome_json(outcome.value(), batch.size());
        for (const Staged& s : batch) {
            util::Json tagged = result;
            tagged.set("op", s.op);
            out += format_ok(s.id, std::move(tagged));
            out += '\n';
            observe_latency(s.arrival_ns);
        }
    } else {
        for (const Staged& s : batch) {
            out += format_error(s.id, outcome.status());
            out += '\n';
            observe_latency(s.arrival_ns);
        }
    }
    if (options_.sink != nullptr && engine_.program_count() > 0 &&
        !engine_.has_incumbent()) {
        options_.sink->counter("verify.violations").add(1);
    }
}

void ServeSession::answer_query(const ServeRequest& request, std::string& out) {
    util::Json result{util::JsonObject{}};
    result.set("epoch", engine_.epoch());
    util::JsonArray names;
    for (std::string& name : engine_.program_names()) names.emplace_back(std::move(name));
    result.set("programs", std::move(names));
    result.set("nodes", engine_.merged().node_count());
    result.set("incumbent", engine_.has_incumbent());
    result.set("fingerprint", static_cast<std::int64_t>(engine_.fingerprint()));
    result.set("journaling", engine_.journaling());
    result.set("metrics", metrics_json(engine_.metrics()));
    util::Json network{util::JsonObject{}};
    network.set("switches", engine_.network().switch_count());
    network.set("live_links", engine_.network().live_link_count());
    result.set("network", std::move(network));
    out += format_ok(request.id, std::move(result));
    out += '\n';
}

void ServeSession::answer_snapshot(const ServeRequest& request, std::string& out) {
    util::Json result{util::JsonObject{}};
    result.set("epoch", engine_.epoch());
    util::JsonArray names;
    for (std::string& name : engine_.program_names()) names.emplace_back(std::move(name));
    result.set("programs", std::move(names));
    result.set("incumbent", engine_.has_incumbent());
    result.set("fingerprint", static_cast<std::int64_t>(engine_.fingerprint()));
    util::JsonArray placements;
    util::JsonArray routes;
    if (engine_.has_incumbent()) {
        const Deployment& d = engine_.incumbent();
        for (std::size_t node = 0; node < d.placements.size(); ++node) {
            util::Json p{util::JsonObject{}};
            p.set("node", node);
            p.set("switch", static_cast<std::int64_t>(d.placements[node].sw));
            p.set("stage", d.placements[node].stage);
            placements.push_back(std::move(p));
        }
        for (const auto& [pair, path] : d.routes) {
            util::Json r{util::JsonObject{}};
            r.set("from", static_cast<std::int64_t>(pair.first));
            r.set("to", static_cast<std::int64_t>(pair.second));
            util::JsonArray hops;
            for (const net::SwitchId s : path.switches) {
                hops.emplace_back(static_cast<std::int64_t>(s));
            }
            r.set("path", std::move(hops));
            routes.push_back(std::move(r));
        }
    }
    result.set("placements", std::move(placements));
    result.set("routes", std::move(routes));
    result.set("metrics", metrics_json(engine_.metrics()));
    out += format_ok(request.id, std::move(result));
    out += '\n';
}

}  // namespace hermes::core
