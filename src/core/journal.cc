#include "core/journal.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <utility>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include "fault/crash.h"
#include "util/crc.h"

namespace hermes::core {

namespace {

constexpr char kMagic[8] = {'H', 'E', 'R', 'M', 'E', 'S', 'J', '1'};
constexpr std::size_t kMagicSize = sizeof kMagic;
constexpr std::size_t kHeaderSize = 8;  // u32 length + u32 crc32c
// A journal payload is one epoch batch or one snapshot — megabytes at the
// very most. A length beyond this is a corrupt header, not a huge record.
constexpr std::uint32_t kMaxRecordBytes = 256u * 1024u * 1024u;

std::string errno_message(const char* what, const std::string& path) {
    return std::string(what) + " '" + path + "': " + std::strerror(errno);
}

util::Status write_all(int fd, const char* data, std::size_t size,
                       const std::string& path) {
    while (size > 0) {
        const ssize_t n = ::write(fd, data, size);
        if (n < 0) {
            if (errno == EINTR) continue;
            return util::Status::io(errno_message("journal: write", path));
        }
        data += n;
        size -= static_cast<std::size_t>(n);
    }
    return {};
}

void put_u32_le(char* out, std::uint32_t v) {
    out[0] = static_cast<char>(v & 0xFFu);
    out[1] = static_cast<char>((v >> 8) & 0xFFu);
    out[2] = static_cast<char>((v >> 16) & 0xFFu);
    out[3] = static_cast<char>((v >> 24) & 0xFFu);
}

std::uint32_t get_u32_le(const char* in) {
    const auto* p = reinterpret_cast<const unsigned char*>(in);
    return static_cast<std::uint32_t>(p[0]) | (static_cast<std::uint32_t>(p[1]) << 8) |
           (static_cast<std::uint32_t>(p[2]) << 16) |
           (static_cast<std::uint32_t>(p[3]) << 24);
}

// Best-effort parent-directory fsync so the rename in rotate() is durable.
// Failure is not fatal: the data file itself is already synced.
void sync_parent_dir(const std::string& path) {
    std::string dir = ".";
    if (const std::size_t slash = path.rfind('/'); slash != std::string::npos) {
        dir = slash == 0 ? "/" : path.substr(0, slash);
    }
    const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (fd < 0) return;
    (void)::fsync(fd);
    (void)::close(fd);
}

}  // namespace

const char* to_string(Durability d) noexcept {
    switch (d) {
        case Durability::kNone: return "none";
        case Durability::kBatch: return "batch";
        case Durability::kEpoch: return "epoch";
    }
    return "batch";
}

std::optional<Durability> parse_durability(std::string_view text) noexcept {
    if (text == "none") return Durability::kNone;
    if (text == "batch") return Durability::kBatch;
    if (text == "epoch") return Durability::kEpoch;
    return std::nullopt;
}

util::StatusOr<Journal::ScanResult> Journal::scan(const std::string& path) {
    ScanResult result;
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) {
        if (errno == ENOENT) return result;  // fresh start, not an error
        return util::Status::io(errno_message("journal: open", path));
    }
    std::string data;
    char buf[1 << 16];
    for (;;) {
        const ssize_t n = ::read(fd, buf, sizeof buf);
        if (n < 0) {
            if (errno == EINTR) continue;
            const util::Status status =
                util::Status::io(errno_message("journal: read", path));
            (void)::close(fd);
            return status;
        }
        if (n == 0) break;
        data.append(buf, static_cast<std::size_t>(n));
    }
    (void)::close(fd);

    if (data.size() < kMagicSize) {
        // A crash during creation can leave a partial magic; recovery treats
        // it as an empty journal and open() rewrites it from scratch.
        result.torn_bytes = data.size();
        return result;
    }
    if (std::memcmp(data.data(), kMagic, kMagicSize) != 0) {
        return util::Status::io("journal: '" + path +
                                "' exists but is not a hermes journal (bad magic)");
    }
    result.found = true;

    std::size_t offset = kMagicSize;
    while (offset + kHeaderSize <= data.size()) {
        const std::uint32_t length = get_u32_le(data.data() + offset);
        const std::uint32_t crc = get_u32_le(data.data() + offset + 4);
        if (length > kMaxRecordBytes) break;                   // corrupt header
        if (offset + kHeaderSize + length > data.size()) break;  // torn payload
        const std::string_view payload(data.data() + offset + kHeaderSize, length);
        if (util::crc32c(payload) != crc) break;  // torn or corrupted write
        util::StatusOr<util::Json> parsed = util::parse_json(payload);
        if (!parsed.ok()) break;  // CRC of garbage that happened to match
        result.records.push_back(std::move(parsed).value());
        offset += kHeaderSize + length;
    }
    result.valid_bytes = offset;
    result.torn_bytes = data.size() - offset;
    return result;
}

util::StatusOr<Journal> Journal::open(std::string path, JournalOptions options) {
    util::StatusOr<ScanResult> scanned = scan(path);
    if (!scanned.ok()) return scanned.status();

    const int fd = ::open(path.c_str(), O_CREAT | O_RDWR | O_APPEND, 0644);
    if (fd < 0) return util::Status::io(errno_message("journal: open", path));

    Journal journal(std::move(path), options, fd);
    const ScanResult& s = scanned.value();
    if (!s.found) {
        // Fresh (or torn-at-creation) file: start from a clean magic.
        if (::ftruncate(fd, 0) != 0) {
            return util::Status::io(errno_message("journal: truncate", journal.path_));
        }
        util::Status w = write_all(fd, kMagic, kMagicSize, journal.path_);
        if (!w.ok()) return w;
        if (options.durability != Durability::kNone) {
            util::Status synced = journal.sync_now();
            if (!synced.ok()) return synced;
        }
    } else if (s.torn_bytes > 0) {
        // Drop the torn tail so new appends extend valid history.
        if (::ftruncate(fd, static_cast<off_t>(s.valid_bytes)) != 0) {
            return util::Status::io(errno_message("journal: truncate", journal.path_));
        }
        if (options.sink != nullptr) {
            options.sink->counter("journal.truncated_tails").add(1);
            options.sink->counter("journal.truncated_bytes")
                .add(static_cast<std::int64_t>(s.torn_bytes));
        }
    }
    return journal;
}

Journal::Journal(Journal&& other) noexcept
    : path_(std::move(other.path_)),
      options_(other.options_),
      fd_(std::exchange(other.fd_, -1)),
      records_since_rotate_(other.records_since_rotate_),
      unsynced_records_(other.unsynced_records_) {}

Journal& Journal::operator=(Journal&& other) noexcept {
    if (this != &other) {
        if (fd_ >= 0) (void)::close(fd_);
        path_ = std::move(other.path_);
        options_ = other.options_;
        fd_ = std::exchange(other.fd_, -1);
        records_since_rotate_ = other.records_since_rotate_;
        unsynced_records_ = other.unsynced_records_;
    }
    return *this;
}

Journal::~Journal() {
    if (fd_ >= 0) (void)::close(fd_);
}

util::Status Journal::sync_now() {
    const auto start = std::chrono::steady_clock::now();
    if (::fsync(fd_) != 0) {
        return util::Status::io(errno_message("journal: fsync", path_));
    }
    unsynced_records_ = 0;
    if (options_.sink != nullptr) {
        const double us =
            std::chrono::duration<double, std::micro>(std::chrono::steady_clock::now() -
                                                      start)
                .count();
        options_.sink->counter("journal.fsyncs").add(1);
        options_.sink
            ->histogram("journal.fsync_us", obs::geometric_bounds(1.0, 2.0, 24))
            .observe(us);
    }
    return {};
}

util::Status Journal::append(const util::Json& payload) {
    if (fd_ < 0) return util::Status::io("journal: append on a moved-from journal");
    const std::string body = payload.dump();
    if (body.size() > kMaxRecordBytes) {
        return util::Status::resource_exhausted("journal: record exceeds " +
                                                std::to_string(kMaxRecordBytes) +
                                                " bytes");
    }
    char header[kHeaderSize];
    put_u32_le(header, static_cast<std::uint32_t>(body.size()));
    put_u32_le(header + 4, util::crc32c(body));

    util::Status w = write_all(fd_, header, kHeaderSize, path_);
    if (!w.ok()) return w;
    fault::crash_point("journal.append.header");

    // Two-part payload write so the torn-record crash point sits between
    // bytes of one record, exactly where a real power cut can land.
    const std::size_t half = body.size() / 2;
    w = write_all(fd_, body.data(), half, path_);
    if (!w.ok()) return w;
    fault::crash_point("journal.append.payload");
    w = write_all(fd_, body.data() + half, body.size() - half, path_);
    if (!w.ok()) return w;
    fault::crash_point("journal.append.pre_sync");

    ++records_since_rotate_;
    ++unsynced_records_;
    if (options_.sink != nullptr) options_.sink->counter("journal.appends").add(1);

    switch (options_.durability) {
        case Durability::kNone:
            break;
        case Durability::kBatch:
            if (unsynced_records_ >= std::max<std::int64_t>(1, options_.batch_interval)) {
                return sync_now();
            }
            break;
        case Durability::kEpoch:
            return sync_now();
    }
    return {};
}

util::Status Journal::rotate(const util::Json& snapshot) {
    if (fd_ < 0) return util::Status::io("journal: rotate on a moved-from journal");
    const std::string body = snapshot.dump();
    const std::string tmp_path = path_ + ".tmp";

    const int tmp = ::open(tmp_path.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
    if (tmp < 0) return util::Status::io(errno_message("journal: open", tmp_path));
    char header[kHeaderSize];
    put_u32_le(header, static_cast<std::uint32_t>(body.size()));
    put_u32_le(header + 4, util::crc32c(body));
    util::Status w = write_all(tmp, kMagic, kMagicSize, tmp_path);
    if (w.ok()) w = write_all(tmp, header, kHeaderSize, tmp_path);
    if (w.ok()) w = write_all(tmp, body.data(), body.size(), tmp_path);
    if (w.ok() && ::fsync(tmp) != 0) {
        w = util::Status::io(errno_message("journal: fsync", tmp_path));
    }
    (void)::close(tmp);
    if (!w.ok()) {
        (void)::unlink(tmp_path.c_str());
        return w;
    }
    fault::crash_point("journal.snapshot.tmp");

    if (::rename(tmp_path.c_str(), path_.c_str()) != 0) {
        const util::Status status =
            util::Status::io(errno_message("journal: rename", tmp_path));
        (void)::unlink(tmp_path.c_str());
        return status;
    }
    fault::crash_point("journal.snapshot.renamed");
    sync_parent_dir(path_);

    // The old fd points at the unlinked previous log; switch to the new one.
    const int fd = ::open(path_.c_str(), O_RDWR | O_APPEND, 0644);
    if (fd < 0) return util::Status::io(errno_message("journal: reopen", path_));
    (void)::close(fd_);
    fd_ = fd;
    records_since_rotate_ = 0;
    unsynced_records_ = 0;
    if (options_.sink != nullptr) options_.sink->counter("journal.rotates").add(1);
    return {};
}

util::Status Journal::sync() {
    if (fd_ < 0) return util::Status::io("journal: sync on a moved-from journal");
    if (options_.durability == Durability::kNone || unsynced_records_ == 0) return {};
    return sync_now();
}

// ---- JSON codecs ---------------------------------------------------------

namespace {

const char* to_string(tdg::MatchKind k) noexcept {
    switch (k) {
        case tdg::MatchKind::kExact: return "exact";
        case tdg::MatchKind::kLpm: return "lpm";
        case tdg::MatchKind::kTernary: return "ternary";
        case tdg::MatchKind::kRange: return "range";
    }
    return "exact";
}

std::optional<tdg::MatchKind> parse_match_kind(std::string_view text) noexcept {
    if (text == "exact") return tdg::MatchKind::kExact;
    if (text == "lpm") return tdg::MatchKind::kLpm;
    if (text == "ternary") return tdg::MatchKind::kTernary;
    if (text == "range") return tdg::MatchKind::kRange;
    return std::nullopt;
}

std::optional<tdg::DepType> parse_dep_type(std::string_view text) noexcept {
    for (const tdg::DepType t :
         {tdg::DepType::kMatch, tdg::DepType::kAction, tdg::DepType::kReverseMatch,
          tdg::DepType::kSuccessor}) {
        if (text == tdg::to_string(t)) return t;
    }
    return std::nullopt;
}

util::Json field_to_json(const tdg::Field& f) {
    util::JsonObject o;
    o.emplace_back("name", f.name);
    o.emplace_back("kind", f.kind == tdg::FieldKind::kMetadata ? "metadata" : "header");
    o.emplace_back("size_bytes", f.size_bytes);
    return util::Json(std::move(o));
}

util::StatusOr<tdg::Field> field_from_json(const util::Json& j) {
    if (!j.is_object() || !j.get("name").is_string() || !j.get("kind").is_string() ||
        !j.get("size_bytes").is_int()) {
        return util::Status::invalid("journal: malformed field");
    }
    tdg::Field f;
    f.name = j.get("name").string_value();
    const std::string& kind = j.get("kind").string_value();
    if (kind == "metadata") {
        f.kind = tdg::FieldKind::kMetadata;
    } else if (kind == "header") {
        f.kind = tdg::FieldKind::kHeader;
    } else {
        return util::Status::invalid("journal: unknown field kind '" + kind + "'");
    }
    f.size_bytes = static_cast<int>(j.get("size_bytes").int_value());
    return f;
}

util::Json mat_to_json(const tdg::Mat& m) {
    util::JsonObject o;
    o.emplace_back("name", m.name());
    util::JsonArray match_fields;
    for (const tdg::Field& f : m.match_fields()) match_fields.push_back(field_to_json(f));
    o.emplace_back("match_fields", std::move(match_fields));
    util::JsonArray actions;
    for (const tdg::Action& a : m.actions()) {
        util::JsonObject ao;
        ao.emplace_back("name", a.name);
        util::JsonArray writes;
        for (const tdg::Field& f : a.writes) writes.push_back(field_to_json(f));
        ao.emplace_back("writes", std::move(writes));
        actions.push_back(util::Json(std::move(ao)));
    }
    o.emplace_back("actions", std::move(actions));
    o.emplace_back("rule_capacity", m.rule_capacity());
    o.emplace_back("resource_units", m.resource_units());
    o.emplace_back("match_kind", to_string(m.match_kind()));
    util::JsonArray rules;
    for (const tdg::Rule& r : m.rules()) {
        util::JsonObject ro;
        ro.emplace_back("match_key", r.match_key);
        ro.emplace_back("action", r.action_index);
        rules.push_back(util::Json(std::move(ro)));
    }
    o.emplace_back("rules", std::move(rules));
    return util::Json(std::move(o));
}

util::StatusOr<tdg::Mat> mat_from_json(const util::Json& j) {
    if (!j.is_object() || !j.get("name").is_string() ||
        !j.get("match_fields").is_array() || !j.get("actions").is_array() ||
        !j.get("rule_capacity").is_int() || !j.get("resource_units").is_number() ||
        !j.get("match_kind").is_string()) {
        return util::Status::invalid("journal: malformed mat");
    }
    std::vector<tdg::Field> match_fields;
    for (const util::Json& fj : j.get("match_fields").array()) {
        util::StatusOr<tdg::Field> f = field_from_json(fj);
        if (!f.ok()) return f.status();
        match_fields.push_back(std::move(f).value());
    }
    std::vector<tdg::Action> actions;
    for (const util::Json& aj : j.get("actions").array()) {
        if (!aj.is_object() || !aj.get("name").is_string() ||
            !aj.get("writes").is_array()) {
            return util::Status::invalid("journal: malformed action");
        }
        tdg::Action a;
        a.name = aj.get("name").string_value();
        for (const util::Json& fj : aj.get("writes").array()) {
            util::StatusOr<tdg::Field> f = field_from_json(fj);
            if (!f.ok()) return f.status();
            a.writes.push_back(std::move(f).value());
        }
        actions.push_back(std::move(a));
    }
    const std::optional<tdg::MatchKind> kind =
        parse_match_kind(j.get("match_kind").string_value());
    if (!kind.has_value()) {
        return util::Status::invalid("journal: unknown match kind '" +
                                     j.get("match_kind").string_value() + "'");
    }
    try {
        tdg::Mat mat(j.get("name").string_value(), std::move(match_fields),
                     std::move(actions), j.get("rule_capacity").int_value(),
                     j.get("resource_units").double_value(), *kind);
        for (const util::Json& rj : j.get("rules").array()) {
            if (!rj.is_object() || !rj.get("match_key").is_string() ||
                !rj.get("action").is_int()) {
                return util::Status::invalid("journal: malformed rule");
            }
            mat.add_rule(tdg::Rule{
                rj.get("match_key").string_value(),
                static_cast<std::size_t>(rj.get("action").int_value())});
        }
        return mat;
    } catch (const std::exception& e) {
        return util::Status::invalid(std::string("journal: mat rejected: ") + e.what());
    }
}

}  // namespace

util::Json program_to_json(const prog::Program& program) {
    util::JsonObject o;
    o.emplace_back("name", program.name());
    util::JsonArray mats;
    for (const tdg::Mat& m : program.mats()) mats.push_back(mat_to_json(m));
    o.emplace_back("mats", std::move(mats));
    util::JsonArray gates;
    for (const auto& [up, down] : program.gates()) {
        gates.push_back(util::Json(util::JsonArray{util::Json(up), util::Json(down)}));
    }
    o.emplace_back("gates", std::move(gates));
    util::JsonArray edges;
    for (const prog::Program::ExplicitEdge& e : program.explicit_edges()) {
        util::JsonObject eo;
        eo.emplace_back("from", e.from);
        eo.emplace_back("to", e.to);
        eo.emplace_back("type", tdg::to_string(e.type));
        edges.push_back(util::Json(std::move(eo)));
    }
    o.emplace_back("explicit_edges", std::move(edges));
    return util::Json(std::move(o));
}

util::StatusOr<prog::Program> program_from_json(const util::Json& j) {
    if (!j.is_object() || !j.get("name").is_string() || !j.get("mats").is_array()) {
        return util::Status::invalid("journal: malformed program");
    }
    try {
        prog::Program program(j.get("name").string_value());
        for (const util::Json& mj : j.get("mats").array()) {
            util::StatusOr<tdg::Mat> mat = mat_from_json(mj);
            if (!mat.ok()) return mat.status();
            program.add_mat(std::move(mat).value());
        }
        for (const util::Json& gj : j.get("gates").array()) {
            if (!gj.is_array() || gj.array().size() != 2 ||
                !gj.array()[0].is_int() || !gj.array()[1].is_int()) {
                return util::Status::invalid("journal: malformed gate");
            }
            program.add_gate(static_cast<std::size_t>(gj.array()[0].int_value()),
                             static_cast<std::size_t>(gj.array()[1].int_value()));
        }
        for (const util::Json& ej : j.get("explicit_edges").array()) {
            if (!ej.is_object() || !ej.get("from").is_int() || !ej.get("to").is_int() ||
                !ej.get("type").is_string()) {
                return util::Status::invalid("journal: malformed explicit edge");
            }
            const std::optional<tdg::DepType> type =
                parse_dep_type(ej.get("type").string_value());
            if (!type.has_value()) {
                return util::Status::invalid("journal: unknown dependency type '" +
                                             ej.get("type").string_value() + "'");
            }
            program.add_explicit_edge(
                static_cast<std::size_t>(ej.get("from").int_value()),
                static_cast<std::size_t>(ej.get("to").int_value()), *type);
        }
        return program;
    } catch (const std::exception& e) {
        return util::Status::invalid(std::string("journal: program rejected: ") +
                                     e.what());
    }
}

util::Json deployment_to_json(const Deployment& d) {
    util::JsonObject o;
    util::JsonArray placements;
    for (const Placement& p : d.placements) {
        placements.push_back(
            util::Json(util::JsonArray{util::Json(p.sw), util::Json(p.stage)}));
    }
    o.emplace_back("placements", std::move(placements));
    util::JsonArray routes;
    for (const auto& [pair, path] : d.routes) {
        util::JsonObject ro;
        ro.emplace_back("from", pair.first);
        ro.emplace_back("to", pair.second);
        util::JsonArray switches;
        for (const net::SwitchId sw : path.switches) switches.push_back(util::Json(sw));
        ro.emplace_back("switches", std::move(switches));
        // util::Json round-trips doubles exactly, so the recovered route
        // latency is bit-identical — fingerprints depend on this.
        ro.emplace_back("latency_us", path.latency_us);
        routes.push_back(util::Json(std::move(ro)));
    }
    o.emplace_back("routes", std::move(routes));
    return util::Json(std::move(o));
}

util::StatusOr<Deployment> deployment_from_json(const util::Json& j) {
    if (!j.is_object() || !j.get("placements").is_array() ||
        !j.get("routes").is_array()) {
        return util::Status::invalid("journal: malformed deployment");
    }
    Deployment d;
    for (const util::Json& pj : j.get("placements").array()) {
        if (!pj.is_array() || pj.array().size() != 2 || !pj.array()[0].is_int() ||
            !pj.array()[1].is_int()) {
            return util::Status::invalid("journal: malformed placement");
        }
        d.placements.push_back(
            Placement{static_cast<net::SwitchId>(pj.array()[0].int_value()),
                      static_cast<int>(pj.array()[1].int_value())});
    }
    for (const util::Json& rj : j.get("routes").array()) {
        if (!rj.is_object() || !rj.get("from").is_int() || !rj.get("to").is_int() ||
            !rj.get("switches").is_array() || !rj.get("latency_us").is_number()) {
            return util::Status::invalid("journal: malformed route");
        }
        net::Path path;
        for (const util::Json& sj : rj.get("switches").array()) {
            if (!sj.is_int()) return util::Status::invalid("journal: malformed route hop");
            path.switches.push_back(static_cast<net::SwitchId>(sj.int_value()));
        }
        path.latency_us = rj.get("latency_us").double_value();
        d.routes.emplace(
            std::make_pair(static_cast<net::SwitchId>(rj.get("from").int_value()),
                           static_cast<net::SwitchId>(rj.get("to").int_value())),
            std::move(path));
    }
    return d;
}

}  // namespace hermes::core
