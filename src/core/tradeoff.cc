#include "core/tradeoff.h"

#include <stdexcept>

#include "core/greedy.h"

namespace hermes::core {

namespace {

TradeoffPoint evaluate_bounds(const tdg::Tdg& t, const net::Network& net,
                              const GreedyOptions& options) {
    TradeoffPoint point;
    point.epsilon1 = options.epsilon1;
    point.epsilon2 = options.epsilon2;
    try {
        const GreedyResult r = greedy_deploy(t, net, options);
        point.feasible = true;
        point.metrics = evaluate(t, net, r.deployment);
    } catch (const std::runtime_error&) {
        point.feasible = false;
    }
    return point;
}

}  // namespace

std::vector<TradeoffPoint> sweep_switch_budget(const tdg::Tdg& t, const net::Network& net,
                                               std::int64_t min_switches,
                                               std::int64_t max_switches) {
    if (min_switches < 1 || max_switches < min_switches) {
        throw std::invalid_argument("sweep_switch_budget: bad budget range");
    }
    std::vector<TradeoffPoint> sweep;
    for (std::int64_t budget = min_switches; budget <= max_switches; ++budget) {
        GreedyOptions options;
        options.epsilon2 = budget;
        sweep.push_back(evaluate_bounds(t, net, options));
    }
    return sweep;
}

std::vector<TradeoffPoint> sweep_latency_budget(const tdg::Tdg& t, const net::Network& net,
                                                double min_latency_us,
                                                double max_latency_us, int steps) {
    if (steps < 2 || min_latency_us < 0.0 || max_latency_us < min_latency_us) {
        throw std::invalid_argument("sweep_latency_budget: bad parameters");
    }
    std::vector<TradeoffPoint> sweep;
    for (int i = 0; i < steps; ++i) {
        GreedyOptions options;
        options.epsilon1 = min_latency_us + (max_latency_us - min_latency_us) *
                                                static_cast<double>(i) /
                                                static_cast<double>(steps - 1);
        sweep.push_back(evaluate_bounds(t, net, options));
    }
    return sweep;
}

std::optional<TradeoffPoint> knee_point(const std::vector<TradeoffPoint>& sweep,
                                        double tolerance) {
    std::optional<std::int64_t> best_overhead;
    for (const TradeoffPoint& p : sweep) {
        if (!p.feasible) continue;
        if (!best_overhead || p.metrics.max_pair_metadata_bytes < *best_overhead) {
            best_overhead = p.metrics.max_pair_metadata_bytes;
        }
    }
    if (!best_overhead) return std::nullopt;
    const double threshold = static_cast<double>(*best_overhead) * (1.0 + tolerance);
    // Sweeps are ordered from tightest to loosest budget; the first feasible
    // point within tolerance is the knee.
    for (const TradeoffPoint& p : sweep) {
        if (!p.feasible) continue;
        if (static_cast<double>(p.metrics.max_pair_metadata_bytes) <= threshold + 1e-9) {
            return p;
        }
    }
    return std::nullopt;
}

}  // namespace hermes::core
