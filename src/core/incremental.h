// Incremental redeployment (extension; the paper deploys from scratch).
//
// Production networks add programs over time, and re-placing everything
// disturbs running traffic. This module extends an existing deployment with
// new programs without moving a single already-placed MAT: new MATs are
// packed into the residual stage capacity along the existing traversal chain
// (plus spare programmable switches appended after it), respecting every
// dependency. If the combined analysis orders a *new* MAT before an *old*
// one (a read/write conflict pointing backwards), incremental placement is
// impossible and the caller should fall back to a full redeploy.
#pragma once

#include <optional>

#include "core/deployment.h"
#include "net/path_oracle.h"
#include "prog/program.h"

namespace hermes::core {

// Unions `additions` onto an analyzed base TDG, re-running conflict ordering
// and metadata analysis. Node ids of `base` are preserved as a prefix.
[[nodiscard]] tdg::Tdg extend_programs(const tdg::Tdg& base,
                                       const std::vector<prog::Program>& additions);

struct IncrementalResult {
    Deployment deployment;              // covers all nodes of the combined TDG
    std::int64_t added_overhead_bytes = 0;  // overhead delta vs the old deployment
};

// Places nodes [base_count, n) of `combined` around the fixed `existing`
// placements (which cover nodes [0, base_count)). Returns nullopt when a new
// MAT must precede an old one, or when the residual capacity cannot host the
// additions. Pass a shared net::PathOracle to reuse cached Dijkstra trees
// when wiring routes for newly crossing pairs.
[[nodiscard]] std::optional<IncrementalResult> incremental_deploy(
    const tdg::Tdg& combined, std::size_t base_count, const Deployment& existing,
    const net::Network& net, net::PathOracle* oracle = nullptr);

}  // namespace hermes::core
