// Deployment metric evaluators: the three objectives of §V-B computed on a
// concrete deployment, plus the physical per-hop overhead the simulator
// feeds from.
#pragma once

#include <cstdint>

#include "core/deployment.h"

namespace hermes::core {

// Obj#1, A_max: maximum metadata bytes delivered between any ordered pair of
// distinct switches — for each pair (u,v), the sum of A(a,b) over TDG edges
// whose upstream MAT sits on u and downstream MAT on v.
[[nodiscard]] std::int64_t max_pair_metadata(const tdg::Tdg& t, const Deployment& d);

// Traversal order of the occupied switches: ascending earliest topological
// position of their MATs. Valid deployments induce an acyclic switch
// precedence, which this linearizes — it is the order packets visit the
// occupied switches.
[[nodiscard]] std::vector<net::SwitchId> traversal_order(const tdg::Tdg& t,
                                                         const Deployment& d);

// Physical in-flight overhead: the packet must reserve header space for all
// metadata simultaneously alive on a hop. For each route hop, sums A(a,b)
// of every cross-switch edge whose delivery traverses that hop (upstream
// switch appears before the hop on the packet's traversal, downstream after).
// Routes are interpreted as a traversal chain ordered by the deployment's
// route map. Returns the max over hops — the effective per-packet byte
// overhead the end-to-end experiments (§II-B, Exp#4) measure.
[[nodiscard]] std::int64_t max_inflight_metadata(const tdg::Tdg& t, const net::Network& net,
                                                 const Deployment& d);

// Obj#2, t_e2e: total transmission latency of the chosen routes (each
// communicating ordered pair counted once).
[[nodiscard]] double total_route_latency(const Deployment& d);

// Obj#3, Q_occ: number of occupied switches.
[[nodiscard]] std::int64_t occupied_switch_count(const Deployment& d);

// All metrics bundled, as printed by the benchmarks.
struct DeploymentMetrics {
    std::int64_t max_pair_metadata_bytes = 0;
    std::int64_t max_inflight_metadata_bytes = 0;
    double route_latency_us = 0.0;
    std::int64_t occupied_switches = 0;
    double total_resource_units = 0.0;  // ΣR(a) actually deployed
};

[[nodiscard]] DeploymentMetrics evaluate(const tdg::Tdg& t, const net::Network& net,
                                         const Deployment& d);

}  // namespace hermes::core
