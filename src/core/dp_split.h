// Exact chain segmentation by dynamic programming.
//
// Algorithm 2 splits the topological order recursively at locally minimal
// cuts; that is fast but not optimal even within its own solution family
// (contiguous topological intervals mapped to a switch chain). This module
// solves that restricted problem exactly:
//
//   choose boundaries 0 = b0 < b1 < ... < bk = n over the topological order
//   such that every interval [b_i, b_{i+1}) fits one switch, minimizing the
//   maximum cut metadata max_i cut(b_i) — the bytes in flight on the wire
//   between consecutive switches (the physical per-packet overhead).
//
// O(n^2) DP with O(n·E) precomputation. Used by the ablation benchmarks to
// quantify how much optimality the paper's recursive heuristic gives up.
#pragma once

#include "core/deployment.h"

namespace hermes::core {

struct DpSplitResult {
    std::vector<std::vector<tdg::NodeId>> segments;
    std::int64_t max_cut_bytes = 0;  // optimal objective value
};

// Splits all nodes of `t`. Throws std::runtime_error when some single MAT
// cannot fit a switch; returns one segment (max_cut 0) when everything fits.
[[nodiscard]] DpSplitResult dp_split(const tdg::Tdg& t, int stages,
                                     double stage_capacity);

// The cut metadata at topological-order boundary b (edges from positions
// < b to positions >= b), for all b in [0, n]. cut[0] = cut[n] = 0.
[[nodiscard]] std::vector<std::int64_t> boundary_cuts(const tdg::Tdg& t);

}  // namespace hermes::core
