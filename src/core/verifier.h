// Deployment verifier: checks that a deployment honors every constraint of
// the MILP formulation (§V-C) against the actual TDG and network — node
// deployment (6), edge deployment / dependency preservation (7)(8), switch
// resource limitations (9), and optionally the ε-bounds (4)(5).
//
// Every placement strategy in this repository (Hermes greedy, Hermes
// optimal, and all baselines) is validated through this single checker, both
// in tests and at the end of each benchmark run.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "core/deployment.h"
#include "core/options.h"

namespace hermes::core {

// Inherits core::CommonOptions; a non-null `sink` wraps the check in a
// "verify" span and counts violations under verify.violations.
struct VerifyOptions : CommonOptions {
    double epsilon1 = std::numeric_limits<double>::infinity();  // t_e2e bound
    std::int64_t epsilon2 = std::numeric_limits<std::int64_t>::max();  // Q_occ bound
};

struct VerificationReport {
    bool ok = true;
    std::vector<std::string> violations;

    void fail(std::string message) {
        ok = false;
        violations.push_back(std::move(message));
    }
};

[[nodiscard]] VerificationReport verify(const tdg::Tdg& t, const net::Network& net,
                                        const Deployment& d,
                                        const VerifyOptions& options = {});

}  // namespace hermes::core
