#include "core/greedy.h"

#include "core/dp_split.h"
#include "core/objective.h"
#include "obs/obs.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <map>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <thread>

namespace hermes::core {

namespace {

// Adjacency-indexed view of the TDG: per-node out-/in-edge lists plus the
// node's position in the global topological order. Built once per splitting
// or coalescing call, it replaces the full-edge-list rescans the original
// implementations performed at every prefix position / adjacent pair.
struct TdgIndex {
    struct Arc {
        tdg::NodeId peer = 0;
        int bytes = 0;
    };
    std::vector<std::size_t> topo_pos;  // node -> position in topological order
    std::vector<std::vector<Arc>> out;
    std::vector<std::vector<Arc>> in;

    explicit TdgIndex(const tdg::Tdg& t)
        : topo_pos(t.node_count()), out(t.node_count()), in(t.node_count()) {
        const std::vector<tdg::NodeId> topo = t.topological_order();
        for (std::size_t i = 0; i < topo.size(); ++i) topo_pos[topo[i]] = i;
        for (const tdg::Edge& e : t.edges()) {
            out[e.from].push_back({e.to, e.metadata_bytes});
            in[e.to].push_back({e.from, e.metadata_bytes});
        }
    }

    // Sorting by topological position equals filtering the global order by
    // membership (both deterministic), without the O(V) full-order scan.
    void sort_topologically(std::vector<tdg::NodeId>& nodes) const {
        std::sort(nodes.begin(), nodes.end(), [&](tdg::NodeId a, tdg::NodeId b) {
            return topo_pos[a] < topo_pos[b];
        });
    }
};

// The reference geometry for splitting/coalescing: the most capacious
// programmable switch (per-switch fit checks re-validate each concrete
// placement, so a generous reference never over-fragments).
const net::SwitchProps& reference_geometry(const net::Network& net,
                                           const std::vector<net::SwitchId>& programmable) {
    const net::SwitchProps* best = &net.props(programmable.front());
    for (const net::SwitchId u : programmable) {
        const net::SwitchProps& props = net.props(u);
        if (props.stages * props.stage_capacity > best->stages * best->stage_capacity) {
            best = &props;
        }
    }
    return *best;
}

// Recursive worker of split_tdg. `member` and `in_prefix` are node-indexed
// scratch flags owned by the top-level call; they are zero outside the
// nodes this invocation touches and zeroed again before it returns or
// recurses, so one allocation serves the whole recursion tree. One split
// level costs O(k log k + Σ deg) for k nodes instead of O(k·E).
void split_worker(const tdg::Tdg& t, const TdgIndex& index,
                  std::vector<tdg::NodeId> nodes, int stages, double stage_capacity,
                  std::vector<char>& member, std::vector<char>& in_prefix,
                  std::vector<std::vector<tdg::NodeId>>& result) {
    if (nodes.empty()) return;
    if (segment_fits(t, nodes, stages, stage_capacity)) {
        result.push_back(std::move(nodes));
        return;
    }
    if (nodes.size() < 2) {
        throw std::runtime_error("split_tdg: MAT '" + t.node(nodes.front()).name() +
                                 "' cannot fit any switch");
    }

    index.sort_topologically(nodes);
    for (const tdg::NodeId v : nodes) member[v] = 1;

    // Scan prefix cuts in topological order, maintaining the crossing
    // metadata incrementally; keep the earliest minimum (as Algorithm 2's
    // strict-< update does).
    std::int64_t cut = 0;
    std::int64_t best_cut = std::numeric_limits<std::int64_t>::max();
    std::size_t best_pos = 1;
    for (std::size_t pos = 0; pos + 1 < nodes.size(); ++pos) {
        const tdg::NodeId x = nodes[pos];
        for (const TdgIndex::Arc& a : index.out[x]) {
            if (member[a.peer] && !in_prefix[a.peer]) cut += a.bytes;
        }
        for (const TdgIndex::Arc& a : index.in[x]) {
            if (in_prefix[a.peer]) cut -= a.bytes;
        }
        in_prefix[x] = 1;
        if (cut < best_cut) {
            best_cut = cut;
            best_pos = pos + 1;
        }
    }
    for (const tdg::NodeId v : nodes) {
        member[v] = 0;
        in_prefix[v] = 0;
    }

    std::vector<tdg::NodeId> head(nodes.begin(),
                                  nodes.begin() + static_cast<std::ptrdiff_t>(best_pos));
    std::vector<tdg::NodeId> tail(nodes.begin() + static_cast<std::ptrdiff_t>(best_pos),
                                  nodes.end());
    split_worker(t, index, std::move(head), stages, stage_capacity, member, in_prefix,
                 result);
    split_worker(t, index, std::move(tail), stages, stage_capacity, member, in_prefix,
                 result);
}

// Reports a privately created oracle's cache activity (it starts at zero,
// so the totals are the call's own); shared oracles are reported by their
// creator instead (see core/hermes.cc).
void flush_local_oracle_stats(obs::Sink* sink, const net::PathOracle& oracle) {
    if (sink == nullptr) return;
    const net::PathOracle::Stats s = oracle.stats();
    sink->counter("oracle.tree_hits").add(static_cast<std::int64_t>(s.tree_hits));
    sink->counter("oracle.tree_misses").add(static_cast<std::int64_t>(s.tree_misses));
    sink->counter("oracle.k_hits").add(static_cast<std::int64_t>(s.k_hits));
    sink->counter("oracle.k_misses").add(static_cast<std::int64_t>(s.k_misses));
}

}  // namespace

std::vector<std::vector<tdg::NodeId>> split_tdg(const tdg::Tdg& t,
                                                std::vector<tdg::NodeId> nodes, int stages,
                                                double stage_capacity) {
    if (nodes.empty()) return {};
    const TdgIndex index(t);
    std::vector<char> member(t.node_count(), 0);
    std::vector<char> in_prefix(t.node_count(), 0);
    std::vector<std::vector<tdg::NodeId>> result;
    split_worker(t, index, std::move(nodes), stages, stage_capacity, member, in_prefix,
                 result);
    return result;
}

std::vector<std::vector<tdg::NodeId>> split_tdg_first_fit(const tdg::Tdg& t,
                                                          std::vector<tdg::NodeId> nodes,
                                                          int stages,
                                                          double stage_capacity) {
    if (nodes.empty()) return {};
    const TdgIndex index(t);
    index.sort_topologically(nodes);

    // Incremental segment state mirroring segment_fits exactly: the open
    // segment's aggregate resource total and first-fit per-stage loads.
    // Appending the topologically-last node never changes earlier
    // assignments, so extending incrementally equals re-packing the whole
    // extended segment (what the original did per node, at O(V) a pop).
    const double aggregate_capacity = stages * stage_capacity;
    std::vector<char> member(t.node_count(), 0);
    std::vector<int> stage_of(t.node_count(), 0);
    std::vector<double> load(static_cast<std::size_t>(stages), 0.0);
    double total = 0.0;
    std::vector<tdg::NodeId> current;

    auto try_add = [&](tdg::NodeId v) {
        const double need = t.node(v).resource_units();
        if (total + need > aggregate_capacity + 1e-9) return false;
        if (need > stage_capacity) return false;
        int earliest = 0;
        for (const TdgIndex::Arc& a : index.in[v]) {
            if (member[a.peer]) earliest = std::max(earliest, stage_of[a.peer] + 1);
        }
        int chosen = -1;
        for (int s = earliest; s < stages; ++s) {
            if (load[static_cast<std::size_t>(s)] + need <= stage_capacity + 1e-9) {
                chosen = s;
                break;
            }
        }
        if (chosen < 0) return false;
        load[static_cast<std::size_t>(chosen)] += need;
        stage_of[v] = chosen;
        member[v] = 1;
        total += need;
        current.push_back(v);
        return true;
    };

    std::vector<std::vector<tdg::NodeId>> segments;
    for (const tdg::NodeId v : nodes) {
        if (try_add(v)) continue;
        if (current.empty()) {
            throw std::runtime_error("split_tdg_first_fit: MAT '" + t.node(v).name() +
                                     "' cannot fit any switch");
        }
        for (const tdg::NodeId u : current) member[u] = 0;
        std::fill(load.begin(), load.end(), 0.0);
        total = 0.0;
        segments.push_back(std::move(current));
        current.clear();
        if (!try_add(v)) {
            throw std::runtime_error("split_tdg_first_fit: MAT '" + t.node(v).name() +
                                     "' cannot fit any switch");
        }
    }
    if (!current.empty()) segments.push_back(std::move(current));
    return segments;
}

std::vector<std::vector<tdg::NodeId>> coalesce_segments(
    const tdg::Tdg& t, std::vector<std::vector<tdg::NodeId>> segments, std::size_t target,
    int stages, double stage_capacity) {
    if (segments.size() <= target) return segments;
    const TdgIndex index(t);
    constexpr std::size_t kNone = std::numeric_limits<std::size_t>::max();
    std::vector<std::size_t> seg_of(t.node_count(), kNone);
    for (std::size_t i = 0; i < segments.size(); ++i) {
        for (const tdg::NodeId v : segments[i]) seg_of[v] = i;
    }

    auto cut_after = [&](std::size_t i) {  // metadata from segment i into i+1
        std::int64_t bytes = 0;
        for (const tdg::NodeId v : segments[i]) {
            for (const TdgIndex::Arc& a : index.out[v]) {
                if (seg_of[a.peer] == i + 1) bytes += a.bytes;
            }
        }
        return bytes;
    };
    auto pair_fits = [&](std::size_t i) {
        std::vector<tdg::NodeId> merged = segments[i];
        merged.insert(merged.end(), segments[i + 1].begin(), segments[i + 1].end());
        return segment_fits(t, merged, stages, stage_capacity);
    };

    // Adjacent-pair metadata and mergeability, cached: a merge only changes
    // the pairs touching the merged segment, so each round recomputes at
    // most two entries instead of rescanning every edge for every pair.
    std::vector<std::int64_t> cut(segments.size() - 1, 0);
    std::vector<char> fits(segments.size() - 1, 0);
    for (std::size_t i = 0; i + 1 < segments.size(); ++i) {
        cut[i] = cut_after(i);
        fits[i] = pair_fits(i) ? 1 : 0;
    }

    while (segments.size() > target) {
        // Prefer erasing the heaviest adjacent cut: that metadata stops
        // crossing switches entirely. Earliest pair wins ties (strict >).
        std::size_t best = kNone;
        std::int64_t best_cut = 0;
        for (std::size_t i = 0; i + 1 < segments.size(); ++i) {
            if (!fits[i]) continue;
            if (best == kNone || cut[i] > best_cut) {
                best = i;
                best_cut = cut[i];
            }
        }
        if (best == kNone) break;  // nothing mergeable
        segments[best].insert(segments[best].end(), segments[best + 1].begin(),
                              segments[best + 1].end());
        segments.erase(segments.begin() + static_cast<std::ptrdiff_t>(best) + 1);
        cut.erase(cut.begin() + static_cast<std::ptrdiff_t>(best));
        fits.erase(fits.begin() + static_cast<std::ptrdiff_t>(best));
        for (std::size_t i = best; i < segments.size(); ++i) {
            for (const tdg::NodeId v : segments[i]) seg_of[v] = i;
        }
        if (best > 0) {
            cut[best - 1] = cut_after(best - 1);
            fits[best - 1] = pair_fits(best - 1) ? 1 : 0;
        }
        if (best + 1 < segments.size()) {
            cut[best] = cut_after(best);
            fits[best] = pair_fits(best) ? 1 : 0;
        }
    }
    return segments;
}

std::vector<net::SwitchId> select_switches(const net::Network& net, net::SwitchId anchor,
                                           const GreedyOptions& options,
                                           net::PathOracle* oracle) {
    if (anchor >= net.switch_count() || !net.props(anchor).programmable) {
        throw std::invalid_argument("select_switches: anchor must be programmable");
    }
    std::vector<double> local_dist;
    const std::vector<double>* dist;
    if (oracle) {
        dist = &oracle->latencies(anchor);
    } else {
        local_dist = net::shortest_latencies(net, anchor);
        dist = &local_dist;
    }

    std::vector<net::SwitchId> candidates;
    for (const net::SwitchId u : net.programmable_switches()) {
        if (u != anchor && std::isfinite((*dist)[u])) candidates.push_back(u);
    }
    std::sort(candidates.begin(), candidates.end(), [&](net::SwitchId a, net::SwitchId b) {
        if ((*dist)[a] != (*dist)[b]) return (*dist)[a] < (*dist)[b];
        return a < b;
    });

    std::vector<net::SwitchId> chain{anchor};
    double chain_latency = 0.0;
    for (const net::SwitchId u : candidates) {
        if (static_cast<std::int64_t>(chain.size()) >= options.epsilon2) break;
        double hop;
        if (oracle) {
            hop = oracle->path_latency(chain.back(), u);
        } else {
            const auto p = net::shortest_path(net, chain.back(), u);
            hop = p ? p->latency_us : std::numeric_limits<double>::infinity();
        }
        if (!std::isfinite(hop)) continue;
        if (chain_latency + hop > options.epsilon1) break;
        chain_latency += hop;
        chain.push_back(u);
    }
    return chain;
}

GreedyResult deploy_segments_on_chain(const tdg::Tdg& t, const net::Network& net,
                                      std::vector<std::vector<tdg::NodeId>> segments,
                                      const GreedyOptions& options,
                                      net::PathOracle* oracle) {
    const std::vector<net::SwitchId> programmable = net.programmable_switches();
    if (programmable.empty()) {
        throw std::runtime_error("greedy_deploy: no programmable switches");
    }
    std::optional<net::PathOracle> local_oracle;
    if (!oracle) {
        local_oracle.emplace(net);
        oracle = &*local_oracle;
    }

    // Fewer switches than segments can ever get: coalesce once against the
    // common geometry (per-anchor re-coalescing would repeat the expensive
    // merge scans dozens of times for the same target).
    const std::size_t max_chain = std::min<std::size_t>(
        programmable.size(),
        options.epsilon2 < static_cast<std::int64_t>(programmable.size())
            ? static_cast<std::size_t>(options.epsilon2)
            : programmable.size());
    if (segments.size() > max_chain) {
        obs::Span span(options.sink, "greedy.coalesce");
        const net::SwitchProps& geometry = reference_geometry(net, programmable);
        segments = coalesce_segments(t, std::move(segments), max_chain, geometry.stages,
                                     geometry.stage_capacity);
    }

    // Segment-fit memo shared by every anchor: all Tofino-profile switches
    // ask the same (stages, capacity) question per segment, so each answer
    // is packed once instead of once per anchor. Duplicate computation
    // under contention is harmless (the answer is deterministic).
    std::map<std::pair<int, double>, std::vector<signed char>> fit_cache;
    std::mutex fit_mutex;
    auto segment_fits_cached = [&](std::size_t seg, int stages, double capacity) {
        {
            std::lock_guard lock(fit_mutex);
            std::vector<signed char>& slot = fit_cache[{stages, capacity}];
            if (slot.empty()) slot.assign(segments.size(), -1);
            if (slot[seg] >= 0) return slot[seg] == 1;
        }
        const bool ok = segment_fits(t, segments[seg], stages, capacity);
        {
            std::lock_guard lock(fit_mutex);
            fit_cache[{stages, capacity}][seg] = ok ? 1 : 0;
        }
        return ok;
    };

    // Pick the feasible anchor whose chain has the lowest total latency;
    // ties fall to the lowest anchor id — exactly the winner the serial
    // ascending-anchor scan with a strict-< update would keep, so the
    // parallel search is deterministic at any thread count.
    struct Candidate {
        bool feasible = false;
        double latency = std::numeric_limits<double>::infinity();
        net::SwitchId anchor = std::numeric_limits<net::SwitchId>::max();
        std::vector<net::SwitchId> chain;
    };
    auto better = [](const Candidate& a, const Candidate& b) {
        if (a.feasible != b.feasible) return a.feasible;
        if (a.latency != b.latency) return a.latency < b.latency;
        return a.anchor < b.anchor;
    };
    auto evaluate = [&](net::SwitchId u) {
        Candidate c;
        c.anchor = u;
        std::vector<net::SwitchId> chain = select_switches(net, u, options, oracle);
        if (chain.size() < segments.size()) return c;
        chain.resize(segments.size());
        double latency = 0.0;
        for (std::size_t i = 0; i + 1 < chain.size(); ++i) {
            const double hop = oracle->path_latency(chain[i], chain[i + 1]);
            if (!std::isfinite(hop)) return c;
            latency += hop;
        }
        for (std::size_t i = 0; i < segments.size(); ++i) {
            if (!segment_fits_cached(i, net.props(chain[i]).stages,
                                     net.props(chain[i]).stage_capacity)) {
                return c;
            }
        }
        c.feasible = true;
        c.latency = latency;
        c.chain = std::move(chain);
        return c;
    };

    int threads = options.threads;
    if (threads <= 0) {
        threads = static_cast<int>(std::thread::hardware_concurrency());
        if (threads <= 0) threads = 1;
    }
    threads = std::min<int>(threads, static_cast<int>(programmable.size()));

    // An active deadline token truncates the anchor scan to the best chain
    // found so far (trading the full deterministic sweep for a prompt exit);
    // without one the scan is exhaustive and deterministic at any thread
    // count.
    obs::Span search_span(options.sink, "greedy.anchor_search");
    std::atomic<std::int64_t> feasible_count{0};
    Candidate best;
    if (threads <= 1) {
        for (const net::SwitchId u : programmable) {
            if (options.deadline.expired()) break;
            Candidate c = evaluate(u);
            if (c.feasible) feasible_count.fetch_add(1, std::memory_order_relaxed);
            if (better(c, best)) best = std::move(c);
        }
    } else {
        std::atomic<std::size_t> next{0};
        std::mutex merge_mutex;
        {
            std::vector<std::jthread> workers;
            workers.reserve(static_cast<std::size_t>(threads));
            for (int w = 0; w < threads; ++w) {
                workers.emplace_back([&] {
                    Candidate local;
                    for (std::size_t i = next.fetch_add(1); i < programmable.size();
                         i = next.fetch_add(1)) {
                        if (options.deadline.expired()) break;
                        Candidate c = evaluate(programmable[i]);
                        if (c.feasible) feasible_count.fetch_add(1, std::memory_order_relaxed);
                        if (better(c, local)) local = std::move(c);
                    }
                    std::lock_guard lock(merge_mutex);
                    if (better(local, best)) best = std::move(local);
                });
            }
        }
    }
    search_span.end();
    if (obs::Sink* sink = options.sink) {
        sink->counter("greedy.segments").add(static_cast<std::int64_t>(segments.size()));
        sink->counter("greedy.anchors_tried")
            .add(static_cast<std::int64_t>(programmable.size()));
        sink->counter("greedy.anchors_feasible").add(feasible_count.load());
    }
    if (!best.feasible) {
        throw std::runtime_error(
            "greedy_deploy: no anchor yields enough programmable switches for " +
            std::to_string(segments.size()) + " segments under the epsilon bounds");
    }

    GreedyResult result;
    result.segments = std::move(segments);
    result.anchor = best.anchor;
    result.deployment.placements.resize(t.node_count());
    for (std::size_t i = 0; i < result.segments.size(); ++i) {
        const net::SwitchId sw = best.chain[i];
        const auto stages = assign_stages(t, result.segments[i], net.props(sw).stages,
                                          net.props(sw).stage_capacity);
        if (!stages) {
            throw std::runtime_error("greedy_deploy: stage assignment failed on switch " +
                                     net.props(sw).name);
        }
        for (std::size_t j = 0; j < result.segments[i].size(); ++j) {
            result.deployment.placements[result.segments[i][j]] =
                Placement{sw, (*stages)[j]};
        }
    }
    for (std::size_t i = 0; i + 1 < best.chain.size(); ++i) {
        const net::SwitchId u = best.chain[i];
        const net::SwitchId v = best.chain[i + 1];
        auto path = oracle->path(u, v);
        result.deployment.routes[{u, v}] = std::move(*path);
    }
    if (local_oracle) flush_local_oracle_stats(options.sink, *local_oracle);
    return result;
}

GreedyResult greedy_deploy(const tdg::Tdg& t, const net::Network& net,
                           const GreedyOptions& options, net::PathOracle* oracle) {
    const std::vector<net::SwitchId> programmable = net.programmable_switches();
    if (programmable.empty()) {
        throw std::runtime_error("greedy_deploy: no programmable switches");
    }
    std::optional<net::PathOracle> local_oracle;
    if (!oracle) {
        local_oracle.emplace(net);
        oracle = &*local_oracle;
    }
    // Split against the reference switch geometry (all programmable switches
    // in the paper's settings share the Tofino profile; with heterogeneous
    // geometry the per-anchor fit check re-validates).
    const net::SwitchProps& reference = reference_geometry(net, programmable);
    std::vector<tdg::NodeId> all_nodes(t.node_count());
    for (tdg::NodeId v = 0; v < t.node_count(); ++v) all_nodes[v] = v;
    std::vector<std::vector<tdg::NodeId>> segments;
    {
        obs::Span span(options.sink, "greedy.split");
        segments = split_tdg(t, std::move(all_nodes), reference.stages,
                             reference.stage_capacity);
    }

    // Refinement (DESIGN.md §5b): the recursive cut is not balance-aware and
    // can over-fragment; on small instances the exact DP segmentation is
    // cheap, so deploy both and keep the one with the lower max pair
    // metadata. Algorithm 2's split remains the scalable default.
    constexpr std::size_t kDpRefinementLimit = 250;
    std::optional<GreedyResult> best;
    try {
        best = deploy_segments_on_chain(t, net, std::move(segments), options, oracle);
    } catch (const std::runtime_error&) {
        // Fall through: the DP segmentation may still be feasible.
    }
    if (t.node_count() <= kDpRefinementLimit) {
        try {
            const DpSplitResult dp =
                dp_split(t, reference.stages, reference.stage_capacity);
            GreedyResult refined =
                deploy_segments_on_chain(t, net, dp.segments, options, oracle);
            if (!best || max_pair_metadata(t, refined.deployment) <
                             max_pair_metadata(t, best->deployment)) {
                best = std::move(refined);
            }
        } catch (const std::runtime_error&) {
            // DP infeasible under these bounds; keep the recursive result.
        }
    }
    if (!best) {
        throw std::runtime_error(
            "greedy_deploy: no anchor yields enough programmable switches under the "
            "epsilon bounds");
    }
    if (local_oracle) flush_local_oracle_stats(options.sink, *local_oracle);
    return std::move(*best);
}

}  // namespace hermes::core
