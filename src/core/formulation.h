// MILP formulation of problem P#1 (§V-A to §V-C).
//
// Decision variables:
//   L[a][p]      binary   MAT (or segment) a placed on candidate switch p
//                         (the paper's x(a,i,u) aggregated over stages i;
//                         stage packing is restored exactly at decode time)
//   s[a]         integer  pipeline stage of MAT a (MAT-level mode only),
//                         used for the intra-switch order constraint (8)
//   cross[e][pq] binary   AND(L[a][p], L[b][q]) for metadata edges — the
//                         linearized x·x products of objective (1)
//   comm[pq]     binary   some dependency crosses the ordered pair (p, q)
//   y[pq][k]     binary   pair (p, q) communicates over its k-th shortest
//                         path — the paper's y(u, v, p)
//   ord[p]       continuous traversal position of switch p; big-M ordering
//                         makes the cross-switch precedence acyclic (7)
//   occ[p]       binary   switch p hosts at least one MAT (Q_occ)
//   A_max        continuous the objective of (1)
//
// Constraints: unique placement (6), per-switch resources (9, aggregated;
// per-stage packing re-validated at decode), stage order (8), switch order
// big-M (7), comm/y coupling, t_e2e <= epsilon1 (4), Q_occ <= epsilon2 (5),
// and A_max >= crossing metadata per ordered pair (1).
//
// Segment-level mode contracts the TDG into the greedy splitter's segments
// first (one segment per switch), shrinking the model by orders of
// magnitude; it is how the "Optimal"/ILP-framework columns stay runnable on
// network-scale instances, mirroring the paper's use of warm-started,
// time-limited Gurobi.
#pragma once

#include <optional>

#include "core/deployment.h"
#include "core/options.h"
#include "milp/model.h"
#include "net/path_oracle.h"
#include "net/paths.h"

namespace hermes::core {

// Optimization objective. Hermes minimizes A_max; the comparison frameworks
// of §VI-A reuse the same constraint system with their own objectives.
enum class P1Objective : std::uint8_t {
    kMinAmax,             // Hermes (objective (1))
    kMinLatency,          // SPEED: maximize performance = minimize t_e2e
    kMinOccupied,         // Flightplan: fewest devices
    kMinMaxMatsPerSwitch, // MTP: balance control-plane load
    kMinMaxStage,         // P4All / Min-Stage flavor: minimize pipeline depth
};

// How segment-level mode carves the TDG into switch-sized units.
enum class SegmentSplit : std::uint8_t {
    kMinMetadataCut,    // Algorithm 2's metadata-minimizing cuts (Hermes)
    kResourceFirstFit,  // resource-driven topological first-fit (baselines)
};

// Inherits core::CommonOptions; a non-null `sink` records the
// formulation.build_units / formulation.build_model spans and model-size
// counters. threads/seed are accepted but unused (the build is serial and
// deterministic).
struct FormulationOptions : CommonOptions {
    double epsilon1 = std::numeric_limits<double>::infinity();
    std::int64_t epsilon2 = std::numeric_limits<std::int64_t>::max();
    std::size_t k_paths = 2;          // |P(u,v)| per ordered pair
    std::size_t candidate_limit = 0;  // 0 = all programmable switches
    bool segment_level = false;       // contract into segments first
    P1Objective objective = P1Objective::kMinAmax;
    SegmentSplit segment_split = SegmentSplit::kMinMetadataCut;
    // Shared path cache for the Network; the formulation's P(u,v) sets, the
    // candidate pre-selection, and route decoding all reuse its Dijkstra
    // trees and Yen results. Null = compute paths directly (uncached).
    net::PathOracle* oracle = nullptr;
};

class P1Formulation {
public:
    P1Formulation(const tdg::Tdg& t, const net::Network& net, FormulationOptions options);

    [[nodiscard]] const milp::Model& model() const noexcept { return model_; }
    [[nodiscard]] milp::Model& model() noexcept { return model_; }

    [[nodiscard]] const std::vector<net::SwitchId>& candidates() const noexcept {
        return candidates_;
    }

    // Units placed by the model: single MATs (MAT-level) or segments.
    [[nodiscard]] std::size_t unit_count() const noexcept { return units_.size(); }

    // Decodes a solver assignment into a full deployment (with exact stage
    // packing and shortest-path routes). Throws std::runtime_error when the
    // assignment cannot be realized (e.g. stage packing fails).
    [[nodiscard]] Deployment decode(const std::vector<double>& values) const;

    // Encodes a deployment as a warm-start assignment, or nullopt when the
    // deployment does not fit this formulation's candidates/units.
    [[nodiscard]] std::optional<std::vector<double>> encode(const Deployment& d) const;

    // Row-index groups of the built model, recorded while build_model adds
    // them, so cut separators (milp/cuts.h) can target the families that
    // carry knapsack structure — the per-switch capacity rows — and the
    // A_max rows that bound the objective, without rescanning and
    // re-classifying every constraint by shape.
    struct RowGroups {
        std::vector<std::size_t> assignment;  // assign_a: sum_p L[a][p] = 1
        std::vector<std::size_t> capacity;    // cap_p / seg_cap_p / large_p
        std::vector<std::size_t> amax;        // A_max - crossing(p,q) >= 0
        std::vector<std::size_t> coupling;    // sum_k y[pq][k] - comm[pq] = 0
    };
    [[nodiscard]] const RowGroups& row_groups() const noexcept { return row_groups_; }

private:
    struct UnitEdge {
        std::size_t from;
        std::size_t to;
        std::int64_t metadata_bytes;
    };

    void build_units();
    void build_model();
    [[nodiscard]] std::size_t pair_index(std::size_t p, std::size_t q) const;

    const tdg::Tdg& t_;
    const net::Network& net_;
    FormulationOptions options_;

    std::vector<net::SwitchId> candidates_;
    std::vector<std::vector<tdg::NodeId>> units_;  // unit -> member MATs
    std::vector<double> unit_resource_;
    std::vector<UnitEdge> unit_edges_;

    milp::Model model_;
    std::vector<std::vector<milp::VarId>> var_l_;      // [unit][candidate]
    std::vector<milp::VarId> var_s_;                   // [unit] (MAT-level only)
    std::vector<std::vector<milp::VarId>> var_w_;      // [unit][stage] (MAT-level)
    std::vector<std::vector<std::vector<milp::VarId>>> var_z_;  // [unit][stage][cand]
    std::vector<std::vector<milp::VarId>> var_cross_;  // [metadata edge][pair]
    std::vector<std::size_t> metadata_edge_index_;     // edge idx per var_cross_ row
    std::vector<milp::VarId> var_comm_;                // [pair]
    std::vector<std::vector<milp::VarId>> var_y_;      // [pair][k]
    std::vector<std::vector<net::Path>> pair_paths_;   // [pair][k]
    std::vector<milp::VarId> var_ord_;                 // [candidate]
    std::vector<milp::VarId> var_occ_;                 // [candidate]
    milp::VarId var_amax_ = -1;
    milp::VarId var_mats_max_ = -1;   // MTP objective auxiliary
    milp::VarId var_stage_max_ = -1;  // P4All objective auxiliary
    RowGroups row_groups_;
};

}  // namespace hermes::core
