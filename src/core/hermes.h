// Hermes framework facade (§III): program analysis, then problem solving via
// either the greedy heuristic or the MILP ("Optimal") path, returning the
// deployment together with its metrics and solve statistics.
//
// API note: the StatusOr-returning try_deploy_greedy / try_deploy_optimal
// entry points are the only surface — infeasible instances come back as
// util::StatusCode::kInfeasible (budget exhaustion without an incumbent as
// kUnavailable) instead of an exception. Callers that want the old throwing
// behaviour write try_deploy_greedy(t, n).value() — StatusOr::value()
// rethrows non-ok statuses. New code — and all long-lived sessions — should
// go through core::Engine (core/engine.h), which owns the network, merged
// TDG, path oracle, and incumbent and answers mutations with delta
// re-solves.
#pragma once

#include <string>
#include <vector>

#include "core/deployment.h"
#include "core/formulation.h"
#include "core/greedy.h"
#include "core/objective.h"
#include "milp/solver.h"
#include "prog/program.h"
#include "util/status.h"

namespace hermes::core {

// Inherits core::CommonOptions: `threads` drives the greedy anchor search
// (0 = hardware concurrency; the result is identical at any thread count)
// and `sink` turns on tracing/metrics for the whole pipeline (analyzer,
// formulation, branch and bound, verifier). The MILP search keeps its own
// budget knobs under `milp`; an active `deadline` token is forwarded into
// them (unless `milp.deadline` is armed separately) and also truncates the
// greedy anchor search, so one token cancels whichever path is running.
struct HermesOptions : CommonOptions {
    double epsilon1 = std::numeric_limits<double>::infinity();
    std::int64_t epsilon2 = std::numeric_limits<std::int64_t>::max();
    // MILP path configuration.
    std::size_t k_paths = 2;
    std::size_t candidate_limit = 0;
    bool segment_level_milp = false;
    bool warm_start_from_greedy = true;
    milp::MilpOptions milp;
    // Shared per-Network path cache; both solve paths reuse its Dijkstra
    // trees. Null = each call builds a private cache.
    net::PathOracle* oracle = nullptr;
};

struct DeployOutcome {
    Deployment deployment;
    DeploymentMetrics metrics;
    double solve_seconds = 0.0;
    std::string solver_status;  // "greedy", or the MILP status string
    bool optimal = false;       // true when the MILP proved optimality
};

// Step#1: program analysis — merge all programs' TDGs and annotate A(a,b).
// A non-null `sink` records the analyzer phase spans and TDG size counters.
[[nodiscard]] tdg::Tdg analyze(const std::vector<prog::Program>& programs,
                               obs::Sink* sink = nullptr);

// Step#3 (heuristic): Algorithm 2. kInfeasible when the switch capacity
// cannot host the TDG under the epsilon bounds.
[[nodiscard]] util::StatusOr<DeployOutcome> try_deploy_greedy(
    const tdg::Tdg& t, const net::Network& net, const HermesOptions& options = {});

// Step#2+#3 (exact): builds P#1 and solves it with branch and bound, warm
// started from the greedy solution by default. kInfeasible when the model
// proves no deployment exists; kUnavailable when the budget expired before
// any incumbent was found.
[[nodiscard]] util::StatusOr<DeployOutcome> try_deploy_optimal(
    const tdg::Tdg& t, const net::Network& net, const HermesOptions& options = {});

}  // namespace hermes::core
