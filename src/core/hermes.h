// Hermes framework facade (§III): program analysis, then problem solving via
// either the greedy heuristic or the MILP ("Optimal") path, returning the
// deployment together with its metrics and solve statistics.
#pragma once

#include <string>
#include <vector>

#include "core/deployment.h"
#include "core/formulation.h"
#include "core/greedy.h"
#include "core/objective.h"
#include "milp/solver.h"
#include "prog/program.h"

namespace hermes::core {

// Inherits core::CommonOptions: `threads` drives the greedy anchor search
// (0 = hardware concurrency; the result is identical at any thread count)
// and `sink` turns on tracing/metrics for the whole pipeline (analyzer,
// formulation, branch and bound, verifier). The MILP search keeps its own
// budget knobs under `milp`; an active `deadline` token is forwarded into
// them (unless `milp.deadline` is armed separately) and also truncates the
// greedy anchor search, so one token cancels whichever path is running.
struct HermesOptions : CommonOptions {
    double epsilon1 = std::numeric_limits<double>::infinity();
    std::int64_t epsilon2 = std::numeric_limits<std::int64_t>::max();
    // Deprecated alias for CommonOptions::threads, kept one release for the
    // pre-obs API: -1 = unset; any other value overrides `threads` for the
    // greedy anchor search.
    [[deprecated("use HermesOptions::threads")]] int greedy_threads = -1;
    // MILP path configuration.
    std::size_t k_paths = 2;
    std::size_t candidate_limit = 0;
    bool segment_level_milp = false;
    bool warm_start_from_greedy = true;
    milp::MilpOptions milp;
    // Shared per-Network path cache; both solve paths reuse its Dijkstra
    // trees. Null = each call builds a private cache.
    net::PathOracle* oracle = nullptr;
};

struct DeployOutcome {
    Deployment deployment;
    DeploymentMetrics metrics;
    double solve_seconds = 0.0;
    std::string solver_status;  // "greedy", or the MILP status string
    bool optimal = false;       // true when the MILP proved optimality
};

// Step#1: program analysis — merge all programs' TDGs and annotate A(a,b).
// A non-null `sink` records the analyzer phase spans and TDG size counters.
[[nodiscard]] tdg::Tdg analyze(const std::vector<prog::Program>& programs,
                               obs::Sink* sink = nullptr);

// Step#3 (heuristic): Algorithm 2. Throws std::runtime_error on infeasible
// instances (not enough switch capacity under the epsilon bounds).
[[nodiscard]] DeployOutcome deploy_greedy(const tdg::Tdg& t, const net::Network& net,
                                          const HermesOptions& options = {});

// Step#2+#3 (exact): builds P#1 and solves it with branch and bound, warm
// started from the greedy solution by default. Throws std::runtime_error
// when no feasible deployment is found within the limits.
[[nodiscard]] DeployOutcome deploy_optimal(const tdg::Tdg& t, const net::Network& net,
                                           const HermesOptions& options = {});

}  // namespace hermes::core
