#include "core/objective.h"

#include <algorithm>
#include <map>
#include <set>

namespace hermes::core {

std::int64_t max_pair_metadata(const tdg::Tdg& t, const Deployment& d) {
    std::map<std::pair<net::SwitchId, net::SwitchId>, std::int64_t> pair_bytes;
    for (const tdg::Edge& e : t.edges()) {
        const net::SwitchId u = d.switch_of(e.from);
        const net::SwitchId v = d.switch_of(e.to);
        if (u == v) continue;
        pair_bytes[{u, v}] += e.metadata_bytes;
    }
    std::int64_t best = 0;
    for (const auto& [pair, bytes] : pair_bytes) best = std::max(best, bytes);
    return best;
}

std::vector<net::SwitchId> traversal_order(const tdg::Tdg& t, const Deployment& d) {
    const std::vector<tdg::NodeId> topo = t.topological_order();
    std::vector<std::size_t> topo_pos(t.node_count());
    for (std::size_t i = 0; i < topo.size(); ++i) topo_pos[topo[i]] = i;

    std::map<net::SwitchId, std::size_t> first_pos;
    for (tdg::NodeId a = 0; a < d.placements.size(); ++a) {
        const net::SwitchId u = d.placements[a].sw;
        const auto it = first_pos.find(u);
        if (it == first_pos.end() || topo_pos[a] < it->second) first_pos[u] = topo_pos[a];
    }

    // Kahn over the switch-precedence DAG (arcs = cross-switch edges),
    // breaking ties by earliest MAT position: a true linearization of the
    // precedence relation, not just a position sort.
    std::set<std::pair<net::SwitchId, net::SwitchId>> arcs;
    for (const tdg::Edge& e : t.edges()) {
        const net::SwitchId u = d.switch_of(e.from);
        const net::SwitchId v = d.switch_of(e.to);
        if (u != v) arcs.insert({u, v});
    }
    std::map<net::SwitchId, int> in_degree;
    for (const auto& [u, pos] : first_pos) in_degree[u] = 0;
    for (const auto& [u, v] : arcs) ++in_degree[v];

    auto better = [&](net::SwitchId x, net::SwitchId y) {
        if (first_pos.at(x) != first_pos.at(y)) return first_pos.at(x) < first_pos.at(y);
        return x < y;
    };
    std::vector<net::SwitchId> ready;
    for (const auto& [u, deg] : in_degree) {
        if (deg == 0) ready.push_back(u);
    }
    std::vector<net::SwitchId> order;
    while (!ready.empty()) {
        const auto it = std::min_element(ready.begin(), ready.end(), better);
        const net::SwitchId u = *it;
        ready.erase(it);
        order.push_back(u);
        for (const auto& [a, b] : arcs) {
            if (a == u && --in_degree[b] == 0) ready.push_back(b);
        }
    }
    if (order.size() != first_pos.size()) {
        // Cyclic precedence (invalid deployment): fall back to position order
        // so metric evaluation still terminates; the verifier reports the
        // real problem.
        order.clear();
        for (const auto& [u, pos] : first_pos) order.push_back(u);
        std::sort(order.begin(), order.end(), better);
    }
    return order;
}

std::int64_t max_inflight_metadata(const tdg::Tdg& t, const net::Network& net,
                                   const Deployment& d) {
    (void)net;
    if (d.empty()) return 0;
    const std::vector<net::SwitchId> order = traversal_order(t, d);
    std::map<net::SwitchId, std::size_t> chain_pos;
    for (std::size_t i = 0; i < order.size(); ++i) chain_pos[order[i]] = i;

    // Cut bytes between consecutive traversal positions.
    if (order.size() < 2) return 0;
    std::vector<std::int64_t> cut(order.size() - 1, 0);
    for (const tdg::Edge& e : t.edges()) {
        const std::size_t pu = chain_pos.at(d.switch_of(e.from));
        const std::size_t pv = chain_pos.at(d.switch_of(e.to));
        if (pu >= pv) continue;  // same switch or backward (no forward carry)
        for (std::size_t k = pu; k < pv; ++k) cut[k] += e.metadata_bytes;
    }
    return *std::max_element(cut.begin(), cut.end());
}

double total_route_latency(const Deployment& d) {
    double total = 0.0;
    for (const auto& [pair, path] : d.routes) total += path.latency_us;
    return total;
}

std::int64_t occupied_switch_count(const Deployment& d) {
    return static_cast<std::int64_t>(d.occupied_switches().size());
}

DeploymentMetrics evaluate(const tdg::Tdg& t, const net::Network& net,
                           const Deployment& d) {
    DeploymentMetrics m;
    m.max_pair_metadata_bytes = max_pair_metadata(t, d);
    m.max_inflight_metadata_bytes = max_inflight_metadata(t, net, d);
    m.route_latency_us = total_route_latency(d);
    m.occupied_switches = occupied_switch_count(d);
    m.total_resource_units = t.total_resource_units();
    return m;
}

}  // namespace hermes::core
