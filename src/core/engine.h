// Resident deployment engine — the session object behind hermes_serve
// (DESIGN.md §5j).
//
// The paper's pipeline is a one-shot optimizer: analyze programs, solve,
// exit. An Engine instead stays alive across thousands of tenant mutations
// against one live network. It owns the net::Network, the merged TDG of the
// current program set, a shared net::PathOracle, and the verified incumbent
// Deployment, and answers every mutation with a *delta* re-solve that climbs
// the same ladder as the failure-repair path, cheapest rung first:
//
//   classify -> keep/reroute surviving placements -> incremental placement
//   of the affected TDG slice -> full greedy re-solve -> opt-in warm MILP
//   escalation under a core::Deadline.
//
// Mutations arrive one at a time (add_program / remove_program /
// retarget_traffic / apply_fault) or batched: apply() takes a whole epoch of
// mutations, applies program-set and network changes together, and re-solves
// once — the serve daemon coalesces concurrent requests into one epoch this
// way.
//
// Merge representation: the resident merged TDG is the plain union of the
// program TDGs (graph_union + add_write_conflict_edges + analyze), NOT the
// deduplicating merge of the one-shot analyze() pipeline. Union keeps every
// program's nodes in one contiguous id range, so removing a tenant is an id
// shift of the surviving placements instead of a re-merge unwind, and the
// incremental ladder can treat "the affected TDG slice" as a suffix. Merges
// are memoized per ordered program-name set (engine.merge_hits /
// engine.merge_misses) and additions extend the cached prefix in place.
//
// Error handling is StatusOr end to end: an infeasible mutation rolls the
// program set back and leaves the previous verified incumbent standing
// (faults cannot be rolled back — the incumbent is then marked broken until
// a later recover or escalation repairs it). The engine never throws on
// control flow.
#pragma once

#include <cstdint>
#include <limits>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/deployment.h"
#include "core/hermes.h"
#include "core/journal.h"
#include "core/objective.h"
#include "core/options.h"
#include "fault/fault.h"
#include "net/network.h"
#include "net/path_oracle.h"
#include "prog/program.h"
#include "util/status.h"

namespace hermes::core {

// Inherits core::CommonOptions: `threads` drives the greedy rungs, `sink`
// records the engine.* / serve.* metrics, `deadline`/`time_limit_seconds`
// bound a single epoch's re-solve (re-armed per epoch when
// epoch_deadline_seconds is set).
struct EngineOptions : CommonOptions {
    double epsilon1 = std::numeric_limits<double>::infinity();         // t_e2e bound
    std::int64_t epsilon2 = std::numeric_limits<std::int64_t>::max();  // Q_occ bound
    // Wall-clock budget per epoch (0 = none). Armed as a fresh Deadline for
    // every apply()/solve() call and threaded through every ladder rung.
    double epoch_deadline_seconds = 0.0;
    // Climb past the greedy rung into a warm-started exact re-solve when a
    // delta or greedy attempt fails (or when `always_optimal` full solves
    // are requested). Counted under engine.escalations.
    bool allow_milp = false;
    // Full solves (solve(), cold rungs) use the exact path instead of the
    // greedy heuristic. Off by default: delta serving is latency-bound.
    bool always_optimal = false;
    // Budget knobs for the exact escalation.
    milp::MilpOptions milp;
    // Memoized merges kept per ordered program-name set.
    std::size_t merge_cache_limit = 64;
};

// What one epoch's re-solve did.
struct DeltaOutcome {
    // "intact" | "incremental" | "reroute" | "retarget" | "replace" |
    // "greedy" | "milp" | "empty" — the rung that produced the incumbent.
    std::string status;
    // True when the incumbent was patched in place (placements preserved);
    // false when a full re-solve produced a fresh deployment.
    bool delta = false;
    bool escalated = false;          // the MILP rung ran
    // The epoch deadline expired before any rung finished, and the engine
    // fell back to the still-verifying previous incumbent instead of
    // reporting infeasible (status "degraded"; serve.deadline_degrades).
    bool degraded = false;
    std::int64_t epoch = 0;          // engine epoch that produced this
    std::int64_t moved_mats = 0;     // placements whose switch changed
    std::int64_t rerouted_pairs = 0; // routes re-wired in place
    double solve_seconds = 0.0;
    DeploymentMetrics metrics;       // of the (verified) incumbent
};

class Engine {
public:
    // The engine owns the network and its oracle for its whole life; fault
    // events must go through apply()/apply_fault so the oracle stays in
    // sync.
    explicit Engine(net::Network network, EngineOptions options = {});

    // One queued mutation of an epoch batch.
    struct Mutation {
        enum class Kind : std::uint8_t {
            kAddProgram,
            kRemoveProgram,
            kRetarget,
            kFault,
        };
        Kind kind = Kind::kRetarget;
        std::optional<prog::Program> program;  // kAddProgram
        std::string name;                      // kRemoveProgram
        fault::FaultEvent fault;               // kFault (inject and recover)
    };

    // Applies a whole epoch: all program-set changes and fault events land
    // first, then ONE delta re-solve covers the batch. kInvalidInput on
    // duplicate/unknown program names or out-of-range fault ids (the whole
    // batch is rolled back — program set, network, and oracle untouched);
    // kInfeasible when no rung produced a verifiable deployment (program
    // changes rolled back; fault events stay applied and the incumbent is
    // marked broken).
    [[nodiscard]] util::StatusOr<DeltaOutcome> apply(std::vector<Mutation> batch);

    // Single-mutation conveniences (one epoch each).
    [[nodiscard]] util::StatusOr<DeltaOutcome> add_program(prog::Program program);
    [[nodiscard]] util::StatusOr<DeltaOutcome> remove_program(const std::string& name);
    // Re-picks every inter-switch route of the incumbent against the current
    // topology (e.g. after recoveries left traffic on detours).
    [[nodiscard]] util::StatusOr<DeltaOutcome> retarget_traffic();
    [[nodiscard]] util::StatusOr<DeltaOutcome> apply_fault(const fault::FaultEvent& e);

    // Full (non-delta) re-solve of the current program set: greedy, or exact
    // when options().always_optimal. Replaces the incumbent on success.
    [[nodiscard]] util::StatusOr<DeployOutcome> solve();

    // ---- durability (DESIGN.md §5k) --------------------------------------

    // Opens (creating if needed) the write-ahead journal at `path` and
    // starts journaling: every subsequent apply() epoch is appended *before*
    // any state mutates, and a full-state snapshot rotation runs every
    // options.snapshot_interval epochs. kIo on filesystem trouble.
    [[nodiscard]] util::Status enable_journal(const std::string& path,
                                              JournalOptions options = {});

    struct RecoveryReport {
        bool journal_found = false;      // a valid journal existed at `path`
        std::int64_t snapshot_epoch = 0; // epoch restored from the snapshot (0 = none)
        std::int64_t replayed_epochs = 0;
        // Replayed epochs whose re-solve failed. Epochs that failed in the
        // original run replay their failure deterministically, so a nonzero
        // count is not corruption by itself.
        std::int64_t failed_replays = 0;
        std::uint64_t truncated_bytes = 0;  // torn tail dropped by the scan
        std::int64_t epoch = 0;             // engine epoch after recovery
    };

    // Restores state from the journal at `path` (latest snapshot, then
    // replay of the epoch records after it), then enables journaling there
    // and rotates a fresh snapshot so the next restart replays nothing.
    // Requires a fresh engine (no epochs applied yet); a missing journal is
    // a successful empty recovery that starts journaling a new log. The
    // caller must construct the engine with the same base topology the
    // journaled run used — the journal records fault deltas, not the
    // network itself.
    [[nodiscard]] util::StatusOr<RecoveryReport> recover(const std::string& path,
                                                         JournalOptions options = {});

    [[nodiscard]] bool journaling() const noexcept { return journal_.has_value(); }

    // CRC32C over the canonical serialization of the externally observable
    // state: epoch, program names, incumbent placements/routes, and metric
    // bit patterns. The crash harness asserts a recovered engine's
    // fingerprint is bit-identical to an uninterrupted run's.
    [[nodiscard]] std::uint32_t fingerprint() const;

    // Observers.
    [[nodiscard]] const net::Network& network() const noexcept { return network_; }
    [[nodiscard]] net::PathOracle& oracle() noexcept { return oracle_; }
    [[nodiscard]] const EngineOptions& options() const noexcept { return options_; }
    [[nodiscard]] const tdg::Tdg& merged() const noexcept { return merged_; }
    [[nodiscard]] std::size_t program_count() const noexcept { return programs_.size(); }
    [[nodiscard]] std::vector<std::string> program_names() const;
    [[nodiscard]] bool has_incumbent() const noexcept { return incumbent_ok_; }
    // Valid only while has_incumbent(); the engine re-verifies after every
    // epoch, so this deployment is always verifier-clean when exposed.
    [[nodiscard]] const Deployment& incumbent() const noexcept { return incumbent_; }
    [[nodiscard]] const DeploymentMetrics& metrics() const noexcept { return metrics_; }
    [[nodiscard]] std::int64_t epoch() const noexcept { return epoch_; }

private:
    struct ProgramEntry {
        std::string name;
        prog::Program program;
        tdg::Tdg tdg;            // program.to_tdg(), cached
        std::size_t node_count;  // tdg.node_count()
    };

    [[nodiscard]] HermesOptions hermes_options(const Deadline& deadline);
    // Union-merge of `programs` (memoized). Never empty input.
    [[nodiscard]] const tdg::Tdg& merged_for(const std::vector<ProgramEntry>& programs);
    // The delta ladder for one epoch; updates incumbent_/metrics_ on
    // success.
    [[nodiscard]] util::StatusOr<DeltaOutcome> resolve_epoch(
        const std::vector<Placement>& preserved, std::size_t preserved_count,
        bool placements_survive, bool want_retarget, bool programs_changed,
        const Deadline& deadline);
    void bump(const char* counter, std::int64_t delta = 1) const;

    // Full-state snapshot record ({"type":"snapshot", ...}).
    [[nodiscard]] util::Json snapshot_json() const;
    // Inverse of snapshot_json on a fresh engine (kInvalidInput otherwise).
    [[nodiscard]] util::Status restore_snapshot(const util::Json& snapshot);

    net::Network network_;
    EngineOptions options_;
    net::PathOracle oracle_;
    std::vector<ProgramEntry> programs_;
    tdg::Tdg merged_;  // union-merge of programs_, annotated
    Deployment incumbent_;
    DeploymentMetrics metrics_;
    bool incumbent_ok_ = false;
    std::int64_t epoch_ = 0;
    std::optional<Journal> journal_;
    // True while recover() replays journaled epochs: suppresses re-journaling
    // (the records are already durable) and snapshot rotation.
    bool replaying_ = false;

    struct MergeEntry {
        tdg::Tdg tdg;
        std::int64_t last_used = 0;
    };
    std::map<std::string, MergeEntry> merge_cache_;
    std::int64_t merge_clock_ = 0;
};

}  // namespace hermes::core
