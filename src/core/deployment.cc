#include "core/deployment.h"

#include <algorithm>
#include <set>
#include <stdexcept>

namespace hermes::core {

net::SwitchId Deployment::switch_of(tdg::NodeId a) const {
    if (a >= placements.size()) throw std::out_of_range("Deployment::switch_of: bad node");
    return placements[a].sw;
}

std::vector<net::SwitchId> Deployment::occupied_switches() const {
    std::set<net::SwitchId> s;
    for (const Placement& p : placements) s.insert(p.sw);
    return {s.begin(), s.end()};
}

std::vector<tdg::NodeId> Deployment::mats_on(net::SwitchId u) const {
    std::vector<tdg::NodeId> out;
    for (tdg::NodeId a = 0; a < placements.size(); ++a) {
        if (placements[a].sw == u) out.push_back(a);
    }
    std::sort(out.begin(), out.end(), [&](tdg::NodeId x, tdg::NodeId y) {
        if (placements[x].stage != placements[y].stage) {
            return placements[x].stage < placements[y].stage;
        }
        return x < y;
    });
    return out;
}

std::optional<std::vector<int>> assign_stages(const tdg::Tdg& t,
                                              const std::vector<tdg::NodeId>& segment,
                                              int stages, double stage_capacity) {
    if (stages <= 0 || stage_capacity <= 0.0) {
        throw std::invalid_argument("assign_stages: bad switch geometry");
    }
    const std::size_t n = t.node_count();
    std::vector<char> member(n, 0);
    for (const tdg::NodeId v : segment) {
        if (v >= n) throw std::out_of_range("assign_stages: bad node id");
        if (member[v]) {
            throw std::invalid_argument("assign_stages: duplicate nodes in segment");
        }
        member[v] = 1;
    }

    // Process in global topological order restricted to the segment. A
    // single edge pass builds intra-segment predecessor lists; this routine
    // is the innermost loop of splitting/coalescing, so everything is
    // node-indexed flat storage (no associative containers).
    std::vector<tdg::NodeId> order;
    order.reserve(segment.size());
    for (const tdg::NodeId v : t.topological_order()) {
        if (member[v]) order.push_back(v);
    }
    std::vector<std::vector<tdg::NodeId>> preds(n);
    for (const tdg::Edge& e : t.edges()) {
        if (member[e.from] && member[e.to]) preds[e.to].push_back(e.from);
    }

    std::vector<double> stage_load(static_cast<std::size_t>(stages), 0.0);
    std::vector<int> stage_of(n, 0);
    for (const tdg::NodeId v : order) {
        int earliest = 0;
        for (const tdg::NodeId p : preds[v]) {
            earliest = std::max(earliest, stage_of[p] + 1);
        }
        const double need = t.node(v).resource_units();
        if (need > stage_capacity) return std::nullopt;  // MAT larger than a stage
        int chosen = -1;
        for (int s = earliest; s < stages; ++s) {
            if (stage_load[static_cast<std::size_t>(s)] + need <= stage_capacity + 1e-9) {
                chosen = s;
                break;
            }
        }
        if (chosen < 0) return std::nullopt;
        stage_load[static_cast<std::size_t>(chosen)] += need;
        stage_of[v] = chosen;
    }

    std::vector<int> result(segment.size());
    for (std::size_t i = 0; i < segment.size(); ++i) result[i] = stage_of[segment[i]];
    return result;
}

namespace {

// Depth-first packing over nodes in topological order. Tries every stage
// >= the node's earliest admissible one, largest remaining capacity first is
// unnecessary — plain ascending order with capacity pruning suffices here.
bool pack_recursive(const tdg::Tdg& t, const std::vector<tdg::NodeId>& order,
                    const std::vector<std::vector<std::size_t>>& preds, std::size_t index,
                    int stages, double stage_capacity, std::vector<double>& load,
                    std::vector<int>& stage_of, std::size_t& budget) {
    if (index == order.size()) return true;
    if (budget == 0) return false;
    --budget;
    int earliest = 0;
    for (const std::size_t p : preds[index]) {
        earliest = std::max(earliest, stage_of[p] + 1);
    }
    const double need = t.node(order[index]).resource_units();
    for (int s = earliest; s < stages; ++s) {
        if (load[static_cast<std::size_t>(s)] + need > stage_capacity + 1e-9) continue;
        load[static_cast<std::size_t>(s)] += need;
        stage_of[index] = s;
        if (pack_recursive(t, order, preds, index + 1, stages, stage_capacity, load,
                           stage_of, budget)) {
            return true;
        }
        load[static_cast<std::size_t>(s)] -= need;
    }
    return false;
}

}  // namespace

std::optional<std::vector<int>> assign_stages_exact(const tdg::Tdg& t,
                                                    const std::vector<tdg::NodeId>& segment,
                                                    int stages, double stage_capacity,
                                                    std::size_t node_budget) {
    if (stages <= 0 || stage_capacity <= 0.0) {
        throw std::invalid_argument("assign_stages_exact: bad switch geometry");
    }
    const std::set<tdg::NodeId> members(segment.begin(), segment.end());
    if (members.size() != segment.size()) {
        throw std::invalid_argument("assign_stages_exact: duplicate nodes in segment");
    }
    std::vector<tdg::NodeId> order;
    for (const tdg::NodeId v : t.topological_order()) {
        if (members.count(v)) order.push_back(v);
    }
    std::map<tdg::NodeId, std::size_t> index_of;
    for (std::size_t i = 0; i < order.size(); ++i) index_of[order[i]] = i;
    std::vector<std::vector<std::size_t>> preds(order.size());
    for (const tdg::Edge& e : t.edges()) {
        if (members.count(e.from) && members.count(e.to)) {
            preds[index_of[e.to]].push_back(index_of[e.from]);
        }
    }
    std::vector<double> load(static_cast<std::size_t>(stages), 0.0);
    std::vector<int> stage_of(order.size(), 0);
    std::size_t budget = node_budget;
    if (!pack_recursive(t, order, preds, 0, stages, stage_capacity, load, stage_of,
                        budget)) {
        return std::nullopt;
    }
    std::vector<int> result(segment.size());
    for (std::size_t i = 0; i < segment.size(); ++i) {
        result[i] = stage_of[index_of[segment[i]]];
    }
    return result;
}

bool segment_fits(const tdg::Tdg& t, const std::vector<tdg::NodeId>& segment, int stages,
                  double stage_capacity) {
    double total = 0.0;
    for (const tdg::NodeId v : segment) total += t.node(v).resource_units();
    if (total > stages * stage_capacity + 1e-9) return false;
    return assign_stages(t, segment, stages, stage_capacity).has_value();
}

}  // namespace hermes::core
