#include "core/greedy_reference.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>
#include <stdexcept>

#include "core/dp_split.h"
#include "core/objective.h"

namespace hermes::core::reference {

namespace {

std::vector<tdg::NodeId> restricted_topo(const tdg::Tdg& t,
                                         const std::vector<tdg::NodeId>& nodes) {
    const std::set<tdg::NodeId> members(nodes.begin(), nodes.end());
    std::vector<tdg::NodeId> order;
    order.reserve(nodes.size());
    for (const tdg::NodeId v : t.topological_order()) {
        if (members.count(v)) order.push_back(v);
    }
    return order;
}

const net::SwitchProps& reference_geometry(const net::Network& net,
                                           const std::vector<net::SwitchId>& programmable) {
    const net::SwitchProps* best = &net.props(programmable.front());
    for (const net::SwitchId u : programmable) {
        const net::SwitchProps& props = net.props(u);
        if (props.stages * props.stage_capacity > best->stages * best->stage_capacity) {
            best = &props;
        }
    }
    return *best;
}

}  // namespace

std::vector<std::vector<tdg::NodeId>> split_tdg(const tdg::Tdg& t,
                                                std::vector<tdg::NodeId> nodes, int stages,
                                                double stage_capacity) {
    if (nodes.empty()) return {};
    if (segment_fits(t, nodes, stages, stage_capacity)) return {std::move(nodes)};
    if (nodes.size() < 2) {
        throw std::runtime_error("split_tdg: MAT '" + t.node(nodes.front()).name() +
                                 "' cannot fit any switch");
    }

    const std::vector<tdg::NodeId> order = restricted_topo(t, nodes);
    const std::set<tdg::NodeId> members(nodes.begin(), nodes.end());

    std::set<tdg::NodeId> prefix;
    std::int64_t cut = 0;
    std::int64_t best_cut = std::numeric_limits<std::int64_t>::max();
    std::size_t best_pos = 1;
    for (std::size_t pos = 0; pos + 1 < order.size(); ++pos) {
        const tdg::NodeId x = order[pos];
        for (const tdg::Edge& e : t.edges()) {
            if (e.from == x && members.count(e.to) && !prefix.count(e.to)) {
                cut += e.metadata_bytes;
            }
            if (e.to == x && prefix.count(e.from)) {
                cut -= e.metadata_bytes;
            }
        }
        prefix.insert(x);
        if (cut < best_cut) {
            best_cut = cut;
            best_pos = pos + 1;
        }
    }

    std::vector<tdg::NodeId> head(order.begin(),
                                  order.begin() + static_cast<std::ptrdiff_t>(best_pos));
    std::vector<tdg::NodeId> tail(order.begin() + static_cast<std::ptrdiff_t>(best_pos),
                                  order.end());
    std::vector<std::vector<tdg::NodeId>> result =
        split_tdg(t, std::move(head), stages, stage_capacity);
    std::vector<std::vector<tdg::NodeId>> rest =
        split_tdg(t, std::move(tail), stages, stage_capacity);
    result.insert(result.end(), std::make_move_iterator(rest.begin()),
                  std::make_move_iterator(rest.end()));
    return result;
}

std::vector<std::vector<tdg::NodeId>> split_tdg_first_fit(const tdg::Tdg& t,
                                                          std::vector<tdg::NodeId> nodes,
                                                          int stages,
                                                          double stage_capacity) {
    if (nodes.empty()) return {};
    const std::vector<tdg::NodeId> order = restricted_topo(t, nodes);

    std::vector<std::vector<tdg::NodeId>> segments;
    std::vector<tdg::NodeId> current;
    for (const tdg::NodeId v : order) {
        std::vector<tdg::NodeId> extended = current;
        extended.push_back(v);
        if (segment_fits(t, extended, stages, stage_capacity)) {
            current = std::move(extended);
            continue;
        }
        if (current.empty()) {
            throw std::runtime_error("split_tdg_first_fit: MAT '" + t.node(v).name() +
                                     "' cannot fit any switch");
        }
        segments.push_back(std::move(current));
        current = {v};
        if (!segment_fits(t, current, stages, stage_capacity)) {
            throw std::runtime_error("split_tdg_first_fit: MAT '" + t.node(v).name() +
                                     "' cannot fit any switch");
        }
    }
    if (!current.empty()) segments.push_back(std::move(current));
    return segments;
}

std::vector<std::vector<tdg::NodeId>> coalesce_segments(
    const tdg::Tdg& t, std::vector<std::vector<tdg::NodeId>> segments, std::size_t target,
    int stages, double stage_capacity) {
    auto cut_between = [&](const std::vector<tdg::NodeId>& a,
                           const std::vector<tdg::NodeId>& b) {
        const std::set<tdg::NodeId> sa(a.begin(), a.end());
        const std::set<tdg::NodeId> sb(b.begin(), b.end());
        std::int64_t bytes = 0;
        for (const tdg::Edge& e : t.edges()) {
            if (sa.count(e.from) && sb.count(e.to)) bytes += e.metadata_bytes;
        }
        return bytes;
    };
    while (segments.size() > target) {
        std::size_t best = segments.size();
        std::int64_t best_cut = 0;
        for (std::size_t i = 0; i + 1 < segments.size(); ++i) {
            std::vector<tdg::NodeId> merged = segments[i];
            merged.insert(merged.end(), segments[i + 1].begin(), segments[i + 1].end());
            if (!segment_fits(t, merged, stages, stage_capacity)) continue;
            const std::int64_t cut = cut_between(segments[i], segments[i + 1]);
            if (best == segments.size() || cut > best_cut) {
                best = i;
                best_cut = cut;
            }
        }
        if (best == segments.size()) break;  // nothing mergeable
        segments[best].insert(segments[best].end(), segments[best + 1].begin(),
                              segments[best + 1].end());
        segments.erase(segments.begin() + static_cast<std::ptrdiff_t>(best) + 1);
    }
    return segments;
}

GreedyResult deploy_segments_on_chain(const tdg::Tdg& t, const net::Network& net,
                                      std::vector<std::vector<tdg::NodeId>> segments,
                                      const GreedyOptions& options) {
    const std::vector<net::SwitchId> programmable = net.programmable_switches();
    if (programmable.empty()) {
        throw std::runtime_error("greedy_deploy: no programmable switches");
    }

    const std::size_t max_chain = std::min<std::size_t>(
        programmable.size(),
        options.epsilon2 < static_cast<std::int64_t>(programmable.size())
            ? static_cast<std::size_t>(options.epsilon2)
            : programmable.size());
    if (segments.size() > max_chain) {
        const net::SwitchProps& geometry = reference_geometry(net, programmable);
        segments = coalesce_segments(t, std::move(segments), max_chain, geometry.stages,
                                     geometry.stage_capacity);
    }

    std::optional<std::vector<net::SwitchId>> best_chain;
    std::optional<std::vector<std::vector<tdg::NodeId>>> best_segments;
    double best_latency = std::numeric_limits<double>::infinity();
    net::SwitchId best_anchor = 0;
    for (const net::SwitchId u : programmable) {
        std::vector<net::SwitchId> chain = select_switches(net, u, options);
        std::vector<std::vector<tdg::NodeId>> local = segments;
        if (chain.size() < local.size()) continue;
        chain.resize(local.size());
        double latency = 0.0;
        bool ok = true;
        for (std::size_t i = 0; i + 1 < chain.size(); ++i) {
            const auto hop = net::shortest_path(net, chain[i], chain[i + 1]);
            if (!hop) {
                ok = false;
                break;
            }
            latency += hop->latency_us;
        }
        if (!ok) continue;
        for (std::size_t i = 0; i < local.size() && ok; ++i) {
            ok = segment_fits(t, local[i], net.props(chain[i]).stages,
                              net.props(chain[i]).stage_capacity);
        }
        if (!ok) continue;
        if (latency < best_latency) {
            best_latency = latency;
            best_chain = std::move(chain);
            best_segments = std::move(local);
            best_anchor = u;
        }
    }
    if (!best_chain) {
        throw std::runtime_error(
            "greedy_deploy: no anchor yields enough programmable switches for " +
            std::to_string(segments.size()) + " segments under the epsilon bounds");
    }

    GreedyResult result;
    result.segments = *best_segments;
    result.anchor = best_anchor;
    result.deployment.placements.resize(t.node_count());
    for (std::size_t i = 0; i < result.segments.size(); ++i) {
        const net::SwitchId sw = (*best_chain)[i];
        const auto stages = assign_stages(t, result.segments[i], net.props(sw).stages,
                                          net.props(sw).stage_capacity);
        if (!stages) {
            throw std::runtime_error("greedy_deploy: stage assignment failed on switch " +
                                     net.props(sw).name);
        }
        for (std::size_t j = 0; j < result.segments[i].size(); ++j) {
            result.deployment.placements[result.segments[i][j]] =
                Placement{sw, (*stages)[j]};
        }
    }
    for (std::size_t i = 0; i + 1 < best_chain->size(); ++i) {
        const net::SwitchId u = (*best_chain)[i];
        const net::SwitchId v = (*best_chain)[i + 1];
        auto path = net::shortest_path(net, u, v);
        result.deployment.routes[{u, v}] = std::move(*path);
    }
    return result;
}

GreedyResult greedy_deploy(const tdg::Tdg& t, const net::Network& net,
                           const GreedyOptions& options) {
    const std::vector<net::SwitchId> programmable = net.programmable_switches();
    if (programmable.empty()) {
        throw std::runtime_error("greedy_deploy: no programmable switches");
    }
    const net::SwitchProps& reference = reference_geometry(net, programmable);
    std::vector<tdg::NodeId> all_nodes(t.node_count());
    for (tdg::NodeId v = 0; v < t.node_count(); ++v) all_nodes[v] = v;
    std::vector<std::vector<tdg::NodeId>> segments =
        split_tdg(t, std::move(all_nodes), reference.stages, reference.stage_capacity);

    constexpr std::size_t kDpRefinementLimit = 250;
    std::optional<GreedyResult> best;
    try {
        best = reference::deploy_segments_on_chain(t, net, std::move(segments), options);
    } catch (const std::runtime_error&) {
        // Fall through: the DP segmentation may still be feasible.
    }
    if (t.node_count() <= kDpRefinementLimit) {
        try {
            const DpSplitResult dp =
                dp_split(t, reference.stages, reference.stage_capacity);
            GreedyResult refined =
                reference::deploy_segments_on_chain(t, net, dp.segments, options);
            if (!best || max_pair_metadata(t, refined.deployment) <
                             max_pair_metadata(t, best->deployment)) {
                best = std::move(refined);
            }
        } catch (const std::runtime_error&) {
            // DP infeasible under these bounds; keep the recursive result.
        }
    }
    if (!best) {
        throw std::runtime_error(
            "greedy_deploy: no anchor yields enough programmable switches under the "
            "epsilon bounds");
    }
    return std::move(*best);
}

}  // namespace hermes::core::reference
