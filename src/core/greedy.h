// Greedy-based heuristic of Hermes (§V-E, Algorithm 2).
//
// Splits the merged TDG into switch-sized segments at the topological prefix
// cuts that carry the least metadata, then maps the segment chain onto the
// closest feasible chain of programmable switches under the ε-bounds, wiring
// consecutive switches with shortest paths. Runs in
// O((|V|+|E|)·log|V| + |V_G|²) — the polynomial-time side of the paper's
// optimality/timeliness tradeoff.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "core/deployment.h"

namespace hermes::core {

struct GreedyOptions {
    double epsilon1 = std::numeric_limits<double>::infinity();   // t_e2e bound (us)
    std::int64_t epsilon2 = std::numeric_limits<std::int64_t>::max();  // Q_occ bound
};

struct GreedyResult {
    Deployment deployment;
    std::vector<std::vector<tdg::NodeId>> segments;  // in traversal order
    net::SwitchId anchor = 0;                        // chain head switch
};

// SPLIT_TDG: recursively partitions `nodes` (defaults to all of t) into
// segments that each fit a switch with the given geometry, cutting at the
// minimum-metadata topological prefix each time. Throws std::runtime_error
// when a single MAT exceeds a stage's capacity.
[[nodiscard]] std::vector<std::vector<tdg::NodeId>> split_tdg(
    const tdg::Tdg& t, std::vector<tdg::NodeId> nodes, int stages, double stage_capacity);

// Resource-driven topological first-fit split: fills each segment with
// nodes in topological order until the next node no longer fits. This is
// the metadata-oblivious splitting the comparison frameworks effectively
// perform, used as their segment-level unit builder.
[[nodiscard]] std::vector<std::vector<tdg::NodeId>> split_tdg_first_fit(
    const tdg::Tdg& t, std::vector<tdg::NodeId> nodes, int stages, double stage_capacity);

// SELECT_SWITCHES: the anchor plus up to epsilon2-1 nearest programmable
// switches reachable from it, keeping the chain's consecutive shortest-path
// latency within epsilon1. Returns the chain (anchor first).
[[nodiscard]] std::vector<net::SwitchId> select_switches(const net::Network& net,
                                                         net::SwitchId anchor,
                                                         const GreedyOptions& options);

// Coalesces adjacent segments — smallest inter-segment metadata first —
// while the merged pair still fits one switch, until at most `target`
// segments remain or no merge applies. Recursive min-cut splitting can
// over-fragment (a cut-minimizing split is not balance-aware); coalescing
// restores feasibility on switch-starved networks without giving up the
// minimum-metadata cuts.
[[nodiscard]] std::vector<std::vector<tdg::NodeId>> coalesce_segments(
    const tdg::Tdg& t, std::vector<std::vector<tdg::NodeId>> segments,
    std::size_t target, int stages, double stage_capacity);

// Places an already-computed segment list onto the best feasible switch
// chain (lines 21-29 of Algorithm 2): for every programmable anchor, builds
// its candidate chain via select_switches, keeps the feasible chain with the
// lowest total latency, assigns segment i to chain switch i, and wires
// consecutive switches with shortest paths. Throws std::runtime_error when
// no anchor yields enough switches.
[[nodiscard]] GreedyResult deploy_segments_on_chain(
    const tdg::Tdg& t, const net::Network& net,
    std::vector<std::vector<tdg::NodeId>> segments, const GreedyOptions& options = {});

// Full Algorithm 2. Considers every programmable anchor, keeps the feasible
// chain with the lowest total latency. Throws std::runtime_error when no
// anchor yields enough switches for the segments.
[[nodiscard]] GreedyResult greedy_deploy(const tdg::Tdg& t, const net::Network& net,
                                         const GreedyOptions& options = {});

}  // namespace hermes::core
