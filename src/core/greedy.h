// Greedy-based heuristic of Hermes (§V-E, Algorithm 2).
//
// Splits the merged TDG into switch-sized segments at the topological prefix
// cuts that carry the least metadata, then maps the segment chain onto the
// closest feasible chain of programmable switches under the ε-bounds, wiring
// consecutive switches with shortest paths.
//
// The splitter and coalescer run on an adjacency-indexed view of the TDG
// (out-/in-edge lists plus flat membership flags), so one split level is
// O(V + E) instead of the edge-rescanning O(V·E); the anchor search shares
// one net::PathOracle per Network and can fan out over a thread pool. All
// rewrites are bit-identical to the retained reference implementations in
// core/greedy_reference.h (enforced by tests/greedy_equivalence_test).
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "core/deployment.h"
#include "core/options.h"
#include "net/path_oracle.h"

namespace hermes::core {

// Inherits core::CommonOptions: `threads` is the worker count for the anchor
// search in deploy_segments_on_chain (0 = hardware concurrency; the
// deterministic lowest-latency / lowest-anchor-id tie-break makes the result
// identical at any thread count), and `sink` records greedy.* spans and
// counters.
struct GreedyOptions : CommonOptions {
    double epsilon1 = std::numeric_limits<double>::infinity();   // t_e2e bound (us)
    std::int64_t epsilon2 = std::numeric_limits<std::int64_t>::max();  // Q_occ bound
};

struct GreedyResult {
    Deployment deployment;
    std::vector<std::vector<tdg::NodeId>> segments;  // in traversal order
    net::SwitchId anchor = 0;                        // chain head switch
};

// SPLIT_TDG: recursively partitions `nodes` (defaults to all of t) into
// segments that each fit a switch with the given geometry, cutting at the
// minimum-metadata topological prefix each time. Throws std::runtime_error
// when a single MAT exceeds a stage's capacity.
[[nodiscard]] std::vector<std::vector<tdg::NodeId>> split_tdg(
    const tdg::Tdg& t, std::vector<tdg::NodeId> nodes, int stages, double stage_capacity);

// Resource-driven topological first-fit split: fills each segment with
// nodes in topological order until the next node no longer fits. This is
// the metadata-oblivious splitting the comparison frameworks effectively
// perform, used as their segment-level unit builder.
[[nodiscard]] std::vector<std::vector<tdg::NodeId>> split_tdg_first_fit(
    const tdg::Tdg& t, std::vector<tdg::NodeId> nodes, int stages, double stage_capacity);

// SELECT_SWITCHES: the anchor plus up to epsilon2-1 nearest programmable
// switches reachable from it, keeping the chain's consecutive shortest-path
// latency within epsilon1. Returns the chain (anchor first). When `oracle`
// is non-null its cached Dijkstra trees answer every distance query.
[[nodiscard]] std::vector<net::SwitchId> select_switches(const net::Network& net,
                                                         net::SwitchId anchor,
                                                         const GreedyOptions& options,
                                                         net::PathOracle* oracle = nullptr);

// Coalesces adjacent segments — smallest inter-segment metadata first —
// while the merged pair still fits one switch, until at most `target`
// segments remain or no merge applies. Recursive min-cut splitting can
// over-fragment (a cut-minimizing split is not balance-aware); coalescing
// restores feasibility on switch-starved networks without giving up the
// minimum-metadata cuts.
[[nodiscard]] std::vector<std::vector<tdg::NodeId>> coalesce_segments(
    const tdg::Tdg& t, std::vector<std::vector<tdg::NodeId>> segments,
    std::size_t target, int stages, double stage_capacity);

// Places an already-computed segment list onto the best feasible switch
// chain (lines 21-29 of Algorithm 2): for every programmable anchor, builds
// its candidate chain via select_switches, keeps the feasible chain with the
// lowest total latency (ties broken toward the lowest anchor id), assigns
// segment i to chain switch i, and wires consecutive switches with shortest
// paths. The anchor loop runs on options.threads workers and is
// deterministic at any thread count. Throws std::runtime_error when no
// anchor yields enough switches.
[[nodiscard]] GreedyResult deploy_segments_on_chain(
    const tdg::Tdg& t, const net::Network& net,
    std::vector<std::vector<tdg::NodeId>> segments, const GreedyOptions& options = {},
    net::PathOracle* oracle = nullptr);

// Full Algorithm 2. Considers every programmable anchor, keeps the feasible
// chain with the lowest total latency. Throws std::runtime_error when no
// anchor yields enough switches for the segments. Pass a shared oracle to
// reuse Dijkstra trees across calls touching the same Network.
[[nodiscard]] GreedyResult greedy_deploy(const tdg::Tdg& t, const net::Network& net,
                                         const GreedyOptions& options = {},
                                         net::PathOracle* oracle = nullptr);

}  // namespace hermes::core
