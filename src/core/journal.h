// Write-ahead journal for the resident serve engine (DESIGN.md §5k).
//
// The journal makes hermes_serve crash-safe: every apply() epoch is appended
// here as a framed record *before* the engine mutates any state, so a
// `kill -9` at any instruction leaves one of exactly two on-disk states —
// the epoch never happened (torn or missing record, truncated on recovery)
// or the epoch is durable and replays deterministically. Periodically the
// whole engine state is written as a `snapshot` record into a fresh log that
// atomically replaces the old one (tmp file + rename), bounding both log
// growth and recovery replay time.
//
// On-disk format (little-endian):
//
//   magic   "HERMESJ1"                                      (8 bytes, once)
//   record  [u32 payload length][u32 crc32c(payload)][payload bytes]
//
// The payload is one compact JSON object (util::Json), with a "type" key of
// "epoch" or "snapshot". Recovery scans forward from the magic; the first
// record whose header is short, whose payload is short, whose CRC mismatches,
// or whose JSON fails to parse ends valid history — everything after it is a
// torn tail that Journal::open truncates away.
//
// Durability is a policy knob, not a format property:
//   none   never fsync (journal is page-cache only; survives kill -9,
//          not power loss)
//   batch  fsync every `batch_interval` records (default)
//   epoch  fsync every record, before append() returns
//
// Crash-injection seams (fault::crash_point) are compiled into append() and
// rotate() between the partial writes; see fault/crash.h for the map.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/deployment.h"
#include "obs/obs.h"
#include "prog/program.h"
#include "util/json.h"
#include "util/status.h"

namespace hermes::core {

enum class Durability : std::uint8_t {
    kNone,   // never fsync
    kBatch,  // fsync every batch_interval appends
    kEpoch,  // fsync every append
};

[[nodiscard]] const char* to_string(Durability d) noexcept;
// "none" | "batch" | "epoch"; nullopt on anything else.
[[nodiscard]] std::optional<Durability> parse_durability(std::string_view text) noexcept;

struct JournalOptions {
    Durability durability = Durability::kBatch;
    // Epoch records between snapshot rotations (0 = never rotate
    // automatically; the owner can still call rotate()).
    std::int64_t snapshot_interval = 64;
    // Appends between fsyncs under Durability::kBatch.
    std::int64_t batch_interval = 8;
    // Metrics: journal.appends / journal.fsyncs / journal.rotates counters
    // and the journal.fsync_us histogram.
    obs::Sink* sink = nullptr;
};

// An append-only record log. Move-only (owns a POSIX fd).
class Journal {
public:
    // What a forward scan of a journal file found.
    struct ScanResult {
        bool found = false;                // file existed with a valid magic
        std::vector<util::Json> records;   // every valid record, in order
        std::uint64_t valid_bytes = 0;     // prefix ending at the last valid record
        std::uint64_t torn_bytes = 0;      // trailing bytes past valid history
    };

    // Reads and validates `path` without modifying it. A missing file is not
    // an error (found=false); an existing file without the magic is kIo (the
    // journal never clobbers a file it did not write). A file shorter than
    // the magic counts as a torn creation (found=false, torn_bytes=size).
    [[nodiscard]] static util::StatusOr<ScanResult> scan(const std::string& path);

    // Opens `path` for appending, creating it (with the magic) when absent
    // and truncating any torn tail of an existing log. kIo on filesystem
    // errors or foreign file content.
    [[nodiscard]] static util::StatusOr<Journal> open(std::string path,
                                                      JournalOptions options = {});

    Journal(Journal&& other) noexcept;
    Journal& operator=(Journal&& other) noexcept;
    Journal(const Journal&) = delete;
    Journal& operator=(const Journal&) = delete;
    ~Journal();

    // Appends one framed record and applies the durability policy. The
    // payload should carry a "type" key; append() does not inspect it beyond
    // counting epoch records toward should_rotate().
    [[nodiscard]] util::Status append(const util::Json& payload);

    // Replaces the whole log with a fresh one containing only `snapshot`
    // (which must be the caller's full-state record): written to
    // `path + ".tmp"`, fsynced, then renamed over the log — the swap is
    // atomic, so a crash leaves either the old complete log or the new one.
    [[nodiscard]] util::Status rotate(const util::Json& snapshot);

    // Forces an fsync now regardless of policy (flush boundary).
    [[nodiscard]] util::Status sync();

    [[nodiscard]] const std::string& path() const noexcept { return path_; }
    [[nodiscard]] const JournalOptions& options() const noexcept { return options_; }
    // Appends since the last rotate (or open, whichever is later).
    [[nodiscard]] std::int64_t records_since_rotate() const noexcept {
        return records_since_rotate_;
    }
    // True when snapshot_interval > 0 and enough records accumulated that
    // the owner should serialize a snapshot and call rotate().
    [[nodiscard]] bool should_rotate() const noexcept {
        return options_.snapshot_interval > 0 &&
               records_since_rotate_ >= options_.snapshot_interval;
    }

private:
    Journal(std::string path, JournalOptions options, int fd)
        : path_(std::move(path)), options_(options), fd_(fd) {}

    [[nodiscard]] util::Status sync_now();

    std::string path_;
    JournalOptions options_;
    int fd_ = -1;
    std::int64_t records_since_rotate_ = 0;
    std::int64_t unsynced_records_ = 0;
};

// ---- JSON codecs for journal payloads ------------------------------------
//
// These serialize the *full* structures (not names): a recovered process must
// rebuild programs that only ever existed in a client's memory.

[[nodiscard]] util::Json program_to_json(const prog::Program& program);
[[nodiscard]] util::StatusOr<prog::Program> program_from_json(const util::Json& j);

[[nodiscard]] util::Json deployment_to_json(const Deployment& d);
[[nodiscard]] util::StatusOr<Deployment> deployment_from_json(const util::Json& j);

}  // namespace hermes::core
