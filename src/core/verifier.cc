#include "core/verifier.h"

#include <map>
#include <queue>
#include <set>
#include <sstream>

#include "core/objective.h"
#include "obs/obs.h"

namespace hermes::core {

namespace {

// Reachability in the directed route graph: metadata may be relayed through
// intermediate programmable switches, so constraint (7) is satisfied when v
// is reachable from u via recorded routes.
bool route_reachable(const Deployment& d, net::SwitchId u, net::SwitchId v) {
    std::set<net::SwitchId> seen{u};
    std::queue<net::SwitchId> frontier;
    frontier.push(u);
    while (!frontier.empty()) {
        const net::SwitchId x = frontier.front();
        frontier.pop();
        if (x == v) return true;
        for (const auto& [pair, path] : d.routes) {
            if (pair.first == x && !seen.count(pair.second)) {
                seen.insert(pair.second);
                frontier.push(pair.second);
            }
        }
    }
    return false;
}

// The cross-switch precedence relation must be acyclic or no packet
// traversal order can satisfy all dependencies.
bool switch_precedence_acyclic(const tdg::Tdg& t, const Deployment& d) {
    std::set<std::pair<net::SwitchId, net::SwitchId>> arcs;
    std::set<net::SwitchId> nodes;
    for (const tdg::Edge& e : t.edges()) {
        const net::SwitchId u = d.switch_of(e.from);
        const net::SwitchId v = d.switch_of(e.to);
        nodes.insert(u);
        nodes.insert(v);
        if (u != v) arcs.insert({u, v});
    }
    // Kahn over the switch graph.
    std::map<net::SwitchId, int> in_degree;
    for (const net::SwitchId n : nodes) in_degree[n] = 0;
    for (const auto& [u, v] : arcs) ++in_degree[v];
    std::queue<net::SwitchId> ready;
    for (const auto& [n, deg] : in_degree) {
        if (deg == 0) ready.push(n);
    }
    std::size_t removed = 0;
    while (!ready.empty()) {
        const net::SwitchId u = ready.front();
        ready.pop();
        ++removed;
        for (const auto& [a, b] : arcs) {
            if (a == u && --in_degree[b] == 0) ready.push(b);
        }
    }
    return removed == nodes.size();
}

VerificationReport verify_impl(const tdg::Tdg& t, const net::Network& net,
                               const Deployment& d, const VerifyOptions& options) {
    VerificationReport report;

    if (d.placements.size() != t.node_count()) {
        report.fail("placement count " + std::to_string(d.placements.size()) +
                    " != node count " + std::to_string(t.node_count()));
        return report;  // nothing else is checkable
    }

    // (6) node deployment on programmable switches, valid stages.
    for (tdg::NodeId a = 0; a < d.placements.size(); ++a) {
        const Placement& p = d.placements[a];
        if (p.sw >= net.switch_count()) {
            report.fail("MAT '" + t.node(a).name() + "' placed on unknown switch");
            continue;
        }
        const net::SwitchProps& props = net.props(p.sw);
        if (!props.programmable) {
            report.fail("MAT '" + t.node(a).name() + "' placed on non-programmable " +
                        props.name);
        }
        if (!net.switch_up(p.sw)) {
            report.fail("MAT '" + t.node(a).name() + "' placed on failed switch " +
                        props.name);
        }
        if (p.stage < 0 || p.stage >= props.stages) {
            report.fail("MAT '" + t.node(a).name() + "' placed on invalid stage " +
                        std::to_string(p.stage) + " of " + props.name);
        }
    }
    if (!report.ok) return report;

    // (9) per-stage resource capacity.
    std::map<std::pair<net::SwitchId, int>, double> stage_load;
    for (tdg::NodeId a = 0; a < d.placements.size(); ++a) {
        stage_load[{d.placements[a].sw, d.placements[a].stage}] +=
            t.node(a).resource_units();
    }
    for (const auto& [key, load] : stage_load) {
        const double cap = net.props(key.first).stage_capacity;
        if (load > cap + 1e-9) {
            std::ostringstream os;
            os << "stage " << key.second << " of " << net.props(key.first).name
               << " overloaded: " << load << " > " << cap;
            report.fail(os.str());
        }
    }

    // (7)(8) edge deployment.
    for (const tdg::Edge& e : t.edges()) {
        const Placement& pa = d.placements[e.from];
        const Placement& pb = d.placements[e.to];
        if (pa.sw == pb.sw) {
            if (pa.stage >= pb.stage) {
                report.fail("dependency " + t.node(e.from).name() + " -> " +
                            t.node(e.to).name() + " violates stage order on switch " +
                            net.props(pa.sw).name);
            }
        } else if (!route_reachable(d, pa.sw, pb.sw)) {
            report.fail("no route chain from " + net.props(pa.sw).name + " to " +
                        net.props(pb.sw).name + " for dependency " +
                        t.node(e.from).name() + " -> " + t.node(e.to).name());
        }
    }

    if (!switch_precedence_acyclic(t, d)) {
        report.fail("cross-switch dependency relation is cyclic");
    }

    // Route sanity: endpoints + physical validity.
    for (const auto& [pair, path] : d.routes) {
        if (path.switches.empty() || path.switches.front() != pair.first ||
            path.switches.back() != pair.second) {
            report.fail("route (" + std::to_string(pair.first) + "," +
                        std::to_string(pair.second) + ") has mismatched endpoints");
            continue;
        }
        try {
            (void)net::path_latency(net, path.switches);
        } catch (const std::invalid_argument& ex) {
            report.fail(std::string("route invalid: ") + ex.what());
        }
    }

    // (4)(5) ε-bounds.
    const double latency = total_route_latency(d);
    if (latency > options.epsilon1 + 1e-9) {
        std::ostringstream os;
        os << "t_e2e " << latency << " us exceeds epsilon1 " << options.epsilon1;
        report.fail(os.str());
    }
    const std::int64_t occupied = occupied_switch_count(d);
    if (occupied > options.epsilon2) {
        report.fail("Q_occ " + std::to_string(occupied) + " exceeds epsilon2 " +
                    std::to_string(options.epsilon2));
    }
    return report;
}

}  // namespace

VerificationReport verify(const tdg::Tdg& t, const net::Network& net, const Deployment& d,
                          const VerifyOptions& options) {
    obs::Span span(options.sink, "verify");
    VerificationReport report = verify_impl(t, net, d, options);
    if (options.sink != nullptr) {
        options.sink->counter("verify.violations")
            .add(static_cast<std::int64_t>(report.violations.size()));
    }
    return report;
}

}  // namespace hermes::core
