#include "core/dp_split.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace hermes::core {

std::vector<std::int64_t> boundary_cuts(const tdg::Tdg& t) {
    const std::vector<tdg::NodeId> order = t.topological_order();
    std::vector<std::size_t> pos(t.node_count());
    for (std::size_t i = 0; i < order.size(); ++i) pos[order[i]] = i;

    // cut[b] = Σ A(e) over edges spanning boundary b. An edge from position
    // p to position q (p < q) spans boundaries p+1 .. q; accumulate with a
    // difference array.
    std::vector<std::int64_t> diff(order.size() + 2, 0);
    for (const tdg::Edge& e : t.edges()) {
        const std::size_t p = pos[e.from];
        const std::size_t q = pos[e.to];
        if (p >= q || e.metadata_bytes == 0) continue;
        diff[p + 1] += e.metadata_bytes;
        diff[q + 1] -= e.metadata_bytes;
    }
    std::vector<std::int64_t> cut(order.size() + 1, 0);
    std::int64_t running = 0;
    for (std::size_t b = 1; b <= order.size(); ++b) {
        running += diff[b];
        if (b < order.size()) cut[b] = running;
    }
    return cut;
}

DpSplitResult dp_split(const tdg::Tdg& t, int stages, double stage_capacity) {
    const std::vector<tdg::NodeId> order = t.topological_order();
    const std::size_t n = order.size();
    DpSplitResult result;
    if (n == 0) return result;

    const std::vector<std::int64_t> cut = boundary_cuts(t);

    // fits[j][i]: interval [j, i) fits one switch. Computed per start j by
    // extending until the first failure — segment_fits is monotone in the
    // aggregate test but stage packing is not strictly monotone, so probe
    // each extension individually and stop after a failure (a safe,
    // slightly conservative envelope).
    constexpr std::int64_t kInf = std::numeric_limits<std::int64_t>::max();
    std::vector<std::int64_t> best(n + 1, kInf);  // best[i]: min max-cut for prefix i
    std::vector<std::size_t> parent(n + 1, 0);
    best[0] = 0;
    for (std::size_t i = 1; i <= n; ++i) {
        // Try all feasible last intervals [j, i).
        std::vector<tdg::NodeId> interval;
        for (std::size_t j = i; j-- > 0;) {
            interval.insert(interval.begin(), order[j]);
            if (best[j] == kInf) continue;
            if (!segment_fits(t, interval, stages, stage_capacity)) {
                // Larger intervals only add resources; once the aggregate
                // test fails, no extension can fit. Stage-packing failures
                // are not monotone, so only stop on aggregate overflow.
                double total = 0.0;
                for (const tdg::NodeId v : interval) total += t.node(v).resource_units();
                if (total > stages * stage_capacity + 1e-9) break;
                continue;
            }
            const std::int64_t candidate =
                std::max(best[j], j == 0 ? 0 : cut[j]);
            if (candidate < best[i]) {
                best[i] = candidate;
                parent[i] = j;
            }
        }
    }
    if (best[n] == kInf) {
        throw std::runtime_error("dp_split: no feasible segmentation (an oversized MAT?)");
    }

    std::vector<std::size_t> boundaries;
    for (std::size_t i = n; i > 0; i = parent[i]) boundaries.push_back(parent[i]);
    std::reverse(boundaries.begin(), boundaries.end());
    boundaries.push_back(n);
    for (std::size_t k = 0; k + 1 < boundaries.size(); ++k) {
        result.segments.emplace_back(
            order.begin() + static_cast<std::ptrdiff_t>(boundaries[k]),
            order.begin() + static_cast<std::ptrdiff_t>(boundaries[k + 1]));
    }
    result.max_cut_bytes = best[n];
    return result;
}

}  // namespace hermes::core
