// Wire protocol and session loop behind hermes_serve (DESIGN.md §5j).
//
// Requests are line-delimited JSON objects; every request line produces
// exactly one response line. The grammar:
//
//   {"id": <any>, "op": "add_program", "name": "t0", "spec": "synthetic:7:0"}
//   {"id": <any>, "op": "remove_program", "name": "t0"}
//   {"id": <any>, "op": "retarget_traffic"}
//   {"id": <any>, "op": "inject_fault", "kind": "link-down", "a": 0, "b": 1}
//   {"id": <any>, "op": "recover", "kind": "link-up", "a": 0, "b": 1}
//   {"id": <any>, "op": "recover"}                 // recover every failure
//   {"id": <any>, "op": "query"}
//   {"id": <any>, "op": "snapshot"}
//
// `id` is echoed back verbatim (null when absent) so clients can pipeline.
// Program specs: "real:<name>" / "sketch:<kind>" (prog/library.h) and
// "synthetic:<seed>[:<index>]" (prog/synthetic.h); a custom ProgramResolver
// can extend the grammar (the daemon adds file loading).
//
// Responses:
//
//   {"id": ..., "ok": true, "result": {...}}
//   {"id": ..., "ok": false, "error": {"code": "...", "message": "..."}}
//
// Mutation results carry the epoch's DeltaOutcome (status / delta /
// escalated / epoch / moved_mats / rerouted_pairs / solve_seconds /
// metrics) plus "batched", the number of requests the epoch coalesced.
//
// Epoch batching: mutations are STAGED, not applied, until flush() — the
// daemon flushes when its input buffer drains, so concurrent pipelined
// mutations collapse into one Engine::apply() epoch and one re-solve.
// query/snapshot (and malformed lines) flush the staged epoch first, so a
// client never observes state older than its own writes. All requests of a
// failed epoch receive the same error; the Engine rolls the program set
// back (fault events stay applied — they are physical).
//
// Overload protection: requests longer than ServeOptions::max_request_bytes
// and mutations staged past max_epoch_ops are rejected with a retryable
// resource_exhausted error ({"code": "resource_exhausted", "retryable":
// true}) instead of growing buffers without bound; see serve.oversized /
// serve.shed.
//
// Metrics (ServeOptions::sink / EngineOptions::sink): serve.requests,
// serve.malformed, serve.batches, serve.delta_resolves, serve.escalations,
// serve.oversized, serve.shed, serve.recoveries, serve.deadline_degrades,
// verify.violations counters and the serve.request_us latency histogram
// (p50/p99 via obs::Histogram::quantile).
#pragma once

#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "core/engine.h"
#include "util/json.h"
#include "util/status.h"

namespace hermes::core {

// Resolves an add_program spec string to a Program. The returned program is
// renamed to the request's "name" by the session.
using ProgramResolver =
    std::function<util::StatusOr<prog::Program>(std::string_view spec)>;

// "real:<name>" | "sketch:<kind>" | "synthetic:<seed>[:<index>]".
[[nodiscard]] util::StatusOr<prog::Program> resolve_program_spec(std::string_view spec);

struct ServeOptions {
    // Null = resolve_program_spec.
    ProgramResolver resolver;
    // Metrics sink; typically the engine's. Null disables serve.* metrics.
    obs::Sink* sink = nullptr;
    // Overload protection. Requests larger than max_request_bytes are
    // rejected with a retryable resource_exhausted error (serve.oversized) —
    // the transport loops enforce this while assembling lines, so an abusive
    // client cannot balloon the line buffer. Once max_epoch_ops mutations
    // are staged for the current epoch, further mutations are shed the same
    // way (serve.shed) until a flush drains the queue. 0 disables a cap.
    std::size_t max_request_bytes = 1u << 20;
    std::size_t max_epoch_ops = 1024;
};

// One parsed request, exposed for protocol tests.
struct ServeRequest {
    util::Json id;  // echoed back; null when the client sent none
    std::string op;
    std::string name;        // add_program / remove_program
    std::string spec;        // add_program
    bool has_kind = false;   // inject_fault / recover
    fault::FaultEvent fault; // inject_fault / recover (when has_kind)
};

// Parses one request line. kInvalidInput on malformed JSON, unknown op,
// missing/mistyped fields, or a fault kind that does not match the op
// (inject_fault takes *-down kinds, recover takes *-up kinds).
[[nodiscard]] util::StatusOr<ServeRequest> parse_request(std::string_view line);

// Response formatting (each returns one line WITHOUT the trailing '\n').
[[nodiscard]] std::string format_ok(const util::Json& id, util::Json result);
[[nodiscard]] std::string format_error(const util::Json& id, const util::Status& status);

// Result payload for one mutation response.
[[nodiscard]] util::Json delta_outcome_json(const DeltaOutcome& outcome,
                                            std::size_t batched);

class ServeSession {
public:
    explicit ServeSession(Engine& engine, ServeOptions options = {});

    // Handles one request line; appends complete response lines (each with a
    // trailing '\n') to `out`. Mutations are staged; query/snapshot and
    // malformed input flush the staged epoch first, so responses for staged
    // mutations may be emitted by a later handle_line call than their own.
    void handle_line(std::string_view line, std::string& out);

    // Applies the staged epoch (one Engine::apply) and appends its
    // responses. No-op when nothing is staged. The daemon calls this when
    // the input buffer drains and at shutdown.
    void flush(std::string& out);

    // Emits the response for a request the transport refused to even buffer
    // (its line exceeded max_request_bytes before a '\n' arrived): a
    // retryable resource_exhausted error with a null id, counted under
    // serve.oversized. `bytes` is how much had accumulated when the cap
    // tripped.
    void reject_oversized(std::size_t bytes, std::string& out);

    [[nodiscard]] std::size_t pending() const noexcept { return staged_.size(); }
    [[nodiscard]] std::int64_t requests() const noexcept { return requests_; }
    [[nodiscard]] const ServeOptions& options() const noexcept { return options_; }

private:
    struct Staged {
        util::Json id;
        std::string op;
        // One request usually stages one mutation; a bare recover expands to
        // one up event per failed element.
        std::vector<Engine::Mutation> mutations;
        double arrival_ns = 0.0;
    };

    void answer_query(const ServeRequest& request, std::string& out);
    void answer_snapshot(const ServeRequest& request, std::string& out);
    void observe_latency(double start_ns);

    Engine& engine_;
    ServeOptions options_;
    std::vector<Staged> staged_;
    std::int64_t requests_ = 0;
};

}  // namespace hermes::core
