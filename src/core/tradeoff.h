// ε-constraint tradeoff exploration (§V-B).
//
// The ε-constraint method turns Hermes' three objectives into one: minimize
// A_max subject to t_e2e <= ε₁ and Q_occ <= ε₂. Administrators are told to
// "flexibly submit their desired bounds on demand" — this module computes
// the curves they would consult: byte overhead as a function of the switch
// budget and of the latency budget.
#pragma once

#include <limits>
#include <optional>

#include "core/deployment.h"
#include "core/objective.h"

namespace hermes::core {

struct TradeoffPoint {
    double epsilon1 = std::numeric_limits<double>::infinity();
    std::int64_t epsilon2 = std::numeric_limits<std::int64_t>::max();
    bool feasible = false;
    DeploymentMetrics metrics;  // valid only when feasible
};

// Greedy deployments for every switch budget ε₂ in [min_switches,
// max_switches] (ε₁ unbounded). Infeasible budgets are flagged, not thrown.
[[nodiscard]] std::vector<TradeoffPoint> sweep_switch_budget(const tdg::Tdg& t,
                                                             const net::Network& net,
                                                             std::int64_t min_switches,
                                                             std::int64_t max_switches);

// Greedy deployments for latency budgets: `steps` evenly spaced ε₁ values
// from `min_latency_us` to `max_latency_us` (ε₂ unbounded).
[[nodiscard]] std::vector<TradeoffPoint> sweep_latency_budget(const tdg::Tdg& t,
                                                              const net::Network& net,
                                                              double min_latency_us,
                                                              double max_latency_us,
                                                              int steps);

// The knee heuristic: the smallest ε₂ whose overhead is within `tolerance`
// (relative) of the unconstrained optimum of the sweep. Returns nullopt when
// no point is feasible.
[[nodiscard]] std::optional<TradeoffPoint> knee_point(
    const std::vector<TradeoffPoint>& sweep, double tolerance = 0.05);

}  // namespace hermes::core
