#include "baselines/single_switch.h"

#include <algorithm>
#include <chrono>
#include <numeric>
#include <set>

namespace hermes::baselines {

namespace {

using Clock = std::chrono::steady_clock;

// Topological order of `t` restricted to [begin, end).
std::vector<tdg::NodeId> range_topo(const tdg::Tdg& t, std::size_t begin, std::size_t end) {
    std::vector<tdg::NodeId> order;
    for (const tdg::NodeId v : t.topological_order()) {
        if (v >= begin && v < end) order.push_back(v);
    }
    return order;
}

// Stage floor per node imposed by dependencies from outside `nodes` that are
// already placed on the same switch.
std::vector<int> external_stage_floors(const tdg::Tdg& t,
                                       const std::vector<tdg::NodeId>& nodes,
                                       const core::Deployment& d,
                                       const std::vector<bool>& placed,
                                       net::SwitchId target) {
    const std::set<tdg::NodeId> members(nodes.begin(), nodes.end());
    std::vector<int> floors(nodes.size(), 0);
    for (std::size_t i = 0; i < nodes.size(); ++i) {
        for (const tdg::Edge& e : t.edges()) {
            if (e.to != nodes[i] || members.count(e.from) || !placed[e.from]) continue;
            if (d.placements[e.from].sw == target) {
                floors[i] = std::max(floors[i], d.placements[e.from].stage + 1);
            }
        }
    }
    return floors;
}

// First-fit packing of `nodes` into one packer (trial: packer passed by
// value); returns per-node stages or nullopt. `floors` gives each node's
// minimum stage from already-placed same-switch predecessors.
std::optional<std::vector<int>> first_fit_single(const tdg::Tdg& t,
                                                 const std::vector<tdg::NodeId>& nodes,
                                                 StagePacker packer,
                                                 const std::vector<int>& floors) {
    const std::set<tdg::NodeId> members(nodes.begin(), nodes.end());
    std::map<tdg::NodeId, int> stage_of;
    std::vector<int> out;
    out.reserve(nodes.size());
    for (std::size_t i = 0; i < nodes.size(); ++i) {
        const tdg::NodeId v = nodes[i];
        int min_stage = floors[i];
        for (const tdg::Edge& e : t.edges()) {
            if (e.to != v || !members.count(e.from)) continue;
            const auto it = stage_of.find(e.from);
            if (it != stage_of.end()) min_stage = std::max(min_stage, it->second + 1);
        }
        const auto stage = packer.place(t.node(v).resource_units(), min_stage);
        if (!stage) return std::nullopt;
        stage_of[v] = *stage;
        out.push_back(*stage);
    }
    return out;
}

std::vector<double> remaining_capacities(const StagePacker& packer) {
    std::vector<double> rem;
    rem.reserve(packer.loads().size());
    for (const double l : packer.loads()) rem.push_back(packer.capacity() - l);
    return rem;
}

}  // namespace

SingleSwitchStrategy::SingleSwitchStrategy(std::string name, SwitchPick pick)
    : name_(std::move(name)), pick_(pick) {}

StrategyOutcome SingleSwitchStrategy::deploy(const std::vector<prog::Program>& programs,
                                             const net::Network& net,
                                             const BaselineOptions& options) {
    try {
        return deploy_with_pick(programs, net, options, pick_);
    } catch (const std::runtime_error&) {
        if (pick_ == SwitchPick::kFirstFit) throw;
        // Best-fit scattering can strand later (conflict-ordered) programs
        // without forward capacity; degrade to first-fit placement.
        StrategyOutcome outcome =
            deploy_with_pick(programs, net, options, SwitchPick::kFirstFit);
        outcome.status += "(firstfit-fallback)";
        return outcome;
    }
}

StrategyOutcome SingleSwitchStrategy::deploy_with_pick(
    const std::vector<prog::Program>& programs, const net::Network& net,
    const BaselineOptions& options, SwitchPick pick) {
    const auto start = Clock::now();
    std::vector<std::pair<std::size_t, std::size_t>> ranges;
    StrategyOutcome outcome;
    outcome.merged = union_programs(programs, ranges);
    const tdg::Tdg& t = outcome.merged;

    const std::vector<net::SwitchId> chain = net.programmable_switches();
    if (chain.empty()) throw std::runtime_error(name_ + ": no programmable switches");
    std::vector<StagePacker> packers;
    for (const net::SwitchId u : chain) {
        packers.emplace_back(net.props(u).stages, net.props(u).stage_capacity);
    }

    core::Deployment d;
    d.placements.resize(t.node_count());
    std::vector<bool> placed(t.node_count(), false);
    bool used_ilp = false;

    std::map<net::SwitchId, std::size_t> chain_index;
    for (std::size_t k = 0; k < chain.size(); ++k) chain_index[chain[k]] = k;

    for (const auto& [begin, end] : ranges) {
        const std::vector<tdg::NodeId> nodes = range_topo(t, begin, end);

        // Cross-program dependencies (write conflicts on shared fields)
        // forbid switches that precede an already-placed predecessor.
        const std::set<tdg::NodeId> members(nodes.begin(), nodes.end());
        std::size_t min_index = 0;
        for (const tdg::Edge& e : t.edges()) {
            if (!members.count(e.to) || members.count(e.from) || !placed[e.from]) continue;
            min_index = std::max(min_index, chain_index.at(d.placements[e.from].sw));
        }

        // Candidate switch order: MS takes chain order, Sonata prefers the
        // switch with the most remaining capacity.
        std::vector<std::size_t> switch_order;
        for (std::size_t k = min_index; k < chain.size(); ++k) switch_order.push_back(k);
        if (pick == SwitchPick::kBestFit) {
            std::stable_sort(switch_order.begin(), switch_order.end(),
                             [&](std::size_t a, std::size_t b) {
                                 return packers[a].remaining_total() >
                                        packers[b].remaining_total();
                             });
        }

        bool whole = false;
        for (const std::size_t k : switch_order) {
            const std::vector<int> floors =
                external_stage_floors(t, nodes, d, placed, chain[k]);
            auto trial = first_fit_single(t, nodes, packers[k], floors);
            if (!trial) continue;
            // Exact min-makespan packing via the ILP core; first-fit result
            // is the fallback when the solver hits its limits. The configured
            // MILP time limit is a *total* budget split across programs.
            if (options.use_ilp) {
                milp::MilpOptions per_program = options.milp;
                if (!per_program.sink) per_program.sink = options.sink;
                per_program.time_limit_seconds =
                    options.milp.time_limit_seconds / static_cast<double>(ranges.size());
                const auto exact = milp_pack(t, nodes, remaining_capacities(packers[k]),
                                             per_program, nullptr, floors);
                if (exact) trial = exact;
                used_ilp = true;
            }
            for (std::size_t i = 0; i < nodes.size(); ++i) {
                packers[k].commit((*trial)[i], t.node(nodes[i]).resource_units());
                d.placements[nodes[i]] = core::Placement{chain[k], (*trial)[i]};
                placed[nodes[i]] = true;
            }
            whole = true;
            break;
        }
        if (!whole) {
            // Spill the program node-by-node along the chain.
            chain_first_fit(t, nodes, chain, packers, d, placed, min_index);
        }
    }

    add_crossing_routes(t, net, d, options.oracle);
    outcome.deployment = std::move(d);
    outcome.solve_seconds = std::chrono::duration<double>(Clock::now() - start).count();
    outcome.status = used_ilp ? "ilp" : "heuristic";
    return outcome;
}

FirstFitByLevelStrategy::FirstFitByLevelStrategy(std::string name, LevelOrder order)
    : name_(std::move(name)), order_(order) {}

StrategyOutcome FirstFitByLevelStrategy::deploy(const std::vector<prog::Program>& programs,
                                                const net::Network& net,
                                                const BaselineOptions& options) {
    const auto start = Clock::now();
    std::vector<std::pair<std::size_t, std::size_t>> ranges;
    StrategyOutcome outcome;
    outcome.merged = union_programs(programs, ranges);
    const tdg::Tdg& t = outcome.merged;

    // Longest-path levels.
    std::vector<int> level(t.node_count(), 0);
    for (const tdg::NodeId v : t.topological_order()) {
        for (const tdg::Edge& e : t.edges()) {
            if (e.from == v) level[e.to] = std::max(level[e.to], level[v] + 1);
        }
    }
    std::vector<tdg::NodeId> order(t.node_count());
    std::iota(order.begin(), order.end(), tdg::NodeId{0});
    std::stable_sort(order.begin(), order.end(), [&](tdg::NodeId a, tdg::NodeId b) {
        if (level[a] != level[b]) return level[a] < level[b];
        if (order_ == LevelOrder::kBySizeDescending &&
            t.node(a).resource_units() != t.node(b).resource_units()) {
            return t.node(a).resource_units() > t.node(b).resource_units();
        }
        return a < b;
    });

    const std::vector<net::SwitchId> chain = net.programmable_switches();
    if (chain.empty()) throw std::runtime_error(name_ + ": no programmable switches");
    std::vector<StagePacker> packers;
    for (const net::SwitchId u : chain) {
        packers.emplace_back(net.props(u).stages, net.props(u).stage_capacity);
    }
    core::Deployment d;
    d.placements.resize(t.node_count());
    std::vector<bool> placed(t.node_count(), false);
    chain_first_fit(t, order, chain, packers, d, placed);

    add_crossing_routes(t, net, d, options.oracle);
    outcome.deployment = std::move(d);
    outcome.solve_seconds = std::chrono::duration<double>(Clock::now() - start).count();
    outcome.status = "heuristic";
    return outcome;
}

}  // namespace hermes::baselines
