#include "baselines/network_wide.h"

#include <algorithm>
#include <chrono>

#include "core/greedy.h"
#include "core/hermes.h"

namespace hermes::baselines {

namespace {
using Clock = std::chrono::steady_clock;
}

NetworkWideStrategy::NetworkWideStrategy(std::string name, core::P1Objective objective)
    : name_(std::move(name)), objective_(objective) {}

StrategyOutcome NetworkWideStrategy::deploy(const std::vector<prog::Program>& programs,
                                            const net::Network& net,
                                            const BaselineOptions& options) {
    const auto start = Clock::now();
    StrategyOutcome outcome;
    outcome.merged = core::analyze(programs);
    const tdg::Tdg& t = outcome.merged;

    // Feasible warm start: resource-first-fit segments on the closest chain.
    const std::vector<net::SwitchId> programmable = net.programmable_switches();
    if (programmable.empty()) throw std::runtime_error(name_ + ": no programmable switches");
    const net::SwitchProps& reference = net.props(programmable.front());
    std::vector<tdg::NodeId> all(t.node_count());
    for (tdg::NodeId v = 0; v < t.node_count(); ++v) all[v] = v;
    const core::GreedyOptions chain_options{options.epsilon1, options.epsilon2};
    core::GreedyResult warm = core::deploy_segments_on_chain(
        t, net,
        core::split_tdg_first_fit(t, std::move(all), reference.stages,
                                  reference.stage_capacity),
        chain_options, options.oracle);

    if (!options.use_ilp) {
        outcome.deployment = std::move(warm.deployment);
        outcome.solve_seconds = std::chrono::duration<double>(Clock::now() - start).count();
        outcome.status = "heuristic";
        return outcome;
    }

    core::FormulationOptions fopts;
    fopts.epsilon1 = options.epsilon1;
    fopts.epsilon2 = options.epsilon2;
    fopts.candidate_limit = options.candidate_limit;
    fopts.segment_level = options.segment_level;
    fopts.objective = objective_;
    fopts.segment_split = core::SegmentSplit::kResourceFirstFit;
    fopts.oracle = options.oracle;
    fopts.sink = options.sink;

    try {
        core::P1Formulation formulation(t, net, fopts);
        milp::MilpOptions milp_options = options.milp;
        if (!milp_options.sink) milp_options.sink = options.sink;
        milp_options.warm_start = formulation.encode(warm.deployment);
        const milp::MilpResult result = milp::solve_milp(formulation.model(), milp_options);
        if (result.has_solution()) {
            outcome.deployment = formulation.decode(result.values);
            outcome.status = milp::to_string(result.status);
        } else {
            outcome.deployment = std::move(warm.deployment);
            outcome.status = std::string("fallback(") + milp::to_string(result.status) + ")";
        }
    } catch (const std::runtime_error&) {
        // Model too large for exact solving — the regime where the paper's
        // ILP frameworks exceed their two-hour budget (Fig 7 clips those
        // bars). Report the warm start as the incumbent and flag the
        // time-limit hit; the benchmark clips the bar like the paper does.
        outcome.deployment = std::move(warm.deployment);
        outcome.status = "time-limit(model)";
        outcome.solve_seconds = options.milp.time_limit_seconds;
    }
    outcome.solve_seconds = std::max(
        outcome.solve_seconds, std::chrono::duration<double>(Clock::now() - start).count());
    return outcome;
}

}  // namespace hermes::baselines
