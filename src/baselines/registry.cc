#include "baselines/common.h"
#include "baselines/network_wide.h"
#include "baselines/single_switch.h"

namespace hermes::baselines {

std::vector<std::unique_ptr<Strategy>> all_strategies() {
    std::vector<std::unique_ptr<Strategy>> out;
    out.push_back(std::make_unique<SingleSwitchStrategy>("MS", SwitchPick::kFirstFit));
    out.push_back(std::make_unique<SingleSwitchStrategy>("Sonata", SwitchPick::kBestFit));
    out.push_back(
        std::make_unique<NetworkWideStrategy>("SPEED", core::P1Objective::kMinLatency));
    out.push_back(std::make_unique<NetworkWideStrategy>(
        "MTP", core::P1Objective::kMinMaxMatsPerSwitch));
    out.push_back(
        std::make_unique<NetworkWideStrategy>("FP", core::P1Objective::kMinOccupied));
    out.push_back(
        std::make_unique<NetworkWideStrategy>("P4All", core::P1Objective::kMinMaxStage));
    out.push_back(std::make_unique<FirstFitByLevelStrategy>("FFL", LevelOrder::kById));
    out.push_back(
        std::make_unique<FirstFitByLevelStrategy>("FFLS", LevelOrder::kBySizeDescending));
    return out;
}

}  // namespace hermes::baselines
