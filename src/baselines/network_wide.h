// Network-wide ILP-based deployment frameworks (§VI-A): SPEED, MTP,
// Flightplan, and P4All. All four merge the input programs (redundancy
// elimination included), carve the merged TDG with the metadata-oblivious
// resource-first-fit splitter, and solve the shared P#1 constraint system
// under their own objective:
//
//   SPEED       min t_e2e            (packet processing performance)
//   MTP         min max MATs/switch  (control-plane load balance)
//   Flightplan  min occupied devices
//   P4All       min pipeline depth   (modular resource efficiency)
//
// Like the paper's Gurobi runs, solving is warm-started with a feasible
// chain deployment and time-limited; when the solver proves nothing better
// in time, the warm start is returned (status "fallback(...)").
#pragma once

#include "baselines/common.h"
#include "core/formulation.h"

namespace hermes::baselines {

class NetworkWideStrategy final : public Strategy {
public:
    NetworkWideStrategy(std::string name, core::P1Objective objective);
    [[nodiscard]] std::string name() const override { return name_; }
    [[nodiscard]] StrategyOutcome deploy(const std::vector<prog::Program>& programs,
                                         const net::Network& net,
                                         const BaselineOptions& options) override;

private:
    std::string name_;
    core::P1Objective objective_;
};

}  // namespace hermes::baselines
