// Shared machinery for the comparison frameworks of §VI-A.
//
// Every baseline implements the Strategy interface: given the raw program
// set and the network, produce the TDG it internally works on plus a full
// deployment. Hermes itself (greedy and Optimal) is reached through
// core/hermes.h; the benchmarks run both through the same reporting path.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/deployment.h"
#include "core/options.h"
#include "milp/solver.h"
#include "net/path_oracle.h"
#include "prog/program.h"

namespace hermes::baselines {

// Inherits core::CommonOptions; `sink` is forwarded into the embedded MILP
// options (when those leave it unset) so ILP-based baselines trace their
// branch-and-bound search like the Hermes paths do.
struct BaselineOptions : core::CommonOptions {
    double epsilon1 = std::numeric_limits<double>::infinity();
    std::int64_t epsilon2 = std::numeric_limits<std::int64_t>::max();
    milp::MilpOptions milp;            // time/node limits for ILP-based baselines
    std::size_t candidate_limit = 0;   // candidate switches for network-wide ILPs
    bool segment_level = true;         // contract TDGs for network-wide ILPs
    bool use_ilp = true;               // false = pure-heuristic variants
    // Shared per-Network path cache for route wiring and chain building.
    // Null = compute paths directly.
    net::PathOracle* oracle = nullptr;
};

struct StrategyOutcome {
    tdg::Tdg merged;               // the TDG the strategy deployed (analyzed)
    core::Deployment deployment;
    double solve_seconds = 0.0;
    std::string status;            // "heuristic", MILP status, or "fallback(...)"
};

class Strategy {
public:
    virtual ~Strategy() = default;
    [[nodiscard]] virtual std::string name() const = 0;
    [[nodiscard]] virtual StrategyOutcome deploy(const std::vector<prog::Program>& programs,
                                                 const net::Network& net,
                                                 const BaselineOptions& options) = 0;
};

// All eight comparison frameworks in the paper's order:
// MS, Sonata, SPEED, MTP, FP, P4All, FFL, FFLS.
[[nodiscard]] std::vector<std::unique_ptr<Strategy>> all_strategies();

// Union of the programs' TDGs without redundancy elimination (single-switch
// frameworks deploy programs independently), analyzed; `ranges` receives the
// [begin, end) node range of each program inside the union.
[[nodiscard]] tdg::Tdg union_programs(const std::vector<prog::Program>& programs,
                                      std::vector<std::pair<std::size_t, std::size_t>>& ranges);

// Incremental per-switch stage packer (first fit).
class StagePacker {
public:
    StagePacker(int stages, double capacity);

    // First stage index >= min_stage with room, or nullopt. Does not commit.
    [[nodiscard]] std::optional<int> find_slot(double resource, int min_stage) const;
    // find_slot + commit.
    std::optional<int> place(double resource, int min_stage);
    void commit(int stage, double resource);

    [[nodiscard]] int stages() const noexcept { return static_cast<int>(load_.size()); }
    [[nodiscard]] double capacity() const noexcept { return capacity_; }
    [[nodiscard]] const std::vector<double>& loads() const noexcept { return load_; }
    [[nodiscard]] double remaining_total() const noexcept;

private:
    std::vector<double> load_;
    double capacity_;
};

// Node-level first-fit placement of `order` (a topological order) onto a
// switch chain, never moving a node before its predecessors' switches.
// `start_hint` biases the first switch tried for nodes with no placed
// predecessor. Updates `packers`/`placements` in place. Throws
// std::runtime_error when the chain is exhausted.
void chain_first_fit(const tdg::Tdg& t, const std::vector<tdg::NodeId>& order,
                     const std::vector<net::SwitchId>& chain,
                     std::vector<StagePacker>& packers, core::Deployment& placements,
                     std::vector<bool>& placed, std::size_t start_hint = 0);

// Exact per-program stage packing: minimizes the maximum stage index used by
// `nodes` on a switch whose per-stage remaining capacity is `remaining`,
// subject to intra-set dependency order. Returns the stage per node, or
// nullopt when the MILP finds no feasible packing within the limits.
// This is the Min-Stage/Sonata ILP core.
// `min_stages` (optional, parallel to nodes) gives per-node stage floors
// imposed by already-placed same-switch predecessors outside `nodes`.
[[nodiscard]] std::optional<std::vector<int>> milp_pack(
    const tdg::Tdg& t, const std::vector<tdg::NodeId>& nodes,
    const std::vector<double>& remaining, const milp::MilpOptions& options,
    std::int64_t* lp_iterations = nullptr, const std::vector<int>& min_stages = {});

// Adds shortest-path routes for every ordered switch pair that carries at
// least one cross-switch dependency. Throws when a needed pair is
// disconnected. Pass a shared net::PathOracle to reuse cached trees.
void add_crossing_routes(const tdg::Tdg& t, const net::Network& net, core::Deployment& d,
                         net::PathOracle* oracle = nullptr);

}  // namespace hermes::baselines
