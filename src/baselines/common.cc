#include "baselines/common.h"

#include <algorithm>
#include <map>
#include <set>
#include <stdexcept>

#include "milp/lin.h"
#include "tdg/analyzer.h"
#include "tdg/merge.h"

namespace hermes::baselines {

tdg::Tdg union_programs(const std::vector<prog::Program>& programs,
                        std::vector<std::pair<std::size_t, std::size_t>>& ranges) {
    if (programs.empty()) throw std::invalid_argument("union_programs: empty set");
    tdg::Tdg merged;
    ranges.clear();
    for (const prog::Program& p : programs) {
        const tdg::Tdg t = p.to_tdg();
        const std::size_t begin = merged.node_count();
        merged = tdg::graph_union(merged, t);
        ranges.emplace_back(begin, merged.node_count());
    }
    // Concurrent programs touching the same fields must still be ordered,
    // merging or not — the conflict edges apply to the union as well.
    tdg::add_write_conflict_edges(merged);
    tdg::analyze(merged);
    return merged;
}

StagePacker::StagePacker(int stages, double capacity)
    : load_(static_cast<std::size_t>(stages), 0.0), capacity_(capacity) {
    if (stages <= 0 || capacity <= 0.0) {
        throw std::invalid_argument("StagePacker: bad geometry");
    }
}

std::optional<int> StagePacker::find_slot(double resource, int min_stage) const {
    if (resource > capacity_ + 1e-9) return std::nullopt;
    for (int s = std::max(min_stage, 0); s < stages(); ++s) {
        if (load_[static_cast<std::size_t>(s)] + resource <= capacity_ + 1e-9) return s;
    }
    return std::nullopt;
}

std::optional<int> StagePacker::place(double resource, int min_stage) {
    const auto slot = find_slot(resource, min_stage);
    if (slot) commit(*slot, resource);
    return slot;
}

void StagePacker::commit(int stage, double resource) {
    if (stage < 0 || stage >= stages()) throw std::out_of_range("StagePacker::commit");
    load_[static_cast<std::size_t>(stage)] += resource;
}

double StagePacker::remaining_total() const noexcept {
    double total = 0.0;
    for (const double l : load_) total += capacity_ - l;
    return total;
}

void chain_first_fit(const tdg::Tdg& t, const std::vector<tdg::NodeId>& order,
                     const std::vector<net::SwitchId>& chain,
                     std::vector<StagePacker>& packers, core::Deployment& placements,
                     std::vector<bool>& placed, std::size_t start_hint) {
    if (packers.size() != chain.size()) {
        throw std::invalid_argument("chain_first_fit: packers/chain size mismatch");
    }
    if (placements.placements.size() != t.node_count()) {
        placements.placements.resize(t.node_count());
    }
    if (placed.size() != t.node_count()) placed.assign(t.node_count(), false);

    std::vector<std::size_t> chain_index(t.node_count(), 0);
    for (tdg::NodeId v = 0; v < t.node_count(); ++v) {
        if (!placed[v]) continue;
        const auto it = std::find(chain.begin(), chain.end(), placements.placements[v].sw);
        chain_index[v] = static_cast<std::size_t>(it - chain.begin());
    }

    // One edge pass: predecessor lists per node (this routine runs on
    // thousand-edge union TDGs; per-node edge rescans are the hot loop).
    std::vector<std::vector<tdg::NodeId>> preds(t.node_count());
    for (const tdg::Edge& e : t.edges()) preds[e.to].push_back(e.from);

    for (const tdg::NodeId v : order) {
        if (placed[v]) continue;
        // Earliest admissible chain position: after every placed predecessor.
        std::size_t first = start_hint;
        for (const tdg::NodeId p : preds[v]) {
            if (placed[p]) first = std::max(first, chain_index[p]);
        }
        bool done = false;
        for (std::size_t k = first; k < chain.size() && !done; ++k) {
            int min_stage = 0;
            for (const tdg::NodeId p : preds[v]) {
                if (placed[p] && chain_index[p] == k) {
                    min_stage =
                        std::max(min_stage, placements.placements[p].stage + 1);
                }
            }
            const auto stage = packers[k].place(t.node(v).resource_units(), min_stage);
            if (!stage) continue;
            placements.placements[v] = core::Placement{chain[k], *stage};
            chain_index[v] = k;
            placed[v] = true;
            done = true;
        }
        if (!done) {
            throw std::runtime_error("chain_first_fit: switch chain exhausted at MAT '" +
                                     t.node(v).name() + "'");
        }
    }
}

std::optional<std::vector<int>> milp_pack(const tdg::Tdg& t,
                                          const std::vector<tdg::NodeId>& nodes,
                                          const std::vector<double>& remaining,
                                          const milp::MilpOptions& options,
                                          std::int64_t* lp_iterations,
                                          const std::vector<int>& min_stages) {
    using milp::LinExpr;
    using milp::Sense;
    const int stages = static_cast<int>(remaining.size());
    if (stages <= 0) return std::nullopt;
    const std::set<tdg::NodeId> members(nodes.begin(), nodes.end());

    milp::Model model;
    // w[a][i]: node a sits in stage i.
    std::vector<std::vector<milp::VarId>> w(nodes.size());
    std::vector<LinExpr> stage_expr(nodes.size());
    for (std::size_t a = 0; a < nodes.size(); ++a) {
        LinExpr one;
        for (int i = 0; i < stages; ++i) {
            const milp::VarId v = model.add_binary("w_" + std::to_string(a) + "_" +
                                                   std::to_string(i));
            w[a].push_back(v);
            one += LinExpr::term(v);
            stage_expr[a] += LinExpr::term(v, static_cast<double>(i));
        }
        model.add_constraint(std::move(one), Sense::kEq, 1.0);
    }
    for (int i = 0; i < stages; ++i) {
        LinExpr load;
        for (std::size_t a = 0; a < nodes.size(); ++a) {
            load += LinExpr::term(w[a][static_cast<std::size_t>(i)],
                                  t.node(nodes[a]).resource_units());
        }
        model.add_constraint(std::move(load), Sense::kLe,
                             remaining[static_cast<std::size_t>(i)]);
    }
    std::map<tdg::NodeId, std::size_t> index;
    for (std::size_t a = 0; a < nodes.size(); ++a) index[nodes[a]] = a;
    for (const tdg::Edge& e : t.edges()) {
        if (!members.count(e.from) || !members.count(e.to)) continue;
        LinExpr order = stage_expr[index[e.from]] - stage_expr[index[e.to]];
        model.add_constraint(std::move(order), Sense::kLe, -1.0);
    }
    if (!min_stages.empty()) {
        if (min_stages.size() != nodes.size()) {
            throw std::invalid_argument("milp_pack: min_stages size mismatch");
        }
        for (std::size_t a = 0; a < nodes.size(); ++a) {
            if (min_stages[a] <= 0) continue;
            if (min_stages[a] >= stages) return std::nullopt;  // floor beyond pipeline
            model.add_constraint(stage_expr[a], milp::Sense::kGe,
                                 static_cast<double>(min_stages[a]));
        }
    }
    const milp::VarId makespan =
        model.add_continuous(0.0, static_cast<double>(stages), "makespan");
    for (std::size_t a = 0; a < nodes.size(); ++a) {
        model.add_constraint(LinExpr::term(makespan) - stage_expr[a], Sense::kGe, 0.0);
    }
    model.minimize(LinExpr::term(makespan));

    const milp::MilpResult result = milp::solve_milp(model, options);
    if (lp_iterations) *lp_iterations += result.lp_iterations;
    if (!result.has_solution()) return std::nullopt;

    std::vector<int> out(nodes.size(), 0);
    for (std::size_t a = 0; a < nodes.size(); ++a) {
        for (int i = 0; i < stages; ++i) {
            if (result.values[static_cast<std::size_t>(w[a][static_cast<std::size_t>(i)])] >
                0.5) {
                out[a] = i;
                break;
            }
        }
    }
    return out;
}

void add_crossing_routes(const tdg::Tdg& t, const net::Network& net, core::Deployment& d,
                         net::PathOracle* oracle) {
    std::set<std::pair<net::SwitchId, net::SwitchId>> crossing;
    for (const tdg::Edge& e : t.edges()) {
        const net::SwitchId u = d.switch_of(e.from);
        const net::SwitchId v = d.switch_of(e.to);
        if (u != v) crossing.insert({u, v});
    }
    for (const auto& [u, v] : crossing) {
        if (d.routes.count({u, v})) continue;
        auto path = oracle ? oracle->path(u, v) : net::shortest_path(net, u, v);
        if (!path) {
            throw std::runtime_error("add_crossing_routes: switches " +
                                     net.props(u).name + " and " + net.props(v).name +
                                     " are disconnected");
        }
        d.routes[{u, v}] = std::move(*path);
    }
}

}  // namespace hermes::baselines
