// Single-switch program deployment frameworks, extended (as in §VI-A) to
// deploy input programs on switches one by one:
//
//   Min-Stage (MS) — per program, the first switch with room hosts the whole
//     program, packed by an exact min-makespan stage MILP; programs that no
//     longer fit anywhere whole spill node-by-node along the switch chain.
//   Sonata — identical machinery with best-fit switch selection (the switch
//     with the most remaining capacity).
//   FFL (first fit by level) — all MATs of all programs, ordered by
//     topological level, first-fit onto the chain.
//   FFLS (first fit by level and size) — FFL with each level sorted by
//     descending resource footprint.
//
// None of these considers A(a,b), which is exactly why their deployments cut
// metadata-heavy edges and incur the byte overheads Hermes avoids.
#pragma once

#include "baselines/common.h"

namespace hermes::baselines {

enum class SwitchPick : std::uint8_t { kFirstFit, kBestFit };

// MS (kFirstFit, ILP packing) and Sonata (kBestFit, ILP packing).
class SingleSwitchStrategy final : public Strategy {
public:
    SingleSwitchStrategy(std::string name, SwitchPick pick);
    [[nodiscard]] std::string name() const override { return name_; }
    [[nodiscard]] StrategyOutcome deploy(const std::vector<prog::Program>& programs,
                                         const net::Network& net,
                                         const BaselineOptions& options) override;

private:
    [[nodiscard]] StrategyOutcome deploy_with_pick(
        const std::vector<prog::Program>& programs, const net::Network& net,
        const BaselineOptions& options, SwitchPick pick);

    std::string name_;
    SwitchPick pick_;
};

enum class LevelOrder : std::uint8_t { kById, kBySizeDescending };

// FFL (kById) and FFLS (kBySizeDescending).
class FirstFitByLevelStrategy final : public Strategy {
public:
    FirstFitByLevelStrategy(std::string name, LevelOrder order);
    [[nodiscard]] std::string name() const override { return name_; }
    [[nodiscard]] StrategyOutcome deploy(const std::vector<prog::Program>& programs,
                                         const net::Network& net,
                                         const BaselineOptions& options) override;

private:
    std::string name_;
    LevelOrder order_;
};

}  // namespace hermes::baselines
