// Retained reference LP kernel: the original two-phase primal simplex on a
// dense Gauss-Jordan tableau, with warm starts re-established by per-column
// re-pivoting and repaired by dense dual simplex.
//
// This is the seed `solve_lp` kept verbatim (mirroring the core::reference
// pattern for Algorithm 2). It exists for two reasons:
//   1. tests/simplex_equivalence_test.cpp asserts the production revised
//      sparse kernel in milp/simplex.h agrees with it (status and objective
//      within tolerance) on randomized LPs and seeded P#1 relaxations, and
//   2. bench/micro_solver uses it as the "dense" side of the dense-vs-revised
//      BENCH_milp.json trajectory (via MilpOptions::use_reference_lp).
// It is not called anywhere on the production path.
//
// The exported Basis uses this kernel's own column space (structurals +
// slacks + artificials, with every finite upper bound materialized as an
// explicit row); it is only meaningful to feed back into this kernel. The
// revised kernel rejects it by signature and vice versa.
#pragma once

#include <cstdint>

#include "milp/model.h"
#include "milp/simplex.h"

namespace hermes::milp::reference {

// Solves the LP relaxation of `model` exactly like the seed solver did.
// Shares LpStatus/LpResult/Basis (and now LpOptions — iteration_limit,
// time_limit_seconds, warm_basis; the kernel-selection knobs are ignored)
// with the production kernel; the at_upper field of the exported basis stays
// empty (the dense form shifts every variable to its lower bound, so
// nonbasic-at-upper never occurs).
[[nodiscard]] LpResult solve_lp(const Model& model, const LpOptions& options = {});

}  // namespace hermes::milp::reference
