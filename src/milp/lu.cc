#include "milp/lu.h"

#include <algorithm>
#include <cmath>
#include <functional>

#include "milp/simplex.h"

namespace hermes::milp {

namespace {

constexpr double kDropTol = 1e-12;   // entries below this are structural zero
constexpr double kAbsPivTol = 1e-10; // absolute pivot floor (Markowitz stage)
constexpr double kHintPivTol = 1e-7; // pivot floor when replaying a stored order
constexpr double kTau = 0.1;         // threshold partial pivoting: |a| >= tau*colmax
constexpr double kMuMax = 1e8;       // Forrest-Tomlin multiplier growth bound
constexpr double kHyperFrac = 0.2;   // sparse-RHS density bound for the DFS path
constexpr int kMarkowitzCands = 8;   // candidate columns examined per pivot

}  // namespace

void LuFactor::reset_pools() {
    l_start_.assign(1, 0);
    l_piv_row_.clear();
    l_row_.clear();
    l_val_.clear();
    r_start_.assign(1, 0);
    r_target_.clear();
    r_row_.clear();
    r_val_.clear();
    ucol_.resize(m_);
    urow_.resize(m_);
    for (auto& c : ucol_) c.clear();
    for (auto& r : urow_) r.clear();
    udiag_.assign(m_, 0.0);
    urowof_.assign(m_, -1);
    slot_of_row_.assign(m_, -1);
    rowver_.assign(m_, 0);
    colver_.assign(m_, 0);
    pivot_seq_.clear();
    pivot_seq_.reserve(m_);
    seq_pos_.assign(m_, -1);
    work_.assign(m_, 0.0);
    seed_val_.assign(m_, 0.0);
    mark_.assign(m_, 0);
    epoch_ = 0;
    spike_.assign(m_, 0.0);
    spike_list_.clear();
    spike_valid_ = false;
    mu_.assign(m_, 0.0);
    mu_list_.clear();
    mu_touched_.clear();
}

// One right-looking elimination step on the working matrix: pivot at
// (pivot_row, pivot_col), with every other live row of the pivot column
// reduced through an L multiplier. Singleton pivots take this same path with
// empty update sets, so the factor layout is identical whichever stage chose
// the pivot. Returns false only when the probed pivot entry has vanished.
bool LuFactor::eliminate(std::size_t k, std::size_t pivot_row,
                         std::size_t pivot_col) {
    (void)k;
    auto& prow = wrow_[pivot_row];
    double pivot_val = 0.0;
    bool found = false;
    for (const auto& [col, val] : prow) {
        if (static_cast<std::size_t>(col) == pivot_col) {
            pivot_val = val;
            found = true;
            break;
        }
    }
    if (!found || std::abs(pivot_val) <= kDropTol) return false;

    // Surviving pivot-row entries become U entries of their columns.
    std::vector<std::pair<std::int32_t, double>> urow_entries;
    urow_entries.reserve(prow.size());
    for (const auto& [col, val] : prow) {
        if (static_cast<std::size_t>(col) == pivot_col || !col_active_[col]) continue;
        urow_entries.emplace_back(col, val);
    }

    const auto push_bucket = [&](std::int32_t c) {
        buckets_[std::min<std::size_t>(
                     static_cast<std::size_t>(std::max(0, col_count_[c])), m_)]
            .push_back(c);
    };

    // Reduce the other rows of the pivot column.
    const std::size_t ops_before = l_row_.size();
    for (const std::int32_t i : wcol_[pivot_col]) {
        if (!row_active_[i] || static_cast<std::size_t>(i) == pivot_row) continue;
        auto& row = wrow_[i];
        std::size_t at = row.size();
        for (std::size_t e = 0; e < row.size(); ++e) {
            if (static_cast<std::size_t>(row[e].first) == pivot_col) {
                at = e;
                break;
            }
        }
        if (at == row.size()) continue;  // stale column-list entry
        const double mult = row[at].second / pivot_val;
        row[at] = row.back();
        row.pop_back();
        --row_count_[i];
        if (std::abs(mult) <= kDropTol) continue;
        l_row_.push_back(i);
        l_val_.push_back(mult);
        // row_i -= mult * pivot_row over the surviving pivot-row pattern.
        for (const auto& [c2, u] : urow_entries) {
            std::size_t hit = row.size();
            for (std::size_t e = 0; e < row.size(); ++e) {
                if (row[e].first == c2) {
                    hit = e;
                    break;
                }
            }
            if (hit != row.size()) {
                row[hit].second -= mult * u;
                if (std::abs(row[hit].second) <= kDropTol) {
                    row[hit] = row.back();
                    row.pop_back();
                    --row_count_[i];
                    --col_count_[c2];
                    push_bucket(c2);
                }
            } else {
                const double fill = -mult * u;
                if (std::abs(fill) <= kDropTol) continue;
                row.emplace_back(c2, fill);
                wcol_[c2].push_back(i);
                ++row_count_[i];
                ++col_count_[c2];
                push_bucket(c2);
            }
        }
    }
    if (l_row_.size() > ops_before) {
        l_piv_row_.push_back(static_cast<std::int32_t>(pivot_row));
        l_start_.push_back(static_cast<std::int64_t>(l_row_.size()));
    }

    // Record U entries and retire the pivot row and column.
    const auto slot = static_cast<std::int32_t>(pivot_col);
    for (const auto& [c2, u] : urow_entries) {
        ucol_[c2].push_back({slot, u, rowver_[slot]});
        urow_[slot].push_back({c2, u, colver_[c2]});
        --col_count_[c2];
        push_bucket(c2);
    }
    udiag_[pivot_col] = pivot_val;
    urowof_[pivot_col] = static_cast<std::int32_t>(pivot_row);
    slot_of_row_[pivot_row] = slot;
    seq_pos_[pivot_col] = static_cast<std::int32_t>(pivot_seq_.size());
    pivot_seq_.push_back(slot);
    row_active_[pivot_row] = 0;
    col_active_[pivot_col] = 0;
    row_count_[pivot_row] = 0;
    col_count_[pivot_col] = 0;
    return true;
}

bool LuFactor::factorize(const LpContext& ctx, std::span<const std::int32_t> basic,
                         std::span<const std::int32_t> hint_slot,
                         std::span<const std::int32_t> hint_row) {
    m_ = basic.size();
    valid_ = false;
    reset_pools();
    if (m_ == 0) {
        valid_ = true;
        ++stats_.refactorizations;
        return true;
    }

    const std::size_t n = ctx.structurals();
    const auto& col_start = ctx.col_start();
    const auto& row_idx = ctx.row_idx();
    const auto& vals = ctx.values();

    wrow_.resize(m_);
    wcol_.resize(m_);
    for (auto& r : wrow_) r.clear();
    for (auto& c : wcol_) c.clear();
    row_count_.assign(m_, 0);
    col_count_.assign(m_, 0);
    row_active_.assign(m_, 1);
    col_active_.assign(m_, 1);
    buckets_.resize(m_ + 1);
    for (auto& b : buckets_) b.clear();

    std::int64_t nnz = 0;
    for (std::size_t j = 0; j < m_; ++j) {
        const auto v = static_cast<std::size_t>(basic[j]);
        const auto add = [&](std::size_t row, double val) {
            wrow_[row].emplace_back(static_cast<std::int32_t>(j), val);
            wcol_[j].push_back(static_cast<std::int32_t>(row));
            ++row_count_[row];
            ++col_count_[j];
            ++nnz;
        };
        if (v >= n) {
            add(v - n, 1.0);
        } else {
            const auto begin = static_cast<std::size_t>(col_start[v]);
            const auto end = static_cast<std::size_t>(col_start[v + 1]);
            for (std::size_t i = begin; i < end; ++i) {
                add(static_cast<std::size_t>(row_idx[i]), vals[i]);
            }
        }
        if (col_count_[j] == 0) return false;  // empty column: singular
    }
    stats_.basis_nnz += static_cast<double>(nnz);

    if (hint_slot.size() == m_ && hint_row.size() == m_) {
        // Replay a stored pivot order (warm-start snapshot). Any missing or
        // shrunken pivot abandons the replay; the caller retries Markowitz.
        for (std::size_t k = 0; k < m_; ++k) {
            const std::int32_t c = hint_slot[k];
            const std::int32_t r = hint_row[k];
            if (c < 0 || static_cast<std::size_t>(c) >= m_ || r < 0 ||
                static_cast<std::size_t>(r) >= m_ || !col_active_[c] ||
                !row_active_[r]) {
                return false;
            }
            double val = 0.0;
            bool found = false;
            for (const auto& [col, v] : wrow_[r]) {
                if (col == c) {
                    val = v;
                    found = true;
                    break;
                }
            }
            if (!found || std::abs(val) < kHintPivTol) return false;
            if (!eliminate(k, static_cast<std::size_t>(r),
                           static_cast<std::size_t>(c))) {
                return false;
            }
        }
    } else {
        std::vector<std::int32_t> col_single, row_single;
        for (std::size_t j = 0; j < m_; ++j) {
            buckets_[std::min<std::size_t>(
                         static_cast<std::size_t>(col_count_[j]), m_)]
                .push_back(static_cast<std::int32_t>(j));
            if (col_count_[j] == 1) col_single.push_back(static_cast<std::int32_t>(j));
        }
        for (std::size_t i = 0; i < m_; ++i) {
            if (row_count_[i] == 1) row_single.push_back(static_cast<std::int32_t>(i));
        }

        const auto live_row_of_col = [&](std::int32_t c) -> std::int32_t {
            for (const std::int32_t i : wcol_[c]) {
                if (!row_active_[i]) continue;
                for (const auto& [col, v] : wrow_[i]) {
                    if (col == c) return i;
                }
            }
            return -1;
        };
        const auto live_col_of_row = [&](std::int32_t r) -> std::int32_t {
            for (const auto& [col, v] : wrow_[r]) {
                if (col_active_[col]) return col;
            }
            return -1;
        };

        std::size_t pivots = 0;
        while (pivots < m_) {
            // Stage 1: zero-fill singleton pivots until none remain.
            bool advanced = true;
            while (advanced) {
                advanced = false;
                while (!col_single.empty()) {
                    const std::int32_t c = col_single.back();
                    col_single.pop_back();
                    if (!col_active_[c] || col_count_[c] != 1) continue;
                    const std::int32_t r = live_row_of_col(c);
                    if (r < 0) return false;
                    if (!eliminate(pivots, static_cast<std::size_t>(r),
                                   static_cast<std::size_t>(c))) {
                        return false;
                    }
                    ++pivots;
                    advanced = true;
                    for (const auto& [col, v] : wrow_[r]) {
                        if (col_active_[col] && col_count_[col] == 1) {
                            col_single.push_back(col);
                        }
                    }
                }
                while (!row_single.empty()) {
                    const std::int32_t r = row_single.back();
                    row_single.pop_back();
                    if (!row_active_[r] || row_count_[r] != 1) continue;
                    const std::int32_t c = live_col_of_row(r);
                    if (c < 0) return false;
                    // Snapshot the rows the pivot column reaches before it is
                    // retired, to seed new row singletons afterwards.
                    std::vector<std::int32_t> touched(wcol_[c]);
                    if (!eliminate(pivots, static_cast<std::size_t>(r),
                                   static_cast<std::size_t>(c))) {
                        return false;
                    }
                    ++pivots;
                    advanced = true;
                    for (const std::int32_t i : touched) {
                        if (row_active_[i] && row_count_[i] == 1) {
                            row_single.push_back(i);
                        }
                    }
                    if (!col_single.empty()) break;  // prefer zero-fill columns
                }
            }
            if (pivots >= m_) break;

            // Stage 2: one Markowitz pivot from the lowest-count buckets with
            // threshold partial pivoting, then return to the singleton sweep.
            std::vector<std::int32_t> cand;
            for (std::size_t cc = 1;
                 cc <= m_ && cand.size() < static_cast<std::size_t>(kMarkowitzCands);
                 ++cc) {
                auto& bucket = buckets_[cc];
                while (!bucket.empty() &&
                       cand.size() < static_cast<std::size_t>(kMarkowitzCands)) {
                    const std::int32_t c = bucket.back();
                    bucket.pop_back();
                    if (!col_active_[c] ||
                        static_cast<std::size_t>(col_count_[c]) != cc) {
                        continue;  // stale bucket entry: drop it
                    }
                    if (std::find(cand.begin(), cand.end(), c) == cand.end()) {
                        cand.push_back(c);
                    }
                }
            }
            std::int32_t best_row = -1, best_col = -1;
            double best_val = 0.0;
            std::int64_t best_cost = -1;
            for (const std::int32_t c : cand) {
                double colmax = 0.0;
                for (const std::int32_t i : wcol_[c]) {
                    if (!row_active_[i]) continue;
                    for (const auto& [col, v] : wrow_[i]) {
                        if (col == c) {
                            colmax = std::max(colmax, std::abs(v));
                            break;
                        }
                    }
                }
                if (colmax <= kAbsPivTol) continue;
                for (const std::int32_t i : wcol_[c]) {
                    if (!row_active_[i]) continue;
                    double v = 0.0;
                    bool found = false;
                    for (const auto& [col, vv] : wrow_[i]) {
                        if (col == c) {
                            v = vv;
                            found = true;
                            break;
                        }
                    }
                    if (!found || std::abs(v) < kTau * colmax ||
                        std::abs(v) <= kAbsPivTol) {
                        continue;
                    }
                    const std::int64_t cost =
                        static_cast<std::int64_t>(row_count_[i] - 1) *
                        static_cast<std::int64_t>(col_count_[c] - 1);
                    if (best_cost < 0 || cost < best_cost ||
                        (cost == best_cost && std::abs(v) > std::abs(best_val))) {
                        best_cost = cost;
                        best_row = i;
                        best_col = c;
                        best_val = v;
                    }
                }
            }
            if (best_row < 0) return false;  // numerically singular bump
            // Return the unselected candidates to their buckets.
            for (const std::int32_t c : cand) {
                if (c == best_col) continue;
                buckets_[std::min<std::size_t>(
                             static_cast<std::size_t>(col_count_[c]), m_)]
                    .push_back(c);
            }
            const auto pre_col_rows = wcol_[best_col];
            if (!eliminate(pivots, static_cast<std::size_t>(best_row),
                           static_cast<std::size_t>(best_col))) {
                return false;
            }
            ++pivots;
            for (const auto& [col, v] : wrow_[best_row]) {
                if (col_active_[col] && col_count_[col] == 1) col_single.push_back(col);
            }
            for (const std::int32_t i : pre_col_rows) {
                if (row_active_[i] && row_count_[i] == 1) row_single.push_back(i);
            }
        }
    }

    // Row -> L-op incidence for the hypersparse BTRAN-L^T walk.
    const std::size_t ops = l_piv_row_.size();
    lrow_start_.assign(m_ + 1, 0);
    for (const std::int32_t i : l_row_) ++lrow_start_[static_cast<std::size_t>(i) + 1];
    for (std::size_t i = 0; i < m_; ++i) lrow_start_[i + 1] += lrow_start_[i];
    lrow_op_.resize(l_row_.size());
    {
        std::vector<std::int64_t> cursor(lrow_start_.begin(), lrow_start_.end() - 1);
        for (std::size_t k = 0; k < ops; ++k) {
            const auto begin = static_cast<std::size_t>(l_start_[k]);
            const auto end = static_cast<std::size_t>(l_start_[k + 1]);
            for (std::size_t e = begin; e < end; ++e) {
                lrow_op_[static_cast<std::size_t>(
                    cursor[static_cast<std::size_t>(l_row_[e])]++)] =
                    static_cast<std::int32_t>(k);
            }
        }
    }
    lop_mark_.assign(ops, 0);
    lop_epoch_ = 0;

    std::int64_t fill = static_cast<std::int64_t>(l_val_.size()) +
                        static_cast<std::int64_t>(m_);
    for (const auto& c : ucol_) fill += static_cast<std::int64_t>(c.size());
    stats_.fill_nnz += static_cast<double>(fill);
    ++stats_.refactorizations;
    valid_ = true;
    return true;
}

void LuFactor::apply_l_ftran(std::vector<double>& v, std::vector<std::int32_t>* list) {
    const std::size_t ops = l_piv_row_.size();
    for (std::size_t k = 0; k < ops; ++k) {
        const double t = v[static_cast<std::size_t>(l_piv_row_[k])];
        if (t == 0.0) continue;
        const auto begin = static_cast<std::size_t>(l_start_[k]);
        const auto end = static_cast<std::size_t>(l_start_[k + 1]);
        for (std::size_t e = begin; e < end; ++e) {
            const auto i = static_cast<std::size_t>(l_row_[e]);
            v[i] -= l_val_[e] * t;
            if (list != nullptr && mark_[i] != epoch_) {
                mark_[i] = epoch_;
                list->push_back(static_cast<std::int32_t>(i));
            }
        }
    }
}

void LuFactor::apply_r_ftran(std::vector<double>& v, std::vector<std::int32_t>* list) {
    const std::size_t ops = r_target_.size();
    for (std::size_t k = 0; k < ops; ++k) {
        const auto begin = static_cast<std::size_t>(r_start_[k]);
        const auto end = static_cast<std::size_t>(r_start_[k + 1]);
        double acc = 0.0;
        for (std::size_t e = begin; e < end; ++e) {
            acc += r_val_[e] * v[static_cast<std::size_t>(r_row_[e])];
        }
        if (acc == 0.0) continue;
        const auto tr = static_cast<std::size_t>(r_target_[k]);
        v[tr] -= acc;
        if (list != nullptr && mark_[tr] != epoch_) {
            mark_[tr] = epoch_;
            list->push_back(static_cast<std::int32_t>(tr));
        }
    }
}

// Backward substitution through U. `work` holds the L/R-applied RHS over
// rows (consumed and re-zeroed); the result lands in x over slots with its
// nonzero slots appended to xlist (x is all-zero on entry by contract).
void LuFactor::solve_u_ftran(std::vector<double>& work, std::vector<double>& x,
                             std::vector<std::int32_t>& xlist,
                             const std::vector<std::int32_t>& seed_rows,
                             bool force_dense) {
    const bool hyper =
        !force_dense &&
        seed_rows.size() < std::max<std::size_t>(
                               16, static_cast<std::size_t>(
                                       kHyperFrac * static_cast<double>(m_)));
    if (hyper) {
        // Reachability over the U dependency DAG: processing slot s scatters
        // into the pivot rows named by ucol_[s], so the result pattern is the
        // closure of the seed slots under those edges. The DFS emits
        // postorder — every slot lands after the slots it scatters into — so
        // walking reach_ backwards is already topological, no sort needed.
        reach_.clear();
        dstack_.clear();
        ++epoch_;
        for (const std::int32_t row : seed_rows) {
            const std::int32_t seed = slot_of_row_[static_cast<std::size_t>(row)];
            if (mark_[static_cast<std::size_t>(seed)] == epoch_) continue;
            mark_[static_cast<std::size_t>(seed)] = epoch_;
            dstack_.push_back({seed, 0});
            while (!dstack_.empty()) {
                auto& top = dstack_.back();
                const auto& col = ucol_[static_cast<std::size_t>(top.first)];
                std::int32_t child = -1;
                auto i = static_cast<std::size_t>(top.second);
                for (; i < col.size(); ++i) {
                    const UEntry& e = col[i];
                    if (e.ver != rowver_[static_cast<std::size_t>(e.slot)]) continue;
                    if (mark_[static_cast<std::size_t>(e.slot)] == epoch_) continue;
                    child = e.slot;
                    ++i;
                    break;
                }
                top.second = static_cast<std::int32_t>(i);
                if (child >= 0) {
                    mark_[static_cast<std::size_t>(child)] = epoch_;
                    dstack_.push_back({child, 0});
                } else {
                    reach_.push_back(top.first);
                    dstack_.pop_back();
                }
            }
        }
        for (std::size_t r = reach_.size(); r-- > 0;) {
            const std::int32_t s = reach_[r];
            const auto row =
                static_cast<std::size_t>(urowof_[static_cast<std::size_t>(s)]);
            const double t = work[row];
            work[row] = 0.0;
            if (t == 0.0) continue;
            const double xv = t / udiag_[static_cast<std::size_t>(s)];
            x[static_cast<std::size_t>(s)] = xv;
            xlist.push_back(s);
            for (const UEntry& e : ucol_[static_cast<std::size_t>(s)]) {
                if (e.ver != rowver_[static_cast<std::size_t>(e.slot)]) continue;
                work[static_cast<std::size_t>(
                    urowof_[static_cast<std::size_t>(e.slot)])] -= e.val * xv;
            }
        }
        ++stats_.hyper_solves;
    } else {
        for (std::size_t pos = m_; pos-- > 0;) {
            const std::int32_t s = pivot_seq_[pos];
            const auto row =
                static_cast<std::size_t>(urowof_[static_cast<std::size_t>(s)]);
            const double t = work[row];
            work[row] = 0.0;
            if (t == 0.0) continue;
            const double xv = t / udiag_[static_cast<std::size_t>(s)];
            x[static_cast<std::size_t>(s)] = xv;
            xlist.push_back(s);
            for (const UEntry& e : ucol_[static_cast<std::size_t>(s)]) {
                if (e.ver != rowver_[static_cast<std::size_t>(e.slot)]) continue;
                work[static_cast<std::size_t>(
                    urowof_[static_cast<std::size_t>(e.slot)])] -= e.val * xv;
            }
        }
        ++stats_.dense_solves;
    }
}

void LuFactor::ftran_column(const LpContext& ctx, std::int32_t var,
                            std::vector<double>& x,
                            std::vector<std::int32_t>& xlist) {
    if (x.size() != m_) {
        x.assign(m_, 0.0);
        xlist.clear();
    }
    for (const std::int32_t s : xlist) x[static_cast<std::size_t>(s)] = 0.0;
    xlist.clear();
    if (m_ == 0) return;

    ++epoch_;
    for (const std::int32_t row : spike_list_) {
        spike_[static_cast<std::size_t>(row)] = 0.0;
    }
    spike_list_.clear();
    const std::size_t n = ctx.structurals();
    if (static_cast<std::size_t>(var) >= n) {
        const auto row = static_cast<std::size_t>(var) - n;
        spike_[row] = 1.0;
        mark_[row] = epoch_;
        spike_list_.push_back(static_cast<std::int32_t>(row));
    } else {
        const auto& col_start = ctx.col_start();
        const auto& row_idx = ctx.row_idx();
        const auto& vals = ctx.values();
        const auto begin =
            static_cast<std::size_t>(col_start[static_cast<std::size_t>(var)]);
        const auto end =
            static_cast<std::size_t>(col_start[static_cast<std::size_t>(var) + 1]);
        for (std::size_t i = begin; i < end; ++i) {
            const auto row = static_cast<std::size_t>(row_idx[i]);
            spike_[row] = vals[i];
            mark_[row] = epoch_;
            spike_list_.push_back(static_cast<std::int32_t>(row));
        }
    }
    apply_l_ftran(spike_, &spike_list_);
    apply_r_ftran(spike_, &spike_list_);
    spike_valid_ = true;

    for (const std::int32_t row : spike_list_) {
        work_[static_cast<std::size_t>(row)] =
            spike_[static_cast<std::size_t>(row)];
    }
    solve_u_ftran(work_, x, xlist, spike_list_, /*force_dense=*/false);
}

void LuFactor::ftran_dense(std::vector<double>& b_rows, std::vector<double>& x_slots) {
    x_slots.assign(m_, 0.0);
    if (m_ == 0) return;
    apply_l_ftran(b_rows, nullptr);
    apply_r_ftran(b_rows, nullptr);
    for (std::size_t pos = m_; pos-- > 0;) {
        const std::int32_t s = pivot_seq_[pos];
        const auto row = static_cast<std::size_t>(urowof_[static_cast<std::size_t>(s)]);
        const double t = b_rows[row];
        if (t == 0.0) continue;
        const double xv = t / udiag_[static_cast<std::size_t>(s)];
        x_slots[static_cast<std::size_t>(s)] = xv;
        for (const UEntry& e : ucol_[static_cast<std::size_t>(s)]) {
            if (e.ver != rowver_[static_cast<std::size_t>(e.slot)]) continue;
            b_rows[static_cast<std::size_t>(
                urowof_[static_cast<std::size_t>(e.slot)])] -= e.val * xv;
        }
    }
    ++stats_.dense_solves;
}

void LuFactor::btran_unit(std::size_t slot, std::vector<double>& rho,
                          std::vector<std::int32_t>& rholist) {
    const auto s = static_cast<std::int32_t>(slot);
    const double one = 1.0;
    btran_seeds({&s, 1}, {&one, 1}, rho, rholist);
}

void LuFactor::btran_seeds(std::span<const std::int32_t> slots,
                           std::span<const double> vals,
                           std::vector<double>& rho,
                           std::vector<std::int32_t>& rholist) {
    if (rho.size() != m_) {
        rho.assign(m_, 0.0);
        rholist.clear();
    }
    for (const std::int32_t r : rholist) rho[static_cast<std::size_t>(r)] = 0.0;
    rholist.clear();
    if (m_ == 0) return;

    for (std::size_t i = 0; i < slots.size(); ++i) {
        seed_val_[static_cast<std::size_t>(slots[i])] += vals[i];
    }

    const std::size_t cap = std::max<std::size_t>(
        16, static_cast<std::size_t>(kHyperFrac * static_cast<double>(m_)));

    // U^T forward solve. The dependency edges run from a slot to the later
    // slots whose U columns gather its pivot row — exactly urow_. The DFS
    // emits postorder (walking reach_ backwards visits a slot before every
    // slot that depends on it) and aborts to the dense pass once the
    // reached set stops being sparse.
    reach_.clear();
    dstack_.clear();
    bool u_hyper = slots.size() <= cap;
    std::size_t reached = 0;
    ++epoch_;
    for (const std::int32_t seed : slots) {
        if (!u_hyper) break;
        if (mark_[static_cast<std::size_t>(seed)] == epoch_) continue;
        mark_[static_cast<std::size_t>(seed)] = epoch_;
        if (++reached > cap) {
            u_hyper = false;
            break;
        }
        dstack_.push_back({seed, 0});
        while (!dstack_.empty()) {
            auto& top = dstack_.back();
            const auto& row = urow_[static_cast<std::size_t>(top.first)];
            std::int32_t child = -1;
            auto i = static_cast<std::size_t>(top.second);
            for (; i < row.size(); ++i) {
                const UEntry& e = row[i];
                if (e.ver != colver_[static_cast<std::size_t>(e.slot)]) continue;
                if (mark_[static_cast<std::size_t>(e.slot)] == epoch_) continue;
                child = e.slot;
                ++i;
                break;
            }
            top.second = static_cast<std::int32_t>(i);
            if (child >= 0) {
                mark_[static_cast<std::size_t>(child)] = epoch_;
                if (++reached > cap) {
                    u_hyper = false;
                    break;
                }
                dstack_.push_back({child, 0});
            } else {
                reach_.push_back(top.first);
                dstack_.pop_back();
            }
        }
    }
    ++epoch_;  // the DFS slot marks are dead; row marks below use a fresh epoch
    if (u_hyper) {
        for (std::size_t r = reach_.size(); r-- > 0;) {
            const std::int32_t s = reach_[r];
            double acc = seed_val_[static_cast<std::size_t>(s)];
            for (const UEntry& e : ucol_[static_cast<std::size_t>(s)]) {
                if (e.ver != rowver_[static_cast<std::size_t>(e.slot)]) continue;
                acc -= e.val *
                       rho[static_cast<std::size_t>(
                           urowof_[static_cast<std::size_t>(e.slot)])];
            }
            if (acc == 0.0) continue;
            const auto row =
                static_cast<std::size_t>(urowof_[static_cast<std::size_t>(s)]);
            rho[row] = acc / udiag_[static_cast<std::size_t>(s)];
            if (mark_[row] != epoch_) {
                mark_[row] = epoch_;
                rholist.push_back(static_cast<std::int32_t>(row));
            }
        }
    } else {
        for (std::size_t pos = 0; pos < m_; ++pos) {
            const std::int32_t s = pivot_seq_[pos];
            double acc = seed_val_[static_cast<std::size_t>(s)];
            for (const UEntry& e : ucol_[static_cast<std::size_t>(s)]) {
                if (e.ver != rowver_[static_cast<std::size_t>(e.slot)]) continue;
                acc -= e.val *
                       rho[static_cast<std::size_t>(
                           urowof_[static_cast<std::size_t>(e.slot)])];
            }
            if (acc == 0.0) continue;
            const auto row =
                static_cast<std::size_t>(urowof_[static_cast<std::size_t>(s)]);
            rho[row] = acc / udiag_[static_cast<std::size_t>(s)];
            if (mark_[row] != epoch_) {
                mark_[row] = epoch_;
                rholist.push_back(static_cast<std::int32_t>(row));
            }
        }
    }

    for (const std::int32_t s : slots) seed_val_[static_cast<std::size_t>(s)] = 0.0;

    // R^T, newest update first: each op folds its target into its sources.
    for (std::size_t k = r_target_.size(); k-- > 0;) {
        const double t = rho[static_cast<std::size_t>(r_target_[k])];
        if (t == 0.0) continue;
        const auto begin = static_cast<std::size_t>(r_start_[k]);
        const auto end = static_cast<std::size_t>(r_start_[k + 1]);
        for (std::size_t e = begin; e < end; ++e) {
            const auto i = static_cast<std::size_t>(r_row_[e]);
            rho[i] -= r_val_[e] * t;
            if (mark_[i] != epoch_) {
                mark_[i] = epoch_;
                rholist.push_back(static_cast<std::int32_t>(i));
            }
        }
    }

    // L^T, newest op first. Hypersparse: an op can only fire if one of its
    // source rows is already nonzero, so collect the ops reachable from the
    // current nonzero set through the row->op incidence and apply just those.
    const std::size_t ops = l_piv_row_.size();
    const bool l_hyper = rholist.size() < cap || ops == 0;
    if (l_hyper && ops > 0) {
        // DFS with its own epoch for row-visited marks; op-visited marks live
        // in lop_mark_. Firing op k makes its pivot row a potential source.
        ++epoch_;
        ++lop_epoch_;
        reach_.clear();
        stack_.assign(rholist.begin(), rholist.end());
        for (const std::int32_t r : rholist) {
            mark_[static_cast<std::size_t>(r)] = epoch_;
        }
        while (!stack_.empty()) {
            const auto row = static_cast<std::size_t>(stack_.back());
            stack_.pop_back();
            const auto begin = static_cast<std::size_t>(lrow_start_[row]);
            const auto end = static_cast<std::size_t>(lrow_start_[row + 1]);
            for (std::size_t e = begin; e < end; ++e) {
                const std::int32_t k = lrow_op_[e];
                if (lop_mark_[static_cast<std::size_t>(k)] == lop_epoch_) continue;
                lop_mark_[static_cast<std::size_t>(k)] = lop_epoch_;
                reach_.push_back(k);
                const auto piv =
                    static_cast<std::size_t>(l_piv_row_[static_cast<std::size_t>(k)]);
                if (mark_[piv] != epoch_) {
                    mark_[piv] = epoch_;
                    stack_.push_back(static_cast<std::int32_t>(piv));
                }
            }
        }
        std::sort(reach_.begin(), reach_.end(), std::greater<std::int32_t>());
        // Fresh epoch for nonzero membership: the DFS marks above include
        // rows that may stay zero and must not block a rholist append.
        ++epoch_;
        for (const std::int32_t r : rholist) {
            mark_[static_cast<std::size_t>(r)] = epoch_;
        }
        for (const std::int32_t k : reach_) {
            const auto begin =
                static_cast<std::size_t>(l_start_[static_cast<std::size_t>(k)]);
            const auto end =
                static_cast<std::size_t>(l_start_[static_cast<std::size_t>(k) + 1]);
            double acc = 0.0;
            for (std::size_t e = begin; e < end; ++e) {
                acc += l_val_[e] * rho[static_cast<std::size_t>(l_row_[e])];
            }
            if (acc == 0.0) continue;
            const auto piv =
                static_cast<std::size_t>(l_piv_row_[static_cast<std::size_t>(k)]);
            rho[piv] -= acc;
            if (mark_[piv] != epoch_) {
                mark_[piv] = epoch_;
                rholist.push_back(static_cast<std::int32_t>(piv));
            }
        }
    } else if (ops > 0) {
        for (std::size_t k = ops; k-- > 0;) {
            const auto begin = static_cast<std::size_t>(l_start_[k]);
            const auto end = static_cast<std::size_t>(l_start_[k + 1]);
            double acc = 0.0;
            for (std::size_t e = begin; e < end; ++e) {
                acc += l_val_[e] * rho[static_cast<std::size_t>(l_row_[e])];
            }
            if (acc == 0.0) continue;
            const auto piv = static_cast<std::size_t>(l_piv_row_[k]);
            rho[piv] -= acc;
            if (mark_[piv] != epoch_) {
                mark_[piv] = epoch_;
                rholist.push_back(static_cast<std::int32_t>(piv));
            }
        }
    }
    if (u_hyper && l_hyper) {
        ++stats_.hyper_solves;
    } else {
        ++stats_.dense_solves;
    }
}

void LuFactor::btran_dense(const std::vector<double>& c_slots,
                           std::vector<double>& y_rows) {
    y_rows.assign(m_, 0.0);
    for (std::size_t pos = 0; pos < m_; ++pos) {
        const std::int32_t s = pivot_seq_[pos];
        double acc = c_slots[static_cast<std::size_t>(s)];
        for (const UEntry& e : ucol_[static_cast<std::size_t>(s)]) {
            if (e.ver != rowver_[static_cast<std::size_t>(e.slot)]) continue;
            acc -= e.val *
                   y_rows[static_cast<std::size_t>(
                       urowof_[static_cast<std::size_t>(e.slot)])];
        }
        if (acc == 0.0) continue;
        y_rows[static_cast<std::size_t>(urowof_[static_cast<std::size_t>(s)])] =
            acc / udiag_[static_cast<std::size_t>(s)];
    }
    for (std::size_t k = r_target_.size(); k-- > 0;) {
        const double t = y_rows[static_cast<std::size_t>(r_target_[k])];
        if (t == 0.0) continue;
        const auto begin = static_cast<std::size_t>(r_start_[k]);
        const auto end = static_cast<std::size_t>(r_start_[k + 1]);
        for (std::size_t e = begin; e < end; ++e) {
            y_rows[static_cast<std::size_t>(r_row_[e])] -= r_val_[e] * t;
        }
    }
    for (std::size_t k = l_piv_row_.size(); k-- > 0;) {
        const auto begin = static_cast<std::size_t>(l_start_[k]);
        const auto end = static_cast<std::size_t>(l_start_[k + 1]);
        double acc = 0.0;
        for (std::size_t e = begin; e < end; ++e) {
            acc += l_val_[e] * y_rows[static_cast<std::size_t>(l_row_[e])];
        }
        if (acc != 0.0) {
            y_rows[static_cast<std::size_t>(l_piv_row_[k])] -= acc;
        }
    }
    ++stats_.dense_solves;
}

bool LuFactor::update(std::size_t slot) {
    if (!spike_valid_ || m_ == 0) return false;
    const auto j0 = static_cast<std::size_t>(seq_pos_[slot]);

    // Multipliers eliminating the displaced U row: mu solves mu^T U~ = r^T
    // over the sub-order after j0, computed by scattering each finalized mu
    // through that slot's U row (the natural pivot-order recurrence). Every
    // live urow_ entry targets a strictly later slot, so one ascending pass
    // over positions suffices.
    mu_list_.clear();
    mu_touched_.clear();
    for (const UEntry& e : urow_[slot]) {
        if (e.ver != colver_[static_cast<std::size_t>(e.slot)]) continue;
        mu_[static_cast<std::size_t>(e.slot)] += e.val;
        mu_touched_.push_back(e.slot);
    }
    bool ok = true;
    for (std::size_t pos = j0 + 1; pos < m_; ++pos) {
        const auto s = static_cast<std::size_t>(pivot_seq_[pos]);
        const double num = mu_[s];
        if (num == 0.0) continue;
        const double mv = num / udiag_[s];
        if (std::abs(mv) <= kDropTol) {
            mu_[s] = 0.0;
            continue;
        }
        if (std::abs(mv) > kMuMax) {
            ok = false;
            break;
        }
        mu_[s] = mv;
        mu_list_.push_back(static_cast<std::int32_t>(s));
        for (const UEntry& e : urow_[s]) {
            if (e.ver != colver_[static_cast<std::size_t>(e.slot)]) continue;
            if (mu_[static_cast<std::size_t>(e.slot)] == 0.0) {
                mu_touched_.push_back(e.slot);
            }
            mu_[static_cast<std::size_t>(e.slot)] -= mv * e.val;
        }
    }

    double diag = 0.0;
    if (ok) {
        double spike_max = 0.0;
        diag = spike_[static_cast<std::size_t>(urowof_[slot])];
        for (const std::int32_t s : mu_list_) {
            diag -= mu_[static_cast<std::size_t>(s)] *
                    spike_[static_cast<std::size_t>(
                        urowof_[static_cast<std::size_t>(s)])];
        }
        for (const std::int32_t row : spike_list_) {
            spike_max = std::max(spike_max,
                                 std::abs(spike_[static_cast<std::size_t>(row)]));
        }
        if (std::abs(diag) <= 1e-9 * (1.0 + spike_max)) ok = false;
    }
    if (!ok) {
        for (const std::int32_t s : mu_touched_) mu_[static_cast<std::size_t>(s)] = 0.0;
        for (const std::int32_t s : mu_list_) mu_[static_cast<std::size_t>(s)] = 0.0;
        mu_list_.clear();
        return false;  // factor unchanged; caller refactorizes
    }

    if (!mu_list_.empty()) {
        r_target_.push_back(urowof_[slot]);
        for (const std::int32_t s : mu_list_) {
            r_row_.push_back(urowof_[static_cast<std::size_t>(s)]);
            r_val_.push_back(mu_[static_cast<std::size_t>(s)]);
        }
        r_start_.push_back(static_cast<std::int64_t>(r_row_.size()));
    }

    // Retire the old row and column of the leaving slot (lazily, by version
    // bump), install the spike as the new last column, and rotate the pivot
    // order. The slot keeps its pivot row, so slot_of_row_ is untouched.
    ++rowver_[slot];
    ++colver_[slot];
    urow_[slot].clear();
    ucol_[slot].clear();
    for (const std::int32_t row : spike_list_) {
        const double val = spike_[static_cast<std::size_t>(row)];
        if (std::abs(val) <= kDropTol) continue;
        const auto s =
            static_cast<std::size_t>(slot_of_row_[static_cast<std::size_t>(row)]);
        if (s == slot) continue;  // the diagonal, post-elimination, is `diag`
        ucol_[slot].push_back({static_cast<std::int32_t>(s), val, rowver_[s]});
        urow_[s].push_back({static_cast<std::int32_t>(slot), val, colver_[slot]});
    }
    udiag_[slot] = diag;
    pivot_seq_.erase(pivot_seq_.begin() + static_cast<std::ptrdiff_t>(j0));
    pivot_seq_.push_back(static_cast<std::int32_t>(slot));
    for (std::size_t pos = j0; pos < m_; ++pos) {
        seq_pos_[static_cast<std::size_t>(pivot_seq_[pos])] =
            static_cast<std::int32_t>(pos);
    }

    for (const std::int32_t s : mu_touched_) mu_[static_cast<std::size_t>(s)] = 0.0;
    for (const std::int32_t s : mu_list_) mu_[static_cast<std::size_t>(s)] = 0.0;
    mu_list_.clear();
    spike_valid_ = false;
    ++stats_.ft_updates;
    return true;
}

void LuFactor::export_pivot_order(std::vector<std::int32_t>& slot_out,
                                  std::vector<std::int32_t>& row_out) const {
    slot_out.assign(pivot_seq_.begin(), pivot_seq_.end());
    row_out.resize(m_);
    for (std::size_t pos = 0; pos < m_; ++pos) {
        row_out[pos] = urowof_[static_cast<std::size_t>(pivot_seq_[pos])];
    }
}

}  // namespace hermes::milp
