#include "milp/decompose.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <string>
#include <utility>
#include <vector>

#include "milp/simplex.h"
#include "obs/obs.h"

namespace hermes::milp {

namespace {

using Clock = std::chrono::steady_clock;

constexpr double kCutTol = 1e-6;
constexpr int kMaxIterations = 50;

// One communicating pair carved out of the model: the y columns of its
// coupling row, the linking (comm) variable, and the per-path cost taken
// from the objective / epsilon1 row.
struct PairBlock {
    VarId link = -1;               // comm[pq]
    std::vector<VarId> paths;      // y[pq][k], coupling coefficient +1
    std::vector<double> cost;      // per-path latency (0 when y is costless)
    // Subproblem: min cost'y s.t. sum y - c = 0, y in [0,1], c fixed to the
    // master's comm value via its bounds. Built once, re-solved warm.
    Model sub;
    VarId sub_link = -1;           // the c column inside `sub`
    Basis warm;                    // previous iteration's optimal basis
};

struct Seam {
    std::vector<PairBlock> pairs;
    bool objective_has_y = false;
    bool has_budget_row = false;   // the epsilon1 row
    double budget_rhs = 0.0;
    std::vector<double> budget_cost;  // per-variable latency in that row
};

bool is_path_var(const Variable& v) { return v.name.rfind("y_", 0) == 0; }

// Classifies every row touching a y variable. Returns false when the seam
// does not look like the P#1 shape (the caller then falls back).
bool extract_seam(const Model& model, Seam& seam) {
    const std::size_t n = model.variable_count();
    std::vector<std::uint8_t> path_var(n, 0);
    std::size_t path_count = 0;
    for (std::size_t j = 0; j < n; ++j) {
        if (is_path_var(model.variable(static_cast<VarId>(j)))) {
            path_var[j] = 1;
            ++path_count;
        }
    }
    if (path_count == 0) return false;

    seam.budget_cost.assign(n, 0.0);
    std::vector<double> obj_cost(n, 0.0);
    for (const Term& t : model.objective().terms()) {
        if (path_var[static_cast<std::size_t>(t.var)]) {
            seam.objective_has_y = true;
            obj_cost[static_cast<std::size_t>(t.var)] = t.coef;
        }
    }
    // The paper's objectives never maximize path latency; a maximizing model
    // with y in the objective would need a concave value function instead.
    if (seam.objective_has_y && !model.is_minimization()) return false;

    for (const Constraint& c : model.constraints()) {
        bool touches = false;
        for (const Term& t : c.expr.terms()) {
            if (path_var[static_cast<std::size_t>(t.var)]) {
                touches = true;
                break;
            }
        }
        if (!touches) continue;
        // Coupling row: sum_k y - comm = 0.
        if (c.sense == Sense::kEq && c.rhs == 0.0) {
            PairBlock block;
            bool shape_ok = true;
            for (const Term& t : c.expr.terms()) {
                if (path_var[static_cast<std::size_t>(t.var)]) {
                    if (t.coef != 1.0) shape_ok = false;
                    block.paths.push_back(t.var);
                } else if (block.link < 0 && t.coef == -1.0) {
                    block.link = t.var;
                } else {
                    shape_ok = false;
                }
            }
            if (!shape_ok || block.link < 0 || block.paths.empty()) return false;
            seam.pairs.push_back(std::move(block));
            continue;
        }
        // Budget row: latency-weighted y's only, <= epsilon1.
        if (c.sense == Sense::kLe && !seam.has_budget_row) {
            bool pure = true;
            for (const Term& t : c.expr.terms()) {
                if (!path_var[static_cast<std::size_t>(t.var)] || t.coef < 0.0) {
                    pure = false;
                    break;
                }
            }
            if (pure) {
                seam.has_budget_row = true;
                seam.budget_rhs = c.rhs;
                for (const Term& t : c.expr.terms()) {
                    seam.budget_cost[static_cast<std::size_t>(t.var)] = t.coef;
                }
                continue;
            }
        }
        return false;  // any other y-row: unsupported seam
    }
    if (seam.pairs.empty()) return false;

    // Every y must belong to exactly one coupling row, or fixing the master
    // copies to zero would lose constraints on it.
    std::vector<std::uint8_t> covered(n, 0);
    for (const PairBlock& b : seam.pairs) {
        for (const VarId y : b.paths) {
            if (covered[static_cast<std::size_t>(y)]) return false;
            covered[static_cast<std::size_t>(y)] = 1;
        }
    }
    for (std::size_t j = 0; j < n; ++j) {
        if (path_var[j] && !covered[j]) return false;
    }

    // Per-path cost: the objective's latency when it prices y, else the
    // budget row's. When both exist they must coincide (both are t_e2e in
    // the formulation) or the budget feasibility cut below would be priced
    // in the wrong units — bail out to the monolithic path if they differ.
    if (seam.objective_has_y && seam.has_budget_row) {
        for (std::size_t j = 0; j < n; ++j) {
            if (path_var[j] &&
                std::abs(obj_cost[j] - seam.budget_cost[j]) > 1e-9) {
                return false;
            }
        }
    }
    for (PairBlock& b : seam.pairs) {
        b.cost.reserve(b.paths.size());
        for (const VarId y : b.paths) {
            const auto j = static_cast<std::size_t>(y);
            b.cost.push_back(seam.objective_has_y ? obj_cost[j]
                                                  : seam.budget_cost[j]);
        }
        b.sub = Model{};
        LinExpr coupling;
        LinExpr objective;
        for (std::size_t k = 0; k < b.paths.size(); ++k) {
            const VarId y = b.sub.add_continuous(0.0, 1.0, "y" + std::to_string(k));
            coupling += LinExpr::term(y);
            objective += LinExpr::term(y, b.cost[k]);
        }
        b.sub_link = b.sub.add_continuous(0.0, 1.0, "c");
        coupling -= LinExpr::term(b.sub_link);
        b.sub.add_constraint(std::move(coupling), Sense::kEq, 0.0, "couple");
        b.sub.minimize(std::move(objective));
    }
    return true;
}

// Prices one pair at the master's comm value: optimal cost, its subgradient
// with respect to comm (the reduced cost of the fixed link column), and the
// optimal path mix. Solves warm from the previous iteration's basis.
struct PairPrice {
    double value = 0.0;
    double gradient = 0.0;
    std::vector<double> path_values;
    std::int64_t iterations = 0;
};

PairPrice price_pair(PairBlock& block, double comm) {
    const LpContext context(block.sub);
    std::vector<double> lower = context.model_lower();
    std::vector<double> upper = context.model_upper();
    const auto link = static_cast<std::size_t>(block.sub_link);
    lower[link] = comm;
    upper[link] = comm;
    LpOptions options;
    options.want_dual_values = true;
    options.warm_basis = block.warm.empty() ? nullptr : &block.warm;
    LpWorkspace workspace;
    const LpResult lp = context.solve(lower, upper, options, &workspace);
    PairPrice price;
    price.iterations = lp.iterations;
    if (lp.status != LpStatus::kOptimal) {
        // Numerically impossible for this box-simplex LP; treat as zero so
        // the caller's feasibility verification catches any real trouble.
        price.path_values.assign(block.paths.size(), 0.0);
        return price;
    }
    block.warm = lp.basis;
    price.value = lp.objective;
    price.gradient = lp.reduced_costs[link];
    price.path_values.assign(lp.values.begin(),
                             lp.values.begin() + static_cast<std::ptrdiff_t>(
                                                     block.paths.size()));
    return price;
}

}  // namespace

MilpResult solve_benders(const Model& model, const MilpOptions& options) {
    const auto start = Clock::now();
    const auto elapsed = [&] {
        return std::chrono::duration<double>(Clock::now() - start).count();
    };

    Seam seam;
    MilpOptions mono = options;
    mono.decompose = false;
    if (!extract_seam(model, seam)) {
        return solve_milp(model, mono);  // no seam: monolithic search
    }

    // Master: every variable of the original model (y's pinned to zero, so
    // presolve strips them), the non-y rows, the objective with its y terms
    // replaced by theta when present.
    const std::size_t n = model.variable_count();
    std::vector<std::uint8_t> path_var(n, 0);
    for (const PairBlock& b : seam.pairs) {
        for (const VarId y : b.paths) path_var[static_cast<std::size_t>(y)] = 1;
    }
    Model master;
    for (std::size_t j = 0; j < n; ++j) {
        const Variable& v = model.variable(static_cast<VarId>(j));
        const double upper = path_var[j] ? 0.0 : v.upper;
        if (v.type == VarType::kBinary) {
            const VarId id = master.add_binary(v.name);
            master.set_lower(id, v.lower);
            master.set_upper(id, upper);
        } else if (v.type == VarType::kInteger) {
            master.add_integer(v.lower, upper, v.name);
        } else {
            master.add_continuous(v.lower, upper, v.name);
        }
    }
    for (const Constraint& c : model.constraints()) {
        bool touches = false;
        for (const Term& t : c.expr.terms()) {
            if (path_var[static_cast<std::size_t>(t.var)]) {
                touches = true;
                break;
            }
        }
        if (!touches) master.add_constraint(c.expr, c.sense, c.rhs, c.name);
    }
    VarId theta = -1;
    LinExpr master_objective;
    for (const Term& t : model.objective().terms()) {
        if (!path_var[static_cast<std::size_t>(t.var)]) {
            master_objective += LinExpr::term(t.var, t.coef);
        }
    }
    if (seam.objective_has_y) {
        theta = master.add_continuous(0.0, kInfinity, "theta");
        master_objective += LinExpr::term(theta);
    }
    if (model.is_minimization()) {
        master.minimize(std::move(master_objective));
    } else {
        master.maximize(std::move(master_objective));
    }

    obs::Sink* sink = options.sink;
    MilpResult result;
    std::vector<double> assembled;
    std::int64_t total_nodes = 0;
    std::int64_t total_iterations = 0;
    int iteration = 0;
    std::optional<std::vector<double>> master_warm;

    for (; iteration < kMaxIterations; ++iteration) {
        MilpOptions master_options = mono;
        master_options.warm_start = master_warm;
        if (options.time_limit_seconds > 0.0) {
            master_options.time_limit_seconds =
                options.time_limit_seconds - elapsed();
            if (master_options.time_limit_seconds <= 0.0 ||
                options.deadline.expired()) {
                break;
            }
        }
        MilpResult m = solve_milp(master, master_options);
        total_nodes += m.nodes;
        total_iterations += m.lp_iterations;
        if (!m.has_solution()) {
            m.nodes = total_nodes;
            m.lp_iterations = total_iterations;
            m.elapsed_seconds = elapsed();
            return m;  // infeasible / unbounded / starved master is final
        }
        master_warm = m.values;

        // Price the comm vector through the pair subproblems.
        double path_cost = 0.0;     // objective-sense latency of best paths
        double budget_used = 0.0;   // epsilon1-row latency of best paths
        LinExpr affine;             // sum_p (v_p + g_p (comm_p - c_p))
        double affine_constant = 0.0;
        std::vector<PairPrice> prices(seam.pairs.size());
        for (std::size_t p = 0; p < seam.pairs.size(); ++p) {
            PairBlock& block = seam.pairs[p];
            const double comm =
                m.values[static_cast<std::size_t>(block.link)];
            prices[p] = price_pair(block, comm);
            total_iterations += prices[p].iterations;
            path_cost += prices[p].value;
            affine += LinExpr::term(block.link, prices[p].gradient);
            affine_constant += prices[p].value - prices[p].gradient * comm;
            if (seam.has_budget_row) {
                for (std::size_t k = 0; k < block.paths.size(); ++k) {
                    budget_used +=
                        seam.budget_cost[static_cast<std::size_t>(block.paths[k])] *
                        prices[p].path_values[k];
                }
            }
        }

        bool cut_added = false;
        if (seam.has_budget_row && budget_used > seam.budget_rhs + kCutTol) {
            // Even the cheapest paths overshoot epsilon1: cut this comm
            // pattern (and everything at least as communicative) off.
            LinExpr feas = affine;
            master.add_constraint(std::move(feas), Sense::kLe,
                                  seam.budget_rhs - affine_constant,
                                  "benders_feas_" + std::to_string(iteration));
            cut_added = true;
        }
        if (theta >= 0) {
            const double theta_hat = m.values[static_cast<std::size_t>(theta)];
            if (path_cost > theta_hat + kCutTol * (1.0 + std::abs(path_cost))) {
                LinExpr opt = LinExpr::term(theta) - affine;
                master.add_constraint(std::move(opt), Sense::kGe, affine_constant,
                                      "benders_opt_" + std::to_string(iteration));
                cut_added = true;
            }
        }

        if (!cut_added) {
            // Converged: assemble the exact solution from master + pair
            // optima (y entries in the master copy are pinned to zero).
            assembled.assign(m.values.begin(),
                             m.values.begin() + static_cast<std::ptrdiff_t>(n));
            for (std::size_t p = 0; p < seam.pairs.size(); ++p) {
                const PairBlock& block = seam.pairs[p];
                for (std::size_t k = 0; k < block.paths.size(); ++k) {
                    assembled[static_cast<std::size_t>(block.paths[k])] =
                        prices[p].path_values[k];
                }
            }
            result = std::move(m);
            result.values = std::move(assembled);
            result.objective = model.objective_value(result.values);
            result.best_bound =
                result.status == MilpStatus::kOptimal ? result.objective
                                                      : result.best_bound;
            break;
        }
        // The master's warm start now violates the fresh cut; drop it and
        // let the next iteration find its own incumbent.
        master_warm.reset();
    }

    if (result.values.empty()) {
        // Ran out of iterations or time before the cut loop closed; the
        // monolithic path is authoritative for whatever budget remains.
        MilpOptions rest = mono;
        if (options.time_limit_seconds > 0.0) {
            rest.time_limit_seconds =
                std::max(0.05, options.time_limit_seconds - elapsed());
        }
        result = solve_milp(model, rest);
    } else if (!model.is_feasible(result.values, 1e-6)) {
        // Defense in depth: a seam misread must never return garbage.
        result = solve_milp(model, mono);
    }
    result.nodes += total_nodes;
    result.lp_iterations += total_iterations;
    result.elapsed_seconds = elapsed();
    if (sink != nullptr) {
        sink->counter("benders.iterations").add(iteration);
        sink->counter("benders.pairs")
            .add(static_cast<std::int64_t>(seam.pairs.size()));
    }
    return result;
}

}  // namespace hermes::milp
