// Lightweight MILP presolve: the cheap, always-safe reductions that run once
// before the root relaxation of a branch-and-bound solve.
//
// Passes (iterated to a fixpoint):
//   - bound sanity and integer bound rounding (ceil/floor of fractional
//     bounds on integer variables; crossed bounds prove infeasibility),
//   - singleton rows converted to variable bounds and dropped,
//   - fixed variables (lower == upper) substituted into every row and the
//     objective, then removed,
//   - empty rows checked against their rhs and dropped,
//   - rows proven redundant by their activity bounds dropped (and rows whose
//     activity bounds contradict the rhs prove infeasibility).
//
// The P#1 formulation benefits directly: disconnected-pair `comm = 0` and
// `y`-sum fixings cascade through the coupling rows, and every 0/1 variable
// the reductions pin stops generating branch-and-bound work. Reductions
// never tighten by integrality reasoning beyond single-variable rounding, so
// the reduced model has exactly the same optimal objective and its solutions
// postsolve to feasible originals.
#pragma once

#include <cstddef>
#include <vector>

#include "milp/model.h"

namespace hermes::milp {

struct PresolveResult {
    // Presolve proved the model infeasible; `reduced` is meaningless.
    bool infeasible = false;
    Model reduced;
    // Original variable -> reduced index, or -1 when the variable was fixed.
    std::vector<std::int32_t> var_map;
    // Value of every fixed original variable (entries for mapped variables
    // are unused).
    std::vector<double> fixed_value;
    std::size_t original_variables = 0;
    std::size_t original_constraints = 0;
    std::size_t removed_variables = 0;
    std::size_t removed_constraints = 0;

    // Lifts a reduced-space assignment back to the original variable space.
    [[nodiscard]] std::vector<double> postsolve(
        const std::vector<double>& reduced_values) const;

    // Projects an original-space assignment onto the reduced space (used to
    // carry a MILP warm-start solution across presolve). Returns false when
    // the assignment contradicts a presolve fixing beyond `tolerance`.
    [[nodiscard]] bool restrict(const std::vector<double>& original_values,
                                std::vector<double>& reduced_values,
                                double tolerance) const;
};

// Runs the reduction loop on `model`. Integrality information is respected
// (integer bounds round inward; fixings keep integral values feasible).
[[nodiscard]] PresolveResult presolve(const Model& model);

}  // namespace hermes::milp
