// Cutting planes for the MILP search: knapsack covers and cliques, with a
// root cut loop and an aging cut pool.
//
// Both families are separated structurally, so they apply to any model the
// search sees (including the presolve-reduced image of a P#1 formulation,
// whose row indices differ from the original — callers that know their row
// groups, e.g. core::P1Formulation::row_groups(), can use them to audit what
// the separators found, but the separators never require them):
//
//  * Cover cuts come from knapsack rows — `<=` rows over binary variables
//    with positive coefficients, which is exactly the shape of the per-stage
//    capacity rows (`stage_cap_*`), the aggregate capacity rows (`cap_*`),
//    and the epsilon2 occupancy row. A minimal cover C (sum of its weights
//    exceeds the capacity) yields sum_{j in C} x_j <= |C| - 1, extended by
//    every variable at least as heavy as the heaviest cover member.
//
//  * Clique cuts come from the pairwise conflict graph implied by those same
//    knapsack rows (two variables conflict when their weights together
//    exceed the capacity — `A_max`-style AND-linearization rows `z <= L`
//    contribute nothing, but assignment rows `sum L = 1` make every pair of
//    their binaries conflict). A greedily grown clique Q yields
//    sum_{j in Q} x_j <= 1.
//
// The root loop alternates: solve the LP relaxation, separate violated cuts
// at its optimum, append them to the model, and age the pool — a pool cut
// that stays slack for `CutOptions::max_age` consecutive rounds is retired
// (dropped from the model) so the LP does not accrete dead rows. Every cut
// is valid for the integer hull, so the loop changes the root bound but
// never the MILP optimum.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "milp/model.h"

namespace hermes::obs {
class Sink;
}  // namespace hermes::obs

namespace hermes::milp {

// One globally valid cutting plane, always in `expr <= rhs` form.
struct Cut {
    LinExpr expr;
    double rhs = 0.0;
    std::string name;
    int slack_rounds = 0;  // consecutive root rounds this cut was not tight

    // Amount by which `values` violates the cut (<= 0 means satisfied).
    [[nodiscard]] double violation(const std::vector<double>& values) const {
        return expr.evaluate(values) - rhs;
    }
};

struct CutOptions {
    int max_rounds = 6;                  // root separation rounds
    std::size_t max_cuts_per_round = 64;  // per family
    double min_violation = 1e-4;         // below this a cut is not worth adding
    int max_age = 2;       // slack rounds before a pool cut is retired
    double time_limit_seconds = 0.0;     // <= 0: no budget for the loop
    // Row indices to separate from (e.g. P1Formulation::row_groups()'s
    // capacity group); empty scans every row. Only meaningful when the loop
    // runs on the same model the indices were recorded against (presolve
    // renumbers rows).
    std::vector<std::size_t> knapsack_rows;
};

struct CutStats {
    int rounds = 0;
    std::int64_t cover_cuts = 0;
    std::int64_t clique_cuts = 0;
    std::int64_t retired = 0;
    double root_bound_before = 0.0;  // minimization-sense LP bound
    double root_bound_after = 0.0;
};

// Separators, exposed for unit tests. Each returns cuts violated by at least
// `min_violation` at `values`, capped at `max_cuts`, in a deterministic
// order (by source row, then variable ids).
// `rows` restricts separation to those constraint indices (null = all).
[[nodiscard]] std::vector<Cut> separate_cover_cuts(const Model& model,
                                                   const std::vector<double>& values,
                                                   std::size_t max_cuts,
                                                   double min_violation,
                                                   const std::vector<std::size_t>* rows = nullptr);
[[nodiscard]] std::vector<Cut> separate_clique_cuts(const Model& model,
                                                    const std::vector<double>& values,
                                                    std::size_t max_cuts,
                                                    double min_violation,
                                                    const std::vector<std::size_t>* rows = nullptr);

// Runs the root cut loop on `model` in place: the model afterwards carries
// every surviving pool cut as an ordinary `<=` constraint (named "cut_*").
// Emits cuts.* counters to `sink` when non-null.
CutStats run_root_cut_loop(Model& model, const CutOptions& options = {},
                           obs::Sink* sink = nullptr);

}  // namespace hermes::milp
