// LP solver: revised primal simplex over a compressed-sparse-column matrix,
// with a product-form (eta-file) basis inverse and native bounded variables.
//
// The constraint matrix is converted once into an immutable LpContext: CSC
// arrays for the structural columns, one implicit logical (slack/surplus)
// column per row, and the objective folded to minimization sense. Variable
// bounds are NOT part of the context — they are passed to each solve — so a
// branch-and-bound search builds the context once and re-solves thousands of
// node LPs against the same matrix with per-node bound vectors.
//
// The basis inverse is kept as an eta file (product form): a factorization
// from scratch places logical columns first (zero fill) and pivots the few
// structural basic columns in by largest-magnitude row, then every simplex
// pivot appends one eta. The file is rebuilt — and the basic solution
// recomputed from scratch, wiping accumulated round-off — whenever it grows
// past LpOptions::refactor_interval etas, when a pivot falls below the
// acceptance tolerance, and once more before any terminal verdict is
// trusted. Pricing is Dantzig (most-negative reduced cost over a single
// BTRAN + one sparse pass), degrading to Bland's rule after a run of
// degenerate steps so cycling cannot occur. Bounds are handled natively:
// nonbasic variables sit at either bound, the ratio test includes
// bound-flip steps that change no basis, and 0/1 variables therefore cost
// nothing beyond their column — no explicit upper-bound rows.
//
// Infeasibility is resolved by a phase-1 that minimizes the sum of primal
// infeasibilities from ANY starting basis (costs ±1 on out-of-bound basic
// variables, recomputed per iteration; blocking at the first bound kink
// keeps the piecewise objective exact). Because phase 1 does not need
// artificial columns, a warm start is simply: load the parent basis, rebuild
// the eta file, recompute the basic solution, and let phase 1 repair the
// handful of rows the branching bound change disturbed. A warm attempt may
// only return kOptimal, and only after the extracted point verifies against
// the constraints; every other outcome falls through to the authoritative
// cold solve from the all-logical basis, so the result is identical whether
// or not a basis was supplied.
//
// The seed dense-tableau kernel this replaces is retained verbatim in
// milp/simplex_reference.h (namespace milp::reference) and is held
// equivalent by tests/simplex_equivalence_test.cpp.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/options.h"
#include "milp/model.h"

namespace hermes::milp {

enum class LpStatus : std::uint8_t {
    kOptimal,
    kInfeasible,
    kUnbounded,
    kIterationLimit,
};

[[nodiscard]] const char* to_string(LpStatus s) noexcept;

// A simplex basis: basic[r] is the variable basic in row r (structural
// variables are 0..n-1, the logical of row i is n+i), and at_upper flags
// which nonbasic variables rest at their upper bound. `columns` (= n + m
// for the revised kernel) together with basic.size() (= m) forms the
// compatibility signature: a warm start is attempted only when the target
// model has the same shape, which holds across branch-and-bound bound
// changes because bounds are not part of the column space.
//
// (The retained reference kernel exports a basis in its own column space —
// structurals + slacks + artificials — with at_upper empty; each kernel
// rejects the other's bases by signature and degrades to a cold solve.)
struct Basis {
    std::vector<std::int32_t> basic;
    std::vector<std::uint8_t> at_upper;
    std::uint32_t columns = 0;

    [[nodiscard]] bool empty() const noexcept { return basic.empty(); }
};

// Why a warm attempt did not survive to the returned optimum. Feeds the
// lp.warm_abandon_* observability counters so a branch-and-bound run can
// report *where* its warm starts die, not just that they missed.
enum class WarmAbandon : std::uint8_t {
    kNone,       // warm basis survived (warm_used == true) or none was given
    kLoad,       // shape/bound-compatibility rejection before factorizing
    kFactorize,  // duplicate row claim or singular column during refactorize
    kGate,       // repaired basis judged worse than a fresh crash basis
    kBudget,     // warm pivot budget exhausted before re-optimizing
    kVerdict,    // warm reached a non-optimal verdict (cold must decide)
    kVerify,     // warm optimum failed the constraint re-verification
};

struct LpResult {
    LpStatus status = LpStatus::kIterationLimit;
    double objective = 0.0;             // in the model's own sense (min or max)
    std::vector<double> values;         // one per model variable (original space)
    std::int64_t iterations = 0;        // priced simplex pivots + bound flips
    // Etas appended by basis (re)factorizations — warm reloads and periodic
    // rebuilds. Kept apart from `iterations` because an eta costs one sparse
    // FTRAN while a pivot pays BTRAN + a full pricing pass + FTRAN + ratio
    // test; folding them together made warm and cold pivot counts
    // incomparable (a warm reload is all etas, a cold start has none).
    std::int64_t factor_etas = 0;
    Basis basis;                        // exported on kOptimal; empty otherwise
    // Row duals and structural reduced costs at the optimum, in the model's
    // own objective sense; filled on kOptimal when
    // LpOptions::want_dual_values is set (empty otherwise). Benders-style
    // decomposition reads `duals` for optimality cuts, and the MILP search
    // reads root `reduced_costs` for incumbent-driven bound tightening.
    std::vector<double> duals;
    std::vector<double> reduced_costs;
    // True when a supplied warm basis survived to the returned optimum (a
    // false value on kOptimal means the warm attempt degraded to the cold
    // path). Feeds the lp.warm_hits / lp.warm_misses observability counters.
    bool warm_used = false;
    // Iterations charged to the abandoned warm attempt (0 on a hit): the
    // pure waste a miss added on top of the authoritative cold solve.
    std::int64_t warm_wasted_iterations = 0;
    WarmAbandon warm_abandon = WarmAbandon::kNone;
};

// Inherits the common knobs (core/options.h): `iteration_limit` replaces the
// pre-obs `max_iterations` spelling (default 200000 pivots) and
// `time_limit_seconds` replaces `max_seconds` (<= 0 means no budget; checked
// periodically, expiry yields kIterationLimit). An active `deadline` token is
// polled in the same pivot-loop check and trips the same way, so a caller can
// cancel a solve mid-pivot without waiting for the wall clock. threads/seed
// are accepted but unused — one LP solve is single-threaded and
// deterministic.
struct LpOptions : core::CommonOptions {
    LpOptions() noexcept { iteration_limit = 200000; }

    // Non-empty parent basis to warm start from; incompatible or numerically
    // unusable bases silently degrade to the cold path.
    const Basis* warm_basis = nullptr;
    // Eta-file length that forces a refactorization (and a from-scratch
    // recompute of the basic solution). Smaller = more stable, larger =
    // cheaper FTRAN/BTRAN; 64 is comfortable for the few-hundred-row P#1
    // instances.
    int refactor_interval = 64;
    // Pivot allowance for a warm attempt before it is abandoned for the cold
    // path; 0 = auto (a small multiple of the basis reload cost). A failed
    // warm attempt wastes its whole budget on top of the cold solve, so this
    // is deliberately tight — see DESIGN.md 5e.
    std::int64_t warm_pivot_budget = 0;
    // Fill LpResult::duals / reduced_costs on kOptimal (one extra BTRAN plus
    // one pricing-style pass; off by default).
    bool want_dual_values = false;
};

// Per-thread scratch reused across solves. Contents are meaningless between
// calls; a default-constructed workspace is ready to use. Callers that solve
// many LPs against one context (branch and bound) should keep one per worker
// to avoid reallocating the eta pools on every node.
struct LpWorkspace {
    std::vector<double> x, y, col, rhs_work;
    std::vector<double> lower, upper;
    std::vector<std::int32_t> basic;
    std::vector<std::int8_t> vstat;
    std::vector<std::int32_t> pos;
    // Pooled eta file: eta k spans [eta_start[k], eta_start[k+1]) of
    // eta_row/eta_val and pivots on eta_pivot_row[k] with value eta_pivot[k].
    std::vector<std::int32_t> eta_start, eta_pivot_row, eta_row;
    std::vector<double> eta_pivot, eta_val;
};

// Immutable standard-form image of a Model: CSC structural columns, row
// senses/rhs, minimization-sense objective. Safe to share across threads;
// bounds are supplied per solve.
class LpContext {
public:
    explicit LpContext(const Model& model);

    [[nodiscard]] std::size_t rows() const noexcept { return rhs_.size(); }
    [[nodiscard]] std::size_t structurals() const noexcept { return obj_.size(); }
    [[nodiscard]] std::size_t nonzeros() const noexcept { return val_.size(); }

    // Structural variable bounds as captured from the model at build time
    // (the defaults a caller perturbs per node).
    [[nodiscard]] const std::vector<double>& model_lower() const noexcept {
        return model_lower_;
    }
    [[nodiscard]] const std::vector<double>& model_upper() const noexcept {
        return model_upper_;
    }

    // Solves the LP over this matrix with the given structural bounds
    // (size = structurals(); every lower bound must be finite, matching the
    // Model-level contract — std::invalid_argument otherwise).
    [[nodiscard]] LpResult solve(std::span<const double> lower,
                                 std::span<const double> upper,
                                 const LpOptions& options = {},
                                 LpWorkspace* workspace = nullptr) const;

private:
    friend class RevisedSimplex;

    std::vector<std::int64_t> col_start_;  // CSC: n+1 offsets
    std::vector<std::int32_t> row_idx_;
    std::vector<double> val_;
    std::vector<Sense> row_sense_;
    std::vector<double> rhs_;
    std::vector<double> obj_;              // minimization-sense cost per structural
    double obj_constant_ = 0.0;            // minimization-sense folded constant
    double sense_sign_ = 1.0;              // +1 min model, -1 max model
    std::vector<double> model_lower_, model_upper_;
};

// Solves the LP relaxation of `model` (integrality dropped) by building a
// one-shot LpContext. Throws std::invalid_argument on variables with
// non-finite lower bounds. Semantics of the limits and of `warm_basis` match
// LpOptions above.
[[nodiscard]] LpResult solve_lp(const Model& model, std::int64_t max_iterations = 200000,
                                double max_seconds = 1e18,
                                const Basis* warm_basis = nullptr);

}  // namespace hermes::milp
