// LP solver: two-phase primal simplex on a dense tableau, with optional
// warm starts from an exported basis.
//
// Handles the general bounded-variable models produced by Model by shifting
// every variable to its (finite) lower bound and emitting explicit upper-
// bound rows. Dantzig pricing with a Bland's-rule fallback guarantees
// termination; the iteration limit is a final safety net. The pivot kernel
// skips structurally-zero entries of the pivot row, which on the very sparse
// P#1 matrices cuts each pivot from O(rows·cols) to O(rows·nnz).
//
// Warm starts serve branch and bound: an optimal solve exports its final
// basis (solve_lp fills LpResult::basis); a later solve over the same model
// with tightened bounds can start from that basis. The solver refactorizes
// the tableau around the given basis, repairs primal infeasibility with dual
// simplex pivots (the reduced costs stay dual-feasible across bound changes
// because neither the constraint matrix nor the objective moved), and falls
// back to the cold two-phase path when the basis no longer matches the
// standard form or the repair stalls numerically.
//
// This is the substrate the paper outsources to Gurobi. It is exact on the
// problem sizes where the paper reports optimal results, and — like any LP
// core inside branch and bound — the scaling wall it hits on network-scale
// instances is precisely the behaviour Exp#3 demonstrates for ILP solvers.
#pragma once

#include <cstdint>
#include <vector>

#include "milp/model.h"

namespace hermes::milp {

enum class LpStatus : std::uint8_t {
    kOptimal,
    kInfeasible,
    kUnbounded,
    kIterationLimit,
};

[[nodiscard]] const char* to_string(LpStatus s) noexcept;

// A simplex basis in standard-form column space: basic[r] is the column
// basic in row r. `columns` (the non-rhs column count) together with
// basic.size() (the row count) forms the compatibility signature: a warm
// start is attempted only when the target model produces an identically
// shaped standard form, which holds across branch-and-bound bound changes
// as long as no variable gains or loses a finite upper bound.
struct Basis {
    std::vector<std::int32_t> basic;
    std::uint32_t columns = 0;

    [[nodiscard]] bool empty() const noexcept { return basic.empty(); }
};

struct LpResult {
    LpStatus status = LpStatus::kIterationLimit;
    double objective = 0.0;             // in the model's own sense (min or max)
    std::vector<double> values;         // one per model variable (original space)
    std::int64_t iterations = 0;        // pivots, including warm-start refactorization
    Basis basis;                        // exported on kOptimal; empty otherwise
};

// Solves the LP relaxation of `model` (integrality dropped). Throws
// std::invalid_argument on variables with non-finite lower bounds.
// `max_seconds` is a wall-clock budget (checked periodically; expiry yields
// kIterationLimit). A non-empty `warm_basis` seeds the solve as described
// above; an incompatible or unrepairable basis silently degrades to the
// cold path, so the result is identical either way.
[[nodiscard]] LpResult solve_lp(const Model& model, std::int64_t max_iterations = 200000,
                                double max_seconds = 1e18,
                                const Basis* warm_basis = nullptr);

}  // namespace hermes::milp
