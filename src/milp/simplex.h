// LP solver: two-phase primal simplex on a dense tableau.
//
// Handles the general bounded-variable models produced by Model by shifting
// every variable to its (finite) lower bound and emitting explicit upper-
// bound rows. Dantzig pricing with a Bland's-rule fallback guarantees
// termination; the iteration limit is a final safety net.
//
// This is the substrate the paper outsources to Gurobi. It is exact on the
// problem sizes where the paper reports optimal results, and — like any LP
// core inside branch and bound — the scaling wall it hits on network-scale
// instances is precisely the behaviour Exp#3 demonstrates for ILP solvers.
#pragma once

#include <vector>

#include "milp/model.h"

namespace hermes::milp {

enum class LpStatus : std::uint8_t {
    kOptimal,
    kInfeasible,
    kUnbounded,
    kIterationLimit,
};

[[nodiscard]] const char* to_string(LpStatus s) noexcept;

struct LpResult {
    LpStatus status = LpStatus::kIterationLimit;
    double objective = 0.0;             // in the model's own sense (min or max)
    std::vector<double> values;         // one per model variable (original space)
    long iterations = 0;
};

// Solves the LP relaxation of `model` (integrality dropped). Throws
// std::invalid_argument on variables with non-finite lower bounds.
// `max_seconds` is a wall-clock budget (checked periodically; expiry yields
// kIterationLimit).
[[nodiscard]] LpResult solve_lp(const Model& model, long max_iterations = 200000,
                                double max_seconds = 1e18);

}  // namespace hermes::milp
