// LP solver: revised primal simplex over a compressed-sparse-column matrix
// with a sparse LU basis factorization, Forrest-Tomlin updates, hypersparse
// triangular solves, and Devex candidate-list pricing.
//
// The constraint matrix is converted once into an immutable LpContext: CSC
// arrays for the structural columns (plus a CSR mirror for pivot-row
// pricing), one implicit logical (slack/surplus) column per row, and the
// objective folded to minimization sense. Variable bounds are NOT part of
// the context — they are passed to each solve — so a branch-and-bound search
// builds the context once and re-solves thousands of node LPs against the
// same matrix with per-node bound vectors.
//
// The default kernel (milp/lu.h) keeps the basis as a sparse LU: Markowitz
// pivoting with threshold partial pivoting at refactorization, one
// Forrest-Tomlin update per simplex pivot, and FTRAN/BTRAN that walk only
// the reachable nonzero set when the right-hand side is sparse. Pricing is
// Devex (reference-framework weights, approximating steepest edge at a
// Dantzig price) over a small candidate list, with reduced costs maintained
// incrementally from the BTRANed pivot row and recomputed at every
// refactorization; a degenerate run degrades to Bland's rule on a full scan
// so cycling cannot occur. Bounds are handled natively: nonbasic variables
// sit at either bound, the phase-1 ratio test walks bound-flip breakpoints
// (long-step), and 0/1 variables therefore cost nothing beyond their column.
//
// Infeasibility is resolved by a phase-1 that minimizes the sum of primal
// infeasibilities from ANY starting basis. A warm start loads the parent
// basis (replaying its exported pivot order when present), recomputes the
// basic solution, and lets phase 1 repair the rows the branching bound
// change disturbed, under a pivot budget and a crash-basis gate; every
// non-optimal warm outcome except a confirmed infeasibility falls through to
// the authoritative cold solve.
//
// The eta-file (product-form) kernel this replaces is retained verbatim
// behind LpOptions::use_eta_basis for A/B equivalence, and the seed
// dense-tableau kernel before it lives in milp/simplex_reference.h
// (namespace milp::reference); tests/simplex_equivalence_test.cpp and
// tests/lu_kernel_test.cpp hold the three pairwise equivalent.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/options.h"
#include "milp/lu.h"
#include "milp/model.h"

namespace hermes::milp {

enum class LpStatus : std::uint8_t {
    kOptimal,
    kInfeasible,
    kUnbounded,
    kIterationLimit,
};

[[nodiscard]] const char* to_string(LpStatus s) noexcept;

// A simplex basis: basic[r] is the variable basic in slot r (structural
// variables are 0..n-1, the logical of row i is n+i), and at_upper flags
// which nonbasic variables rest at their upper bound. `columns` (= n + m
// for the revised kernel) together with basic.size() (= m) forms the
// compatibility signature: a warm start is attempted only when the target
// model has the same shape, which holds across branch-and-bound bound
// changes because bounds are not part of the column space.
//
// pivot_slot/pivot_row (either both size m or both empty) carry the LU
// kernel's pivot order — the (slot, row) elimination sequence of the last
// factorization — so a warm reload can replay it instead of re-running
// Markowitz selection. Eta-kernel and reference-kernel bases leave them
// empty; a stale or unusable order silently degrades to fresh selection.
//
// (The retained reference kernel exports a basis in its own column space —
// structurals + slacks + artificials — with at_upper empty; each kernel
// rejects the other's bases by signature and degrades to a cold solve.)
struct Basis {
    std::vector<std::int32_t> basic;
    std::vector<std::uint8_t> at_upper;
    std::uint32_t columns = 0;
    std::vector<std::int32_t> pivot_slot;
    std::vector<std::int32_t> pivot_row;

    [[nodiscard]] bool empty() const noexcept { return basic.empty(); }
};

// Why a warm attempt did not survive to the returned optimum. Feeds the
// lp.warm_abandon_* observability counters so a branch-and-bound run can
// report *where* its warm starts die, not just that they missed.
enum class WarmAbandon : std::uint8_t {
    kNone,       // warm basis survived (warm_used == true) or none was given
    kLoad,       // shape/bound-compatibility rejection before factorizing
    kFactorize,  // duplicate row claim or singular column during refactorize
    kGate,       // repaired basis judged worse than a fresh crash basis
    kBudget,     // warm pivot budget exhausted before re-optimizing
    kVerdict,    // warm reached a non-optimal verdict (cold must decide)
    kVerify,     // warm optimum failed the constraint re-verification
};

struct LpResult {
    LpStatus status = LpStatus::kIterationLimit;
    double objective = 0.0;             // in the model's own sense (min or max)
    std::vector<double> values;         // one per model variable (original space)
    std::int64_t iterations = 0;        // priced simplex pivots + bound flips
    // Basis-inverse update operations appended outside the pivot loop: etas
    // from (re)factorizations under the eta kernel, L plus R (Forrest-Tomlin)
    // operations under the LU kernel. Kept apart from `iterations` because an
    // update op costs one sparse solve while a pivot pays BTRAN + pricing +
    // FTRAN + ratio test; folding them together made warm and cold pivot
    // counts incomparable.
    std::int64_t factor_etas = 0;
    // LU kernel counters for the lp.factor_* observability surface:
    // refactorizations, FT updates, hypersparse vs dense solves, and factor
    // vs basis nonzeros (their ratio is the fill-in). All zero when the
    // solve ran on the eta or reference kernel.
    LuFactor::Stats factor;
    // Candidate-list pricing: prices served from the standing candidate list
    // vs full-scan rebuilds (hit rate = hits / (hits + rebuilds)).
    std::int64_t pricing_hits = 0;
    std::int64_t pricing_rebuilds = 0;
    Basis basis;                        // exported on kOptimal; empty otherwise
    // Row duals and structural reduced costs at the optimum, in the model's
    // own objective sense; filled on kOptimal when
    // LpOptions::want_dual_values is set (empty otherwise). Benders-style
    // decomposition reads `duals` for optimality cuts, and the MILP search
    // reads root `reduced_costs` for incumbent-driven bound tightening.
    std::vector<double> duals;
    std::vector<double> reduced_costs;
    // True when a supplied warm basis survived to the returned optimum (a
    // false value on kOptimal means the warm attempt degraded to the cold
    // path). Feeds the lp.warm_hits / lp.warm_misses observability counters.
    bool warm_used = false;
    // Iterations charged to the abandoned warm attempt (0 on a hit): the
    // pure waste a miss added on top of the authoritative cold solve.
    std::int64_t warm_wasted_iterations = 0;
    WarmAbandon warm_abandon = WarmAbandon::kNone;
};

// Inherits the common knobs (core/options.h): `iteration_limit` replaces the
// pre-obs `max_iterations` spelling (default 200000 pivots) and
// `time_limit_seconds` replaces `max_seconds` (<= 0 means no budget; checked
// periodically, expiry yields kIterationLimit). An active `deadline` token is
// polled in the same pivot-loop check and trips the same way, so a caller can
// cancel a solve mid-pivot without waiting for the wall clock. threads/seed
// are accepted but unused — one LP solve is single-threaded and
// deterministic.
struct LpOptions : core::CommonOptions {
    LpOptions() noexcept { iteration_limit = 200000; }

    // Non-empty parent basis to warm start from; incompatible or numerically
    // unusable bases silently degrade to the cold path.
    const Basis* warm_basis = nullptr;
    // Pivots since the last factorization that force a refactorization (and
    // a from-scratch recompute of the basic solution). Smaller = more
    // stable, larger = cheaper solves; 64 is comfortable for the
    // few-hundred-row P#1 instances.
    int refactor_interval = 64;
    // Pivot allowance for a warm attempt before it is abandoned for the cold
    // path; 0 = auto (a small multiple of the basis reload cost). A failed
    // warm attempt wastes its whole budget on top of the cold solve, so this
    // is deliberately tight — see DESIGN.md 5e.
    std::int64_t warm_pivot_budget = 0;
    // Fill LpResult::duals / reduced_costs on kOptimal (one extra BTRAN plus
    // one pricing-style pass; off by default).
    bool want_dual_values = false;
    // Run the retained eta-file (product-form) kernel instead of the sparse
    // LU kernel. Kept for A/B equivalence testing and as a numerical
    // fallback; the two kernels agree in status and objective on every
    // instance in the equivalence suites.
    bool use_eta_basis = false;
};

// Per-thread scratch reused across solves. Contents are meaningless between
// calls; a default-constructed workspace is ready to use. Callers that solve
// many LPs against one context (branch and bound) should keep one per worker
// to avoid reallocating the factor pools on every node.
struct LpWorkspace {
    std::vector<double> x, y, col, rhs_work;
    std::vector<double> lower, upper;
    std::vector<std::int32_t> basic;
    std::vector<std::int8_t> vstat;
    std::vector<std::int32_t> pos;
    // Pooled eta file (eta kernel only): eta k spans
    // [eta_start[k], eta_start[k+1]) of eta_row/eta_val and pivots on
    // eta_pivot_row[k] with value eta_pivot[k].
    std::vector<std::int32_t> eta_start, eta_pivot_row, eta_row;
    std::vector<double> eta_pivot, eta_val;
    // LU kernel state: the factorization plus sparse solve vectors under the
    // zero-outside-list contract (xcol/xlist entering column, rho/rholist
    // BTRANed pivot row), the incremental reduced costs d with Devex weights,
    // and the pricing candidate list.
    LuFactor lu;
    std::vector<double> xcol, rho, alpha, d, devex;
    std::vector<std::int32_t> xlist, rholist, alist, cand;
    // Sparse phase-1 pricing vector (btran_seeds zero/list contract).
    std::vector<double> yspar;
    std::vector<std::int32_t> yslist;
};

// Immutable standard-form image of a Model: CSC structural columns (with a
// CSR row mirror), row senses/rhs, minimization-sense objective. Safe to
// share across threads; bounds are supplied per solve.
class LpContext {
public:
    explicit LpContext(const Model& model);

    [[nodiscard]] std::size_t rows() const noexcept { return rhs_.size(); }
    [[nodiscard]] std::size_t structurals() const noexcept { return obj_.size(); }
    [[nodiscard]] std::size_t nonzeros() const noexcept { return val_.size(); }

    // CSC structural columns: column j spans [col_start()[j],
    // col_start()[j+1]) of row_idx()/values().
    [[nodiscard]] const std::vector<std::int64_t>& col_start() const noexcept {
        return col_start_;
    }
    [[nodiscard]] const std::vector<std::int32_t>& row_idx() const noexcept {
        return row_idx_;
    }
    [[nodiscard]] const std::vector<double>& values() const noexcept {
        return val_;
    }
    // CSR mirror of the same matrix: row i spans [row_start()[i],
    // row_start()[i+1]) of row_col()/row_val(). The pricing loop scatters a
    // sparse BTRANed pivot row through these.
    [[nodiscard]] const std::vector<std::int64_t>& row_start() const noexcept {
        return row_start_;
    }
    [[nodiscard]] const std::vector<std::int32_t>& row_col() const noexcept {
        return row_col_;
    }
    [[nodiscard]] const std::vector<double>& row_val() const noexcept {
        return row_val_;
    }
    [[nodiscard]] const std::vector<Sense>& row_sense() const noexcept {
        return row_sense_;
    }
    [[nodiscard]] const std::vector<double>& rhs() const noexcept { return rhs_; }
    // Minimization-sense cost per structural variable.
    [[nodiscard]] const std::vector<double>& objective() const noexcept {
        return obj_;
    }
    [[nodiscard]] double objective_constant() const noexcept { return obj_constant_; }
    // +1 for a minimization model, -1 for maximization (results are reported
    // in the model's own sense).
    [[nodiscard]] double sense_sign() const noexcept { return sense_sign_; }

    // Structural variable bounds as captured from the model at build time
    // (the defaults a caller perturbs per node).
    [[nodiscard]] const std::vector<double>& model_lower() const noexcept {
        return model_lower_;
    }
    [[nodiscard]] const std::vector<double>& model_upper() const noexcept {
        return model_upper_;
    }

    // Solves the LP over this matrix with the given structural bounds
    // (size = structurals(); every lower bound must be finite, matching the
    // Model-level contract — std::invalid_argument otherwise).
    [[nodiscard]] LpResult solve(std::span<const double> lower,
                                 std::span<const double> upper,
                                 const LpOptions& options = {},
                                 LpWorkspace* workspace = nullptr) const;

private:
    std::vector<std::int64_t> col_start_;  // CSC: n+1 offsets
    std::vector<std::int32_t> row_idx_;
    std::vector<double> val_;
    std::vector<std::int64_t> row_start_;  // CSR: m+1 offsets
    std::vector<std::int32_t> row_col_;
    std::vector<double> row_val_;
    std::vector<Sense> row_sense_;
    std::vector<double> rhs_;
    std::vector<double> obj_;              // minimization-sense cost per structural
    double obj_constant_ = 0.0;            // minimization-sense folded constant
    double sense_sign_ = 1.0;              // +1 min model, -1 max model
    std::vector<double> model_lower_, model_upper_;
};

namespace detail {

// The two kernel entry points behind LpContext::solve. Both run the same
// warm/cold attempt protocol (crossed-bound rejection, crash gate, pivot
// budget, confirm-before-declare, constraint re-verification); they differ
// in basis representation and pricing. simplex.cc implements the LU kernel
// and the dispatch; simplex_eta.cc implements the retained eta kernel.
[[nodiscard]] LpResult solve_lu_kernel(const LpContext& ctx,
                                       std::span<const double> lower,
                                       std::span<const double> upper,
                                       const LpOptions& options, LpWorkspace& ws);
[[nodiscard]] LpResult solve_eta_kernel(const LpContext& ctx,
                                        std::span<const double> lower,
                                        std::span<const double> upper,
                                        const LpOptions& options, LpWorkspace& ws);

}  // namespace detail

// Solves the LP relaxation of `model` (integrality dropped) by building a
// one-shot LpContext. Throws std::invalid_argument on variables with
// non-finite lower bounds. All knobs — iteration_limit, time_limit_seconds,
// deadline, warm_basis, kernel choice — come from LpOptions; the pre-obs
// (max_iterations, max_seconds, warm_basis) parameter spelling is gone.
[[nodiscard]] LpResult solve_lp(const Model& model, const LpOptions& options = {});

}  // namespace hermes::milp
