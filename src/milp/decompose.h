// Benders-style decomposition over the P#1 placement/path seam.
//
// In the P#1 formulation the per-pair path variables y(u,v,p) touch the
// rest of the model only through (a) one coupling equality per ordered pair,
// sum_k y[pq][k] = comm[pq], (b) the shared end-to-end latency budget
// `epsilon1`, and (c) possibly the objective (the SPEED baseline minimizes
// t_e2e). Everything else — placement, stage packing, ordering, crossing
// metadata, A_max — never mentions y. That seam lets the model split into:
//
//   master      the full placement MILP with every y fixed to zero, its
//               y-rows dropped, and (when the objective had y terms) a
//               single epigraph variable `theta` standing in for the path
//               cost, solved by the ordinary branch-and-bound;
//   subproblems one tiny LP per communicating pair — pick the cheapest
//               path mix for the master's comm decision — each warm-started
//               from its own previous basis across master iterations.
//
// Each iteration solves the master, prices its comm vector through the
// subproblems, and adds violated cuts built from the subproblem duals
// (reduced cost of the comm link column = subgradient of the pair's value
// function): an optimality cut `theta >= sum_p (v_p + g_p (comm_p - c_p))`
// when the objective underestimates the true path cost, and the analogous
// feasibility cut against the epsilon1 budget when the cheapest paths
// already overshoot it. Both are supporting hyperplanes of convex value
// functions, so they never cut a feasible master point; with binary comm
// the loop terminates, and on convergence the assembled solution is exact.
//
// Models without the seam (no `y_*` variables, or y-rows of an unexpected
// shape) fall back to the monolithic search unchanged.
#pragma once

#include "milp/solver.h"

namespace hermes::milp {

// Entry point behind MilpOptions::decompose; callable directly by tests.
// `options.decompose` is ignored here (no recursion).
[[nodiscard]] MilpResult solve_benders(const Model& model, const MilpOptions& options);

}  // namespace hermes::milp
