// Sparse LU basis kernel for the revised simplex (milp/simplex.cc).
//
// LuFactor holds B = LU for the m basis columns of an LpContext in a form
// built for thousands of cheap solves between rebuilds:
//
//  * Factorization is two-stage: a singleton sweep first (column singletons
//    and row singletons pivot with zero fill — LP bases are dominated by
//    logical and near-triangular columns), then Markowitz pivoting with
//    threshold partial pivoting (|pivot| >= tau * colmax) on the residual
//    bump. L is kept as elementary row operations in pivot order; U is kept
//    column-wise per basis slot with a row-wise mirror, both under lazy
//    version-stamped deletion so an update never rewrites other columns.
//
//  * A simplex pivot applies a Forrest-Tomlin update instead of appending an
//    eta: the spiked column (the partial FTRAN of the entering column,
//    cached by ftran_column) replaces the leaving slot's U column, the
//    leaving pivot moves to the end of the pivot order, and the displaced U
//    row is eliminated by one row operation appended to an R file. A
//    near-zero new diagonal rejects the update and the caller refactorizes.
//
//  * FTRAN/BTRAN are hypersparse: when the right-hand side is sparse the
//    triangular solves walk only the slots reachable from its nonzeros
//    (depth-first over the U adjacency, topologically applied), falling
//    back to a plain pass over the pivot order past a density threshold.
//    BTRAN of a unit vector — the pivot-row computation behind Devex
//    pricing — is the ideal case and usually touches a handful of slots.
//
// "Slot" below means a basis position (index into the caller's basic[]
// array); slots are stable across updates, only their pivot order moves.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace hermes::milp {

class LpContext;

class LuFactor {
public:
    // Counters accumulated across the factor's lifetime; the simplex drains
    // them into LpResult::factor after each solve.
    struct Stats {
        std::int64_t refactorizations = 0;
        std::int64_t ft_updates = 0;
        std::int64_t hyper_solves = 0;   // solves served by the DFS path
        std::int64_t dense_solves = 0;   // solves over the full pivot order
        double fill_nnz = 0.0;           // factor nonzeros at refactorization
        double basis_nnz = 0.0;          // basis nonzeros at refactorization
        void reset() { *this = Stats{}; }
    };

    // Factorizes the basis whose slot j holds the column of variable
    // basic[j] (structural < n, logical n+i = unit vector on row i). A
    // non-empty hint replays a previously exported pivot order (see
    // export_pivot_order) and falls back to returning false when the stored
    // pivot is missing or too small — the caller then retries without the
    // hint. Returns false on a singular or duplicate-claimed basis.
    [[nodiscard]] bool factorize(const LpContext& ctx,
                                 std::span<const std::int32_t> basic,
                                 std::span<const std::int32_t> hint_slot = {},
                                 std::span<const std::int32_t> hint_row = {});

    // x = B^-1 A_var over slots. `x` must be all-zero on entry except at the
    // positions named by `xlist` (the previous call's nonzeros); both are
    // cleared and refilled. Also caches the pre-U spike for update().
    void ftran_column(const LpContext& ctx, std::int32_t var,
                      std::vector<double>& x, std::vector<std::int32_t>& xlist);

    // Dense FTRAN of a full right-hand side: b (over rows) is consumed,
    // x_slots is resized and overwritten.
    void ftran_dense(std::vector<double>& b_rows, std::vector<double>& x_slots);

    // rho = B^-T e_slot over rows, with the same zero/list contract as
    // ftran_column. The simplex prices the pivot row from this.
    void btran_unit(std::size_t slot, std::vector<double>& rho,
                    std::vector<std::int32_t>& rholist);

    // rho = B^-T c over rows for a sparse slot-indexed cost vector given as
    // parallel (slot, value) arrays — the phase-1 pricing workhorse, where c
    // is +-1 on the handful of infeasible basic slots. Same zero/list
    // contract as btran_unit; duplicate slots accumulate.
    void btran_seeds(std::span<const std::int32_t> slots,
                     std::span<const double> vals, std::vector<double>& rho,
                     std::vector<std::int32_t>& rholist);

    // Dense BTRAN: y = B^-T c where c is indexed by slot. y is resized and
    // overwritten.
    void btran_dense(const std::vector<double>& c_slots, std::vector<double>& y_rows);

    // Forrest-Tomlin update replacing `slot`'s column with the entering
    // column whose spike ftran_column cached. False means the update is
    // numerically unsafe (tiny new diagonal or huge multiplier) and the
    // caller must refactorize; the factor is unchanged in that case.
    [[nodiscard]] bool update(std::size_t slot);

    // Current pivot order as (slot, original row) pairs — the warm-start
    // snapshot format consumed by factorize()'s hint.
    void export_pivot_order(std::vector<std::int32_t>& slot_out,
                            std::vector<std::int32_t>& row_out) const;

    [[nodiscard]] Stats& stats() noexcept { return stats_; }
    [[nodiscard]] std::size_t dim() const noexcept { return m_; }
    [[nodiscard]] bool valid() const noexcept { return valid_; }
    // Update operations currently held: L eliminations plus appended
    // Forrest-Tomlin row etas. The simplex accumulates the deltas into
    // LpResult::factor_etas across refactorizations.
    [[nodiscard]] std::int64_t ops() const noexcept {
        return static_cast<std::int64_t>(l_piv_row_.size() + r_target_.size());
    }

private:
    struct UEntry {
        std::int32_t slot = 0;  // the other endpoint's slot
        double val = 0.0;
        std::int32_t ver = 0;   // lazy deletion stamp (see rowver_/colver_)
    };

    void reset_pools();
    [[nodiscard]] bool eliminate(std::size_t k, std::size_t pivot_row,
                                 std::size_t pivot_col);
    void solve_u_ftran(std::vector<double>& work, std::vector<double>& x,
                       std::vector<std::int32_t>& xlist,
                       const std::vector<std::int32_t>& seed_rows, bool force_dense);
    void apply_l_ftran(std::vector<double>& v, std::vector<std::int32_t>* list);
    void apply_r_ftran(std::vector<double>& v, std::vector<std::int32_t>* list);

    std::size_t m_ = 0;
    bool valid_ = false;
    Stats stats_;

    // L: elementary row ops in pivot order (op k: v[row] -= val * v[piv]).
    std::vector<std::int64_t> l_start_;
    std::vector<std::int32_t> l_piv_row_;
    std::vector<std::int32_t> l_row_;
    std::vector<double> l_val_;
    // Row -> L ops touching it as a source, for hypersparse BTRAN-L^T.
    std::vector<std::int64_t> lrow_start_;
    std::vector<std::int32_t> lrow_op_;

    // R: Forrest-Tomlin row etas appended per update
    // (v[target] -= sum val_i * v[row_i]), applied after L in FTRAN.
    std::vector<std::int64_t> r_start_;
    std::vector<std::int32_t> r_target_;
    std::vector<std::int32_t> r_row_;
    std::vector<double> r_val_;

    // U keyed by slot. An entry in ucol_[j] is live while its ver matches
    // rowver_ of its row's slot; in urow_[k] while it matches colver_ of its
    // column's slot. Updates bump the leaving slot's versions instead of
    // erasing from every list.
    std::vector<std::vector<UEntry>> ucol_, urow_;
    std::vector<double> udiag_;
    std::vector<std::int32_t> urowof_;       // slot -> its pivot row
    std::vector<std::int32_t> slot_of_row_;  // inverse of urowof_
    std::vector<std::int32_t> rowver_, colver_;
    std::vector<std::int32_t> pivot_seq_;    // slots in pivot order
    std::vector<std::int32_t> seq_pos_;      // slot -> position in pivot_seq_

    // Cached spike (L- and R-applied entering column) for update().
    std::vector<double> spike_;
    std::vector<std::int32_t> spike_list_;
    bool spike_valid_ = false;

    // Factorization workspace (kept allocated between refactorizations).
    std::vector<std::vector<std::pair<std::int32_t, double>>> wrow_;
    std::vector<std::vector<std::int32_t>> wcol_;
    std::vector<std::int32_t> row_count_, col_count_;
    std::vector<std::uint8_t> row_active_, col_active_;
    std::vector<std::vector<std::int32_t>> buckets_;

    // Solve scratch.
    std::vector<double> work_;
    std::vector<double> seed_val_;  // slot-indexed seed scatter (btran_seeds)
    std::vector<std::pair<std::int32_t, std::int32_t>> dstack_;  // (slot, next child)
    std::vector<std::int32_t> mark_;
    std::int32_t epoch_ = 0;
    std::vector<std::int32_t> lop_mark_;  // per-L-op visit stamps (BTRAN DFS)
    std::int32_t lop_epoch_ = 0;
    std::vector<std::int32_t> stack_, reach_;
    std::vector<double> mu_;
    std::vector<std::int32_t> mu_list_, mu_touched_;
};

}  // namespace hermes::milp
