// Branching-variable selection for the MILP search: shared pseudocosts.
//
// A pseudocost is the observed objective degradation per unit of fractional
// distance when branching a variable down (x <= floor) or up (x >= ceil).
// The table is shared by every branch-and-bound worker: each processed child
// node records (bound_child - bound_parent) / distance for the branch that
// created it, and selection scores a fractional candidate by the product of
// its estimated down and up degradations (the product rule), falling back to
// the table-wide average for directions never observed. Reliability comes
// from strong branching at the root: the search seeds the table by actually
// solving both child LPs of the most fractional root candidates, so early
// selections are driven by measured degradations instead of the raw
// fraction. Ties are broken by the lowest variable id, which keeps selection
// deterministic for any worker count and any observation interleaving.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <vector>

#include "milp/model.h"

namespace hermes::milp {

class PseudocostTable {
public:
    explicit PseudocostTable(std::size_t variable_count)
        : entries_(variable_count) {}

    // Records one observed branching outcome: the child created by branching
    // `var` in direction `up` at fractional distance `distance` (f for the
    // down child, 1-f for the up child) raised the LP bound by `gain` (>= 0
    // in minimization space; negative observations are clamped). Thread-safe.
    void record(VarId var, bool up, double distance, double gain);

    // Degradation-per-unit estimate for one direction; falls back to the
    // table-wide average, then to 1.0, when unobserved.
    [[nodiscard]] double estimate(VarId var, bool up) const;

    // Observation count for one direction of one variable.
    [[nodiscard]] int observations(VarId var, bool up) const;

    // Picks the fractional integer variable with the largest product score
    //   max(eps, est_down) * f * max(eps, est_up) * (1 - f),
    // lowest variable id on ties; nullopt when `values` is integral. The
    // eps floor guards each directional estimate alone, so an all-zero
    // table degrades to the most-fractional rule, never to id order.
    [[nodiscard]] std::optional<VarId> select(const Model& model,
                                              const std::vector<double>& values,
                                              double tolerance) const;

private:
    struct Entry {
        double sum[2] = {0.0, 0.0};  // [down, up] summed per-unit gains
        std::int32_t count[2] = {0, 0};
    };

    mutable std::mutex mu_;
    std::vector<Entry> entries_;
    double total_sum_ = 0.0;  // across both directions, for the fallback
    std::int64_t total_count_ = 0;
};

}  // namespace hermes::milp
