// Sparse linear expressions for MILP model building.
//
// A LinExpr is Σ coef_i · x_i + constant. Terms stay normalized (sorted by
// variable id, combined, zero coefficients dropped) so model assembly and
// the simplex converter can consume them directly.
#pragma once

#include <vector>

namespace hermes::milp {

using VarId = int;

struct Term {
    VarId var = 0;
    double coef = 0.0;

    friend bool operator==(const Term&, const Term&) = default;
};

class LinExpr {
public:
    LinExpr() = default;
    /*implicit*/ LinExpr(double constant) : constant_(constant) {}

    // coef · x_v
    [[nodiscard]] static LinExpr term(VarId v, double coef = 1.0);

    LinExpr& operator+=(const LinExpr& rhs);
    LinExpr& operator-=(const LinExpr& rhs);
    LinExpr& operator*=(double scale);

    void add_term(VarId v, double coef);
    void add_constant(double c) { constant_ += c; }

    [[nodiscard]] const std::vector<Term>& terms() const noexcept { return terms_; }
    [[nodiscard]] double constant() const noexcept { return constant_; }

    // Coefficient of variable v (0 when absent).
    [[nodiscard]] double coefficient(VarId v) const noexcept;

    // Value of the expression under a full assignment.
    [[nodiscard]] double evaluate(const std::vector<double>& values) const;

    [[nodiscard]] bool empty() const noexcept { return terms_.empty(); }

private:
    std::vector<Term> terms_;  // invariant: sorted by var, unique, non-zero
    double constant_ = 0.0;
};

[[nodiscard]] LinExpr operator+(LinExpr lhs, const LinExpr& rhs);
[[nodiscard]] LinExpr operator-(LinExpr lhs, const LinExpr& rhs);
[[nodiscard]] LinExpr operator*(double scale, LinExpr expr);
[[nodiscard]] LinExpr operator*(LinExpr expr, double scale);

}  // namespace hermes::milp
