#include "milp/lin.h"

#include <cmath>
#include <stdexcept>

namespace hermes::milp {

namespace {
void require_binary(const Model& model, VarId v, const char* context) {
    if (model.variable(v).type != VarType::kBinary) {
        throw std::invalid_argument(std::string(context) + ": variable '" +
                                    model.variable(v).name + "' is not binary");
    }
}
}  // namespace

VarId add_and(Model& model, VarId x, VarId y, std::string name) {
    require_binary(model, x, "add_and");
    require_binary(model, y, "add_and");
    if (name.empty()) {
        name = "and_" + model.variable(x).name + "_" + model.variable(y).name;
    }
    const VarId z = model.add_binary(name);
    model.add_constraint(LinExpr::term(z) - LinExpr::term(x), Sense::kLe, 0.0);
    model.add_constraint(LinExpr::term(z) - LinExpr::term(y), Sense::kLe, 0.0);
    model.add_constraint(LinExpr::term(z) - LinExpr::term(x) - LinExpr::term(y), Sense::kGe,
                         -1.0);
    return z;
}

VarId add_or(Model& model, std::span<const VarId> vars, std::string name) {
    if (vars.empty()) throw std::invalid_argument("add_or: empty variable list");
    for (const VarId v : vars) require_binary(model, v, "add_or");
    if (name.empty()) name = "or" + std::to_string(model.variable_count());
    const VarId z = model.add_binary(std::move(name));
    LinExpr sum;
    for (const VarId v : vars) {
        model.add_constraint(LinExpr::term(z) - LinExpr::term(v), Sense::kGe, 0.0);
        sum += LinExpr::term(v);
    }
    model.add_constraint(LinExpr::term(z) - sum, Sense::kLe, 0.0);
    return z;
}

VarId add_max_bound(Model& model, std::span<const LinExpr> exprs, double lower,
                    double upper, std::string name) {
    if (exprs.empty()) throw std::invalid_argument("add_max_bound: empty expression list");
    if (name.empty()) name = "max" + std::to_string(model.variable_count());
    const VarId t = model.add_continuous(lower, upper, std::move(name));
    for (const LinExpr& e : exprs) {
        model.add_constraint(LinExpr::term(t) - e, Sense::kGe, 0.0);
    }
    return t;
}

void add_indicator(Model& model, VarId z, LinExpr expr, Sense sense, double rhs,
                   double big_m, std::string name) {
    require_binary(model, z, "add_indicator");
    if (big_m < 0.0) throw std::invalid_argument("add_indicator: negative big-M");
    switch (sense) {
        case Sense::kLe:
            // expr <= rhs + M(1-z)
            expr += LinExpr::term(z, big_m);
            model.add_constraint(std::move(expr), Sense::kLe, rhs + big_m, std::move(name));
            break;
        case Sense::kGe:
            // expr >= rhs - M(1-z)
            expr -= LinExpr::term(z, big_m);
            model.add_constraint(std::move(expr), Sense::kGe, rhs - big_m, std::move(name));
            break;
        case Sense::kEq:
            add_indicator(model, z, expr, Sense::kLe, rhs, big_m, name + "_le");
            add_indicator(model, z, std::move(expr), Sense::kGe, rhs, big_m, name + "_ge");
            break;
    }
}

double box_big_m(const Model& model, const LinExpr& expr, double rhs) {
    double lo = expr.constant();
    double hi = expr.constant();
    for (const Term& t : expr.terms()) {
        const Variable& v = model.variable(t.var);
        const double a = t.coef * v.lower;
        const double b = t.coef * v.upper;
        lo += std::min(a, b);
        hi += std::max(a, b);
    }
    if (!std::isfinite(lo) || !std::isfinite(hi)) {
        throw std::invalid_argument("box_big_m: unbounded variable in expression");
    }
    return std::max(std::abs(hi - rhs), std::abs(lo - rhs));
}

}  // namespace hermes::milp
