#include "milp/presolve.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace hermes::milp {

namespace {

constexpr double kIntTol = 1e-6;    // integrality slack when rounding bounds
constexpr double kFixTol = 1e-9;    // bounds closer than this fix the variable
constexpr double kFeasTol = 1e-7;   // row feasibility
constexpr double kInf = std::numeric_limits<double>::infinity();

struct WorkVar {
    double lower = 0.0;
    double upper = kInf;
    VarType type = VarType::kContinuous;
    bool fixed = false;
    double value = 0.0;
};

struct WorkRow {
    std::vector<Term> terms;
    Sense sense = Sense::kLe;
    double rhs = 0.0;
    bool alive = true;
};

}  // namespace

std::vector<double> PresolveResult::postsolve(
    const std::vector<double>& reduced_values) const {
    std::vector<double> out(original_variables, 0.0);
    for (std::size_t i = 0; i < original_variables; ++i) {
        out[i] = var_map[i] >= 0
                     ? reduced_values[static_cast<std::size_t>(var_map[i])]
                     : fixed_value[i];
    }
    return out;
}

bool PresolveResult::restrict(const std::vector<double>& original_values,
                              std::vector<double>& reduced_values,
                              double tolerance) const {
    reduced_values.assign(reduced.variable_count(), 0.0);
    for (std::size_t i = 0; i < original_variables; ++i) {
        if (var_map[i] >= 0) {
            reduced_values[static_cast<std::size_t>(var_map[i])] = original_values[i];
        } else if (std::abs(original_values[i] - fixed_value[i]) > tolerance) {
            return false;
        }
    }
    return true;
}

PresolveResult presolve(const Model& model) {
    const std::size_t n = model.variable_count();
    PresolveResult result;
    result.original_variables = n;
    result.original_constraints = model.constraint_count();
    result.var_map.assign(n, -1);
    result.fixed_value.assign(n, 0.0);

    std::vector<WorkVar> vars(n);
    for (std::size_t j = 0; j < n; ++j) {
        const Variable& v = model.variable(static_cast<VarId>(j));
        vars[j] = WorkVar{v.lower, v.upper, v.type, false, 0.0};
    }
    std::vector<WorkRow> rows;
    rows.reserve(model.constraint_count());
    std::vector<std::vector<std::int32_t>> rows_of_var(n);
    for (const Constraint& c : model.constraints()) {
        const auto r = static_cast<std::int32_t>(rows.size());
        rows.push_back(WorkRow{c.expr.terms(), c.sense, c.rhs, true});
        for (const Term& t : c.expr.terms()) {
            rows_of_var[static_cast<std::size_t>(t.var)].push_back(r);
        }
    }

    // Fixes variable j at `value`: substitutes into every row it appears in
    // (rhs absorbs the contribution, the term disappears).
    const auto fix_var = [&](std::size_t j, double value) {
        vars[j].fixed = true;
        vars[j].value = value;
        for (const std::int32_t r : rows_of_var[j]) {
            WorkRow& row = rows[static_cast<std::size_t>(r)];
            if (!row.alive) continue;
            for (std::size_t k = 0; k < row.terms.size(); ++k) {
                if (static_cast<std::size_t>(row.terms[k].var) != j) continue;
                row.rhs -= row.terms[k].coef * value;
                row.terms.erase(row.terms.begin() +
                                static_cast<std::ptrdiff_t>(k));
                break;
            }
        }
    };

    bool infeasible = false;
    bool changed = true;
    for (int round = 0; round < 50 && changed && !infeasible; ++round) {
        changed = false;

        // Bound sanity, integer rounding, and fixing.
        for (std::size_t j = 0; j < n && !infeasible; ++j) {
            WorkVar& v = vars[j];
            if (v.fixed) continue;
            if (v.type != VarType::kContinuous) {
                const double rl = std::ceil(v.lower - kIntTol);
                const double ru = std::floor(v.upper + kIntTol);
                if (rl > v.lower) {
                    v.lower = rl;
                    changed = true;
                }
                if (ru < v.upper) {
                    v.upper = ru;
                    changed = true;
                }
            }
            if (v.lower > v.upper + kFeasTol * (1.0 + std::abs(v.lower))) {
                infeasible = true;
                break;
            }
            if (std::isfinite(v.lower) && v.upper - v.lower <= kFixTol) {
                double value = 0.5 * (v.lower + v.upper);
                if (v.type != VarType::kContinuous) value = std::round(value);
                fix_var(j, value);
                changed = true;
            }
        }
        if (infeasible) break;

        for (WorkRow& row : rows) {
            if (!row.alive) continue;
            const double rtol = kFeasTol * (1.0 + std::abs(row.rhs));
            if (row.terms.empty()) {
                // Constant row: either vacuous or a contradiction.
                const bool ok = row.sense == Sense::kLe   ? 0.0 <= row.rhs + rtol
                                : row.sense == Sense::kGe ? 0.0 >= row.rhs - rtol
                                                          : std::abs(row.rhs) <= rtol;
                if (!ok) {
                    infeasible = true;
                    break;
                }
                row.alive = false;
                changed = true;
                continue;
            }
            if (row.terms.size() == 1) {
                // Singleton row: fold into the variable's bounds and drop.
                const auto j = static_cast<std::size_t>(row.terms[0].var);
                const double a = row.terms[0].coef;
                const double b = row.rhs / a;
                WorkVar& v = vars[j];
                const bool upper_side = (row.sense == Sense::kLe) == (a > 0.0);
                if (row.sense == Sense::kEq) {
                    v.lower = std::max(v.lower, b);
                    v.upper = std::min(v.upper, b);
                } else if (upper_side) {
                    v.upper = std::min(v.upper, b);
                } else {
                    v.lower = std::max(v.lower, b);
                }
                row.alive = false;
                changed = true;  // the bound pass re-checks sanity next round
                continue;
            }
            // Activity bounds over the remaining free variables.
            double min_act = 0.0;
            double max_act = 0.0;
            for (const Term& t : row.terms) {
                const WorkVar& v = vars[static_cast<std::size_t>(t.var)];
                const double lo = t.coef > 0.0 ? v.lower : v.upper;
                const double hi = t.coef > 0.0 ? v.upper : v.lower;
                min_act += std::isfinite(lo) ? t.coef * lo : -kInf;
                max_act += std::isfinite(hi) ? t.coef * hi : kInf;
            }
            const bool le_side = row.sense != Sense::kGe;  // kLe or kEq
            const bool ge_side = row.sense != Sense::kLe;  // kGe or kEq
            if ((le_side && min_act > row.rhs + rtol) ||
                (ge_side && max_act < row.rhs - rtol)) {
                infeasible = true;
                break;
            }
            const bool le_redundant = !le_side || max_act <= row.rhs + rtol;
            const bool ge_redundant = !ge_side || min_act >= row.rhs - rtol;
            if (le_redundant && ge_redundant) {
                row.alive = false;
                changed = true;
            }
        }
    }

    if (infeasible) {
        result.infeasible = true;
        return result;
    }

    // Rebuild the reduced model over the surviving variables and rows.
    for (std::size_t j = 0; j < n; ++j) {
        const Variable& orig = model.variable(static_cast<VarId>(j));
        const WorkVar& v = vars[j];
        if (v.fixed) {
            result.fixed_value[j] = v.value;
            ++result.removed_variables;
            continue;
        }
        VarId id{};
        switch (v.type) {
            case VarType::kBinary:
                id = result.reduced.add_binary(orig.name);
                break;
            case VarType::kInteger:
                id = result.reduced.add_integer(v.lower, v.upper, orig.name);
                break;
            case VarType::kContinuous:
                id = result.reduced.add_continuous(v.lower, v.upper, orig.name);
                break;
        }
        result.var_map[j] = id;
    }
    for (std::size_t r = 0; r < rows.size(); ++r) {
        const WorkRow& row = rows[r];
        if (!row.alive) {
            ++result.removed_constraints;
            continue;
        }
        LinExpr expr;
        for (const Term& t : row.terms) {
            expr.add_term(result.var_map[static_cast<std::size_t>(t.var)], t.coef);
        }
        result.reduced.add_constraint(std::move(expr), row.sense, row.rhs,
                                      model.constraints()[r].name);
    }
    LinExpr objective;
    objective.add_constant(model.objective().constant());
    for (const Term& t : model.objective().terms()) {
        const auto j = static_cast<std::size_t>(t.var);
        if (vars[j].fixed) {
            objective.add_constant(t.coef * vars[j].value);
        } else {
            objective.add_term(result.var_map[j], t.coef);
        }
    }
    if (model.is_minimization()) {
        result.reduced.minimize(std::move(objective));
    } else {
        result.reduced.maximize(std::move(objective));
    }
    return result;
}

}  // namespace hermes::milp
