// Linearization helpers for the products and maxima that appear in the
// paper's objectives (1)-(3): products of binary indicators, max-of-sums,
// and big-M indicator constraints.
#pragma once

#include <span>
#include <string>

#include "milp/model.h"

namespace hermes::milp {

// z = x AND y for binaries x, y: z <= x, z <= y, z >= x + y - 1.
[[nodiscard]] VarId add_and(Model& model, VarId x, VarId y, std::string name = "");

// z = OR of binaries: z >= each, z <= sum.
[[nodiscard]] VarId add_or(Model& model, std::span<const VarId> vars,
                           std::string name = "");

// t >= expr_i for every i. Minimizing t yields max_i expr_i. Returns t.
[[nodiscard]] VarId add_max_bound(Model& model, std::span<const LinExpr> exprs,
                                  double lower = 0.0, double upper = kInfinity,
                                  std::string name = "");

// Indicator: when binary z = 1 enforce (expr sense rhs); free otherwise.
// `big_m` must upper-bound |expr - rhs| over the feasible box.
void add_indicator(Model& model, VarId z, LinExpr expr, Sense sense, double rhs,
                   double big_m, std::string name = "");

// A valid big-M for `expr` over the variable box: max |expr - rhs| given
// each variable's [lower, upper]. Throws when a referenced variable has an
// infinite bound in the direction that matters.
[[nodiscard]] double box_big_m(const Model& model, const LinExpr& expr, double rhs);

}  // namespace hermes::milp
