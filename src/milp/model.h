// MILP model: variables with bounds and types, linear constraints, and a
// linear objective. The same model type feeds both the LP relaxation solver
// (simplex.h) and the branch-and-bound MILP solver (solver.h).
#pragma once

#include <limits>
#include <string>
#include <vector>

#include "milp/expr.h"

namespace hermes::milp {

enum class VarType : std::uint8_t { kContinuous, kInteger, kBinary };
enum class Sense : std::uint8_t { kLe, kGe, kEq };

inline constexpr double kInfinity = std::numeric_limits<double>::infinity();

struct Variable {
    std::string name;
    VarType type = VarType::kContinuous;
    double lower = 0.0;
    double upper = kInfinity;
};

struct Constraint {
    LinExpr expr;  // constant folded into rhs by add_constraint
    Sense sense = Sense::kLe;
    double rhs = 0.0;
    std::string name;
};

class Model {
public:
    VarId add_continuous(double lower, double upper, std::string name = "");
    VarId add_integer(double lower, double upper, std::string name = "");
    VarId add_binary(std::string name = "");

    // expr `sense` rhs; any constant in expr is moved to the rhs.
    void add_constraint(LinExpr expr, Sense sense, double rhs, std::string name = "");

    void minimize(LinExpr objective);
    void maximize(LinExpr objective);

    [[nodiscard]] std::size_t variable_count() const noexcept { return variables_.size(); }
    [[nodiscard]] std::size_t constraint_count() const noexcept {
        return constraints_.size();
    }
    [[nodiscard]] const Variable& variable(VarId v) const;
    [[nodiscard]] const std::vector<Variable>& variables() const noexcept {
        return variables_;
    }
    [[nodiscard]] const std::vector<Constraint>& constraints() const noexcept {
        return constraints_;
    }
    [[nodiscard]] const LinExpr& objective() const noexcept { return objective_; }
    [[nodiscard]] bool is_minimization() const noexcept { return minimize_; }

    // Bound tightening used by branch and bound.
    void set_lower(VarId v, double lower);
    void set_upper(VarId v, double upper);

    // All variable bounds as dense vectors, in variable-id order — the form
    // LpContext::solve consumes (copy once, perturb per node).
    [[nodiscard]] std::vector<double> lower_bounds() const;
    [[nodiscard]] std::vector<double> upper_bounds() const;

    // True when `values` satisfies all bounds, integrality, and constraints
    // within `tolerance`.
    [[nodiscard]] bool is_feasible(const std::vector<double>& values,
                                   double tolerance = 1e-6) const;

    // Objective value of an assignment (regardless of feasibility).
    [[nodiscard]] double objective_value(const std::vector<double>& values) const;

private:
    VarId add_variable(Variable v);

    std::vector<Variable> variables_;
    std::vector<Constraint> constraints_;
    LinExpr objective_;
    bool minimize_ = true;
};

}  // namespace hermes::milp
