// The retained eta-file (product-form) simplex kernel, reachable through
// LpOptions::use_eta_basis. This is the PR 3-7 kernel verbatim apart from
// reading LpContext through its public accessors; the sparse LU kernel in
// simplex.cc replaced it as the default and tests/lu_kernel_test.cpp holds
// the two equivalent. See simplex.h for the solver-level contract.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "milp/simplex.h"

namespace hermes::milp {

namespace {

constexpr double kEps = 1e-9;       // reduced-cost / ratio tie tolerance
constexpr double kFeasTol = 1e-7;   // primal bound feasibility
constexpr double kPivTol = 1e-7;    // smallest acceptable pivot magnitude
constexpr double kDropTol = 1e-12;  // entries below this are structural zero
constexpr double kInf = std::numeric_limits<double>::infinity();

constexpr std::int8_t kAtLower = 0;
constexpr std::int8_t kAtUpper = 1;
constexpr std::int8_t kBasic = 2;

[[nodiscard]] std::chrono::steady_clock::time_point make_deadline(double max_seconds) {
    if (max_seconds <= 0.0 || max_seconds >= 1e17) {
        return std::chrono::steady_clock::time_point::max();  // no budget
    }
    return std::chrono::steady_clock::now() +
           std::chrono::duration_cast<std::chrono::steady_clock::duration>(
               std::chrono::duration<double>(max_seconds));
}

// One solve attempt-pair (warm then cold) over an LpContext. All state lives
// in the caller-supplied workspace so branch-and-bound workers reuse their
// eta pools across thousands of node re-solves.
class EtaSimplex {
public:
    EtaSimplex(const LpContext& ctx, std::span<const double> lower,
               std::span<const double> upper, const LpOptions& options,
               LpWorkspace& ws)
        : ctx_(ctx),
          ws_(ws),
          options_(options),
          n_(ctx.structurals()),
          m_(ctx.rows()),
          total_(ctx.structurals() + ctx.rows()),
          deadline_(make_deadline(options.time_limit_seconds)) {
        ws_.lower.assign(total_, 0.0);
        ws_.upper.assign(total_, 0.0);
        for (std::size_t j = 0; j < n_; ++j) {
            if (!std::isfinite(lower[j])) {
                throw std::invalid_argument("solve_lp: variable " + std::to_string(j) +
                                            " has non-finite lower bound");
            }
            ws_.lower[j] = lower[j];
            ws_.upper[j] = upper[j];
        }
        for (std::size_t i = 0; i < m_; ++i) {
            switch (ctx_.row_sense()[i]) {
                case Sense::kLe:
                    ws_.lower[n_ + i] = 0.0;
                    ws_.upper[n_ + i] = kInf;
                    break;
                case Sense::kGe:
                    ws_.lower[n_ + i] = -kInf;
                    ws_.upper[n_ + i] = 0.0;
                    break;
                case Sense::kEq:
                    ws_.lower[n_ + i] = 0.0;
                    ws_.upper[n_ + i] = 0.0;
                    break;
            }
        }
    }

    [[nodiscard]] LpResult run() {
        LpResult result = run_attempts();
        result.factor_etas = factor_etas_;
        return result;
    }

private:
    [[nodiscard]] LpResult run_attempts() {
        LpResult result;
        // Crossed bounds (branching can produce lower > upper) make the box
        // itself empty. Pricing skips negative-range variables as "fixed", so
        // this must be rejected up front or the solve quietly pins the
        // variable at its lower bound and reports optimal.
        for (std::size_t j = 0; j < total_; ++j) {
            if (ws_.lower[j] >
                ws_.upper[j] + kFeasTol * (1.0 + std::abs(ws_.upper[j]))) {
                result.status = LpStatus::kInfeasible;
                return result;
            }
        }
        const bool have_warm =
            options_.warm_basis != nullptr && !options_.warm_basis->empty();
        // Notes the abandon reason and charges everything the warm attempt
        // burned (reload etas included) as pure waste before falling through
        // to the authoritative cold solve.
        const auto abandon = [&](WarmAbandon why) {
            result.warm_abandon = why;
            result.warm_wasted_iterations = result.iterations;
        };
        for (int attempt = have_warm ? 0 : 1; attempt < 2; ++attempt) {
            const bool warm = attempt == 0;
            if (warm) {
                if (!load_warm_basis(*options_.warm_basis)) {
                    abandon(WarmAbandon::kLoad);
                    continue;
                }
            } else {
                load_cold_basis();
            }
            if (!factorize()) {
                if (warm) {
                    abandon(WarmAbandon::kFactorize);
                    continue;
                }
                result.status = LpStatus::kIterationLimit;  // numerical give-up
                return result;
            }
            compute_basic_solution();

            if (warm && infeasible_basic_count() > crash_infeasible_count()) {
                // Cost gate: the reloaded basis needs more phase-1 repair
                // than a fresh crash (all-logical) basis would, so the parent
                // basis carries no information worth paying for — abandon
                // before burning any pivots on it.
                abandon(WarmAbandon::kGate);
                continue;
            }

            // A reloaded basis that does not re-optimize within a small pivot
            // budget is abandoned for the cold path: phase-1 repair from a
            // badly drifted parent basis can cost far more than solving from
            // the logical basis, and the cold attempt is always available.
            const std::int64_t limit =
                warm ? std::min(options_.iteration_limit,
                                result.iterations + warm_pivot_budget())
                     : options_.iteration_limit;
            const Verdict v = iterate(result.iterations, limit);
            if (v == Verdict::kIterationLimit) {
                if (warm && result.iterations < options_.iteration_limit &&
                    std::chrono::steady_clock::now() <= deadline_ &&
                    !options_.deadline.expired()) {
                    abandon(WarmAbandon::kBudget);
                    continue;  // warm budget exhausted; redo cold
                }
                result.status = LpStatus::kIterationLimit;
                return result;
            }
            if (v == Verdict::kInfeasible) {
                // Sound from a warm basis too: the phase-1 optimality proof
                // is re-priced on a freshly refactorized basis and a
                // from-scratch basic solution (confirm-before-declare), the
                // same evidence a cold proof rests on. Re-proving it cold
                // doubled the cost of every branching-fixed infeasible node.
                result.status = LpStatus::kInfeasible;
                result.warm_used = warm;  // a warm-certified proof is a hit
                return result;
            }
            if (warm && v != Verdict::kOptimal) {
                abandon(WarmAbandon::kVerdict);
                continue;  // cold decides unbounded rays and numerical stalls
            }
            if (v == Verdict::kUnbounded) {
                result.status = LpStatus::kUnbounded;
                return result;
            }
            if (v == Verdict::kStall) {  // cold attempt hit a numerical wall
                result.status = LpStatus::kIterationLimit;
                return result;
            }

            extract(result);
            if (warm && !verify_point(result.values)) {
                result.values.clear();
                abandon(WarmAbandon::kVerify);
                continue;  // drifted warm solve; redo cold
            }
            result.status = LpStatus::kOptimal;
            result.warm_used = warm;
            export_basis(result.basis);
            if (options_.want_dual_values) export_duals(result);
            return result;
        }
        result.status = LpStatus::kIterationLimit;  // unreachable
        return result;
    }

    enum class Verdict { kOptimal, kInfeasible, kUnbounded, kIterationLimit, kStall };

    // ---- eta file -------------------------------------------------------

    void clear_etas() {
        ws_.eta_start.assign(1, 0);
        ws_.eta_pivot_row.clear();
        ws_.eta_pivot.clear();
        ws_.eta_row.clear();
        ws_.eta_val.clear();
    }

    // Appends the eta derived from the FTRANed column `d` pivoting on row r.
    void append_eta(const std::vector<double>& d, std::size_t r) {
        ws_.eta_pivot_row.push_back(static_cast<std::int32_t>(r));
        ws_.eta_pivot.push_back(d[r]);
        for (std::size_t i = 0; i < m_; ++i) {
            if (i == r || std::abs(d[i]) <= kDropTol) continue;
            ws_.eta_row.push_back(static_cast<std::int32_t>(i));
            ws_.eta_val.push_back(d[i]);
        }
        ws_.eta_start.push_back(static_cast<std::int32_t>(ws_.eta_row.size()));
    }

    // v <- B^-1 v, applying etas oldest first.
    void ftran(std::vector<double>& v) const {
        const std::size_t k = ws_.eta_pivot_row.size();
        for (std::size_t e = 0; e < k; ++e) {
            const auto r = static_cast<std::size_t>(ws_.eta_pivot_row[e]);
            double t = v[r];
            if (t == 0.0) continue;
            t /= ws_.eta_pivot[e];
            v[r] = t;
            const auto begin = static_cast<std::size_t>(ws_.eta_start[e]);
            const auto end = static_cast<std::size_t>(ws_.eta_start[e + 1]);
            for (std::size_t i = begin; i < end; ++i) {
                v[static_cast<std::size_t>(ws_.eta_row[i])] -= ws_.eta_val[i] * t;
            }
        }
    }

    // y <- B^-T y, applying etas newest first (only the pivot component of y
    // changes per eta, so BTRAN is a gather instead of a scatter).
    void btran(std::vector<double>& y) const {
        for (std::size_t e = ws_.eta_pivot_row.size(); e-- > 0;) {
            const auto r = static_cast<std::size_t>(ws_.eta_pivot_row[e]);
            double acc = y[r];
            const auto begin = static_cast<std::size_t>(ws_.eta_start[e]);
            const auto end = static_cast<std::size_t>(ws_.eta_start[e + 1]);
            for (std::size_t i = begin; i < end; ++i) {
                acc -= ws_.eta_val[i] * y[static_cast<std::size_t>(ws_.eta_row[i])];
            }
            y[r] = acc / ws_.eta_pivot[e];
        }
    }

    // Writes column j of the standard-form matrix into the dense scratch.
    void load_column(std::size_t j, std::vector<double>& dense) const {
        std::fill(dense.begin(), dense.end(), 0.0);
        if (j < n_) {
            const auto begin = static_cast<std::size_t>(ctx_.col_start()[j]);
            const auto end = static_cast<std::size_t>(ctx_.col_start()[j + 1]);
            for (std::size_t i = begin; i < end; ++i) {
                dense[static_cast<std::size_t>(ctx_.row_idx()[i])] = ctx_.values()[i];
            }
        } else {
            dense[j - n_] = 1.0;
        }
    }

    [[nodiscard]] double dot_column(std::size_t j, const std::vector<double>& y) const {
        if (j >= n_) return y[j - n_];
        double acc = 0.0;
        const auto begin = static_cast<std::size_t>(ctx_.col_start()[j]);
        const auto end = static_cast<std::size_t>(ctx_.col_start()[j + 1]);
        for (std::size_t i = begin; i < end; ++i) {
            acc += ctx_.values()[i] * y[static_cast<std::size_t>(ctx_.row_idx()[i])];
        }
        return acc;
    }

    // ---- basis management ----------------------------------------------

    void load_cold_basis() {
        ws_.basic.resize(m_);
        ws_.vstat.assign(total_, kAtLower);
        for (std::size_t j = 0; j < total_; ++j) {
            if (!std::isfinite(ws_.lower[j])) ws_.vstat[j] = kAtUpper;
        }
        for (std::size_t i = 0; i < m_; ++i) {
            ws_.basic[i] = static_cast<std::int32_t>(n_ + i);
            ws_.vstat[n_ + i] = kBasic;
        }
    }

    [[nodiscard]] bool load_warm_basis(const Basis& warm) {
        if (warm.basic.size() != m_ || warm.columns != total_) return false;
        ws_.vstat.assign(total_, kAtLower);
        if (warm.at_upper.size() == total_) {
            for (std::size_t j = 0; j < total_; ++j) {
                if (warm.at_upper[j]) ws_.vstat[j] = kAtUpper;
            }
        }
        // A nonbasic variable must rest at a finite bound.
        for (std::size_t j = 0; j < total_; ++j) {
            if (ws_.vstat[j] == kAtLower && !std::isfinite(ws_.lower[j])) {
                if (!std::isfinite(ws_.upper[j])) return false;
                ws_.vstat[j] = kAtUpper;
            } else if (ws_.vstat[j] == kAtUpper && !std::isfinite(ws_.upper[j])) {
                ws_.vstat[j] = kAtLower;  // lower is finite for structurals
                if (!std::isfinite(ws_.lower[j])) return false;
            }
        }
        ws_.basic.resize(m_);
        for (std::size_t i = 0; i < m_; ++i) {
            const std::int32_t v = warm.basic[i];
            if (v < 0 || static_cast<std::size_t>(v) >= total_) return false;
            ws_.basic[i] = v;
            ws_.vstat[static_cast<std::size_t>(v)] = kBasic;
        }
        return true;
    }

    // Rebuilds the eta file for the current basic set: logical columns first
    // (each is a unit vector, pivots on its own row, adds no eta), then the
    // structural basics by largest-magnitude remaining row. Renumbers
    // ws_.basic row assignments; returns false on duplicates/singularity.
    [[nodiscard]] bool factorize() {
        clear_etas();
        ws_.pos.assign(total_, -1);
        std::vector<std::int32_t> new_basic(m_, -1);
        std::vector<std::int32_t> structural;
        structural.reserve(m_);
        for (std::size_t i = 0; i < m_; ++i) {
            const std::int32_t v = ws_.basic[i];
            if (v < 0 || static_cast<std::size_t>(v) >= total_) return false;
            if (ws_.pos[static_cast<std::size_t>(v)] != -1) return false;  // duplicate
            ws_.pos[static_cast<std::size_t>(v)] = 0;  // provisional claim marker
            if (static_cast<std::size_t>(v) >= n_) {
                const std::size_t row = static_cast<std::size_t>(v) - n_;
                if (new_basic[row] != -1) return false;
                new_basic[row] = v;
            } else {
                structural.push_back(v);
            }
        }
        ws_.col.assign(m_, 0.0);
        for (const std::int32_t v : structural) {
            load_column(static_cast<std::size_t>(v), ws_.col);
            ftran(ws_.col);
            std::size_t pr = m_;
            double best = kPivTol;
            for (std::size_t r = 0; r < m_; ++r) {
                if (new_basic[r] != -1) continue;
                const double a = std::abs(ws_.col[r]);
                if (a > best) {
                    best = a;
                    pr = r;
                }
            }
            if (pr == m_) return false;  // dependent / near-singular column
            append_eta(ws_.col, pr);
            new_basic[pr] = v;
            ++factor_etas_;
        }
        for (std::size_t r = 0; r < m_; ++r) {
            if (new_basic[r] == -1) return false;  // row left unpivoted
        }
        ws_.basic = std::move(new_basic);
        for (std::size_t r = 0; r < m_; ++r) {
            ws_.pos[static_cast<std::size_t>(ws_.basic[r])] =
                static_cast<std::int32_t>(r);
        }
        updates_since_factor_ = 0;
        return true;
    }

    // Recomputes x from scratch: nonbasic at their bound, basics via FTRAN of
    // the bound-adjusted rhs. Wipes all incremental round-off.
    void compute_basic_solution() {
        ws_.x.assign(total_, 0.0);
        ws_.rhs_work = ctx_.rhs();
        for (std::size_t j = 0; j < total_; ++j) {
            if (ws_.vstat[j] == kBasic) continue;
            const double xj = ws_.vstat[j] == kAtUpper ? ws_.upper[j] : ws_.lower[j];
            ws_.x[j] = xj;
            if (xj == 0.0) continue;
            if (j < n_) {
                const auto begin = static_cast<std::size_t>(ctx_.col_start()[j]);
                const auto end = static_cast<std::size_t>(ctx_.col_start()[j + 1]);
                for (std::size_t i = begin; i < end; ++i) {
                    ws_.rhs_work[static_cast<std::size_t>(ctx_.row_idx()[i])] -=
                        ctx_.values()[i] * xj;
                }
            } else {
                ws_.rhs_work[j - n_] -= xj;
            }
        }
        ftran(ws_.rhs_work);
        for (std::size_t r = 0; r < m_; ++r) {
            ws_.x[static_cast<std::size_t>(ws_.basic[r])] = ws_.rhs_work[r];
        }
    }

    // ---- the pivot loop -------------------------------------------------

    [[nodiscard]] bool basic_infeasible() const {
        for (std::size_t r = 0; r < m_; ++r) {
            const auto v = static_cast<std::size_t>(ws_.basic[r]);
            const double xv = ws_.x[v];
            if (xv < ws_.lower[v] - kFeasTol * (1.0 + std::abs(ws_.lower[v])) ||
                xv > ws_.upper[v] + kFeasTol * (1.0 + std::abs(ws_.upper[v]))) {
                return true;
            }
        }
        return false;
    }

    [[nodiscard]] double phase_cost(std::size_t v, int phase) const {
        if (phase == 2) return v < n_ ? ctx_.objective()[v] : 0.0;
        // Phase 1: gradient of the sum of primal infeasibilities. Only basic
        // variables can be out of bounds; nonbasic costs are zero.
        const double xv = ws_.x[v];
        if (xv > ws_.upper[v] + kFeasTol * (1.0 + std::abs(ws_.upper[v]))) return 1.0;
        if (xv < ws_.lower[v] - kFeasTol * (1.0 + std::abs(ws_.lower[v]))) return -1.0;
        return 0.0;
    }

    // One BTRAN + one sparse pass over all columns: picks the entering
    // variable (Dantzig most-improving, or Bland first-eligible once the
    // degenerate-run guard tripped). Returns total_ when none is eligible.
    [[nodiscard]] std::size_t price(int phase, bool bland) {
        ws_.y.assign(m_, 0.0);
        for (std::size_t r = 0; r < m_; ++r) {
            ws_.y[r] = phase_cost(static_cast<std::size_t>(ws_.basic[r]), phase);
        }
        btran(ws_.y);
        std::size_t enter = total_;
        double best_score = kEps;
        for (std::size_t j = 0; j < total_; ++j) {
            if (ws_.vstat[j] == kBasic) continue;
            if (ws_.upper[j] - ws_.lower[j] <= kDropTol) continue;  // fixed
            const double cost = phase == 2 && j < n_ ? ctx_.objective()[j] : 0.0;
            const double d = cost - dot_column(j, ws_.y);
            const double score = ws_.vstat[j] == kAtLower ? -d : d;
            if (score <= kEps) continue;
            if (bland) return j;  // smallest eligible index (ascending scan)
            if (score > best_score) {
                best_score = score;
                enter = j;
            }
        }
        return enter;
    }

    struct Ratio {
        double step = kInf;
        std::size_t leave_row = std::numeric_limits<std::size_t>::max();
        bool leave_at_upper = false;
        bool flip = false;
    };

    // Bounded-variable ratio test on the FTRANed entering column in ws_.col.
    // In phase 1 an infeasible basic variable blocks only at the bound it is
    // returning to (the first kink of the piecewise phase-1 objective), and
    // never blocks while moving further out; feasible basics block at their
    // bounds in both phases.
    [[nodiscard]] Ratio ratio_test(std::size_t enter, double dir, int phase,
                                   bool bland) const {
        Ratio best;
        double best_pivot = 0.0;
        for (std::size_t r = 0; r < m_; ++r) {
            const double a = ws_.col[r];
            if (std::abs(a) <= kPivTol) continue;
            const double w = dir * a;  // x_B[r] moves by -w per unit step
            const auto v = static_cast<std::size_t>(ws_.basic[r]);
            const double xv = ws_.x[v];
            const double l = ws_.lower[v];
            const double u = ws_.upper[v];
            const double ltol = kFeasTol * (1.0 + std::abs(l));
            const double utol = kFeasTol * (1.0 + std::abs(u));
            double t = kInf;
            bool at_upper = false;
            if (phase == 1 && xv > u + utol) {
                if (w <= 0.0) continue;  // moving further above: no kink
                t = (xv - u) / w;
                at_upper = true;
            } else if (phase == 1 && xv < l - ltol) {
                if (w >= 0.0) continue;
                t = (xv - l) / w;
                at_upper = false;
            } else if (w > 0.0) {
                if (!std::isfinite(l)) continue;
                t = (xv - l) / w;
                at_upper = false;
            } else {
                if (!std::isfinite(u)) continue;
                t = (xv - u) / w;
                at_upper = true;
            }
            if (t < 0.0) t = 0.0;  // degenerate beyond tolerance: zero step
            const bool first = best.leave_row == std::numeric_limits<std::size_t>::max();
            bool take = false;
            if (first || t < best.step - kEps) {
                take = true;
            } else if (t < best.step + kEps) {
                take = bland ? ws_.basic[r] <
                                   ws_.basic[static_cast<std::size_t>(best.leave_row)]
                             : std::abs(a) > best_pivot;
            }
            if (take) {
                best.step = std::min(first ? t : best.step, t);
                best.leave_row = r;
                best.leave_at_upper = at_upper;
                best_pivot = std::abs(a);
            }
        }
        // The entering variable's own opposite bound: a flip step changes no
        // basis and appends no eta, so prefer it on ties.
        const double range = ws_.upper[enter] - ws_.lower[enter];
        if (std::isfinite(range) && range <= best.step) {
            best.step = range;
            best.flip = true;
        }
        return best;
    }

    // Pivot allowance for a warm attempt before it is abandoned: generous
    // enough for a short phase-1 repair plus re-optimization after one
    // branching bound change, far below a typical from-scratch solve. A
    // failed attempt wastes its whole budget on top of the cold solve, so
    // the default is tight; LpOptions::warm_pivot_budget overrides it.
    [[nodiscard]] std::int64_t warm_pivot_budget() const {
        if (options_.warm_pivot_budget > 0) return options_.warm_pivot_budget;
        return 32 + static_cast<std::int64_t>(m_) / 2;
    }

    // Number of basic variables outside their bounds at the current point —
    // the phase-1 workload the current basis still owes.
    [[nodiscard]] std::int64_t infeasible_basic_count() const {
        std::int64_t violated = 0;
        for (std::size_t r = 0; r < m_; ++r) {
            const auto v = static_cast<std::size_t>(ws_.basic[r]);
            const double xv = ws_.x[v];
            if (xv < ws_.lower[v] - kFeasTol * (1.0 + std::abs(ws_.lower[v])) ||
                xv > ws_.upper[v] + kFeasTol * (1.0 + std::abs(ws_.upper[v]))) {
                ++violated;
            }
        }
        return violated;
    }

    // Phase-1 workload of a fresh crash (all-logical) basis: structural
    // variables at their cold-path bound, each logical at its row residual.
    // One pass over the nonzeros, no factorization — the yardstick the warm
    // gate compares the reloaded basis against.
    [[nodiscard]] std::int64_t crash_infeasible_count() const {
        if (crash_infeasible_ >= 0) return crash_infeasible_;
        std::vector<double>& residual = ws_.y;  // dead until the next price()
        residual.assign(ctx_.rhs().begin(), ctx_.rhs().end());
        for (std::size_t j = 0; j < n_; ++j) {
            const double xj = !std::isfinite(ws_.lower[j]) ? ws_.upper[j]
                                                          : ws_.lower[j];
            if (xj == 0.0) continue;
            const auto begin = static_cast<std::size_t>(ctx_.col_start()[j]);
            const auto end = static_cast<std::size_t>(ctx_.col_start()[j + 1]);
            for (std::size_t i = begin; i < end; ++i) {
                residual[static_cast<std::size_t>(ctx_.row_idx()[i])] -=
                    ctx_.values()[i] * xj;
            }
        }
        std::int64_t violated = 0;
        for (std::size_t i = 0; i < m_; ++i) {
            const std::size_t s = n_ + i;
            if (residual[i] < ws_.lower[s] - kFeasTol * (1.0 + std::abs(ws_.lower[s])) ||
                residual[i] > ws_.upper[s] + kFeasTol * (1.0 + std::abs(ws_.upper[s]))) {
                ++violated;
            }
        }
        crash_infeasible_ = violated;
        return crash_infeasible_;
    }

    [[nodiscard]] Verdict iterate(std::int64_t& iterations, std::int64_t limit) {
        std::int64_t local = 0;
        std::int64_t degenerate_run = 0;
        const std::int64_t bland_threshold =
            64 + 4 * static_cast<std::int64_t>(total_ + m_);
        bool bland = false;
        int confirm_passes = 0;

        while (true) {
            if (iterations >= limit) return Verdict::kIterationLimit;
            if ((local++ & 63) == 0 &&
                (std::chrono::steady_clock::now() > deadline_ ||
                 options_.deadline.expired())) {
                return Verdict::kIterationLimit;
            }

            const int phase = basic_infeasible() ? 1 : 2;
            const std::size_t enter = price(phase, bland);
            if (enter == total_) {
                // Never trust a verdict reached on a stale eta file: rebuild,
                // recompute, and re-price once before declaring.
                if (updates_since_factor_ > 0 && confirm_passes < 2) {
                    ++confirm_passes;
                    if (!factorize()) return Verdict::kStall;
                    compute_basic_solution();
                    continue;
                }
                return phase == 1 ? Verdict::kInfeasible : Verdict::kOptimal;
            }
            confirm_passes = 0;

            const double dir = ws_.vstat[enter] == kAtLower ? 1.0 : -1.0;
            load_column(enter, ws_.col);
            ftran(ws_.col);
            const Ratio ratio = ratio_test(enter, dir, phase, bland);
            if (!std::isfinite(ratio.step)) {
                // Phase 1 minimizes a function bounded below by zero, so an
                // unblocked ray there is a numerical artifact, not a proof.
                return phase == 2 ? Verdict::kUnbounded : Verdict::kStall;
            }

            const double t = ratio.step;
            if (t > 0.0) {
                for (std::size_t r = 0; r < m_; ++r) {
                    if (ws_.col[r] == 0.0) continue;
                    ws_.x[static_cast<std::size_t>(ws_.basic[r])] -=
                        dir * ws_.col[r] * t;
                }
            }
            if (ratio.flip) {
                ws_.x[enter] =
                    ws_.vstat[enter] == kAtLower ? ws_.upper[enter] : ws_.lower[enter];
                ws_.vstat[enter] = ws_.vstat[enter] == kAtLower ? kAtUpper : kAtLower;
            } else {
                ws_.x[enter] = ws_.vstat[enter] == kAtLower ? ws_.lower[enter] + t
                                                            : ws_.upper[enter] - t;
                const auto leave = static_cast<std::size_t>(ws_.basic[ratio.leave_row]);
                ws_.x[leave] = ratio.leave_at_upper ? ws_.upper[leave] : ws_.lower[leave];
                ws_.vstat[leave] = ratio.leave_at_upper ? kAtUpper : kAtLower;
                ws_.vstat[enter] = kBasic;
                ws_.basic[ratio.leave_row] = static_cast<std::int32_t>(enter);
                ws_.pos[leave] = -1;
                ws_.pos[enter] = static_cast<std::int32_t>(ratio.leave_row);
                append_eta(ws_.col, ratio.leave_row);
            }
            ++updates_since_factor_;  // flips also update x incrementally
            ++iterations;
            degenerate_run = t > kEps ? 0 : degenerate_run + 1;
            if (degenerate_run > bland_threshold) bland = true;

            // Count pivots since the last rebuild, NOT the eta-file length:
            // the file starts at one eta per structural basic after a warm
            // reload, and measuring it would re-trigger a full factorization
            // on every pivot whenever that reload exceeds the interval.
            if (updates_since_factor_ >=
                static_cast<std::int64_t>(std::max(1, options_.refactor_interval))) {
                if (!factorize()) return Verdict::kStall;
                compute_basic_solution();
            }
        }
    }

    // ---- solution handling ---------------------------------------------

    void extract(LpResult& result) const {
        result.values.assign(n_, 0.0);
        for (std::size_t j = 0; j < n_; ++j) {
            double xj = ws_.x[j];
            // Snap round-off just outside a bound back onto it; larger
            // violations are left visible for the verification gate.
            const double tol = kFeasTol * (1.0 + std::abs(xj));
            if (xj < ws_.lower[j] && xj > ws_.lower[j] - tol) {
                xj = ws_.lower[j];
            } else if (xj > ws_.upper[j] && xj < ws_.upper[j] + tol) {
                xj = ws_.upper[j];
            }
            result.values[j] = xj;
        }
        double obj = ctx_.objective_constant();
        for (std::size_t j = 0; j < n_; ++j) {
            obj += ctx_.objective()[j] * result.values[j];
        }
        result.objective = ctx_.sense_sign() * obj;
    }

    // Row duals lambda = B^-T c_B and structural reduced costs
    // d_j = c_j - lambda' A_j at the optimum, exported in the model's own
    // objective sense. The eta file is fresh here (every verdict is
    // confirmed on a rebuilt factorization), so this is one BTRAN plus one
    // pricing-style pass over the columns.
    void export_duals(LpResult& result) const {
        ws_.y.assign(m_, 0.0);
        for (std::size_t r = 0; r < m_; ++r) {
            const auto v = static_cast<std::size_t>(ws_.basic[r]);
            ws_.y[r] = v < n_ ? ctx_.objective()[v] : 0.0;
        }
        btran(ws_.y);
        result.duals.resize(m_);
        for (std::size_t r = 0; r < m_; ++r) {
            result.duals[r] = ctx_.sense_sign() * ws_.y[r];
        }
        result.reduced_costs.resize(n_);
        for (std::size_t j = 0; j < n_; ++j) {
            result.reduced_costs[j] =
                ctx_.sense_sign() * (ctx_.objective()[j] - dot_column(j, ws_.y));
        }
    }

    // Constraint-only gate on warm results: row activities recomputed from
    // the CSC matrix directly, independent of any solver state.
    [[nodiscard]] bool verify_point(const std::vector<double>& values) const {
        constexpr double kGuardTol = 1e-6;
        for (std::size_t j = 0; j < n_; ++j) {
            const double tol = kGuardTol * (1.0 + std::abs(values[j]));
            if (values[j] < ws_.lower[j] - tol || values[j] > ws_.upper[j] + tol) {
                return false;
            }
        }
        std::vector<double> activity(m_, 0.0);
        for (std::size_t j = 0; j < n_; ++j) {
            const double xj = values[j];
            if (xj == 0.0) continue;
            const auto begin = static_cast<std::size_t>(ctx_.col_start()[j]);
            const auto end = static_cast<std::size_t>(ctx_.col_start()[j + 1]);
            for (std::size_t i = begin; i < end; ++i) {
                activity[static_cast<std::size_t>(ctx_.row_idx()[i])] +=
                    ctx_.values()[i] * xj;
            }
        }
        for (std::size_t i = 0; i < m_; ++i) {
            const double rhs = ctx_.rhs()[i];
            const double tol = kGuardTol * (1.0 + std::abs(rhs));
            switch (ctx_.row_sense()[i]) {
                case Sense::kLe:
                    if (activity[i] > rhs + tol) return false;
                    break;
                case Sense::kGe:
                    if (activity[i] < rhs - tol) return false;
                    break;
                case Sense::kEq:
                    if (std::abs(activity[i] - rhs) > tol) return false;
                    break;
            }
        }
        return true;
    }

    void export_basis(Basis& out) const {
        out.basic.assign(ws_.basic.begin(), ws_.basic.end());
        out.at_upper.assign(total_, 0);
        for (std::size_t j = 0; j < total_; ++j) {
            if (ws_.vstat[j] == kAtUpper) out.at_upper[j] = 1;
        }
        out.columns = static_cast<std::uint32_t>(total_);
        out.pivot_slot.clear();  // eta bases carry no LU pivot order
        out.pivot_row.clear();
    }

    const LpContext& ctx_;
    LpWorkspace& ws_;
    const LpOptions& options_;
    const std::size_t n_;
    const std::size_t m_;
    const std::size_t total_;
    const std::chrono::steady_clock::time_point deadline_;
    std::int64_t updates_since_factor_ = 0;
    std::int64_t factor_etas_ = 0;
    mutable std::int64_t crash_infeasible_ = -1;  // lazily computed, then cached
};

}  // namespace

namespace detail {

LpResult solve_eta_kernel(const LpContext& ctx, std::span<const double> lower,
                          std::span<const double> upper, const LpOptions& options,
                          LpWorkspace& ws) {
    EtaSimplex simplex(ctx, lower, upper, options, ws);
    return simplex.run();
}

}  // namespace detail

}  // namespace hermes::milp
