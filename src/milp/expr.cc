#include "milp/expr.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace hermes::milp {

namespace {
constexpr double kZeroTolerance = 1e-12;

void drop_zeros(std::vector<Term>& terms) {
    terms.erase(std::remove_if(terms.begin(), terms.end(),
                               [](const Term& t) {
                                   return std::abs(t.coef) < kZeroTolerance;
                               }),
                terms.end());
}

// Merges two sorted term lists, combining equal variables.
std::vector<Term> merge_terms(const std::vector<Term>& a, const std::vector<Term>& b,
                              double b_scale) {
    std::vector<Term> out;
    out.reserve(a.size() + b.size());
    std::size_t i = 0;
    std::size_t j = 0;
    while (i < a.size() || j < b.size()) {
        if (j == b.size() || (i < a.size() && a[i].var < b[j].var)) {
            out.push_back(a[i++]);
        } else if (i == a.size() || b[j].var < a[i].var) {
            out.push_back(Term{b[j].var, b_scale * b[j].coef});
            ++j;
        } else {
            out.push_back(Term{a[i].var, a[i].coef + b_scale * b[j].coef});
            ++i;
            ++j;
        }
    }
    drop_zeros(out);
    return out;
}
}  // namespace

LinExpr LinExpr::term(VarId v, double coef) {
    LinExpr e;
    e.add_term(v, coef);
    return e;
}

void LinExpr::add_term(VarId v, double coef) {
    if (v < 0) throw std::invalid_argument("LinExpr::add_term: negative variable id");
    if (std::abs(coef) < kZeroTolerance) return;
    // Sorted insert keeps the invariant without re-sorting.
    const auto it = std::lower_bound(
        terms_.begin(), terms_.end(), v,
        [](const Term& t, VarId target) { return t.var < target; });
    if (it != terms_.end() && it->var == v) {
        it->coef += coef;
        if (std::abs(it->coef) < kZeroTolerance) terms_.erase(it);
    } else {
        terms_.insert(it, Term{v, coef});
    }
}

LinExpr& LinExpr::operator+=(const LinExpr& rhs) {
    constant_ += rhs.constant_;
    terms_ = merge_terms(terms_, rhs.terms_, 1.0);
    return *this;
}

LinExpr& LinExpr::operator-=(const LinExpr& rhs) {
    constant_ -= rhs.constant_;
    terms_ = merge_terms(terms_, rhs.terms_, -1.0);
    return *this;
}

LinExpr& LinExpr::operator*=(double scale) {
    constant_ *= scale;
    for (Term& t : terms_) t.coef *= scale;
    drop_zeros(terms_);
    return *this;
}

double LinExpr::coefficient(VarId v) const noexcept {
    const auto it = std::lower_bound(
        terms_.begin(), terms_.end(), v,
        [](const Term& t, VarId target) { return t.var < target; });
    if (it != terms_.end() && it->var == v) return it->coef;
    return 0.0;
}

double LinExpr::evaluate(const std::vector<double>& values) const {
    double total = constant_;
    for (const Term& t : terms_) {
        if (static_cast<std::size_t>(t.var) >= values.size()) {
            throw std::out_of_range("LinExpr::evaluate: assignment too short");
        }
        total += t.coef * values[static_cast<std::size_t>(t.var)];
    }
    return total;
}

LinExpr operator+(LinExpr lhs, const LinExpr& rhs) {
    lhs += rhs;
    return lhs;
}

LinExpr operator-(LinExpr lhs, const LinExpr& rhs) {
    lhs -= rhs;
    return lhs;
}

LinExpr operator*(double scale, LinExpr expr) {
    expr *= scale;
    return expr;
}

LinExpr operator*(LinExpr expr, double scale) {
    expr *= scale;
    return expr;
}

}  // namespace hermes::milp
