// Seed dense-tableau LP kernel, retained verbatim for equivalence testing
// and dense-vs-revised benchmarking. See simplex_reference.h.
#include "milp/simplex_reference.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace hermes::milp::reference {

namespace {

constexpr double kEps = 1e-9;
constexpr double kFeasTol = 1e-7;

// Dense tableau: `rows` x `cols` where the last column is the rhs.
class Tableau {
public:
    Tableau(std::size_t rows, std::size_t cols)
        : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

    [[nodiscard]] double& at(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
    [[nodiscard]] double at(std::size_t r, std::size_t c) const {
        return data_[r * cols_ + c];
    }
    [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
    [[nodiscard]] std::size_t cols() const noexcept { return cols_; }

    // Gauss-Jordan pivot on (pr, pc). `scratch` receives the nonzero columns
    // of the pivot row so every elimination touches only those entries — the
    // P#1 matrices are sparse enough that this is the difference between
    // O(rows·cols) and O(rows·nnz) per pivot.
    void pivot(std::size_t pr, std::size_t pc, std::vector<double>& cost_row,
               double& cost_rhs, std::vector<std::size_t>& scratch) {
        double* prow = &data_[pr * cols_];
        const double p = prow[pc];
        scratch.clear();
        for (std::size_t c = 0; c < cols_; ++c) {
            if (prow[c] == 0.0) continue;  // structural zero: skip everywhere below
            prow[c] /= p;
            scratch.push_back(c);
        }
        prow[pc] = 1.0;
        for (std::size_t r = 0; r < rows_; ++r) {
            if (r == pr) continue;
            double* row = &data_[r * cols_];
            const double f = row[pc];
            if (f == 0.0) continue;
            if (std::abs(f) >= kEps) {
                for (const std::size_t c : scratch) row[c] -= f * prow[c];
            }
            row[pc] = 0.0;  // exact unit pivot column
        }
        const double cf = cost_row[pc];
        if (std::abs(cf) >= kEps) {
            for (const std::size_t c : scratch) {
                if (c < cols_ - 1) cost_row[c] -= cf * prow[c];
            }
            cost_rhs -= cf * prow[cols_ - 1];
        }
        cost_row[pc] = 0.0;  // exact, avoids round-off residue on the pivot column
    }

private:
    std::size_t rows_;
    std::size_t cols_;
    std::vector<double> data_;
};

// Standard form with a layout that depends only on the model's shape
// (constraint senses and which variables have finite upper bounds), never on
// rhs signs: one slack/surplus column per inequality and one artificial
// column per row. Bound changes between branch-and-bound nodes therefore
// keep the column space identical, which is what makes a parent basis
// meaningful for a child solve.
struct StandardForm {
    Tableau tableau{0, 0};
    std::vector<std::size_t> basis;       // basis[r] = column basic in row r
    std::vector<bool> usable;             // columns allowed to enter (false = artificial)
    std::size_t structural_count = 0;     // shifted model variables
    std::size_t artificial_begin = 0;     // first artificial column
    std::vector<double> shift;            // lb per model variable
    std::vector<double> costs;            // phase-2 cost per column (structural only)
    double objective_constant = 0.0;      // folded objective constant
    bool negate_result = false;           // true for maximization models
};

StandardForm build(const Model& model) {
    const std::size_t n = model.variable_count();
    StandardForm sf;
    sf.shift.resize(n);
    for (std::size_t j = 0; j < n; ++j) {
        const Variable& v = model.variable(static_cast<VarId>(j));
        if (!std::isfinite(v.lower)) {
            throw std::invalid_argument("solve_lp: variable '" + v.name +
                                        "' has non-finite lower bound");
        }
        sf.shift[j] = v.lower;
    }

    // Row list: model constraints (rhs adjusted by shifts) + upper-bound rows.
    struct Row {
        std::vector<Term> terms;
        Sense sense;
        double rhs;
    };
    std::vector<Row> rows;
    rows.reserve(model.constraint_count() + n);
    for (const Constraint& c : model.constraints()) {
        double rhs = c.rhs;
        for (const Term& t : c.expr.terms()) {
            rhs -= t.coef * sf.shift[static_cast<std::size_t>(t.var)];
        }
        rows.push_back(Row{c.expr.terms(), c.sense, rhs});
    }
    for (std::size_t j = 0; j < n; ++j) {
        const Variable& v = model.variable(static_cast<VarId>(j));
        if (!std::isfinite(v.upper)) continue;
        rows.push_back(Row{{Term{static_cast<VarId>(j), 1.0}}, Sense::kLe,
                           v.upper - v.lower});
    }

    std::size_t slack_count = 0;
    for (const Row& r : rows) {
        if (r.sense != Sense::kEq) ++slack_count;  // slack or surplus
    }

    const std::size_t m = rows.size();
    sf.structural_count = n;
    sf.artificial_begin = n + slack_count;
    const std::size_t total_cols = n + slack_count + m + 1;
    sf.tableau = Tableau(m, total_cols);
    sf.basis.assign(m, 0);
    sf.usable.assign(total_cols - 1, true);

    std::size_t next_slack = n;
    for (std::size_t r = 0; r < m; ++r) {
        for (const Term& t : rows[r].terms) {
            sf.tableau.at(r, static_cast<std::size_t>(t.var)) += t.coef;
        }
        sf.tableau.at(r, total_cols - 1) = rows[r].rhs;
        std::size_t slack_col = total_cols;
        if (rows[r].sense != Sense::kEq) {
            slack_col = next_slack++;
            sf.tableau.at(r, slack_col) = rows[r].sense == Sense::kLe ? 1.0 : -1.0;
        }
        if (rows[r].rhs < 0.0) {
            // Normalize rhs >= 0 by scaling the row; the column layout is
            // untouched, only the starting basis choice below changes.
            for (std::size_t c = 0; c < total_cols; ++c) {
                sf.tableau.at(r, c) = -sf.tableau.at(r, c);
            }
        }
        const std::size_t art_col = sf.artificial_begin + r;
        sf.tableau.at(r, art_col) = 1.0;
        sf.basis[r] = (slack_col != total_cols && sf.tableau.at(r, slack_col) > 0.0)
                          ? slack_col
                          : art_col;
    }
    for (std::size_t c = sf.artificial_begin; c < total_cols - 1; ++c) {
        sf.usable[c] = false;  // artificials may never re-enter
    }

    // Phase-2 costs (minimization sense).
    sf.costs.assign(total_cols - 1, 0.0);
    const double sign = model.is_minimization() ? 1.0 : -1.0;
    sf.negate_result = !model.is_minimization();
    sf.objective_constant = sign * model.objective().constant();
    for (const Term& t : model.objective().terms()) {
        sf.costs[static_cast<std::size_t>(t.var)] = sign * t.coef;
        sf.objective_constant += sign * t.coef * sf.shift[static_cast<std::size_t>(t.var)];
    }
    return sf;
}

enum class PivotOutcome { kOptimal, kUnbounded, kIterationLimit };

// Runs the simplex pivot loop on `sf` for the given cost row. `allow_enter`
// masks columns that may enter (artificials always excluded).
PivotOutcome run_simplex(StandardForm& sf, std::vector<double>& cost_row, double& cost_rhs,
                         const std::vector<bool>& allow_enter, std::int64_t& iterations,
                         std::int64_t max_iterations,
                         std::chrono::steady_clock::time_point deadline,
                         std::vector<std::size_t>& scratch) {
    Tableau& t = sf.tableau;
    const std::size_t rhs_col = t.cols() - 1;
    const std::int64_t bland_threshold = 4 * static_cast<std::int64_t>(
        t.rows() + t.cols());  // switch to Bland to kill cycles
    std::int64_t local_iterations = 0;

    while (true) {
        if (iterations >= max_iterations) return PivotOutcome::kIterationLimit;
        if ((local_iterations & 63) == 0 &&
            std::chrono::steady_clock::now() > deadline) {
            return PivotOutcome::kIterationLimit;
        }

        // Entering column.
        std::size_t enter = rhs_col;
        if (local_iterations < bland_threshold) {
            double best = -kEps;
            for (std::size_t c = 0; c < rhs_col; ++c) {
                if (!allow_enter[c]) continue;
                if (cost_row[c] < best) {
                    best = cost_row[c];
                    enter = c;
                }
            }
        } else {
            for (std::size_t c = 0; c < rhs_col; ++c) {
                if (allow_enter[c] && cost_row[c] < -kEps) {
                    enter = c;
                    break;
                }
            }
        }
        if (enter == rhs_col) return PivotOutcome::kOptimal;

        // Leaving row: min-ratio, ties by smallest basis column (Bland-safe).
        std::size_t leave = t.rows();
        double best_ratio = 0.0;
        for (std::size_t r = 0; r < t.rows(); ++r) {
            const double a = t.at(r, enter);
            if (a <= kEps) continue;
            const double ratio = t.at(r, rhs_col) / a;
            if (leave == t.rows() || ratio < best_ratio - kEps ||
                (ratio < best_ratio + kEps && sf.basis[r] < sf.basis[leave])) {
                best_ratio = ratio;
                leave = r;
            }
        }
        if (leave == t.rows()) return PivotOutcome::kUnbounded;

        t.pivot(leave, enter, cost_row, cost_rhs, scratch);
        sf.basis[leave] = enter;
        ++iterations;
        ++local_iterations;
    }
}

// Recomputes phase-2 reduced costs for the current basis.
void phase2_costs(const StandardForm& sf, std::vector<double>& cost_row,
                  double& cost_rhs) {
    const Tableau& t = sf.tableau;
    const std::size_t rhs_col = t.cols() - 1;
    cost_row.assign(rhs_col, 0.0);
    for (std::size_t c = 0; c < rhs_col; ++c) cost_row[c] = sf.costs[c];
    cost_rhs = 0.0;
    for (std::size_t r = 0; r < t.rows(); ++r) {
        const double cb = sf.costs[sf.basis[r]];
        if (std::abs(cb) < kEps) continue;
        for (std::size_t c = 0; c < rhs_col; ++c) cost_row[c] -= cb * t.at(r, c);
        cost_rhs -= cb * t.at(r, rhs_col);
    }
    for (std::size_t r = 0; r < t.rows(); ++r) cost_row[sf.basis[r]] = 0.0;
}

// Re-establishes a parent basis on a freshly built tableau by pivoting each
// basic column into place (largest-pivot row choice for stability). Returns
// false when the basis does not fit this standard form or turns out
// singular — the caller then takes the cold path.
bool refactorize(StandardForm& sf, const Basis& warm, std::int64_t& iterations,
                 std::vector<std::size_t>& scratch) {
    Tableau& t = sf.tableau;
    const std::size_t rhs_col = t.cols() - 1;
    if (warm.basic.size() != t.rows() || warm.columns != rhs_col) return false;
    std::vector<double> no_cost(rhs_col, 0.0);
    double no_rhs = 0.0;
    std::vector<char> placed(t.rows(), 0);
    // Slack/artificial basis columns first: on a fresh tableau each is still
    // a one-entry unit vector, so pivoting it in scales one row and triggers
    // no elimination. Only the (few) structural basic columns that follow
    // pay for real Gauss-Jordan work.
    std::vector<std::int32_t> order(warm.basic);
    std::stable_sort(order.begin(), order.end(),
                     [&](std::int32_t a, std::int32_t b) {
                         const bool slack_a =
                             a >= 0 && static_cast<std::size_t>(a) >= sf.structural_count;
                         const bool slack_b =
                             b >= 0 && static_cast<std::size_t>(b) >= sf.structural_count;
                         return slack_a > slack_b;
                     });
    for (const std::int32_t raw : order) {
        if (raw < 0 || static_cast<std::size_t>(raw) >= rhs_col) return false;
        const auto col = static_cast<std::size_t>(raw);
        std::size_t pr = t.rows();
        double best = kFeasTol;  // refuse near-singular pivots
        for (std::size_t r = 0; r < t.rows(); ++r) {
            if (placed[r]) continue;
            const double a = std::abs(t.at(r, col));
            if (a > best) {
                best = a;
                pr = r;
            }
        }
        if (pr == t.rows()) return false;
        t.pivot(pr, col, no_cost, no_rhs, scratch);
        sf.basis[pr] = col;
        placed[pr] = 1;
        ++iterations;
    }
    return true;
}

enum class DualOutcome { kFeasible, kStalled, kIterationLimit };

// Dual simplex repair: drives negative rhs entries out of the basis while
// preserving dual feasibility of `cost_row`. Used after a warm start, where
// a bound change leaves the parent basis optimal in reduced costs but
// primal-infeasible in a handful of rows. Returns kStalled — meaning "give
// up, take the cold two-phase path" — whenever the repair cannot proceed on
// a well-conditioned pivot: a dense refactorized tableau accumulates round-off
// fast, so this path never claims infeasibility itself (pivoting on ~1e-9
// entries was observed to amplify rhs error past 1e20 and mint false
// infeasibility certificates on degenerate P#1 bases). The cold path is the
// only authority for an infeasible verdict.
DualOutcome run_dual(StandardForm& sf, std::vector<double>& cost_row, double& cost_rhs,
                     std::int64_t& iterations, std::int64_t max_iterations,
                     std::chrono::steady_clock::time_point deadline,
                     std::vector<std::size_t>& scratch) {
    Tableau& t = sf.tableau;
    const std::size_t rhs_col = t.cols() - 1;
    const std::int64_t stall_cap = 4 * static_cast<std::int64_t>(t.rows() + t.cols());
    constexpr double kRunawayRhs = 1e13;  // corrupted-tableau detector
    std::int64_t local = 0;
    while (true) {
        if (iterations >= max_iterations) return DualOutcome::kIterationLimit;
        if ((local & 63) == 0 && std::chrono::steady_clock::now() > deadline) {
            return DualOutcome::kIterationLimit;
        }
        if (local >= stall_cap) return DualOutcome::kStalled;

        // Leaving row: most negative rhs, ties by smallest basis column.
        std::size_t leave = t.rows();
        double best_b = -kFeasTol;
        for (std::size_t r = 0; r < t.rows(); ++r) {
            const double b = t.at(r, rhs_col);
            if (b >= -kFeasTol) continue;
            if (leave == t.rows() || b < best_b - kEps ||
                (b < best_b + kEps && sf.basis[r] < sf.basis[leave])) {
                best_b = std::min(best_b, b);
                leave = r;
            }
        }
        if (leave == t.rows()) return DualOutcome::kFeasible;
        if (best_b < -kRunawayRhs) return DualOutcome::kStalled;

        // Entering column: dual ratio test over well-conditioned negative
        // entries of the row; ratio ties prefer the largest-magnitude pivot.
        std::size_t enter = rhs_col;
        double best_ratio = 0.0;
        double best_mag = 0.0;
        for (std::size_t c = 0; c < rhs_col; ++c) {
            if (!sf.usable[c]) continue;
            const double a = t.at(leave, c);
            if (a >= -kFeasTol) continue;  // refuse near-singular dual pivots
            const double ratio = std::max(cost_row[c], 0.0) / -a;
            if (enter == rhs_col || ratio < best_ratio - kEps ||
                (std::abs(ratio - best_ratio) <= kEps && -a > best_mag)) {
                best_ratio = ratio;
                best_mag = -a;
                enter = c;
            }
        }
        if (enter == rhs_col) return DualOutcome::kStalled;

        t.pivot(leave, enter, cost_row, cost_rhs, scratch);
        sf.basis[leave] = enter;
        ++iterations;
        ++local;
    }
}

// Constraint-only feasibility (bounds and rows, no integrality): the final
// gate on a warm-started solve. A repair that drifted numerically can reach
// "optimal" on a tableau that no longer represents the model; the result is
// only trusted when the extracted point satisfies the model directly.
bool satisfies_constraints(const Model& model, const std::vector<double>& values) {
    constexpr double kGuardTol = 1e-6;
    for (std::size_t j = 0; j < model.variable_count(); ++j) {
        const Variable& v = model.variable(static_cast<VarId>(j));
        const double tol = kGuardTol * (1.0 + std::abs(values[j]));
        if (values[j] < v.lower - tol || values[j] > v.upper + tol) return false;
    }
    for (const Constraint& c : model.constraints()) {
        const double lhs = c.expr.evaluate(values);
        const double tol = kGuardTol * (1.0 + std::abs(c.rhs));
        switch (c.sense) {
            case Sense::kLe:
                if (lhs > c.rhs + tol) return false;
                break;
            case Sense::kGe:
                if (lhs < c.rhs - tol) return false;
                break;
            case Sense::kEq:
                if (std::abs(lhs - c.rhs) > tol) return false;
                break;
        }
    }
    return true;
}

}  // namespace

LpResult solve_lp(const Model& model, const LpOptions& options) {
    const std::int64_t max_iterations = options.iteration_limit;
    const double max_seconds = options.time_limit_seconds;
    const Basis* const warm_basis = options.warm_basis;
    const auto deadline =
        max_seconds >= 1e17
            ? std::chrono::steady_clock::time_point::max()
            : std::chrono::steady_clock::now() +
                  std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                      std::chrono::duration<double>(max_seconds));
    LpResult result;
    std::vector<std::size_t> scratch;
    std::vector<double> cost_row;

    // Two attempts at most: a warm-started dual repair first (when a parent
    // basis is supplied), then the authoritative cold two-phase solve. The
    // warm attempt may only return kOptimal, and only after its solution
    // verifies against the model; every other outcome — refactorization
    // failure, repair stall, or a point that fails the constraint gate —
    // falls through to the cold attempt.
    const bool have_warm = warm_basis != nullptr && !warm_basis->empty();
    for (int attempt = have_warm ? 0 : 1; attempt < 2; ++attempt) {
        const bool warm_attempt = attempt == 0;
        StandardForm sf = build(model);
        Tableau& t = sf.tableau;
        const std::size_t rhs_col = t.cols() - 1;
        scratch.reserve(t.cols());
        double cost_rhs = 0.0;

        if (warm_attempt) {
            if (!refactorize(sf, *warm_basis, result.iterations, scratch)) continue;
            phase2_costs(sf, cost_row, cost_rhs);
            const DualOutcome repair = run_dual(sf, cost_row, cost_rhs, result.iterations,
                                                max_iterations, deadline, scratch);
            if (repair == DualOutcome::kIterationLimit) {
                result.status = LpStatus::kIterationLimit;
                return result;
            }
            if (repair == DualOutcome::kStalled) continue;  // cold path decides
        } else {
            // ---- Phase 1: minimize the sum of artificials. ----
            cost_row.assign(rhs_col, 0.0);
            cost_rhs = 0.0;
            // Reduced costs for cost vector e_artificials with artificial basis:
            // subtract each artificial-basic row from the cost row.
            for (std::size_t r = 0; r < t.rows(); ++r) {
                if (sf.basis[r] < sf.artificial_begin) continue;
                for (std::size_t c = 0; c < rhs_col; ++c) cost_row[c] -= t.at(r, c);
                cost_rhs -= t.at(r, rhs_col);
            }
            for (std::size_t c = sf.artificial_begin; c < rhs_col; ++c) cost_row[c] = 0.0;

            const PivotOutcome phase1 =
                run_simplex(sf, cost_row, cost_rhs, sf.usable, result.iterations,
                            max_iterations, deadline, scratch);
            if (phase1 == PivotOutcome::kIterationLimit) {
                result.status = LpStatus::kIterationLimit;
                return result;
            }
            if (-cost_rhs > kFeasTol) {  // phase-1 objective = -cost_rhs after pivots
                result.status = LpStatus::kInfeasible;
                return result;
            }

            // Drive any residual basic artificials out of the basis.
            for (std::size_t r = 0; r < t.rows(); ++r) {
                if (sf.basis[r] < sf.artificial_begin) continue;
                std::size_t enter = rhs_col;
                for (std::size_t c = 0; c < sf.artificial_begin; ++c) {
                    if (std::abs(t.at(r, c)) > kEps) {
                        enter = c;
                        break;
                    }
                }
                if (enter == rhs_col) continue;  // redundant row; harmless to keep
                t.pivot(r, enter, cost_row, cost_rhs, scratch);
                sf.basis[r] = enter;
            }

            phase2_costs(sf, cost_row, cost_rhs);
        }

        // ---- Phase 2: original objective (also the warm-start polish). ----
        const PivotOutcome phase2 = run_simplex(sf, cost_row, cost_rhs, sf.usable,
                                                result.iterations, max_iterations,
                                                deadline, scratch);
        if (phase2 == PivotOutcome::kIterationLimit) {
            result.status = LpStatus::kIterationLimit;
            return result;
        }
        if (phase2 == PivotOutcome::kUnbounded) {
            if (warm_attempt) continue;  // cold path decides
            result.status = LpStatus::kUnbounded;
            return result;
        }

        // Extract solution: basic shifted vars read from rhs, others at 0.
        result.values.assign(model.variable_count(), 0.0);
        for (std::size_t r = 0; r < t.rows(); ++r) {
            if (sf.basis[r] < sf.structural_count) {
                result.values[sf.basis[r]] = t.at(r, rhs_col);
            }
        }
        for (std::size_t j = 0; j < model.variable_count(); ++j) {
            result.values[j] += sf.shift[j];
        }
        if (warm_attempt && !satisfies_constraints(model, result.values)) {
            result.values.clear();
            continue;  // drifted repair; redo cold
        }
        // Objective evaluated at the extracted point: immune to the round-off
        // that cost_rhs accumulates over the pivot sequence.
        result.objective = model.objective_value(result.values);
        result.status = LpStatus::kOptimal;
        result.warm_used = warm_attempt;

        result.basis.basic.reserve(t.rows());
        for (std::size_t r = 0; r < t.rows(); ++r) {
            result.basis.basic.push_back(static_cast<std::int32_t>(sf.basis[r]));
        }
        result.basis.columns = static_cast<std::uint32_t>(rhs_col);
        return result;
    }
    // Unreachable: the cold attempt always returns.
    result.status = LpStatus::kIterationLimit;
    return result;
}

}  // namespace hermes::milp::reference
