#include "milp/branching.h"

#include <algorithm>
#include <cmath>

namespace hermes::milp {

namespace {
// Floor for a direction estimate so one near-zero observation cannot zero
// out the whole product score.
constexpr double kScoreEps = 1e-6;
}  // namespace

void PseudocostTable::record(VarId var, bool up, double distance, double gain) {
    if (var < 0 || static_cast<std::size_t>(var) >= entries_.size()) return;
    if (!(distance > 1e-9)) return;  // degenerate branch, nothing to learn
    const double per_unit = std::max(0.0, gain) / distance;
    if (!std::isfinite(per_unit)) return;
    const std::lock_guard lk(mu_);
    Entry& e = entries_[static_cast<std::size_t>(var)];
    e.sum[up ? 1 : 0] += per_unit;
    ++e.count[up ? 1 : 0];
    total_sum_ += per_unit;
    ++total_count_;
}

double PseudocostTable::estimate(VarId var, bool up) const {
    const std::lock_guard lk(mu_);
    const Entry& e = entries_[static_cast<std::size_t>(var)];
    const int dir = up ? 1 : 0;
    if (e.count[dir] > 0) return e.sum[dir] / e.count[dir];
    if (total_count_ > 0) return total_sum_ / static_cast<double>(total_count_);
    return 1.0;
}

int PseudocostTable::observations(VarId var, bool up) const {
    const std::lock_guard lk(mu_);
    return entries_[static_cast<std::size_t>(var)].count[up ? 1 : 0];
}

std::optional<VarId> PseudocostTable::select(const Model& model,
                                             const std::vector<double>& values,
                                             double tolerance) const {
    std::optional<VarId> best;
    double best_score = -1.0;
    const std::lock_guard lk(mu_);
    const double fallback =
        total_count_ > 0 ? total_sum_ / static_cast<double>(total_count_) : 1.0;
    for (std::size_t j = 0; j < model.variable_count(); ++j) {
        const Variable& v = model.variable(static_cast<VarId>(j));
        if (v.type == VarType::kContinuous) continue;
        const double x = values[j];
        const double f = x - std::floor(x);
        if (f <= tolerance || f >= 1.0 - tolerance) continue;
        const Entry& e = entries_[j];
        const double down =
            e.count[0] > 0 ? e.sum[0] / e.count[0] : fallback;
        const double up = e.count[1] > 0 ? e.sum[1] / e.count[1] : fallback;
        // The floor is applied to each directional estimate, not the whole
        // factor, so the fractional distances always stay in the score: a
        // degenerate root (every probe reporting zero degradation — common
        // at the 0.5-heavy vertices the LU kernel's Devex path lands on)
        // then reduces to the most-fractional rule instead of collapsing
        // every candidate onto the same eps^2 score, which would turn
        // selection into branching by lowest id and blow the tree up.
        const double score = std::max(kScoreEps, down) * f *
                             std::max(kScoreEps, up) * (1.0 - f);
        // Strict >: equal scores keep the earlier (lowest-id) candidate, so
        // selection is deterministic for any observation interleaving.
        if (score > best_score) {
            best_score = score;
            best = static_cast<VarId>(j);
        }
    }
    return best;
}

}  // namespace hermes::milp
