// The default LP kernel: revised primal simplex over the sparse LU basis
// factorization in milp/lu.h, with Forrest-Tomlin updates per pivot, Devex
// candidate-list pricing maintained incrementally from the BTRANed pivot
// row, and a long-step (bound-flipping) phase-1 ratio test. The warm/cold
// attempt protocol — crossed-bound rejection, crash gate, pivot budget,
// confirm-before-declare, constraint re-verification — is shared verbatim
// with the retained eta kernel (simplex_eta.cc); see simplex.h for the
// solver-level contract and DESIGN.md 5e for the numbers behind the knobs.
//
// This file also owns LpContext construction (CSC columns plus the CSR
// mirror the pricing update scatters through) and the kernel dispatch.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <utility>

#include "milp/simplex.h"

namespace hermes::milp {

namespace {

constexpr double kEps = 1e-9;       // reduced-cost / ratio tie tolerance
constexpr double kFeasTol = 1e-7;   // primal bound feasibility
constexpr double kPivTol = 1e-7;    // smallest acceptable pivot magnitude
constexpr double kDropTol = 1e-12;  // entries below this are structural zero
constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr std::size_t kCandMax = 64;   // pricing candidate-list capacity
constexpr double kDevexReset = 1e8;    // weight overflow -> reset framework

constexpr std::int8_t kAtLower = 0;
constexpr std::int8_t kAtUpper = 1;
constexpr std::int8_t kBasic = 2;

[[nodiscard]] std::chrono::steady_clock::time_point make_deadline(double max_seconds) {
    if (max_seconds <= 0.0 || max_seconds >= 1e17) {
        return std::chrono::steady_clock::time_point::max();  // no budget
    }
    return std::chrono::steady_clock::now() +
           std::chrono::duration_cast<std::chrono::steady_clock::duration>(
               std::chrono::duration<double>(max_seconds));
}

// One solve attempt-pair (warm then cold) over an LpContext. Slots are
// stable basis positions (x_B[slot] belongs to basic[slot]); a pivot swaps
// the variable in one slot and applies a Forrest-Tomlin update, never
// renumbering the others.
class LuSimplex {
public:
    LuSimplex(const LpContext& ctx, std::span<const double> lower,
              std::span<const double> upper, const LpOptions& options,
              LpWorkspace& ws)
        : ctx_(ctx),
          ws_(ws),
          options_(options),
          n_(ctx.structurals()),
          m_(ctx.rows()),
          total_(ctx.structurals() + ctx.rows()),
          deadline_(make_deadline(options.time_limit_seconds)) {
        ws_.lower.assign(total_, 0.0);
        ws_.upper.assign(total_, 0.0);
        for (std::size_t j = 0; j < n_; ++j) {
            if (!std::isfinite(lower[j])) {
                throw std::invalid_argument("solve_lp: variable " + std::to_string(j) +
                                            " has non-finite lower bound");
            }
            ws_.lower[j] = lower[j];
            ws_.upper[j] = upper[j];
        }
        for (std::size_t i = 0; i < m_; ++i) {
            switch (ctx_.row_sense()[i]) {
                case Sense::kLe:
                    ws_.lower[n_ + i] = 0.0;
                    ws_.upper[n_ + i] = kInf;
                    break;
                case Sense::kGe:
                    ws_.lower[n_ + i] = -kInf;
                    ws_.upper[n_ + i] = 0.0;
                    break;
                case Sense::kEq:
                    ws_.lower[n_ + i] = 0.0;
                    ws_.upper[n_ + i] = 0.0;
                    break;
            }
        }
        // The alpha scatter (pricing update) relies on alpha being all-zero
        // and unmarked between pivots; establish that across workspace reuse.
        ws_.alpha.assign(total_, 0.0);
        ws_.alist.clear();
        amark_.assign(total_, 0);
    }

    [[nodiscard]] LpResult run() {
        ws_.lu.stats().reset();  // drained per solve, not per factor lifetime
        LpResult result = run_attempts();
        result.factor_etas = factor_ops_;
        result.factor = ws_.lu.stats();
        result.pricing_hits = pricing_hits_;
        result.pricing_rebuilds = pricing_rebuilds_;
        return result;
    }

private:
    [[nodiscard]] LpResult run_attempts() {
        LpResult result;
        // Crossed bounds (branching can produce lower > upper) make the box
        // itself empty; pricing treats negative-range variables as fixed, so
        // reject up front.
        for (std::size_t j = 0; j < total_; ++j) {
            if (ws_.lower[j] >
                ws_.upper[j] + kFeasTol * (1.0 + std::abs(ws_.upper[j]))) {
                result.status = LpStatus::kInfeasible;
                return result;
            }
        }
        const bool have_warm =
            options_.warm_basis != nullptr && !options_.warm_basis->empty();
        const auto abandon = [&](WarmAbandon why) {
            result.warm_abandon = why;
            result.warm_wasted_iterations = result.iterations;
        };
        for (int attempt = have_warm ? 0 : 1; attempt < 2; ++attempt) {
            const bool warm = attempt == 0;
            if (warm) {
                if (!load_warm_basis(*options_.warm_basis)) {
                    abandon(WarmAbandon::kLoad);
                    continue;
                }
            } else {
                load_cold_basis();
            }
            ws_.devex.assign(total_, 1.0);  // fresh reference framework
            ws_.cand.clear();
            need_full_price_ = true;
            if (!factorize_basis()) {
                if (warm) {
                    abandon(WarmAbandon::kFactorize);
                    continue;
                }
                result.status = LpStatus::kIterationLimit;  // numerical give-up
                return result;
            }
            compute_basic_solution();

            if (warm && infeasible_basic_count() > crash_infeasible_count()) {
                // Cost gate: the reloaded basis owes more phase-1 repair than
                // a fresh crash basis would — abandon before burning pivots.
                abandon(WarmAbandon::kGate);
                continue;
            }

            const std::int64_t limit =
                warm ? std::min(options_.iteration_limit,
                                result.iterations + warm_pivot_budget())
                     : options_.iteration_limit;
            const Verdict v = iterate(result.iterations, limit);
            if (v == Verdict::kIterationLimit) {
                if (warm && result.iterations < options_.iteration_limit &&
                    std::chrono::steady_clock::now() <= deadline_ &&
                    !options_.deadline.expired()) {
                    abandon(WarmAbandon::kBudget);
                    continue;  // warm budget exhausted; redo cold
                }
                result.status = LpStatus::kIterationLimit;
                return result;
            }
            if (v == Verdict::kInfeasible) {
                // Sound from a warm basis too: the phase-1 optimality proof
                // is re-priced on a freshly refactorized basis and a
                // from-scratch basic solution (confirm-before-declare).
                result.status = LpStatus::kInfeasible;
                result.warm_used = warm;  // a warm-certified proof is a hit
                return result;
            }
            if (warm && v != Verdict::kOptimal) {
                abandon(WarmAbandon::kVerdict);
                continue;  // cold decides unbounded rays and numerical stalls
            }
            if (v == Verdict::kUnbounded) {
                result.status = LpStatus::kUnbounded;
                return result;
            }
            if (v == Verdict::kStall) {  // cold attempt hit a numerical wall
                result.status = LpStatus::kIterationLimit;
                return result;
            }

            extract(result);
            if (warm && !verify_point(result.values)) {
                result.values.clear();
                abandon(WarmAbandon::kVerify);
                continue;  // drifted warm solve; redo cold
            }
            result.status = LpStatus::kOptimal;
            result.warm_used = warm;
            export_basis(result.basis);
            if (options_.want_dual_values) export_duals(result);
            return result;
        }
        result.status = LpStatus::kIterationLimit;  // unreachable
        return result;
    }

    enum class Verdict { kOptimal, kInfeasible, kUnbounded, kIterationLimit, kStall };

    // ---- basis management ----------------------------------------------

    void load_cold_basis() {
        ws_.basic.resize(m_);
        ws_.vstat.assign(total_, kAtLower);
        for (std::size_t j = 0; j < total_; ++j) {
            if (!std::isfinite(ws_.lower[j])) ws_.vstat[j] = kAtUpper;
        }
        for (std::size_t i = 0; i < m_; ++i) {
            ws_.basic[i] = static_cast<std::int32_t>(n_ + i);
            ws_.vstat[n_ + i] = kBasic;
        }
        pending_hint_ = false;
    }

    [[nodiscard]] bool load_warm_basis(const Basis& warm) {
        if (warm.basic.size() != m_ || warm.columns != total_) return false;
        ws_.vstat.assign(total_, kAtLower);
        if (warm.at_upper.size() == total_) {
            for (std::size_t j = 0; j < total_; ++j) {
                if (warm.at_upper[j]) ws_.vstat[j] = kAtUpper;
            }
        }
        // A nonbasic variable must rest at a finite bound.
        for (std::size_t j = 0; j < total_; ++j) {
            if (ws_.vstat[j] == kAtLower && !std::isfinite(ws_.lower[j])) {
                if (!std::isfinite(ws_.upper[j])) return false;
                ws_.vstat[j] = kAtUpper;
            } else if (ws_.vstat[j] == kAtUpper && !std::isfinite(ws_.upper[j])) {
                ws_.vstat[j] = kAtLower;  // lower is finite for structurals
                if (!std::isfinite(ws_.lower[j])) return false;
            }
        }
        ws_.basic.resize(m_);
        for (std::size_t i = 0; i < m_; ++i) {
            const std::int32_t v = warm.basic[i];
            if (v < 0 || static_cast<std::size_t>(v) >= total_) return false;
            ws_.basic[i] = v;
            ws_.vstat[static_cast<std::size_t>(v)] = kBasic;
        }
        // Replay the parent's pivot order on the first factorization; a
        // stale or missing order degrades to Markowitz selection inside
        // factorize_basis.
        pending_hint_ =
            warm.pivot_slot.size() == m_ && warm.pivot_row.size() == m_;
        return true;
    }

    // (Re)factorizes the current basic set, replaying the warm pivot-order
    // hint at most once. On success the incremental reduced costs are stale
    // (the recomputed basic solution moves x), so a full price is forced.
    [[nodiscard]] bool factorize_basis() {
        bool ok = false;
        if (pending_hint_) {
            pending_hint_ = false;
            ok = ws_.lu.factorize(ctx_, ws_.basic, options_.warm_basis->pivot_slot,
                                  options_.warm_basis->pivot_row);
        }
        if (!ok) ok = ws_.lu.factorize(ctx_, ws_.basic);
        if (!ok) return false;
        factor_ops_ += ws_.lu.ops();
        last_ops_ = ws_.lu.ops();
        updates_since_factor_ = 0;
        need_full_price_ = true;
        return true;
    }

    // Recomputes x from scratch: nonbasic at their bound, basics via a dense
    // FTRAN of the bound-adjusted rhs. Wipes all incremental round-off.
    void compute_basic_solution() {
        ws_.x.assign(total_, 0.0);
        ws_.rhs_work = ctx_.rhs();
        for (std::size_t j = 0; j < total_; ++j) {
            if (ws_.vstat[j] == kBasic) continue;
            const double xj = ws_.vstat[j] == kAtUpper ? ws_.upper[j] : ws_.lower[j];
            ws_.x[j] = xj;
            if (xj == 0.0) continue;
            if (j < n_) {
                const auto begin = static_cast<std::size_t>(ctx_.col_start()[j]);
                const auto end = static_cast<std::size_t>(ctx_.col_start()[j + 1]);
                for (std::size_t i = begin; i < end; ++i) {
                    ws_.rhs_work[static_cast<std::size_t>(ctx_.row_idx()[i])] -=
                        ctx_.values()[i] * xj;
                }
            } else {
                ws_.rhs_work[j - n_] -= xj;
            }
        }
        ws_.lu.ftran_dense(ws_.rhs_work, ws_.col);  // col = x_B by slot
        for (std::size_t slot = 0; slot < m_; ++slot) {
            ws_.x[static_cast<std::size_t>(ws_.basic[slot])] = ws_.col[slot];
        }
    }

    // ---- pricing --------------------------------------------------------

    [[nodiscard]] double cost2(std::size_t v) const {
        return v < n_ ? ctx_.objective()[v] : 0.0;
    }

    // Phase-1 gradient of the sum of primal infeasibilities at basic v.
    [[nodiscard]] double phase1_cost(std::size_t v) const {
        const double xv = ws_.x[v];
        if (xv > ws_.upper[v] + kFeasTol * (1.0 + std::abs(ws_.upper[v]))) return 1.0;
        if (xv < ws_.lower[v] - kFeasTol * (1.0 + std::abs(ws_.lower[v]))) return -1.0;
        return 0.0;
    }

    [[nodiscard]] double dot_column(std::size_t j, const std::vector<double>& y) const {
        if (j >= n_) return y[j - n_];
        double acc = 0.0;
        const auto begin = static_cast<std::size_t>(ctx_.col_start()[j]);
        const auto end = static_cast<std::size_t>(ctx_.col_start()[j + 1]);
        for (std::size_t i = begin; i < end; ++i) {
            acc += ctx_.values()[i] * y[static_cast<std::size_t>(ctx_.row_idx()[i])];
        }
        return acc;
    }

    // Improvement rate of nonbasic j with reduced cost dj (positive =
    // eligible to enter in its free direction).
    [[nodiscard]] double signed_rate(std::size_t j, double dj) const {
        return ws_.vstat[j] == kAtLower ? -dj : dj;
    }

    // Trims cand_pairs_ (score, j) to the kCandMax best and installs them as
    // the standing candidate list.
    void install_candidates() {
        if (cand_pairs_.size() > kCandMax) {
            std::nth_element(cand_pairs_.begin(),
                             cand_pairs_.begin() + static_cast<std::ptrdiff_t>(kCandMax),
                             cand_pairs_.end(),
                             [](const auto& a, const auto& b) { return a.first > b.first; });
            cand_pairs_.resize(kCandMax);
        }
        ws_.cand.clear();
        for (const auto& [score, j] : cand_pairs_) ws_.cand.push_back(j);
    }

    // Full phase-2 price: one dense BTRAN of the basic costs, reduced costs
    // rebuilt for every column, candidate list refilled with the best Devex
    // scores. The only path that may declare phase-2 optimality.
    [[nodiscard]] std::size_t price_full2() {
        ++pricing_rebuilds_;
        need_full_price_ = false;
        ws_.rhs_work.assign(m_, 0.0);
        for (std::size_t slot = 0; slot < m_; ++slot) {
            ws_.rhs_work[slot] = cost2(static_cast<std::size_t>(ws_.basic[slot]));
        }
        ws_.lu.btran_dense(ws_.rhs_work, ws_.y);
        ws_.d.assign(total_, 0.0);
        cand_pairs_.clear();
        std::size_t enter = total_;
        double best_score = 0.0;
        for (std::size_t j = 0; j < total_; ++j) {
            if (ws_.vstat[j] == kBasic) continue;
            if (ws_.upper[j] - ws_.lower[j] <= kDropTol) continue;  // fixed
            const double dj = cost2(j) - dot_column(j, ws_.y);
            ws_.d[j] = dj;
            if (signed_rate(j, dj) <= kEps) continue;
            const double score = dj * dj / ws_.devex[j];
            cand_pairs_.emplace_back(score, static_cast<std::int32_t>(j));
            if (enter == total_ || score > best_score) {
                best_score = score;
                enter = j;
            }
        }
        install_candidates();
        if (enter != total_) enter_d_ = ws_.d[enter];
        return enter;
    }

    // Phase-2 price from the standing candidate list over the incrementally
    // maintained reduced costs; falls back to the full scan when the list
    // runs dry, so a "no entering column" answer always comes from a full
    // rebuild.
    [[nodiscard]] std::size_t price_list2() {
        if (need_full_price_) return price_full2();
        std::size_t enter = total_;
        double best_score = 0.0;
        for (const std::int32_t cj : ws_.cand) {
            const auto j = static_cast<std::size_t>(cj);
            if (ws_.vstat[j] == kBasic) continue;
            if (ws_.upper[j] - ws_.lower[j] <= kDropTol) continue;
            const double dj = ws_.d[j];
            if (signed_rate(j, dj) <= kEps) continue;
            const double score = dj * dj / ws_.devex[j];
            if (enter == total_ || score > best_score) {
                best_score = score;
                enter = j;
            }
        }
        if (enter != total_) {
            ++pricing_hits_;
            enter_d_ = ws_.d[enter];
            return enter;
        }
        return price_full2();
    }

    // Phase-1 price. The infeasibility costs move with every pivot, so the
    // pricing vector is recomputed each call. With few infeasible basics —
    // the warm re-solve regime — the BTRAN runs hypersparse from the +-1
    // seeds and the reduced costs are scattered through only the CSR rows it
    // touched: an exact full price (every untouched column prices to zero)
    // at sparse cost. Past the seed threshold the dense path below takes
    // over, with the candidate list restricting the pricing pass and a full
    // scan (which also refills the list) only when the candidates are all
    // ineligible. Optimality verdicts therefore always rest on a full scan.
    [[nodiscard]] std::size_t price_phase1() {
        p1_slots_.clear();
        p1_vals_.clear();
        for (std::size_t slot = 0; slot < m_; ++slot) {
            const double c = phase1_cost(static_cast<std::size_t>(ws_.basic[slot]));
            if (c != 0.0) {
                p1_slots_.push_back(static_cast<std::int32_t>(slot));
                p1_vals_.push_back(c);
            }
        }
        if (p1_slots_.size() <= std::max<std::size_t>(16, m_ / 5)) {
            return price_phase1_sparse();
        }
        ws_.rhs_work.assign(m_, 0.0);
        for (std::size_t i = 0; i < p1_slots_.size(); ++i) {
            ws_.rhs_work[static_cast<std::size_t>(p1_slots_[i])] = p1_vals_[i];
        }
        ws_.lu.btran_dense(ws_.rhs_work, ws_.y);
        std::size_t enter = total_;
        double best_score = 0.0;
        for (const std::int32_t cj : ws_.cand) {
            const auto j = static_cast<std::size_t>(cj);
            if (ws_.vstat[j] == kBasic) continue;
            if (ws_.upper[j] - ws_.lower[j] <= kDropTol) continue;
            const double dj = -dot_column(j, ws_.y);
            if (signed_rate(j, dj) <= kEps) continue;
            const double score = dj * dj / ws_.devex[j];
            if (enter == total_ || score > best_score) {
                best_score = score;
                enter = j;
                enter_d_ = dj;
            }
        }
        if (enter != total_) {
            ++pricing_hits_;
            return enter;
        }
        ++pricing_rebuilds_;
        cand_pairs_.clear();
        for (std::size_t j = 0; j < total_; ++j) {
            if (ws_.vstat[j] == kBasic) continue;
            if (ws_.upper[j] - ws_.lower[j] <= kDropTol) continue;
            const double dj = -dot_column(j, ws_.y);
            if (signed_rate(j, dj) <= kEps) continue;
            const double score = dj * dj / ws_.devex[j];
            cand_pairs_.emplace_back(score, static_cast<std::int32_t>(j));
            if (enter == total_ || score > best_score) {
                best_score = score;
                enter = j;
                enter_d_ = dj;
            }
        }
        install_candidates();
        return enter;
    }

    // Sparse phase-1 price: hypersparse BTRAN of the +-1 seeds gathered by
    // price_phase1, then a scatter of -y through the touched CSR rows into
    // alpha/alist (dead scratch between pivots). Only columns with a nonzero
    // in a touched row — plus those rows' logicals — can price nonzero, so
    // despite the sparse sweep this is a full exact scan and its "no
    // entering column" verdict is as strong as the dense rebuild's.
    [[nodiscard]] std::size_t price_phase1_sparse() {
        ws_.lu.btran_seeds(p1_slots_, p1_vals_, ws_.yspar, ws_.yslist);
        std::size_t enter = total_;
        double best_score = 0.0;
        const auto consider = [&](std::size_t j, double dj) {
            if (ws_.vstat[j] == kBasic) return;
            if (ws_.upper[j] - ws_.lower[j] <= kDropTol) return;
            if (signed_rate(j, dj) <= kEps) return;
            const double score = dj * dj / ws_.devex[j];
            if (enter == total_ || score > best_score) {
                best_score = score;
                enter = j;
                enter_d_ = dj;
            }
        };
        for (const std::int32_t ri : ws_.yslist) {
            const auto i = static_cast<std::size_t>(ri);
            const double yi = ws_.yspar[i];
            if (yi == 0.0) continue;
            const auto begin = static_cast<std::size_t>(ctx_.row_start()[i]);
            const auto end = static_cast<std::size_t>(ctx_.row_start()[i + 1]);
            for (std::size_t k = begin; k < end; ++k) {
                const auto j = static_cast<std::size_t>(ctx_.row_col()[k]);
                if (!amark_[j]) {
                    amark_[j] = 1;
                    ws_.alist.push_back(static_cast<std::int32_t>(j));
                }
                ws_.alpha[j] -= yi * ctx_.row_val()[k];
            }
            consider(n_ + i, -yi);  // the row's logical prices to -y_i
        }
        for (const std::int32_t aj : ws_.alist) {
            const auto j = static_cast<std::size_t>(aj);
            consider(j, ws_.alpha[j]);
            ws_.alpha[j] = 0.0;
            amark_[j] = 0;
        }
        ws_.alist.clear();
        if (enter != total_) ++pricing_hits_;
        return enter;
    }

    // Bland's rule: exact reduced costs recomputed every call, smallest
    // eligible index. Engaged only after a long degenerate run; guarantees
    // termination together with the short-step ratio test's index ties.
    [[nodiscard]] std::size_t price_bland(int phase) {
        ++pricing_rebuilds_;
        ws_.rhs_work.assign(m_, 0.0);
        for (std::size_t slot = 0; slot < m_; ++slot) {
            const auto v = static_cast<std::size_t>(ws_.basic[slot]);
            ws_.rhs_work[slot] = phase == 2 ? cost2(v) : phase1_cost(v);
        }
        ws_.lu.btran_dense(ws_.rhs_work, ws_.y);
        for (std::size_t j = 0; j < total_; ++j) {
            if (ws_.vstat[j] == kBasic) continue;
            if (ws_.upper[j] - ws_.lower[j] <= kDropTol) continue;
            const double cost = phase == 2 ? cost2(j) : 0.0;
            const double dj = cost - dot_column(j, ws_.y);
            if (signed_rate(j, dj) > kEps) {
                enter_d_ = dj;
                return j;
            }
        }
        return total_;
    }

    // Incremental phase-2 pricing update across the pivot (enter replaces
    // basic[p]): rho = row p of B^-1 via a hypersparse unit BTRAN, the pivot
    // row alpha scattered through the CSR mirror, then the standard
    // d_j -= theta * alpha_j sweep and the Devex reference-framework weight
    // update. Called on the pre-pivot factor and pre-pivot vstat. A mismatch
    // between alpha[enter] and the FTRANed pivot element signals drift and
    // forces a full rebuild next iteration.
    void update_phase2_pricing(std::size_t p, std::size_t enter, double a_e,
                               std::size_t leave) {
        ws_.lu.btran_unit(p, ws_.rho, ws_.rholist);
        ws_.alist.clear();
        for (const std::int32_t ri : ws_.rholist) {
            const auto i = static_cast<std::size_t>(ri);
            const double rv = ws_.rho[i];
            if (rv == 0.0) continue;
            const std::size_t lj = n_ + i;  // logical of row i: alpha = rho_i
            if (!amark_[lj]) {
                amark_[lj] = 1;
                ws_.alist.push_back(static_cast<std::int32_t>(lj));
            }
            ws_.alpha[lj] += rv;
            const auto begin = static_cast<std::size_t>(ctx_.row_start()[i]);
            const auto end = static_cast<std::size_t>(ctx_.row_start()[i + 1]);
            for (std::size_t k = begin; k < end; ++k) {
                const auto j = static_cast<std::size_t>(ctx_.row_col()[k]);
                if (!amark_[j]) {
                    amark_[j] = 1;
                    ws_.alist.push_back(static_cast<std::int32_t>(j));
                }
                ws_.alpha[j] += rv * ctx_.row_val()[k];
            }
        }
        if (std::abs(ws_.alpha[enter] - a_e) > 1e-6 * (1.0 + std::abs(a_e))) {
            need_full_price_ = true;  // rho/FTRAN disagreement: rebuild soon
        }
        const double theta = ws_.d[enter] / a_e;
        const double we = ws_.devex[enter];
        const double ae2 = a_e * a_e;
        double maxw = 0.0;
        for (const std::int32_t aj : ws_.alist) {
            const auto j = static_cast<std::size_t>(aj);
            if (ws_.vstat[j] != kBasic && j != enter) {
                ws_.d[j] -= theta * ws_.alpha[j];
                const double ref = ws_.alpha[j] * ws_.alpha[j] / ae2 * we;
                if (ref > ws_.devex[j]) ws_.devex[j] = ref;
                if (ws_.devex[j] > maxw) maxw = ws_.devex[j];
            }
            ws_.alpha[j] = 0.0;
            amark_[j] = 0;
        }
        ws_.alist.clear();
        ws_.d[leave] = -theta;
        ws_.d[enter] = 0.0;
        ws_.devex[leave] = std::max(we / ae2, 1.0);
        if (maxw > kDevexReset || ws_.devex[leave] > kDevexReset) {
            ws_.devex.assign(total_, 1.0);  // framework overflow: restart
        }
    }

    // ---- ratio tests ----------------------------------------------------

    struct Ratio {
        double step = kInf;
        std::size_t leave_slot = std::numeric_limits<std::size_t>::max();
        bool leave_at_upper = false;
        bool flip = false;
    };

    // Short-step bounded ratio test over the hypersparse entering column
    // (phase-2 always; phase-1 under Bland's rule, where the first-kink
    // blocking keeps the anti-cycling argument intact).
    [[nodiscard]] Ratio ratio_short(std::size_t enter, double dir, int phase,
                                    bool bland) const {
        Ratio best;
        double best_pivot = 0.0;
        for (const std::int32_t sl : ws_.xlist) {
            const auto slot = static_cast<std::size_t>(sl);
            const double a = ws_.xcol[slot];
            if (std::abs(a) <= kPivTol) continue;
            const double w = dir * a;  // x_B[slot] moves by -w per unit step
            const auto v = static_cast<std::size_t>(ws_.basic[slot]);
            const double xv = ws_.x[v];
            const double l = ws_.lower[v];
            const double u = ws_.upper[v];
            const double ltol = kFeasTol * (1.0 + std::abs(l));
            const double utol = kFeasTol * (1.0 + std::abs(u));
            double t = kInf;
            bool at_upper = false;
            if (phase == 1 && xv > u + utol) {
                if (w <= 0.0) continue;  // moving further above: no kink
                t = (xv - u) / w;
                at_upper = true;
            } else if (phase == 1 && xv < l - ltol) {
                if (w >= 0.0) continue;
                t = (xv - l) / w;
                at_upper = false;
            } else if (w > 0.0) {
                if (!std::isfinite(l)) continue;
                t = (xv - l) / w;
                at_upper = false;
            } else {
                if (!std::isfinite(u)) continue;
                t = (xv - u) / w;
                at_upper = true;
            }
            if (t < 0.0) t = 0.0;  // degenerate beyond tolerance: zero step
            const bool first =
                best.leave_slot == std::numeric_limits<std::size_t>::max();
            bool take = false;
            if (first || t < best.step - kEps) {
                take = true;
            } else if (t < best.step + kEps) {
                take = bland ? ws_.basic[slot] < ws_.basic[best.leave_slot]
                             : std::abs(a) > best_pivot;
            }
            if (take) {
                best.step = std::min(first ? t : best.step, t);
                best.leave_slot = slot;
                best.leave_at_upper = at_upper;
                best_pivot = std::abs(a);
            }
        }
        // The entering variable's own opposite bound: a flip step changes no
        // basis and costs no update, so prefer it on ties.
        const double range = ws_.upper[enter] - ws_.lower[enter];
        if (std::isfinite(range) && range <= best.step) {
            best.step = range;
            best.flip = true;
        }
        return best;
    }

    struct Breakpoint {
        double t = 0.0;
        double gain = 0.0;  // |w|: slope increase once this kink is passed
        std::int32_t slot = -1;
        std::uint8_t at_upper = 0;
    };

    // Long-step phase-1 ratio test: the sum of infeasibilities is piecewise
    // linear in the step, with a kink wherever a basic variable crosses one
    // of its bounds (an infeasible basic contributes two — re-entry and
    // exit on the far side). Walk the kinks in step order, accumulating
    // slope, and stop at the first one where the objective stops improving;
    // every kink passed on the way is a free bound-flip's worth of progress
    // a first-kink test would have burned a pivot on. The entering
    // variable's own range caps the walk with a basis-preserving flip.
    [[nodiscard]] Ratio ratio_longstep(std::size_t enter, double dir) {
        bps_.clear();
        for (const std::int32_t sl : ws_.xlist) {
            const auto slot = static_cast<std::size_t>(sl);
            const double a = ws_.xcol[slot];
            if (std::abs(a) <= kPivTol) continue;
            const double w = dir * a;  // x_B[slot] moves by -w per unit step
            const auto v = static_cast<std::size_t>(ws_.basic[slot]);
            const double xv = ws_.x[v];
            const double l = ws_.lower[v];
            const double u = ws_.upper[v];
            const double ltol = kFeasTol * (1.0 + std::abs(l));
            const double utol = kFeasTol * (1.0 + std::abs(u));
            const double gain = std::abs(w);
            const auto push = [&](double t, bool at_upper) {
                bps_.push_back({std::max(t, 0.0), gain, sl,
                                static_cast<std::uint8_t>(at_upper ? 1 : 0)});
            };
            if (xv > u + utol) {  // infeasible above
                if (w <= 0.0) continue;
                push((xv - u) / w, true);
                if (std::isfinite(l)) push((xv - l) / w, false);
            } else if (xv < l - ltol) {  // infeasible below
                if (w >= 0.0) continue;
                push((xv - l) / w, false);
                if (std::isfinite(u)) push((xv - u) / w, true);
            } else if (w > 0.0) {
                if (std::isfinite(l)) push((xv - l) / w, false);
            } else if (std::isfinite(u)) {
                push((xv - u) / w, true);
            }
        }
        // The walk usually stops within a few kinks, so a heap (linear to
        // build, log-cost per kink popped) beats sorting the whole list. The
        // comparator is a total order, so the pop sequence is deterministic.
        const auto later = [](const Breakpoint& a, const Breakpoint& b) {
            if (a.t != b.t) return a.t > b.t;
            if (a.gain != b.gain) return a.gain < b.gain;
            if (a.slot != b.slot) return a.slot > b.slot;
            return a.at_upper > b.at_upper;
        };
        std::make_heap(bps_.begin(), bps_.end(), later);
        const double range = ws_.upper[enter] - ws_.lower[enter];
        double slope = -std::abs(enter_d_);
        Ratio best;
        for (std::size_t live = bps_.size(); live > 0; --live) {
            std::pop_heap(bps_.begin(),
                          bps_.begin() + static_cast<std::ptrdiff_t>(live), later);
            const Breakpoint& bp = bps_[live - 1];
            if (std::isfinite(range) && range <= bp.t) {
                best.step = range;  // entering hits its far bound first
                best.flip = true;
                return best;
            }
            slope += bp.gain;
            if (slope >= -kEps) {
                best.step = bp.t;
                best.leave_slot = static_cast<std::size_t>(bp.slot);
                best.leave_at_upper = bp.at_upper != 0;
                return best;
            }
        }
        if (std::isfinite(range)) {
            best.step = range;  // improving all the way to the far bound
            best.flip = true;
        }
        return best;  // step stays +inf: numerical ray in a bounded objective
    }

    // ---- warm-start yardsticks (shared with the eta kernel) -------------

    [[nodiscard]] std::int64_t warm_pivot_budget() const {
        if (options_.warm_pivot_budget > 0) return options_.warm_pivot_budget;
        return 32 + static_cast<std::int64_t>(m_) / 2;
    }

    [[nodiscard]] bool basic_infeasible() const {
        for (std::size_t slot = 0; slot < m_; ++slot) {
            const auto v = static_cast<std::size_t>(ws_.basic[slot]);
            const double xv = ws_.x[v];
            if (xv < ws_.lower[v] - kFeasTol * (1.0 + std::abs(ws_.lower[v])) ||
                xv > ws_.upper[v] + kFeasTol * (1.0 + std::abs(ws_.upper[v]))) {
                return true;
            }
        }
        return false;
    }

    [[nodiscard]] std::int64_t infeasible_basic_count() const {
        std::int64_t violated = 0;
        for (std::size_t slot = 0; slot < m_; ++slot) {
            const auto v = static_cast<std::size_t>(ws_.basic[slot]);
            const double xv = ws_.x[v];
            if (xv < ws_.lower[v] - kFeasTol * (1.0 + std::abs(ws_.lower[v])) ||
                xv > ws_.upper[v] + kFeasTol * (1.0 + std::abs(ws_.upper[v]))) {
                ++violated;
            }
        }
        return violated;
    }

    // Phase-1 workload of a fresh crash (all-logical) basis — the yardstick
    // the warm gate compares the reloaded basis against. One pass over the
    // nonzeros, no factorization.
    [[nodiscard]] std::int64_t crash_infeasible_count() const {
        if (crash_infeasible_ >= 0) return crash_infeasible_;
        std::vector<double>& residual = ws_.y;  // dead until the next price
        residual.assign(ctx_.rhs().begin(), ctx_.rhs().end());
        for (std::size_t j = 0; j < n_; ++j) {
            const double xj = !std::isfinite(ws_.lower[j]) ? ws_.upper[j]
                                                           : ws_.lower[j];
            if (xj == 0.0) continue;
            const auto begin = static_cast<std::size_t>(ctx_.col_start()[j]);
            const auto end = static_cast<std::size_t>(ctx_.col_start()[j + 1]);
            for (std::size_t i = begin; i < end; ++i) {
                residual[static_cast<std::size_t>(ctx_.row_idx()[i])] -=
                    ctx_.values()[i] * xj;
            }
        }
        std::int64_t violated = 0;
        for (std::size_t i = 0; i < m_; ++i) {
            const std::size_t s = n_ + i;
            if (residual[i] < ws_.lower[s] - kFeasTol * (1.0 + std::abs(ws_.lower[s])) ||
                residual[i] > ws_.upper[s] + kFeasTol * (1.0 + std::abs(ws_.upper[s]))) {
                ++violated;
            }
        }
        crash_infeasible_ = violated;
        return crash_infeasible_;
    }

    // ---- the pivot loop -------------------------------------------------

    [[nodiscard]] Verdict iterate(std::int64_t& iterations, std::int64_t limit) {
        std::int64_t local = 0;
        std::int64_t degenerate_run = 0;
        const std::int64_t bland_threshold =
            64 + 4 * static_cast<std::int64_t>(total_ + m_);
        bool bland = false;
        int confirm_passes = 0;
        int prev_phase = 0;

        while (true) {
            if (iterations >= limit) return Verdict::kIterationLimit;
            if ((local++ & 63) == 0 &&
                (std::chrono::steady_clock::now() > deadline_ ||
                 options_.deadline.expired())) {
                return Verdict::kIterationLimit;
            }

            // Count pivots since the last rebuild, NOT factor size: a warm
            // reload starts with a full factor and measuring its length
            // would re-trigger a rebuild on every pivot.
            if (updates_since_factor_ >=
                static_cast<std::int64_t>(std::max(1, options_.refactor_interval))) {
                if (!factorize_basis()) return Verdict::kStall;
                compute_basic_solution();
            }

            const int phase = basic_infeasible() ? 1 : 2;
            if (phase != prev_phase) {
                need_full_price_ = true;  // the other phase's costs are dead
                prev_phase = phase;
            }
            std::size_t enter;
            if (bland) {
                enter = price_bland(phase);
            } else if (phase == 1) {
                enter = price_phase1();
            } else {
                enter = price_list2();
            }
            if (enter == total_) {
                // Never trust a verdict reached on an updated factor:
                // rebuild, recompute, and re-price once before declaring.
                if (updates_since_factor_ > 0 && confirm_passes < 2) {
                    ++confirm_passes;
                    if (!factorize_basis()) return Verdict::kStall;
                    compute_basic_solution();
                    continue;
                }
                return phase == 1 ? Verdict::kInfeasible : Verdict::kOptimal;
            }
            confirm_passes = 0;

            const double dir = ws_.vstat[enter] == kAtLower ? 1.0 : -1.0;
            ws_.lu.ftran_column(ctx_, static_cast<std::int32_t>(enter), ws_.xcol,
                                ws_.xlist);
            const Ratio ratio = phase == 1 && !bland
                                    ? ratio_longstep(enter, dir)
                                    : ratio_short(enter, dir, phase, bland);
            if (!std::isfinite(ratio.step)) {
                // Phase 1 minimizes a function bounded below by zero, so an
                // unblocked ray there is a numerical artifact, not a proof.
                return phase == 2 ? Verdict::kUnbounded : Verdict::kStall;
            }

            const double t = ratio.step;
            if (t > 0.0) {
                for (const std::int32_t sl : ws_.xlist) {
                    const auto slot = static_cast<std::size_t>(sl);
                    if (ws_.xcol[slot] == 0.0) continue;
                    ws_.x[static_cast<std::size_t>(ws_.basic[slot])] -=
                        dir * ws_.xcol[slot] * t;
                }
            }
            if (ratio.flip) {
                ws_.x[enter] =
                    ws_.vstat[enter] == kAtLower ? ws_.upper[enter] : ws_.lower[enter];
                ws_.vstat[enter] = ws_.vstat[enter] == kAtLower ? kAtUpper : kAtLower;
                ++updates_since_factor_;  // x drifted incrementally
            } else {
                const std::size_t p = ratio.leave_slot;
                const auto leave = static_cast<std::size_t>(ws_.basic[p]);
                if (phase == 2 && !bland) {
                    update_phase2_pricing(p, enter, ws_.xcol[p], leave);
                } else {
                    need_full_price_ = true;  // phase-1/Bland pivots skip it
                }
                ws_.x[enter] = ws_.vstat[enter] == kAtLower ? ws_.lower[enter] + t
                                                            : ws_.upper[enter] - t;
                ws_.x[leave] = ratio.leave_at_upper ? ws_.upper[leave]
                                                    : ws_.lower[leave];
                ws_.vstat[leave] = ratio.leave_at_upper ? kAtUpper : kAtLower;
                ws_.vstat[enter] = kBasic;
                ws_.basic[p] = static_cast<std::int32_t>(enter);
                if (ws_.lu.update(p)) {
                    factor_ops_ += ws_.lu.ops() - last_ops_;
                    last_ops_ = ws_.lu.ops();
                    ++updates_since_factor_;
                } else {
                    // Update numerically unsafe: the factor still holds the
                    // pre-pivot basis, so rebuild it for the new one.
                    if (!factorize_basis()) return Verdict::kStall;
                    compute_basic_solution();
                }
            }
            ++iterations;
            degenerate_run = t > kEps ? 0 : degenerate_run + 1;
            if (degenerate_run > bland_threshold) bland = true;
        }
    }

    // ---- solution handling ---------------------------------------------

    void extract(LpResult& result) const {
        result.values.assign(n_, 0.0);
        for (std::size_t j = 0; j < n_; ++j) {
            double xj = ws_.x[j];
            // Snap round-off just outside a bound back onto it; larger
            // violations are left visible for the verification gate.
            const double tol = kFeasTol * (1.0 + std::abs(xj));
            if (xj < ws_.lower[j] && xj > ws_.lower[j] - tol) {
                xj = ws_.lower[j];
            } else if (xj > ws_.upper[j] && xj < ws_.upper[j] + tol) {
                xj = ws_.upper[j];
            }
            result.values[j] = xj;
        }
        double obj = ctx_.objective_constant();
        for (std::size_t j = 0; j < n_; ++j) {
            obj += ctx_.objective()[j] * result.values[j];
        }
        result.objective = ctx_.sense_sign() * obj;
    }

    // Row duals lambda = B^-T c_B and structural reduced costs
    // d_j = c_j - lambda' A_j at the optimum, in the model's own objective
    // sense. The factor is fresh here (every verdict is confirmed on a
    // rebuilt factorization).
    void export_duals(LpResult& result) const {
        ws_.rhs_work.assign(m_, 0.0);
        for (std::size_t slot = 0; slot < m_; ++slot) {
            const auto v = static_cast<std::size_t>(ws_.basic[slot]);
            ws_.rhs_work[slot] = v < n_ ? ctx_.objective()[v] : 0.0;
        }
        ws_.lu.btran_dense(ws_.rhs_work, ws_.y);
        result.duals.resize(m_);
        for (std::size_t i = 0; i < m_; ++i) {
            result.duals[i] = ctx_.sense_sign() * ws_.y[i];
        }
        result.reduced_costs.resize(n_);
        for (std::size_t j = 0; j < n_; ++j) {
            result.reduced_costs[j] =
                ctx_.sense_sign() * (ctx_.objective()[j] - dot_column(j, ws_.y));
        }
    }

    // Constraint-only gate on warm results: row activities recomputed from
    // the CSC matrix directly, independent of any solver state.
    [[nodiscard]] bool verify_point(const std::vector<double>& values) const {
        constexpr double kGuardTol = 1e-6;
        for (std::size_t j = 0; j < n_; ++j) {
            const double tol = kGuardTol * (1.0 + std::abs(values[j]));
            if (values[j] < ws_.lower[j] - tol || values[j] > ws_.upper[j] + tol) {
                return false;
            }
        }
        std::vector<double> activity(m_, 0.0);
        for (std::size_t j = 0; j < n_; ++j) {
            const double xj = values[j];
            if (xj == 0.0) continue;
            const auto begin = static_cast<std::size_t>(ctx_.col_start()[j]);
            const auto end = static_cast<std::size_t>(ctx_.col_start()[j + 1]);
            for (std::size_t i = begin; i < end; ++i) {
                activity[static_cast<std::size_t>(ctx_.row_idx()[i])] +=
                    ctx_.values()[i] * xj;
            }
        }
        for (std::size_t i = 0; i < m_; ++i) {
            const double rhs = ctx_.rhs()[i];
            const double tol = kGuardTol * (1.0 + std::abs(rhs));
            switch (ctx_.row_sense()[i]) {
                case Sense::kLe:
                    if (activity[i] > rhs + tol) return false;
                    break;
                case Sense::kGe:
                    if (activity[i] < rhs - tol) return false;
                    break;
                case Sense::kEq:
                    if (std::abs(activity[i] - rhs) > tol) return false;
                    break;
            }
        }
        return true;
    }

    void export_basis(Basis& out) const {
        out.basic.assign(ws_.basic.begin(), ws_.basic.end());
        out.at_upper.assign(total_, 0);
        for (std::size_t j = 0; j < total_; ++j) {
            if (ws_.vstat[j] == kAtUpper) out.at_upper[j] = 1;
        }
        out.columns = static_cast<std::uint32_t>(total_);
        if (ws_.lu.valid() && ws_.lu.dim() == m_) {
            ws_.lu.export_pivot_order(out.pivot_slot, out.pivot_row);
        } else {
            out.pivot_slot.clear();
            out.pivot_row.clear();
        }
    }

    const LpContext& ctx_;
    LpWorkspace& ws_;
    const LpOptions& options_;
    const std::size_t n_;
    const std::size_t m_;
    const std::size_t total_;
    const std::chrono::steady_clock::time_point deadline_;
    std::int64_t updates_since_factor_ = 0;
    std::int64_t factor_ops_ = 0;  // L+R operations across all factorizations
    std::int64_t last_ops_ = 0;
    std::int64_t pricing_hits_ = 0;
    std::int64_t pricing_rebuilds_ = 0;
    bool need_full_price_ = true;
    bool pending_hint_ = false;
    double enter_d_ = 0.0;  // reduced cost of the chosen entering variable
    std::vector<std::uint8_t> amark_;  // alpha-scatter membership marks
    std::vector<std::pair<double, std::int32_t>> cand_pairs_;
    std::vector<Breakpoint> bps_;
    std::vector<std::int32_t> p1_slots_;  // infeasible basic slots this price
    std::vector<double> p1_vals_;         // their +-1 phase-1 costs
    mutable std::int64_t crash_infeasible_ = -1;  // lazily computed, then cached
};

}  // namespace

namespace detail {

LpResult solve_lu_kernel(const LpContext& ctx, std::span<const double> lower,
                         std::span<const double> upper, const LpOptions& options,
                         LpWorkspace& ws) {
    LuSimplex simplex(ctx, lower, upper, options, ws);
    return simplex.run();
}

}  // namespace detail

const char* to_string(LpStatus s) noexcept {
    switch (s) {
        case LpStatus::kOptimal: return "optimal";
        case LpStatus::kInfeasible: return "infeasible";
        case LpStatus::kUnbounded: return "unbounded";
        case LpStatus::kIterationLimit: return "iteration-limit";
    }
    return "?";
}

LpContext::LpContext(const Model& model) {
    const std::size_t n = model.variable_count();
    const std::size_t m = model.constraint_count();
    row_sense_.reserve(m);
    rhs_.reserve(m);
    std::vector<std::int64_t> count(n + 1, 0);
    for (const Constraint& c : model.constraints()) {
        row_sense_.push_back(c.sense);
        rhs_.push_back(c.rhs);
        for (const Term& t : c.expr.terms()) ++count[static_cast<std::size_t>(t.var) + 1];
    }
    col_start_.assign(n + 1, 0);
    for (std::size_t j = 0; j < n; ++j) col_start_[j + 1] = col_start_[j] + count[j + 1];
    row_idx_.resize(static_cast<std::size_t>(col_start_[n]));
    val_.resize(static_cast<std::size_t>(col_start_[n]));
    std::vector<std::int64_t> cursor(col_start_.begin(), col_start_.end() - 1);
    for (std::size_t i = 0; i < m; ++i) {
        for (const Term& t : model.constraints()[i].expr.terms()) {
            const auto j = static_cast<std::size_t>(t.var);
            const auto slot = static_cast<std::size_t>(cursor[j]++);
            row_idx_[slot] = static_cast<std::int32_t>(i);
            val_[slot] = t.coef;
        }
    }

    // CSR mirror, built from the CSC arrays so both orderings agree exactly
    // (columns ascend within each row because the fill scans columns in
    // order).
    row_start_.assign(m + 1, 0);
    for (const std::int32_t r : row_idx_) ++row_start_[static_cast<std::size_t>(r) + 1];
    for (std::size_t i = 0; i < m; ++i) row_start_[i + 1] += row_start_[i];
    row_col_.resize(row_idx_.size());
    row_val_.resize(row_idx_.size());
    {
        std::vector<std::int64_t> rcursor(row_start_.begin(), row_start_.end() - 1);
        for (std::size_t j = 0; j < n; ++j) {
            const auto begin = static_cast<std::size_t>(col_start_[j]);
            const auto end = static_cast<std::size_t>(col_start_[j + 1]);
            for (std::size_t k = begin; k < end; ++k) {
                const auto i = static_cast<std::size_t>(row_idx_[k]);
                const auto at = static_cast<std::size_t>(rcursor[i]++);
                row_col_[at] = static_cast<std::int32_t>(j);
                row_val_[at] = val_[k];
            }
        }
    }

    sense_sign_ = model.is_minimization() ? 1.0 : -1.0;
    obj_.assign(n, 0.0);
    obj_constant_ = sense_sign_ * model.objective().constant();
    for (const Term& t : model.objective().terms()) {
        obj_[static_cast<std::size_t>(t.var)] = sense_sign_ * t.coef;
    }

    model_lower_ = model.lower_bounds();
    model_upper_ = model.upper_bounds();
}

LpResult LpContext::solve(std::span<const double> lower, std::span<const double> upper,
                          const LpOptions& options, LpWorkspace* workspace) const {
    LpWorkspace local;
    LpWorkspace& ws = workspace != nullptr ? *workspace : local;
    return options.use_eta_basis
               ? detail::solve_eta_kernel(*this, lower, upper, options, ws)
               : detail::solve_lu_kernel(*this, lower, upper, options, ws);
}

LpResult solve_lp(const Model& model, const LpOptions& options) {
    for (std::size_t j = 0; j < model.variable_count(); ++j) {
        const Variable& v = model.variable(static_cast<VarId>(j));
        if (!std::isfinite(v.lower)) {
            throw std::invalid_argument("solve_lp: variable '" + v.name +
                                        "' has non-finite lower bound");
        }
    }
    const LpContext ctx(model);
    return ctx.solve(ctx.model_lower(), ctx.model_upper(), options);
}

}  // namespace hermes::milp
