#include "milp/simplex.h"

#include <chrono>
#include <cmath>
#include <stdexcept>

namespace hermes::milp {

namespace {

constexpr double kEps = 1e-9;
constexpr double kFeasTol = 1e-7;

// Dense tableau: `rows` x `cols` where the last column is the rhs.
class Tableau {
public:
    Tableau(std::size_t rows, std::size_t cols)
        : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

    [[nodiscard]] double& at(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
    [[nodiscard]] double at(std::size_t r, std::size_t c) const {
        return data_[r * cols_ + c];
    }
    [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
    [[nodiscard]] std::size_t cols() const noexcept { return cols_; }

    // Gauss-Jordan pivot on (pr, pc).
    void pivot(std::size_t pr, std::size_t pc, std::vector<double>& cost_row,
               double& cost_rhs) {
        const double p = at(pr, pc);
        for (std::size_t c = 0; c < cols_; ++c) at(pr, c) /= p;
        for (std::size_t r = 0; r < rows_; ++r) {
            if (r == pr) continue;
            const double f = at(r, pc);
            if (std::abs(f) < kEps) continue;
            for (std::size_t c = 0; c < cols_; ++c) at(r, c) -= f * at(pr, c);
        }
        const double cf = cost_row[pc];
        if (std::abs(cf) >= kEps) {
            for (std::size_t c = 0; c < cols_ - 1; ++c) cost_row[c] -= cf * at(pr, c);
            cost_rhs -= cf * at(pr, cols_ - 1);
        }
        cost_row[pc] = 0.0;  // exact, avoids round-off residue on the pivot column
    }

private:
    std::size_t rows_;
    std::size_t cols_;
    std::vector<double> data_;
};

struct StandardForm {
    Tableau tableau{0, 0};
    std::vector<std::size_t> basis;       // basis[r] = column basic in row r
    std::vector<bool> usable;             // columns allowed to enter (false = artificial)
    std::size_t structural_count = 0;     // shifted model variables
    std::size_t artificial_begin = 0;     // first artificial column
    std::vector<double> shift;            // lb per model variable
    std::vector<double> costs;            // phase-2 cost per column (structural only)
    double objective_constant = 0.0;      // folded objective constant
    bool negate_result = false;           // true for maximization models
};

StandardForm build(const Model& model) {
    const std::size_t n = model.variable_count();
    StandardForm sf;
    sf.shift.resize(n);
    for (std::size_t j = 0; j < n; ++j) {
        const Variable& v = model.variable(static_cast<VarId>(j));
        if (!std::isfinite(v.lower)) {
            throw std::invalid_argument("solve_lp: variable '" + v.name +
                                        "' has non-finite lower bound");
        }
        sf.shift[j] = v.lower;
    }

    // Row list: model constraints (rhs adjusted by shifts) + upper-bound rows.
    struct Row {
        std::vector<Term> terms;
        Sense sense;
        double rhs;
    };
    std::vector<Row> rows;
    rows.reserve(model.constraint_count() + n);
    for (const Constraint& c : model.constraints()) {
        double rhs = c.rhs;
        for (const Term& t : c.expr.terms()) {
            rhs -= t.coef * sf.shift[static_cast<std::size_t>(t.var)];
        }
        rows.push_back(Row{c.expr.terms(), c.sense, rhs});
    }
    for (std::size_t j = 0; j < n; ++j) {
        const Variable& v = model.variable(static_cast<VarId>(j));
        if (!std::isfinite(v.upper)) continue;
        rows.push_back(Row{{Term{static_cast<VarId>(j), 1.0}}, Sense::kLe,
                           v.upper - v.lower});
    }

    // Normalize rhs >= 0 and classify slack needs.
    std::size_t slack_count = 0;
    std::size_t artificial_count = 0;
    for (Row& r : rows) {
        if (r.rhs < 0.0) {
            for (Term& t : r.terms) t.coef = -t.coef;
            r.rhs = -r.rhs;
            r.sense = (r.sense == Sense::kLe)   ? Sense::kGe
                      : (r.sense == Sense::kGe) ? Sense::kLe
                                                : Sense::kEq;
        }
        if (r.sense != Sense::kEq) ++slack_count;            // slack or surplus
        if (r.sense != Sense::kLe) ++artificial_count;       // >= or ==
    }

    const std::size_t m = rows.size();
    sf.structural_count = n;
    sf.artificial_begin = n + slack_count;
    const std::size_t total_cols = n + slack_count + artificial_count + 1;
    sf.tableau = Tableau(m, total_cols);
    sf.basis.assign(m, 0);
    sf.usable.assign(total_cols - 1, true);

    std::size_t next_slack = n;
    std::size_t next_artificial = sf.artificial_begin;
    for (std::size_t r = 0; r < m; ++r) {
        for (const Term& t : rows[r].terms) {
            sf.tableau.at(r, static_cast<std::size_t>(t.var)) += t.coef;
        }
        sf.tableau.at(r, total_cols - 1) = rows[r].rhs;
        switch (rows[r].sense) {
            case Sense::kLe:
                sf.tableau.at(r, next_slack) = 1.0;
                sf.basis[r] = next_slack++;
                break;
            case Sense::kGe:
                sf.tableau.at(r, next_slack) = -1.0;
                ++next_slack;
                sf.tableau.at(r, next_artificial) = 1.0;
                sf.basis[r] = next_artificial++;
                break;
            case Sense::kEq:
                sf.tableau.at(r, next_artificial) = 1.0;
                sf.basis[r] = next_artificial++;
                break;
        }
    }
    for (std::size_t c = sf.artificial_begin; c < total_cols - 1; ++c) {
        sf.usable[c] = false;  // artificials may never re-enter in phase 2
    }

    // Phase-2 costs (minimization sense).
    sf.costs.assign(total_cols - 1, 0.0);
    const double sign = model.is_minimization() ? 1.0 : -1.0;
    sf.negate_result = !model.is_minimization();
    sf.objective_constant = sign * model.objective().constant();
    for (const Term& t : model.objective().terms()) {
        sf.costs[static_cast<std::size_t>(t.var)] = sign * t.coef;
        sf.objective_constant += sign * t.coef * sf.shift[static_cast<std::size_t>(t.var)];
    }
    return sf;
}

enum class PivotOutcome { kOptimal, kUnbounded, kIterationLimit };

// Runs the simplex pivot loop on `sf` for the given cost row. `allow_enter`
// masks columns that may enter (artificials excluded in phase 2).
PivotOutcome run_simplex(StandardForm& sf, std::vector<double>& cost_row, double& cost_rhs,
                         const std::vector<bool>& allow_enter, long& iterations,
                         long max_iterations,
                         std::chrono::steady_clock::time_point deadline) {
    Tableau& t = sf.tableau;
    const std::size_t rhs_col = t.cols() - 1;
    const long bland_threshold =
        4 * static_cast<long>(t.rows() + t.cols());  // switch to Bland to kill cycles
    long local_iterations = 0;

    while (true) {
        if (iterations >= max_iterations) return PivotOutcome::kIterationLimit;
        if ((local_iterations & 63) == 0 &&
            std::chrono::steady_clock::now() > deadline) {
            return PivotOutcome::kIterationLimit;
        }

        // Entering column.
        std::size_t enter = rhs_col;
        if (local_iterations < bland_threshold) {
            double best = -kEps;
            for (std::size_t c = 0; c < rhs_col; ++c) {
                if (!allow_enter[c]) continue;
                if (cost_row[c] < best) {
                    best = cost_row[c];
                    enter = c;
                }
            }
        } else {
            for (std::size_t c = 0; c < rhs_col; ++c) {
                if (allow_enter[c] && cost_row[c] < -kEps) {
                    enter = c;
                    break;
                }
            }
        }
        if (enter == rhs_col) return PivotOutcome::kOptimal;

        // Leaving row: min-ratio, ties by smallest basis column (Bland-safe).
        std::size_t leave = t.rows();
        double best_ratio = 0.0;
        for (std::size_t r = 0; r < t.rows(); ++r) {
            const double a = t.at(r, enter);
            if (a <= kEps) continue;
            const double ratio = t.at(r, rhs_col) / a;
            if (leave == t.rows() || ratio < best_ratio - kEps ||
                (ratio < best_ratio + kEps && sf.basis[r] < sf.basis[leave])) {
                best_ratio = ratio;
                leave = r;
            }
        }
        if (leave == t.rows()) return PivotOutcome::kUnbounded;

        t.pivot(leave, enter, cost_row, cost_rhs);
        sf.basis[leave] = enter;
        ++iterations;
        ++local_iterations;
    }
}

}  // namespace

const char* to_string(LpStatus s) noexcept {
    switch (s) {
        case LpStatus::kOptimal: return "optimal";
        case LpStatus::kInfeasible: return "infeasible";
        case LpStatus::kUnbounded: return "unbounded";
        case LpStatus::kIterationLimit: return "iteration-limit";
    }
    return "?";
}

LpResult solve_lp(const Model& model, long max_iterations, double max_seconds) {
    const auto deadline =
        max_seconds >= 1e17
            ? std::chrono::steady_clock::time_point::max()
            : std::chrono::steady_clock::now() +
                  std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                      std::chrono::duration<double>(max_seconds));
    StandardForm sf = build(model);
    Tableau& t = sf.tableau;
    const std::size_t rhs_col = t.cols() - 1;
    LpResult result;

    // ---- Phase 1: minimize the sum of artificials. ----
    std::vector<double> cost_row(rhs_col, 0.0);
    double cost_rhs = 0.0;
    // Reduced costs for cost vector e_artificials with artificial basis:
    // subtract each artificial-basic row from the cost row.
    for (std::size_t r = 0; r < t.rows(); ++r) {
        if (sf.basis[r] < sf.artificial_begin) continue;
        for (std::size_t c = 0; c < rhs_col; ++c) cost_row[c] -= t.at(r, c);
        cost_rhs -= t.at(r, rhs_col);
    }
    for (std::size_t c = sf.artificial_begin; c < rhs_col; ++c) cost_row[c] = 0.0;

    std::vector<bool> allow_all(rhs_col, true);
    const PivotOutcome phase1 = run_simplex(sf, cost_row, cost_rhs, allow_all,
                                            result.iterations, max_iterations, deadline);
    if (phase1 == PivotOutcome::kIterationLimit) {
        result.status = LpStatus::kIterationLimit;
        return result;
    }
    if (-cost_rhs > kFeasTol) {  // phase-1 objective = -cost_rhs after pivots
        result.status = LpStatus::kInfeasible;
        return result;
    }

    // Drive any residual basic artificials out of the basis.
    for (std::size_t r = 0; r < t.rows(); ++r) {
        if (sf.basis[r] < sf.artificial_begin) continue;
        std::size_t enter = rhs_col;
        for (std::size_t c = 0; c < sf.artificial_begin; ++c) {
            if (std::abs(t.at(r, c)) > kEps) {
                enter = c;
                break;
            }
        }
        if (enter == rhs_col) continue;  // redundant row; harmless to keep
        t.pivot(r, enter, cost_row, cost_rhs);
        sf.basis[r] = enter;
    }

    // ---- Phase 2: original objective. ----
    std::vector<double> cost2(rhs_col, 0.0);
    for (std::size_t c = 0; c < rhs_col; ++c) cost2[c] = sf.costs[c];
    double cost2_rhs = 0.0;
    for (std::size_t r = 0; r < t.rows(); ++r) {
        const double cb = sf.costs[sf.basis[r]];
        if (std::abs(cb) < kEps) continue;
        for (std::size_t c = 0; c < rhs_col; ++c) cost2[c] -= cb * t.at(r, c);
        cost2_rhs -= cb * t.at(r, rhs_col);
    }
    for (std::size_t r = 0; r < t.rows(); ++r) cost2[sf.basis[r]] = 0.0;

    const PivotOutcome phase2 = run_simplex(sf, cost2, cost2_rhs, sf.usable,
                                            result.iterations, max_iterations, deadline);
    if (phase2 == PivotOutcome::kIterationLimit) {
        result.status = LpStatus::kIterationLimit;
        return result;
    }
    if (phase2 == PivotOutcome::kUnbounded) {
        result.status = LpStatus::kUnbounded;
        return result;
    }

    // Extract solution: basic shifted vars read from rhs, others at 0.
    result.values.assign(model.variable_count(), 0.0);
    for (std::size_t r = 0; r < t.rows(); ++r) {
        if (sf.basis[r] < sf.structural_count) {
            result.values[sf.basis[r]] = t.at(r, rhs_col);
        }
    }
    for (std::size_t j = 0; j < model.variable_count(); ++j) {
        result.values[j] += sf.shift[j];
    }
    // Phase-2 objective (minimization space): -cost2_rhs; add constant, undo sign.
    double objective = -cost2_rhs + sf.objective_constant;
    if (sf.negate_result) objective = -objective;
    result.objective = objective;
    result.status = LpStatus::kOptimal;
    return result;
}

}  // namespace hermes::milp
