#include "milp/solver.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>

namespace hermes::milp {

namespace {

using Clock = std::chrono::steady_clock;

struct BoundChange {
    VarId var;
    double lower;
    double upper;
};

struct Node {
    std::vector<BoundChange> changes;  // cumulative path from the root
    double parent_bound;               // LP bound inherited from the parent
};

// Applies node bounds (intersected with the current ones) to `work`;
// restores from `base` afterwards via restore().
class ScopedBounds {
public:
    ScopedBounds(Model& work, const Model& base, const std::vector<BoundChange>& changes)
        : work_(work), base_(base), changes_(changes) {
        for (const BoundChange& ch : changes_) {
            work_.set_lower(ch.var, std::max(work_.variable(ch.var).lower, ch.lower));
            work_.set_upper(ch.var, std::min(work_.variable(ch.var).upper, ch.upper));
        }
    }
    ~ScopedBounds() {
        for (const BoundChange& ch : changes_) {
            work_.set_lower(ch.var, base_.variable(ch.var).lower);
            work_.set_upper(ch.var, base_.variable(ch.var).upper);
        }
    }
    ScopedBounds(const ScopedBounds&) = delete;
    ScopedBounds& operator=(const ScopedBounds&) = delete;

private:
    Model& work_;
    const Model& base_;
    const std::vector<BoundChange>& changes_;
};

// Most fractional integer variable, or nullopt when the point is integral.
std::optional<VarId> pick_branch_var(const Model& model, const std::vector<double>& values,
                                     double tolerance) {
    std::optional<VarId> best;
    double best_score = -1.0;
    for (std::size_t j = 0; j < model.variable_count(); ++j) {
        const Variable& v = model.variable(static_cast<VarId>(j));
        if (v.type == VarType::kContinuous) continue;
        const double x = values[j];
        const double frac = std::abs(x - std::round(x));
        if (frac <= tolerance) continue;
        const double score = 0.5 - std::abs(frac - 0.5);  // closeness to 0.5
        if (score > best_score) {
            best_score = score;
            best = static_cast<VarId>(j);
        }
    }
    return best;
}

void snap_integers(const Model& model, std::vector<double>& values, double tolerance) {
    for (std::size_t j = 0; j < model.variable_count(); ++j) {
        if (model.variable(static_cast<VarId>(j)).type == VarType::kContinuous) continue;
        const double r = std::round(values[j]);
        if (std::abs(values[j] - r) <= tolerance) values[j] = r;
    }
}

}  // namespace

const char* to_string(MilpStatus s) noexcept {
    switch (s) {
        case MilpStatus::kOptimal: return "optimal";
        case MilpStatus::kFeasible: return "feasible";
        case MilpStatus::kInfeasible: return "infeasible";
        case MilpStatus::kNoSolution: return "no-solution";
        case MilpStatus::kUnbounded: return "unbounded";
    }
    return "?";
}

MilpResult solve_milp(const Model& model, const MilpOptions& options) {
    const auto start = Clock::now();
    auto elapsed = [&] {
        return std::chrono::duration<double>(Clock::now() - start).count();
    };
    // Internally everything is in minimization space.
    const double sense = model.is_minimization() ? 1.0 : -1.0;

    MilpResult result;
    double incumbent = std::numeric_limits<double>::infinity();
    std::vector<double> incumbent_values;

    if (options.warm_start &&
        model.is_feasible(*options.warm_start, options.integrality_tolerance * 10)) {
        incumbent = sense * model.objective_value(*options.warm_start);
        incumbent_values = *options.warm_start;
    }

    Model work = model;  // bounds mutate per node; constraints shared by value
    std::vector<Node> stack;
    stack.push_back(Node{{}, -std::numeric_limits<double>::infinity()});

    bool exhausted = true;    // search space fully explored?
    bool any_lp_limit = false;
    double open_bound = std::numeric_limits<double>::infinity();  // min open-node bound

    while (!stack.empty()) {
        if (elapsed() > options.time_limit_seconds || result.nodes >= options.node_limit) {
            exhausted = false;
            // Remaining open nodes define the residual bound.
            for (const Node& n : stack) open_bound = std::min(open_bound, n.parent_bound);
            break;
        }
        const Node node = std::move(stack.back());
        stack.pop_back();
        ++result.nodes;

        // Bound-based pruning using the parent bound before the LP solve.
        if (node.parent_bound >= incumbent - options.absolute_gap) continue;

        LpResult lp;
        {
            const ScopedBounds scope(work, model, node.changes);
            // Each LP inherits the remaining wall-clock budget so one long
            // solve cannot blow through the MILP time limit.
            const double remaining =
                std::max(0.05, options.time_limit_seconds - elapsed());
            lp = solve_lp(work, options.lp_iteration_limit, remaining);
        }
        result.lp_iterations += lp.iterations;

        if (lp.status == LpStatus::kInfeasible) continue;
        if (lp.status == LpStatus::kIterationLimit) {
            any_lp_limit = true;  // cannot certify this subtree; not exhausted
            continue;
        }
        if (lp.status == LpStatus::kUnbounded) {
            if (node.changes.empty()) {
                result.status = MilpStatus::kUnbounded;
                result.elapsed_seconds = elapsed();
                return result;
            }
            continue;  // bounded root cannot spawn unbounded children
        }

        const double bound = sense * lp.objective;
        if (bound >= incumbent - options.absolute_gap) continue;

        snap_integers(model, lp.values, options.integrality_tolerance);
        const auto branch_var =
            pick_branch_var(model, lp.values, options.integrality_tolerance);
        if (!branch_var) {
            // Integral: new incumbent.
            incumbent = bound;
            incumbent_values = lp.values;
            continue;
        }

        const double x = lp.values[static_cast<std::size_t>(*branch_var)];
        const double floor_x = std::floor(x);
        Node down{node.changes, bound};
        down.changes.push_back(BoundChange{*branch_var, -kInfinity, floor_x});
        Node up{node.changes, bound};
        up.changes.push_back(BoundChange{*branch_var, floor_x + 1.0, kInfinity});

        // Dive first toward the LP value: push the closer child last.
        if (x - floor_x < 0.5) {
            stack.push_back(std::move(up));
            stack.push_back(std::move(down));
        } else {
            stack.push_back(std::move(down));
            stack.push_back(std::move(up));
        }
    }

    result.elapsed_seconds = elapsed();
    const bool have_incumbent = !incumbent_values.empty();
    if (have_incumbent) {
        result.values = std::move(incumbent_values);
        result.objective = sense * incumbent;  // back to the model's own sense
        if (exhausted && !any_lp_limit) {
            result.status = MilpStatus::kOptimal;
            result.best_bound = result.objective;
        } else {
            result.status = MilpStatus::kFeasible;
            const double bound = std::min(open_bound, incumbent);
            result.best_bound = sense * bound;
        }
    } else if (exhausted && !any_lp_limit) {
        result.status = MilpStatus::kInfeasible;
    } else {
        result.status = MilpStatus::kNoSolution;
        result.best_bound = sense * open_bound;
    }
    return result;
}

}  // namespace hermes::milp
