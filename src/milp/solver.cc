#include "milp/solver.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <limits>
#include <mutex>
#include <thread>
#include <utility>

#include "milp/branching.h"
#include "milp/cuts.h"
#include "milp/decompose.h"
#include "milp/presolve.h"
#include "milp/simplex_reference.h"
#include "obs/obs.h"

namespace hermes::milp {

namespace {

using Clock = std::chrono::steady_clock;

constexpr double kInf = std::numeric_limits<double>::infinity();
// Objectives closer than this are the same incumbent; the lexicographic
// value tie-break below then keeps the published solution deterministic.
constexpr double kIncumbentTieEps = 1e-9;

struct BoundChange {
    VarId var;
    double lower;
    double upper;
};

struct Node {
    std::vector<BoundChange> changes;  // cumulative path from the root
    double parent_bound = -kInf;       // LP bound inherited from the parent
    std::uint64_t seq = 0;             // creation order, breaks bound ties
    Basis basis;                       // parent's optimal basis (warm start)
    // The branch that created this node, for pseudocost learning: variable,
    // direction, and the fractional distance the branch rounded away
    // (f for the down child, 1 - f for the up child). var < 0 at the root.
    VarId branch_var = -1;
    bool branch_up = false;
    double branch_dist = 0.0;
};

// Heap comparator for a best-bound min-heap (ties: earliest-created node
// first, which preserves the dive-first exploration among equal bounds).
struct NodeOrder {
    bool operator()(const Node& a, const Node& b) const noexcept {
        if (a.parent_bound != b.parent_bound) return a.parent_bound > b.parent_bound;
        return a.seq > b.seq;
    }
};

// Applies node bounds (intersected with the current ones) to `work`;
// restores from `base` afterwards via the destructor.
class ScopedBounds {
public:
    ScopedBounds(Model& work, const Model& base, const std::vector<BoundChange>& changes)
        : work_(work), base_(base), changes_(changes) {
        for (const BoundChange& ch : changes_) {
            work_.set_lower(ch.var, std::max(work_.variable(ch.var).lower, ch.lower));
            work_.set_upper(ch.var, std::min(work_.variable(ch.var).upper, ch.upper));
        }
    }
    ~ScopedBounds() {
        for (const BoundChange& ch : changes_) {
            work_.set_lower(ch.var, base_.variable(ch.var).lower);
            work_.set_upper(ch.var, base_.variable(ch.var).upper);
        }
    }
    ScopedBounds(const ScopedBounds&) = delete;
    ScopedBounds& operator=(const ScopedBounds&) = delete;

private:
    Model& work_;
    const Model& base_;
    const std::vector<BoundChange>& changes_;
};

// Most fractional integer variable, or nullopt when the point is integral.
std::optional<VarId> pick_branch_var(const Model& model, const std::vector<double>& values,
                                     double tolerance) {
    std::optional<VarId> best;
    double best_score = -1.0;
    for (std::size_t j = 0; j < model.variable_count(); ++j) {
        const Variable& v = model.variable(static_cast<VarId>(j));
        if (v.type == VarType::kContinuous) continue;
        const double x = values[j];
        const double frac = std::abs(x - std::round(x));
        if (frac <= tolerance) continue;
        const double score = 0.5 - std::abs(frac - 0.5);  // closeness to 0.5
        if (score > best_score) {
            best_score = score;
            best = static_cast<VarId>(j);
        }
    }
    return best;
}

void snap_integers(const Model& model, std::vector<double>& values, double tolerance) {
    for (std::size_t j = 0; j < model.variable_count(); ++j) {
        if (model.variable(static_cast<VarId>(j)).type == VarType::kContinuous) continue;
        const double r = std::round(values[j]);
        if (std::abs(values[j] - r) <= tolerance) values[j] = r;
    }
}

bool lexicographically_less(const std::vector<double>& a, const std::vector<double>& b) {
    return std::lexicographical_compare(a.begin(), a.end(), b.begin(), b.end());
}

// One branch-and-bound search: shared open list and incumbent behind a
// mutex, workers solving node LPs outside it. All bound bookkeeping is in
// minimization space (`sense_` folds max models in).
class Search {
public:
    Search(const Model& model, const MilpOptions& options)
        : model_(model),
          options_(options),
          context_(model),
          sense_(model.is_minimization() ? 1.0 : -1.0),
          start_(Clock::now()),
          sink_(options.sink),
          pseudocosts_(model.variable_count()),
          global_lower_(context_.model_lower()),
          global_upper_(context_.model_upper()) {
        if (sink_ != nullptr) {
            // Look the metrics up once; workers bump the cached references.
            warm_attempts_ = &sink_->counter("lp.warm_attempts");
            warm_hits_ = &sink_->counter("lp.warm_hits");
            warm_misses_ = &sink_->counter("lp.warm_misses");
            idle_ns_ = &sink_->counter("bb.idle_ns");
            lp_iterations_per_node_ = &sink_->histogram(
                "bb.lp_iterations_per_node", obs::geometric_bounds(1.0, 4.0, 10));
        }
    }

    MilpResult run() {
        if (options_.warm_start &&
            model_.is_feasible(*options_.warm_start, options_.integrality_tolerance * 10)) {
            incumbent_ = sense_ * model_.objective_value(*options_.warm_start);
            incumbent_values_ = *options_.warm_start;
            has_incumbent_ = true;
        }
        open_.push_back(Node{});  // root: no bound changes, cold LP

        int threads = options_.threads;
        if (threads <= 0) {
            threads = static_cast<int>(std::max(1u, std::thread::hardware_concurrency()));
        }
        {
            std::vector<std::jthread> pool;
            pool.reserve(static_cast<std::size_t>(threads - 1));
            for (int i = 1; i < threads; ++i) pool.emplace_back([this, i] { worker(i); });
            worker(0);  // the calling thread is worker 0
        }  // jthreads join here

        // A deadline (or wall-clock budget) that trips mid-LP surfaces as
        // per-node iteration limits: the affected subtrees are dropped and
        // the open list can drain before any worker reaches the pop-time
        // check, leaving hit_limit_ false. Reclassify that exit as the
        // time-limit stop it actually is, so a cooperative cancellation
        // never masquerades as a clean kFeasible/kOptimal finish.
        const bool clock_up = (options_.time_limit_seconds > 0.0 &&
                               seconds() > options_.time_limit_seconds) ||
                              options_.deadline.expired();
        if (clock_up && (hit_limit_ || any_lp_limit_)) {
            hit_limit_ = true;
            hit_time_limit_ = true;
        }

        if (sink_ != nullptr) {
            sink_->counter("bb.nodes").add(nodes_);
            sink_->counter("bb.lp_iterations").add(lp_iterations_);
        }
        MilpResult result;
        result.nodes = nodes_;
        result.lp_iterations = lp_iterations_;
        result.elapsed_seconds = seconds();
        if (unbounded_) {
            result.status = MilpStatus::kUnbounded;
            return result;
        }
        // Residual bound over everything left unexplored: open nodes plus
        // subtrees dropped on LP iteration limits.
        double open_bound = residual_bound_;
        for (const Node& n : open_) open_bound = std::min(open_bound, n.parent_bound);

        const bool exhausted = !hit_limit_;
        // has_incumbent_, not incumbent_values_.empty(): a fully presolved
        // model has zero variables, so a real incumbent can be empty.
        if (has_incumbent_) {
            result.values = std::move(incumbent_values_);
            result.objective = sense_ * incumbent_;  // back to the model's own sense
            if (exhausted && !any_lp_limit_) {
                result.status = MilpStatus::kOptimal;
                result.best_bound = result.objective;
            } else {
                result.status = hit_time_limit_ ? MilpStatus::kTimeLimit
                                                : MilpStatus::kFeasible;
                result.best_bound = sense_ * std::min(open_bound, incumbent_);
            }
        } else if (exhausted && !any_lp_limit_) {
            result.status = MilpStatus::kInfeasible;
        } else {
            result.status = MilpStatus::kNoSolution;
            result.best_bound = sense_ * open_bound;
        }
        return result;
    }

private:
    [[nodiscard]] double seconds() const {
        return std::chrono::duration<double>(Clock::now() - start_).count();
    }

    // Per-worker tallies, flushed to the sink once at worker exit so the
    // node loop never touches the shared metric atomics.
    struct WorkerStats {
        std::int64_t idle_ns = 0;
        std::int64_t warm_attempts = 0;
        std::int64_t warm_hits = 0;
        std::int64_t warm_wasted_pivots = 0;
        // Indexed by WarmAbandon (kLoad..kVerify); kNone is never counted.
        std::int64_t abandons[6] = {0, 0, 0, 0, 0, 0};
        // LU kernel observability, summed over this worker's node LPs:
        // refactorizations, Forrest-Tomlin updates, hypersparse vs dense
        // triangular solves, factor/basis nonzeros at refactorization, and
        // the Devex candidate-list hit/rebuild split.
        std::int64_t factor_refactorizations = 0;
        std::int64_t factor_ft_updates = 0;
        std::int64_t factor_hyper_solves = 0;
        std::int64_t factor_dense_solves = 0;
        double factor_fill_nnz = 0.0;
        double factor_basis_nnz = 0.0;
        std::int64_t pricing_list_hits = 0;
        std::int64_t pricing_rebuilds = 0;
    };

    // RAII flush of one worker's stats: runs on every exit path — clean
    // drain, stop flag, deadline/limit trip, or an exception unwinding the
    // worker — so repair-ladder escalations that abort via core::Deadline
    // still show their lp.warm_* counters in the metrics export.
    class FlushStatsOnExit {
    public:
        FlushStatsOnExit(Search& search, WorkerStats& stats) noexcept
            : search_(search), stats_(stats) {}
        ~FlushStatsOnExit() { search_.flush_worker_stats(stats_); }
        FlushStatsOnExit(const FlushStatsOnExit&) = delete;
        FlushStatsOnExit& operator=(const FlushStatsOnExit&) = delete;

    private:
        Search& search_;
        WorkerStats& stats_;
    };

    void flush_worker_stats(const WorkerStats& stats) {
        if (sink_ == nullptr) return;
        idle_ns_->add(stats.idle_ns);
        warm_attempts_->add(stats.warm_attempts);
        warm_hits_->add(stats.warm_hits);
        warm_misses_->add(stats.warm_attempts - stats.warm_hits);
        sink_->counter("lp.warm_wasted_pivots").add(stats.warm_wasted_pivots);
        static constexpr const char* kAbandonNames[6] = {
            "lp.warm_abandon_load",    "lp.warm_abandon_factorize",
            "lp.warm_abandon_gate",    "lp.warm_abandon_budget",
            "lp.warm_abandon_verdict", "lp.warm_abandon_verify"};
        for (int i = 0; i < 6; ++i) {
            if (stats.abandons[i] != 0) {
                sink_->counter(kAbandonNames[i]).add(stats.abandons[i]);
            }
        }
        // Registered unconditionally (like the warm_* trio) so exported
        // metrics JSON always carries the lp.factor_* surface CI asserts on;
        // they stay zero under the eta or dense reference kernels.
        sink_->counter("lp.factor_refactorizations").add(stats.factor_refactorizations);
        sink_->counter("lp.factor_ft_updates").add(stats.factor_ft_updates);
        sink_->counter("lp.factor_hyper_solves").add(stats.factor_hyper_solves);
        sink_->counter("lp.factor_dense_solves").add(stats.factor_dense_solves);
        sink_->counter("lp.factor_fill_nnz")
            .add(static_cast<std::int64_t>(stats.factor_fill_nnz));
        sink_->counter("lp.factor_basis_nnz")
            .add(static_cast<std::int64_t>(stats.factor_basis_nnz));
        sink_->counter("lp.pricing_list_hits").add(stats.pricing_list_hits);
        sink_->counter("lp.pricing_rebuilds").add(stats.pricing_rebuilds);
    }

    void worker(int index) {
        if (sink_ != nullptr && index > 0) {
            sink_->name_thread("bb.worker." + std::to_string(index));
        }
        obs::Span lane(sink_, "bb.worker");
        WorkerStats stats;
        const FlushStatsOnExit flush(*this, stats);
        // Per-worker scratch: bound vectors perturbed per node against the
        // shared context, the kernel workspace, and (reference path only) a
        // private Model copy whose bounds mutate per node. `base` mirrors
        // the globally tightened bounds (strong-branch fixings, incumbent
        // reduced-cost fixing) and is refreshed under the lock whenever the
        // shared version moves; `lower`/`upper` are `base` plus the node's
        // own changes during one LP solve.
        std::vector<double> base_lower = context_.model_lower();
        std::vector<double> base_upper = context_.model_upper();
        std::vector<double> lower = base_lower;
        std::vector<double> upper = base_upper;
        std::uint64_t seen_bounds_version = 0;
        LpWorkspace workspace;
        Model ref_work;
        if (options_.use_reference_lp) ref_work = model_;
        while (true) {
            Node node;
            {
                std::unique_lock lk(mu_);
                const std::int64_t wait_start = sink_ != nullptr ? obs::now_ns() : 0;
                cv_.wait(lk, [&] { return stop_ || !open_.empty() || in_flight_ == 0; });
                if (sink_ != nullptr) stats.idle_ns += obs::now_ns() - wait_start;
                if (stop_) break;
                if (open_.empty()) break;  // in_flight_ == 0: search exhausted
                const bool time_up = (options_.time_limit_seconds > 0.0 &&
                                      seconds() > options_.time_limit_seconds) ||
                                     options_.deadline.expired();
                if (time_up || nodes_ >= options_.node_limit ||
                    lp_iterations_ >= options_.iteration_limit) {
                    hit_limit_ = true;
                    if (time_up) hit_time_limit_ = true;
                    stop_ = true;
                    cv_.notify_all();
                    break;
                }
                std::pop_heap(open_.begin(), open_.end(), NodeOrder{});
                node = std::move(open_.back());
                open_.pop_back();
                ++nodes_;
                if (node.parent_bound >= incumbent_ - options_.absolute_gap) continue;
                if (seen_bounds_version != bounds_version_) {
                    base_lower = global_lower_;
                    base_upper = global_upper_;
                    lower = base_lower;
                    upper = base_upper;
                    seen_bounds_version = bounds_version_;
                }
                ++in_flight_;
            }
            {
                obs::Span node_span(sink_, "bb.node");
                process(std::move(node), base_lower, base_upper, lower, upper,
                        workspace, ref_work, stats);
            }
            {
                const std::lock_guard lk(mu_);
                --in_flight_;
            }
            cv_.notify_all();
        }
        cv_.notify_all();  // wake peers so they observe stop/exhaustion too
    }

    void process(Node node, std::vector<double>& base_lower,
                 std::vector<double>& base_upper, std::vector<double>& lower,
                 std::vector<double>& upper, LpWorkspace& workspace, Model& ref_work,
                 WorkerStats& stats) {
        // Each LP inherits the remaining wall-clock budget so one long
        // solve cannot blow through the MILP time limit; <= 0 means the
        // search has no budget and node LPs get none either.
        const double remaining =
            options_.time_limit_seconds <= 0.0
                ? 1e18
                : std::max(0.05, options_.time_limit_seconds - seconds());
        const Basis* warm =
            options_.warm_lp_basis && !node.basis.empty() ? &node.basis : nullptr;
        const bool is_root = node.changes.empty() && node.branch_var < 0;
        LpResult lp;
        if (options_.use_reference_lp) {
            const ScopedBounds scope(ref_work, model_, node.changes);
            LpOptions lp_options;
            lp_options.iteration_limit = options_.lp_iteration_limit;
            lp_options.time_limit_seconds = remaining;
            lp_options.warm_basis = warm;
            lp = reference::solve_lp(ref_work, lp_options);
        } else {
            // Apply the node's cumulative bound changes (intersected, so
            // repeated changes to one variable compose) directly onto the
            // per-worker vectors — no per-node model rebuild.
            for (const BoundChange& ch : node.changes) {
                const auto j = static_cast<std::size_t>(ch.var);
                lower[j] = std::max(lower[j], ch.lower);
                upper[j] = std::min(upper[j], ch.upper);
            }
            LpOptions lp_options;
            lp_options.iteration_limit = options_.lp_iteration_limit;
            lp_options.time_limit_seconds = remaining;
            lp_options.deadline = options_.deadline;
            lp_options.warm_basis = warm;
            lp_options.refactor_interval = options_.lp_refactor_interval;
            lp_options.warm_pivot_budget = options_.lp_warm_pivot_budget;
            lp_options.use_eta_basis = options_.lp_use_eta_basis;
            // Root reduced costs feed incumbent-driven bound tightening.
            lp_options.want_dual_values = is_root;
            lp = context_.solve(lower, upper, lp_options, &workspace);
            for (const BoundChange& ch : node.changes) {
                const auto j = static_cast<std::size_t>(ch.var);
                lower[j] = base_lower[j];
                upper[j] = base_upper[j];
            }
        }

        if (sink_ != nullptr) {
            if (warm != nullptr) {
                ++stats.warm_attempts;
                if (lp.warm_used) ++stats.warm_hits;
                stats.warm_wasted_pivots += lp.warm_wasted_iterations;
                if (lp.warm_abandon != WarmAbandon::kNone) {
                    ++stats.abandons[static_cast<int>(lp.warm_abandon) - 1];
                }
            }
            stats.factor_refactorizations += lp.factor.refactorizations;
            stats.factor_ft_updates += lp.factor.ft_updates;
            stats.factor_hyper_solves += lp.factor.hyper_solves;
            stats.factor_dense_solves += lp.factor.dense_solves;
            stats.factor_fill_nnz += lp.factor.fill_nnz;
            stats.factor_basis_nnz += lp.factor.basis_nnz;
            stats.pricing_list_hits += lp.pricing_hits;
            stats.pricing_rebuilds += lp.pricing_rebuilds;
            lp_iterations_per_node_->observe(static_cast<double>(lp.iterations));
        }

        // Pseudocost learning: this node's LP bound measures the degradation
        // the branch that created it actually caused. Outside the search
        // lock — the table has its own.
        if (lp.status == LpStatus::kOptimal && node.branch_var >= 0) {
            pseudocosts_.record(node.branch_var, node.branch_up, node.branch_dist,
                                sense_ * lp.objective - node.parent_bound);
        }

        std::int64_t probe_iterations = 0;
        if (lp.status == LpStatus::kOptimal && is_root && !options_.use_reference_lp &&
            options_.pseudocost_branching) {
            probe_iterations = strong_branch_root(lp, base_lower, base_upper, lower,
                                                  upper, workspace);
            if (!lp.reduced_costs.empty()) {
                const std::lock_guard lk(mu_);
                root_bound_ = sense_ * lp.objective;
                root_reduced_costs_.resize(lp.reduced_costs.size());
                for (std::size_t j = 0; j < lp.reduced_costs.size(); ++j) {
                    root_reduced_costs_[j] = sense_ * lp.reduced_costs[j];
                }
            }
        }

        const std::lock_guard lk(mu_);
        lp_iterations_ += lp.iterations + probe_iterations;

        if (lp.status == LpStatus::kInfeasible) return;
        if (lp.status == LpStatus::kIterationLimit) {
            // Cannot certify this subtree: remember its bound, drop it.
            any_lp_limit_ = true;
            residual_bound_ = std::min(residual_bound_, node.parent_bound);
            return;
        }
        if (lp.status == LpStatus::kUnbounded) {
            if (node.changes.empty()) {  // only the root can prove unboundedness
                unbounded_ = true;
                stop_ = true;
                cv_.notify_all();
            }
            return;
        }

        const double bound = sense_ * lp.objective;
        if (bound >= incumbent_ - options_.absolute_gap) return;

        snap_integers(model_, lp.values, options_.integrality_tolerance);
        const auto branch_var =
            options_.pseudocost_branching
                ? pseudocosts_.select(model_, lp.values,
                                      options_.integrality_tolerance)
                : pick_branch_var(model_, lp.values, options_.integrality_tolerance);
        if (!branch_var) {
            publish_incumbent(bound, std::move(lp.values));
            return;
        }

        const double x = lp.values[static_cast<std::size_t>(*branch_var)];
        const double floor_x = std::floor(x);
        const double frac = x - floor_x;
        Node down;
        down.changes = node.changes;
        down.changes.push_back(BoundChange{*branch_var, -kInfinity, floor_x});
        down.parent_bound = bound;
        down.branch_var = *branch_var;
        down.branch_up = false;
        down.branch_dist = frac;
        Node up;
        up.changes = std::move(node.changes);
        up.changes.push_back(BoundChange{*branch_var, floor_x + 1.0, kInfinity});
        up.parent_bound = bound;
        up.branch_var = *branch_var;
        up.branch_up = true;
        up.branch_dist = 1.0 - frac;

        // The child closer to the LP value gets the smaller sequence number,
        // so equal-bound ties pop in diving order.
        Node& first = x - floor_x < 0.5 ? down : up;
        Node& second = x - floor_x < 0.5 ? up : down;
        first.seq = next_seq_++;
        second.seq = next_seq_++;
        first.basis = lp.basis;
        second.basis = std::move(lp.basis);

        push_node(std::move(down));
        push_node(std::move(up));
        cv_.notify_all();
    }

    // Strong branching at the root: actually solves both child LPs of the
    // most fractional candidates (warm from the root basis, tight pivot
    // cap) and seeds the shared pseudocost table with the measured
    // degradations, so every later selection starts reliable instead of
    // guessing from fractions. An infeasible probe is a free fixing: that
    // side of the dichotomy is empty everywhere, so the global bound
    // tightens and every worker picks it up on its next node. Returns the
    // pivots the probes spent (charged to the search total).
    std::int64_t strong_branch_root(const LpResult& root,
                                    std::vector<double>& base_lower,
                                    std::vector<double>& base_upper,
                                    std::vector<double>& lower,
                                    std::vector<double>& upper,
                                    LpWorkspace& workspace) {
        struct Candidate {
            VarId var;
            double frac;  // distance from the nearest integer, in (tol, 0.5]
        };
        std::vector<Candidate> cands;
        for (std::size_t j = 0; j < model_.variable_count(); ++j) {
            if (model_.variable(static_cast<VarId>(j)).type == VarType::kContinuous) {
                continue;
            }
            const double x = root.values[j];
            const double f = x - std::floor(x);
            const double dist = std::min(f, 1.0 - f);
            if (dist <= options_.integrality_tolerance) continue;
            cands.push_back({static_cast<VarId>(j), dist});
        }
        std::sort(cands.begin(), cands.end(), [](const Candidate& a, const Candidate& b) {
            if (a.frac != b.frac) return a.frac > b.frac;
            return a.var < b.var;
        });
        if (cands.size() > static_cast<std::size_t>(
                               std::max(0, options_.strong_branch_candidates))) {
            cands.resize(
                static_cast<std::size_t>(options_.strong_branch_candidates));
        }

        const double root_bound = sense_ * root.objective;
        std::int64_t spent = 0;
        for (const Candidate& c : cands) {
            const auto j = static_cast<std::size_t>(c.var);
            const double x = root.values[j];
            const double floor_x = std::floor(x);
            const double f = x - floor_x;
            for (const bool up : {false, true}) {
                const double saved_lower = lower[j];
                const double saved_upper = upper[j];
                if (up) {
                    lower[j] = floor_x + 1.0;
                } else {
                    upper[j] = floor_x;
                }
                LpOptions probe;
                probe.iteration_limit = options_.strong_branch_pivot_limit;
                probe.time_limit_seconds =
                    options_.time_limit_seconds <= 0.0
                        ? 1e18
                        : std::max(0.05, options_.time_limit_seconds - seconds());
                probe.deadline = options_.deadline;
                probe.warm_basis = &root.basis;
                probe.refactor_interval = options_.lp_refactor_interval;
                probe.warm_pivot_budget = options_.lp_warm_pivot_budget;
                probe.use_eta_basis = options_.lp_use_eta_basis;
                const LpResult child = context_.solve(lower, upper, probe, &workspace);
                lower[j] = saved_lower;
                upper[j] = saved_upper;
                spent += child.iterations;
                if (child.status == LpStatus::kOptimal) {
                    const double gain = sense_ * child.objective - root_bound;
                    // A zero-degradation probe at a degenerate root vertex
                    // (every direction free to move along an alternative
                    // optimum) is noise, not signal: seeding it would brand
                    // the variable useless-to-branch everywhere and drag the
                    // table-wide fallback average toward zero. Real zero
                    // observations still arrive from processed tree nodes.
                    if (gain > options_.absolute_gap) {
                        pseudocosts_.record(c.var, up, up ? 1.0 - f : f, gain);
                    }
                } else if (child.status == LpStatus::kInfeasible) {
                    const std::lock_guard lk(mu_);
                    if (up) {
                        global_upper_[j] = std::min(global_upper_[j], floor_x);
                    } else {
                        global_lower_[j] = std::max(global_lower_[j], floor_x + 1.0);
                    }
                    ++bounds_version_;
                    base_lower[j] = global_lower_[j];
                    base_upper[j] = global_upper_[j];
                    lower[j] = base_lower[j];
                    upper[j] = base_upper[j];
                }
            }
        }
        return spent;
    }

    // Reduced-cost fixing against the fresh incumbent (mu_ must be held):
    // from LP duality, any feasible point's objective is at least
    // root_bound + d_j * (x_j - l_j) for a root reduced cost d_j > 0 (and
    // symmetrically from the upper bound for d_j < 0), so variables whose
    // movement alone would cross the incumbent-minus-gap cutoff get their
    // box clipped globally. Workers resync on the version bump.
    void tighten_from_incumbent() {
        if (root_reduced_costs_.empty() || !has_incumbent_) return;
        const double slack = (incumbent_ - options_.absolute_gap) - root_bound_;
        if (!std::isfinite(slack) || slack < 0.0) return;
        bool changed = false;
        for (std::size_t j = 0; j < root_reduced_costs_.size(); ++j) {
            const double d = root_reduced_costs_[j];
            const bool integral =
                model_.variable(static_cast<VarId>(j)).type != VarType::kContinuous;
            if (d > 1e-9 && std::isfinite(context_.model_lower()[j])) {
                double ub = context_.model_lower()[j] + slack / d;
                if (integral) ub = std::floor(ub + 1e-9);
                if (ub < global_upper_[j] - 1e-12) {
                    global_upper_[j] = std::max(ub, global_lower_[j]);
                    changed = true;
                }
            } else if (d < -1e-9 && std::isfinite(context_.model_upper()[j])) {
                double lb = context_.model_upper()[j] + slack / d;
                if (integral) lb = std::ceil(lb - 1e-9);
                if (lb > global_lower_[j] + 1e-12) {
                    global_lower_[j] = std::min(lb, global_upper_[j]);
                    changed = true;
                }
            }
        }
        if (changed) ++bounds_version_;
    }

    // mu_ must be held.
    void push_node(Node node) {
        open_.push_back(std::move(node));
        std::push_heap(open_.begin(), open_.end(), NodeOrder{});
    }

    // mu_ must be held. Deterministic across schedules for the objective;
    // on exact objective ties the lexicographically smallest assignment wins.
    void publish_incumbent(double bound, std::vector<double> values) {
        const bool better = bound < incumbent_ - kIncumbentTieEps;
        const bool tie_break = std::abs(bound - incumbent_) <= kIncumbentTieEps &&
                               lexicographically_less(values, incumbent_values_);
        if (!better && !tie_break) return;
        incumbent_ = std::min(incumbent_, bound);
        incumbent_values_ = std::move(values);
        has_incumbent_ = true;
        if (better) tighten_from_incumbent();
        // Prune on publish: open nodes that can no longer beat the incumbent
        // are dropped immediately instead of at pop time.
        const double cutoff = incumbent_ - options_.absolute_gap;
        std::erase_if(open_, [&](const Node& n) { return n.parent_bound >= cutoff; });
        std::make_heap(open_.begin(), open_.end(), NodeOrder{});
    }

    const Model& model_;
    const MilpOptions& options_;
    const LpContext context_;  // shared, immutable; bounds live per worker
    const double sense_;
    const Clock::time_point start_;
    obs::Sink* const sink_;
    obs::Counter* warm_attempts_ = nullptr;
    obs::Counter* warm_hits_ = nullptr;
    obs::Counter* warm_misses_ = nullptr;
    obs::Counter* idle_ns_ = nullptr;
    obs::Histogram* lp_iterations_per_node_ = nullptr;

    std::mutex mu_;
    std::condition_variable cv_;
    std::vector<Node> open_;  // best-bound min-heap via NodeOrder
    std::size_t in_flight_ = 0;
    bool stop_ = false;
    bool hit_limit_ = false;
    bool hit_time_limit_ = false;  // wall-clock/deadline specifically
    bool unbounded_ = false;
    bool any_lp_limit_ = false;
    double incumbent_ = kInf;  // minimization space
    bool has_incumbent_ = false;
    std::vector<double> incumbent_values_;
    double residual_bound_ = kInf;
    std::int64_t nodes_ = 0;
    std::int64_t lp_iterations_ = 0;
    std::uint64_t next_seq_ = 1;

    // Shared branching state: pseudocosts have their own lock; the global
    // bound box and its version are guarded by mu_ and mirrored into each
    // worker's base vectors on version mismatch.
    PseudocostTable pseudocosts_;
    std::vector<double> global_lower_;
    std::vector<double> global_upper_;
    std::uint64_t bounds_version_ = 1;  // workers start at 0, so they sync once
    std::vector<double> root_reduced_costs_;  // minimization sense; root only
    double root_bound_ = -kInf;
};

}  // namespace

const char* to_string(MilpStatus s) noexcept {
    switch (s) {
        case MilpStatus::kOptimal: return "optimal";
        case MilpStatus::kFeasible: return "feasible";
        case MilpStatus::kTimeLimit: return "time-limit";
        case MilpStatus::kInfeasible: return "infeasible";
        case MilpStatus::kNoSolution: return "no-solution";
        case MilpStatus::kUnbounded: return "unbounded";
    }
    return "?";
}

namespace {

// Search preceded by the root cut loop: the model is copied, augmented with
// the surviving cut pool, and searched. Cuts are valid for the integer
// hull, so the objective is identical with or without them.
MilpResult search_with_cuts(const Model& model, const MilpOptions& options) {
    if (options.cut_rounds <= 0) {
        Search search(model, options);
        return search.run();
    }
    Model cut_model = model;
    CutOptions cut_options;
    cut_options.max_rounds = options.cut_rounds;
    if (options.time_limit_seconds > 0.0) {
        // The loop is a root-strengthening preamble; cap it well below the
        // search budget so a slow separation can never starve the tree.
        cut_options.time_limit_seconds = 0.2 * options.time_limit_seconds;
    }
    run_root_cut_loop(cut_model, cut_options, options.sink);
    Search search(cut_model, options);
    return search.run();
}

}  // namespace

MilpResult solve_milp(const Model& model, const MilpOptions& options) {
    if (options.decompose) {
        return solve_benders(model, options);
    }
    if (!options.presolve) {
        return search_with_cuts(model, options);
    }
    const PresolveResult pre = presolve(model);
    if (pre.infeasible) {
        MilpResult result;
        result.status = MilpStatus::kInfeasible;
        return result;
    }
    MilpOptions reduced_options = options;
    if (options.warm_start) {
        // Carry the starting assignment into the reduced space; drop it when
        // it contradicts a presolve fixing (it was infeasible anyway).
        std::vector<double> reduced_start;
        if (pre.restrict(*options.warm_start, reduced_start,
                         options.integrality_tolerance * 10)) {
            reduced_options.warm_start = std::move(reduced_start);
        } else {
            reduced_options.warm_start.reset();
        }
    }
    MilpResult result = search_with_cuts(pre.reduced, reduced_options);
    if (result.has_solution()) {
        result.values = pre.postsolve(result.values);
        // The reduced objective already carries the fixed contributions as a
        // constant; re-evaluating on the original model just sheds the
        // accumulated float noise.
        result.objective = model.objective_value(result.values);
    }
    return result;
}

}  // namespace hermes::milp
