#include "milp/model.h"

#include <cmath>
#include <stdexcept>

namespace hermes::milp {

VarId Model::add_variable(Variable v) {
    if (v.lower > v.upper) {
        throw std::invalid_argument("Model: variable '" + v.name + "' has lower > upper");
    }
    if (v.name.empty()) v.name = "x" + std::to_string(variables_.size());
    variables_.push_back(std::move(v));
    return static_cast<VarId>(variables_.size()) - 1;
}

VarId Model::add_continuous(double lower, double upper, std::string name) {
    return add_variable(Variable{std::move(name), VarType::kContinuous, lower, upper});
}

VarId Model::add_integer(double lower, double upper, std::string name) {
    return add_variable(Variable{std::move(name), VarType::kInteger, lower, upper});
}

VarId Model::add_binary(std::string name) {
    return add_variable(Variable{std::move(name), VarType::kBinary, 0.0, 1.0});
}

void Model::add_constraint(LinExpr expr, Sense sense, double rhs, std::string name) {
    for (const Term& t : expr.terms()) {
        if (static_cast<std::size_t>(t.var) >= variables_.size()) {
            throw std::out_of_range("Model::add_constraint: unknown variable id");
        }
    }
    const double folded_rhs = rhs - expr.constant();
    LinExpr lhs = std::move(expr);
    lhs.add_constant(-lhs.constant());
    if (name.empty()) name = "c" + std::to_string(constraints_.size());
    constraints_.push_back(Constraint{std::move(lhs), sense, folded_rhs, std::move(name)});
}

void Model::minimize(LinExpr objective) {
    objective_ = std::move(objective);
    minimize_ = true;
}

void Model::maximize(LinExpr objective) {
    objective_ = std::move(objective);
    minimize_ = false;
}

const Variable& Model::variable(VarId v) const {
    if (v < 0 || static_cast<std::size_t>(v) >= variables_.size()) {
        throw std::out_of_range("Model::variable: bad id");
    }
    return variables_[static_cast<std::size_t>(v)];
}

void Model::set_lower(VarId v, double lower) {
    if (v < 0 || static_cast<std::size_t>(v) >= variables_.size()) {
        throw std::out_of_range("Model::set_lower: bad id");
    }
    variables_[static_cast<std::size_t>(v)].lower = lower;
}

void Model::set_upper(VarId v, double upper) {
    if (v < 0 || static_cast<std::size_t>(v) >= variables_.size()) {
        throw std::out_of_range("Model::set_upper: bad id");
    }
    variables_[static_cast<std::size_t>(v)].upper = upper;
}

std::vector<double> Model::lower_bounds() const {
    std::vector<double> out;
    out.reserve(variables_.size());
    for (const Variable& v : variables_) out.push_back(v.lower);
    return out;
}

std::vector<double> Model::upper_bounds() const {
    std::vector<double> out;
    out.reserve(variables_.size());
    for (const Variable& v : variables_) out.push_back(v.upper);
    return out;
}

bool Model::is_feasible(const std::vector<double>& values, double tolerance) const {
    if (values.size() != variables_.size()) return false;
    for (std::size_t i = 0; i < variables_.size(); ++i) {
        const Variable& v = variables_[i];
        if (values[i] < v.lower - tolerance || values[i] > v.upper + tolerance) {
            return false;
        }
        if (v.type != VarType::kContinuous &&
            std::abs(values[i] - std::round(values[i])) > tolerance) {
            return false;
        }
    }
    for (const Constraint& c : constraints_) {
        const double lhs = c.expr.evaluate(values);
        switch (c.sense) {
            case Sense::kLe:
                if (lhs > c.rhs + tolerance) return false;
                break;
            case Sense::kGe:
                if (lhs < c.rhs - tolerance) return false;
                break;
            case Sense::kEq:
                if (std::abs(lhs - c.rhs) > tolerance) return false;
                break;
        }
    }
    return true;
}

double Model::objective_value(const std::vector<double>& values) const {
    return objective_.evaluate(values);
}

}  // namespace hermes::milp
