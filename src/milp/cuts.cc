#include "milp/cuts.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <string>
#include <set>
#include <utility>

#include "milp/simplex.h"
#include "obs/obs.h"

namespace hermes::milp {

namespace {

constexpr double kTightTol = 1e-6;

// A variable usable in cover/clique cuts: an integer restricted to {0, 1}.
bool is_binary(const Variable& v) {
    return v.type != VarType::kContinuous && v.lower >= 0.0 && v.upper <= 1.0;
}

// True for rows of knapsack shape: `<=` over binaries with positive weights.
// `kEq` rows qualify for the conflict graph too (their `<=` half).
bool knapsack_shape(const Model& model, const Constraint& c) {
    if (c.sense == Sense::kGe) return false;
    if (c.expr.terms().size() < 2) return false;
    for (const Term& t : c.expr.terms()) {
        if (t.coef <= 0.0) return false;
        if (!is_binary(model.variable(t.var))) return false;
    }
    return true;
}

// Canonical signature for de-duplicating cuts against each other: the terms
// vector is already sorted by variable id (LinExpr invariant).
std::string key_of(const Cut& cut) {
    std::string key;
    for (const Term& t : cut.expr.terms()) {
        key += std::to_string(t.var);
        key += ':';
        key += std::to_string(t.coef);
        key += ';';
    }
    key += '|';
    key += std::to_string(cut.rhs);
    return key;
}

}  // namespace

std::vector<Cut> separate_cover_cuts(const Model& model,
                                     const std::vector<double>& values,
                                     std::size_t max_cuts, double min_violation,
                                     const std::vector<std::size_t>* rows) {
    std::vector<Cut> cuts;
    std::vector<std::size_t> all;
    if (rows == nullptr) {
        all.resize(model.constraint_count());
        for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
        rows = &all;
    }
    for (const std::size_t row : *rows) {
        if (cuts.size() >= max_cuts) break;
        const Constraint& c = model.constraints()[row];
        if (c.sense != Sense::kLe || !knapsack_shape(model, c)) continue;
        const double b = c.rhs;
        if (b <= 0.0) continue;

        // Greedy minimal cover: take items by ascending (1 - x_j) / a_j —
        // cheapest violation per unit of weight — until the capacity is
        // exceeded, then drop members that are not needed to keep it
        // exceeded (heaviest first, so the surviving cover is small).
        struct Item {
            VarId var;
            double weight;
            double x;
        };
        std::vector<Item> items;
        double total = 0.0;
        for (const Term& t : c.expr.terms()) {
            items.push_back({t.var, t.coef, values[static_cast<std::size_t>(t.var)]});
            total += t.coef;
        }
        if (total <= b + kTightTol) continue;  // no cover exists
        std::sort(items.begin(), items.end(), [](const Item& l, const Item& r) {
            const double lk = (1.0 - l.x) / l.weight;
            const double rk = (1.0 - r.x) / r.weight;
            if (lk != rk) return lk < rk;
            return l.var < r.var;
        });
        std::vector<Item> cover;
        double weight = 0.0;
        for (const Item& it : items) {
            cover.push_back(it);
            weight += it.weight;
            if (weight > b + kTightTol) break;
        }
        if (weight <= b + kTightTol) continue;
        std::sort(cover.begin(), cover.end(), [](const Item& l, const Item& r) {
            if (l.weight != r.weight) return l.weight > r.weight;
            return l.var < r.var;
        });
        std::erase_if(cover, [&](const Item& it) {
            if (weight - it.weight > b + kTightTol) {
                weight -= it.weight;
                return true;
            }
            return false;
        });

        // Extended cover: every non-member at least as heavy as the heaviest
        // cover member joins with coefficient 1 — still valid, never weaker.
        double heaviest = 0.0;
        double lhs = 0.0;
        for (const Item& it : cover) {
            heaviest = std::max(heaviest, it.weight);
            lhs += it.x;
        }
        Cut cut;
        cut.rhs = static_cast<double>(cover.size()) - 1.0;
        for (const Item& it : cover) cut.expr.add_term(it.var, 1.0);
        for (const Item& it : items) {
            if (cut.expr.coefficient(it.var) != 0.0) continue;
            if (it.weight >= heaviest - kTightTol) {
                cut.expr.add_term(it.var, 1.0);
                lhs += it.x;
            }
        }
        if (lhs - cut.rhs < min_violation) continue;
        cut.name = "cut_cover_" +
                   (c.name.empty() ? std::to_string(row) : c.name);
        cuts.push_back(std::move(cut));
    }
    return cuts;
}

std::vector<Cut> separate_clique_cuts(const Model& model,
                                      const std::vector<double>& values,
                                      std::size_t max_cuts, double min_violation,
                                      const std::vector<std::size_t>* rows) {
    // Candidates: binaries with meaningful LP mass, largest first — a clique
    // cut needs its members' values to sum past 1. Capped so the pairwise
    // conflict scan stays cheap on wide models.
    constexpr std::size_t kMaxCandidates = 64;
    constexpr double kMinMass = 0.05;
    struct Cand {
        VarId var;
        double x;
    };
    std::vector<Cand> cands;
    for (std::size_t j = 0; j < model.variable_count(); ++j) {
        const auto v = static_cast<VarId>(j);
        if (!is_binary(model.variable(v))) continue;
        if (values[j] >= kMinMass) cands.push_back({v, values[j]});
    }
    std::sort(cands.begin(), cands.end(), [](const Cand& l, const Cand& r) {
        if (l.x != r.x) return l.x > r.x;
        return l.var < r.var;
    });
    if (cands.size() > kMaxCandidates) cands.resize(kMaxCandidates);
    if (cands.size() < 2) return {};

    std::vector<std::int32_t> slot(model.variable_count(), -1);
    for (std::size_t i = 0; i < cands.size(); ++i) {
        slot[static_cast<std::size_t>(cands[i].var)] = static_cast<std::int32_t>(i);
    }

    // Conflict graph over the candidates: i ~ j when some knapsack row's
    // capacity cannot fit both weights (assignment equalities conflict every
    // pair; AND-linearization rows never qualify as knapsacks).
    std::vector<std::size_t> all;
    if (rows == nullptr) {
        all.resize(model.constraint_count());
        for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
        rows = &all;
    }
    std::vector<std::vector<std::uint8_t>> conflict(
        cands.size(), std::vector<std::uint8_t>(cands.size(), 0));
    for (const std::size_t row : *rows) {
        const Constraint& c = model.constraints()[row];
        if (!knapsack_shape(model, c)) continue;
        std::vector<std::pair<std::int32_t, double>> members;
        for (const Term& t : c.expr.terms()) {
            const std::int32_t s = slot[static_cast<std::size_t>(t.var)];
            if (s >= 0) members.emplace_back(s, t.coef);
        }
        for (std::size_t a = 0; a < members.size(); ++a) {
            for (std::size_t b = a + 1; b < members.size(); ++b) {
                if (members[a].second + members[b].second > c.rhs + kTightTol) {
                    conflict[static_cast<std::size_t>(members[a].first)]
                            [static_cast<std::size_t>(members[b].first)] = 1;
                    conflict[static_cast<std::size_t>(members[b].first)]
                            [static_cast<std::size_t>(members[a].first)] = 1;
                }
            }
        }
    }

    std::vector<Cut> cuts;
    std::set<std::string> seen;
    for (std::size_t seed = 0; seed < cands.size() && cuts.size() < max_cuts; ++seed) {
        // Grow greedily from the seed: always the largest-mass candidate
        // conflicting with every current member (lowest id on ties, via the
        // candidate ordering above).
        std::vector<std::size_t> clique{seed};
        double mass = cands[seed].x;
        for (std::size_t i = 0; i < cands.size(); ++i) {
            if (i == seed) continue;
            bool ok = true;
            for (const std::size_t m : clique) {
                if (!conflict[i][m]) {
                    ok = false;
                    break;
                }
            }
            if (ok) {
                clique.push_back(i);
                mass += cands[i].x;
            }
        }
        if (clique.size() < 2 || mass < 1.0 + min_violation) continue;
        Cut cut;
        cut.rhs = 1.0;
        for (const std::size_t m : clique) cut.expr.add_term(cands[m].var, 1.0);
        cut.name = "cut_clique_" + std::to_string(cands[seed].var);
        if (!seen.insert(key_of(cut)).second) continue;
        cuts.push_back(std::move(cut));
    }
    return cuts;
}

CutStats run_root_cut_loop(Model& model, const CutOptions& options, obs::Sink* sink) {
    using Clock = std::chrono::steady_clock;
    const auto start = Clock::now();
    CutStats stats;
    const double sense = model.is_minimization() ? 1.0 : -1.0;
    std::vector<Cut> pool;
    std::set<std::string> seen;
    Basis warm;  // carries the previous round's optimum across re-solves

    for (int round = 0; round < options.max_rounds; ++round) {
        double remaining = 1e18;
        if (options.time_limit_seconds > 0.0) {
            remaining = options.time_limit_seconds -
                        std::chrono::duration<double>(Clock::now() - start).count();
            if (remaining <= 0.0) break;
        }
        // Working model = base rows + the live pool. Rebuilt per round so a
        // retired cut genuinely leaves the LP.
        Model work = model;
        for (const Cut& cut : pool) {
            work.add_constraint(cut.expr, Sense::kLe, cut.rhs, cut.name);
        }
        LpOptions lp_options;
        lp_options.time_limit_seconds = remaining;
        lp_options.warm_basis = warm.empty() ? nullptr : &warm;
        const LpResult lp = solve_lp(work, lp_options);
        if (lp.status != LpStatus::kOptimal) break;
        warm = lp.basis;
        stats.rounds = round + 1;
        stats.root_bound_after = sense * lp.objective;
        if (round == 0) stats.root_bound_before = stats.root_bound_after;

        // Age the pool on this round's optimum; retire the persistently
        // slack. Retirement invalidates the warm basis row space, so drop it.
        bool retired_any = false;
        for (Cut& cut : pool) {
            cut.slack_rounds =
                cut.violation(lp.values) > -kTightTol ? 0 : cut.slack_rounds + 1;
        }
        std::erase_if(pool, [&](const Cut& cut) {
            if (cut.slack_rounds > options.max_age) {
                ++stats.retired;
                retired_any = true;
                return true;
            }
            return false;
        });
        if (retired_any) warm = Basis{};

        const std::vector<std::size_t>* rows =
            options.knapsack_rows.empty() ? nullptr : &options.knapsack_rows;
        std::vector<Cut> fresh =
            separate_cover_cuts(model, lp.values, options.max_cuts_per_round,
                                options.min_violation, rows);
        const std::size_t covers = fresh.size();
        std::vector<Cut> cliques =
            separate_clique_cuts(model, lp.values, options.max_cuts_per_round,
                                 options.min_violation, rows);
        fresh.insert(fresh.end(), std::make_move_iterator(cliques.begin()),
                     std::make_move_iterator(cliques.end()));
        std::size_t added = 0;
        std::size_t added_covers = 0;
        for (std::size_t i = 0; i < fresh.size(); ++i) {
            if (!seen.insert(key_of(fresh[i])).second) continue;
            pool.push_back(std::move(fresh[i]));
            ++added;
            if (i < covers) ++added_covers;
        }
        stats.cover_cuts += static_cast<std::int64_t>(added_covers);
        stats.clique_cuts += static_cast<std::int64_t>(added - added_covers);
        if (added == 0) break;  // separation is dry; the pool is stable
        warm = Basis{};         // new rows change the LP shape
    }

    for (const Cut& cut : pool) {
        model.add_constraint(cut.expr, Sense::kLe, cut.rhs, cut.name);
    }
    if (sink != nullptr) {
        sink->counter("cuts.rounds").add(stats.rounds);
        sink->counter("cuts.cover").add(stats.cover_cuts);
        sink->counter("cuts.clique").add(stats.clique_cuts);
        sink->counter("cuts.retired").add(stats.retired);
    }
    return stats;
}

}  // namespace hermes::milp
