// MILP solver: LP-relaxation branch and bound.
//
// Depth-first search with best-first diving (the child whose bound tightens
// toward the LP value is explored first), most-fractional branching,
// incumbent pruning, optional warm start (e.g. from the Hermes greedy
// heuristic), and wall-clock/node limits. On limit expiry the best incumbent
// is returned with status kFeasible — exactly how the paper's time-limited
// Gurobi runs behave in Exp#3.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "milp/model.h"
#include "milp/simplex.h"

namespace hermes::milp {

enum class MilpStatus : std::uint8_t {
    kOptimal,     // proven optimal
    kFeasible,    // limit hit with an incumbent in hand
    kInfeasible,  // proven infeasible
    kNoSolution,  // limit hit before any incumbent was found
    kUnbounded,
};

[[nodiscard]] const char* to_string(MilpStatus s) noexcept;

struct MilpOptions {
    double time_limit_seconds = 60.0;
    std::int64_t node_limit = 1'000'000;
    long lp_iteration_limit = 200000;
    double integrality_tolerance = 1e-6;
    double absolute_gap = 1e-6;  // stop when incumbent - bound <= gap
    // Feasible starting assignment (checked; ignored when infeasible).
    std::optional<std::vector<double>> warm_start;
};

struct MilpResult {
    MilpStatus status = MilpStatus::kNoSolution;
    double objective = 0.0;
    std::vector<double> values;
    double best_bound = 0.0;       // proven bound on the optimum
    std::int64_t nodes = 0;        // branch-and-bound nodes processed
    long lp_iterations = 0;        // total simplex pivots
    double elapsed_seconds = 0.0;

    [[nodiscard]] bool has_solution() const noexcept {
        return status == MilpStatus::kOptimal || status == MilpStatus::kFeasible;
    }
};

// Solves `model` to optimality or until a limit expires.
[[nodiscard]] MilpResult solve_milp(const Model& model, const MilpOptions& options = {});

}  // namespace hermes::milp
