// MILP solver: LP-relaxation branch and bound, parallel across nodes.
//
// The model is presolved once (milp/presolve.h) and converted once into an
// immutable LpContext shared by every worker; a node LP is then just a pair
// of per-worker bound vectors against that matrix — nothing per-node is
// rebuilt. A pool of std::jthread workers drains a mutex-protected,
// best-bound-ordered open list (ties broken by a deterministic node sequence
// number, so a single-threaded run is fully reproducible and any thread
// count returns the same objective). Each node carries its parent's optimal
// simplex basis as an eta-file reload: the child solve refactorizes that
// basis and lets phase 1 repair the handful of rows the branching bound
// change disturbed, which typically takes a few pivots instead of a cold
// two-phase solve. Incumbents are published under the open-list lock with a
// lexicographic tie-break on equal objectives, and every publish prunes the
// open list in place. Limits stop the search with the best incumbent in
// hand — node/iteration caps return it as kFeasible, the wall-clock budget
// or a tripped Deadline token as kTimeLimit — exactly how the paper's
// time-limited Gurobi runs behave in Exp#3.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/options.h"
#include "milp/model.h"
#include "milp/simplex.h"

namespace hermes::milp {

enum class MilpStatus : std::uint8_t {
    kOptimal,     // proven optimal
    kFeasible,    // node/iteration limit hit with an incumbent in hand
    kTimeLimit,   // wall-clock budget or Deadline token hit with an incumbent
    kInfeasible,  // proven infeasible
    kNoSolution,  // limit hit before any incumbent was found
    kUnbounded,
};

[[nodiscard]] const char* to_string(MilpStatus s) noexcept;

// The common knobs (threads, seed, time_limit_seconds, iteration_limit,
// verbosity, sink, deadline) are inherited from core::CommonOptions:
// `threads` is the branch-and-bound worker count (0 = hardware concurrency),
// `time_limit_seconds` the search's wall-clock budget (default 60 s; any
// value <= 0 means "no budget" — here, in the LP kernel, and in every warm
// re-solve alike), `iteration_limit` a cap on the total simplex pivots
// across the whole search, `sink` makes the search record per-worker trace
// lanes plus bb.*/lp.* counters, and an active `deadline` token is polled by
// every worker between nodes and inside the simplex pivot loops — expiry
// stops the search cooperatively and returns the incumbent as kTimeLimit
// (kNoSolution when there is none) instead of throwing.
struct MilpOptions : core::CommonOptions {
    MilpOptions() noexcept { time_limit_seconds = 60.0; }

    std::int64_t node_limit = 1'000'000;
    // Pivot cap for one node LP (distinct from the search-wide
    // CommonOptions::iteration_limit).
    std::int64_t lp_iteration_limit = 200000;
    double integrality_tolerance = 1e-6;
    double absolute_gap = 1e-6;  // stop when incumbent - bound <= gap
    // Warm start child LPs from the parent's exported basis (disable only to
    // measure the cold-solve baseline; results are identical either way).
    bool warm_lp_basis = true;
    // Run the presolve reductions once before the root relaxation; the search
    // then operates on the reduced model and the returned assignment is
    // postsolved back to the original space. The objective is identical
    // either way.
    bool presolve = true;
    // Solve node LPs with the retained dense tableau kernel
    // (milp/simplex_reference.h) instead of the revised sparse one. A
    // benchmarking/debugging aid — results are identical, the dense path is
    // just slower and rebuilds its standard form on every node.
    bool use_reference_lp = false;
    // Solve node LPs with the retained eta-file kernel instead of the sparse
    // LU one (forwarded to LpOptions::use_eta_basis). An A/B equivalence and
    // numerical-fallback aid — results are identical.
    bool lp_use_eta_basis = false;
    // Pivots since the last factorization that force a refactorization in
    // the revised LP kernel (forwarded to LpOptions::refactor_interval).
    int lp_refactor_interval = 64;
    // Pivot allowance for one warm LP attempt before it abandons to cold
    // (forwarded to LpOptions::warm_pivot_budget; 0 = the kernel's auto
    // heuristic).
    std::int64_t lp_warm_pivot_budget = 0;
    // Root cutting-plane rounds (milp/cuts.h): knapsack cover + clique cuts
    // separated at the root relaxation before the search starts. Every cut
    // is valid for the integer hull, so the objective is identical with any
    // value; 0 disables the loop.
    int cut_rounds = 4;
    // Branch on shared pseudocosts (milp/branching.h), seeded by strong
    // branching at the root, instead of most-fractional. Off = the plain
    // most-fractional rule (kept for A/B benchmarking).
    bool pseudocost_branching = true;
    // Fractional root candidates probed by strong branching, and the pivot
    // cap for each probe LP. Probes that report zero degradation (routine at
    // the degenerate vertices the LU kernel lands on) are discarded rather
    // than seeded, so widening the list past this point only buys root time,
    // not smaller trees — 8 is the measured knee on the P#1-scale instances.
    int strong_branch_candidates = 8;
    std::int64_t strong_branch_pivot_limit = 400;
    // Benders-style decomposition (milp/decompose.h): a placement master
    // over everything but the per-pair path variables, plus per-pair path
    // subproblems generating optimality/feasibility cuts. Falls back to the
    // monolithic search when the model has no path seam.
    bool decompose = false;
    // Feasible starting assignment (checked; ignored when infeasible).
    std::optional<std::vector<double>> warm_start;
};

struct MilpResult {
    MilpStatus status = MilpStatus::kNoSolution;
    double objective = 0.0;
    std::vector<double> values;
    double best_bound = 0.0;           // proven bound on the optimum
    std::int64_t nodes = 0;            // branch-and-bound nodes processed
    std::int64_t lp_iterations = 0;    // total simplex pivots
    double elapsed_seconds = 0.0;

    [[nodiscard]] bool has_solution() const noexcept {
        return status == MilpStatus::kOptimal || status == MilpStatus::kFeasible ||
               status == MilpStatus::kTimeLimit;
    }
};

// Solves `model` to optimality or until a limit expires. The objective of
// the result is deterministic for any `threads` value; on instances with
// multiple optima the returned assignment may differ between thread counts
// (all returned assignments are model-feasible).
[[nodiscard]] MilpResult solve_milp(const Model& model, const MilpOptions& options = {});

}  // namespace hermes::milp
