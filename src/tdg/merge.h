// SPEED-style TDG merging (§IV, Algorithm 1 lines 4-8).
//
// Different programs exhibit redundancy (e.g. every sketch computes hash
// indexes the same way). Merging unions the node/edge sets of two TDGs and
// then contracts *redundant* MATs — structurally identical tables — so the
// shared work is deployed once. Contractions that would create a cycle are
// skipped, keeping the merged TDG a DAG.
#pragma once

#include <vector>

#include "tdg/tdg.h"

namespace hermes::tdg {

// Union of two TDGs (no deduplication).
[[nodiscard]] Tdg graph_union(const Tdg& t1, const Tdg& t2);

// Contracts structurally redundant MATs in-place. Returns the number of
// nodes eliminated. Edges into/out of an eliminated node are redirected to
// its surviving twin; duplicate edges and would-be self-loops are dropped.
// `new_from` restricts the scan to pairs with at least one node id >=
// new_from — incremental merging only needs to compare fresh nodes against
// the (already deduplicated) prefix.
std::size_t deduplicate(Tdg& t, std::size_t new_from = 0);

// Merges two TDGs: union + deduplicate.
[[nodiscard]] Tdg merge(const Tdg& t1, const Tdg& t2);

// Merges a whole set of TDGs into the merged TDG T_m (pairwise, in order).
// Throws std::invalid_argument on an empty input set.
[[nodiscard]] Tdg merge_all(std::vector<Tdg> tdgs);

}  // namespace hermes::tdg
