// Packet fields referenced by match-action tables.
//
// A field is either a *header* field (already present in every packet; it
// costs nothing to communicate between switches) or a *metadata* field
// (produced by switch processing; it must be piggybacked on packets when its
// producer and consumer MATs land on different switches). The distinction is
// the heart of the paper: only metadata fields contribute to the per-packet
// byte overhead A(a,b).
#pragma once

#include <compare>
#include <string>
#include <vector>

namespace hermes::tdg {

enum class FieldKind : std::uint8_t {
    kHeader,    // resides in the packet already (e.g. ipv4.src_addr)
    kMetadata,  // produced on-switch (e.g. hash index, queue depth)
};

struct Field {
    std::string name;
    FieldKind kind = FieldKind::kHeader;
    int size_bytes = 0;

    [[nodiscard]] bool is_metadata() const noexcept { return kind == FieldKind::kMetadata; }

    friend bool operator==(const Field&, const Field&) = default;
    friend auto operator<=>(const Field&, const Field&) = default;
};

// Convenience constructors used throughout the program library and tests.
[[nodiscard]] Field header_field(std::string name, int size_bytes);
[[nodiscard]] Field metadata_field(std::string name, int size_bytes);

// The metadata catalog of Table I in the paper.
namespace common_metadata {
[[nodiscard]] Field switch_identifier();  // 4 bytes: path tracing/conformance
[[nodiscard]] Field queue_lengths();      // 6 bytes: congestion control
[[nodiscard]] Field timestamps();         // 12 bytes: troubleshooting/anomaly
[[nodiscard]] Field counter_index();      // 4 bytes: hash tables, sketches
}  // namespace common_metadata

// Total size of the metadata fields in `fields`, deduplicated by field name
// (the same metadata field appearing in several sets is carried once).
[[nodiscard]] int metadata_bytes(const std::vector<Field>& fields);

}  // namespace hermes::tdg
