#include "tdg/analyzer.h"

#include <map>

#include "obs/obs.h"
#include "tdg/field.h"
#include "tdg/merge.h"

namespace hermes::tdg {

int edge_metadata_bytes(const Mat& a, const Mat& b, DepType type) {
    switch (type) {
        case DepType::kMatch:
        case DepType::kSuccessor:
            return metadata_bytes(a.modified_fields());
        case DepType::kAction: {
            std::vector<Field> fields = a.modified_fields();
            fields.insert(fields.end(), b.modified_fields().begin(),
                          b.modified_fields().end());
            return metadata_bytes(fields);  // deduplicates by name
        }
        case DepType::kReverseMatch:
            return 0;
    }
    return 0;
}

void analyze(Tdg& t) {
    for (Edge& e : t.edges()) {
        e.metadata_bytes = edge_metadata_bytes(t.node(e.from), t.node(e.to), e.type);
    }
}

namespace {

// Word-parallel reachability bitsets: reach.test(u, v) iff a path u -> v
// exists. O(n * E / 64) per transitive union.
class ReachMatrix {
public:
    explicit ReachMatrix(std::size_t n)
        : n_(n), words_((n + 63) / 64), bits_(n * words_, 0) {}

    [[nodiscard]] bool test(std::size_t u, std::size_t v) const noexcept {
        return (bits_[u * words_ + v / 64] >> (v % 64)) & 1u;
    }
    void set(std::size_t u, std::size_t v) noexcept {
        bits_[u * words_ + v / 64] |= std::uint64_t{1} << (v % 64);
    }
    // reach[u] |= reach[v]
    void merge_row(std::size_t u, std::size_t v) noexcept {
        for (std::size_t w = 0; w < words_; ++w) {
            bits_[u * words_ + w] |= bits_[v * words_ + w];
        }
    }

private:
    std::size_t n_;
    std::size_t words_;
    std::vector<std::uint64_t> bits_;
};

ReachMatrix reachability(const Tdg& t) {
    const std::size_t n = t.node_count();
    ReachMatrix reach(n);
    // Successor adjacency once, then reverse-topological accumulation.
    std::vector<std::vector<NodeId>> successors(n);
    for (const Edge& e : t.edges()) successors[e.from].push_back(e.to);
    const std::vector<NodeId> topo = t.topological_order();
    for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
        const NodeId u = *it;
        for (const NodeId v : successors[u]) {
            reach.set(u, v);
            reach.merge_row(u, v);
        }
    }
    return reach;
}

}  // namespace

std::size_t add_write_conflict_edges(Tdg& t) {
    const std::size_t n = t.node_count();
    if (n == 0) return 0;
    const std::vector<NodeId> topo = t.topological_order();
    auto reach = reachability(t);

    // Adding an edge earlier-pos -> later-pos keeps the current topological
    // order valid, so positions never need recomputation; reachability is
    // maintained incrementally: every ancestor of `first` (and `first`
    // itself) now also reaches `second` and its descendants.
    auto add_ordered = [&](NodeId first, NodeId second, DepType type) {
        t.add_edge(first, second, type);
        for (std::size_t x = 0; x < n; ++x) {
            if (x != first && !reach.test(x, first)) continue;
            reach.set(x, second);
            reach.merge_row(x, second);
        }
    };

    // Per field: every MAT touching it (writer and/or reader), in topological
    // order. Chaining consecutive accesses — writer-to-writer (A), last
    // writer to each following reader (M), readers to the next writer (R) —
    // totally orders writes and pins every read between two writes, with a
    // linear number of edges (pairwise ordering would add O(k²) edges per
    // field and inflate the metadata accounting).
    struct Access {
        NodeId node;
        bool writes;
        bool reads;
    };
    std::map<std::string, std::vector<Access>> touchers;
    for (const NodeId v : topo) {
        std::map<std::string, Access> local;
        for (const Field& f : t.node(v).modified_fields()) {
            local.try_emplace(f.name, Access{v, false, false}).first->second.writes = true;
        }
        for (const Field& f : t.node(v).match_fields()) {
            local.try_emplace(f.name, Access{v, false, false}).first->second.reads = true;
        }
        for (const auto& [name, access] : local) touchers[name].push_back(access);
    }

    std::size_t added = 0;
    auto order_pair = [&](NodeId a, NodeId b, DepType type) {
        if (a == b || reach.test(a, b) || reach.test(b, a)) return;
        add_ordered(a, b, type);
        ++added;
    };
    for (const auto& [field, accesses] : touchers) {
        std::optional<NodeId> last_writer;
        std::vector<NodeId> readers_since_write;
        for (const Access& access : accesses) {
            if (access.writes) {
                if (last_writer) {
                    order_pair(*last_writer, access.node, DepType::kAction);
                }
                for (const NodeId r : readers_since_write) {
                    order_pair(r, access.node, DepType::kReverseMatch);
                }
                last_writer = access.node;
                readers_since_write.clear();
            }
            if (access.reads && !access.writes) {
                if (last_writer) {
                    order_pair(*last_writer, access.node, DepType::kMatch);
                }
                readers_since_write.push_back(access.node);
            }
        }
    }
    return added;
}

Tdg analyze_programs(std::vector<Tdg> programs, obs::Sink* sink) {
    Tdg merged = [&] {
        obs::Span span(sink, "analyzer.merge");
        return merge_all(std::move(programs));
    }();
    std::size_t conflict_edges = 0;
    {
        obs::Span span(sink, "analyzer.conflict_edges");
        conflict_edges = add_write_conflict_edges(merged);
    }
    {
        obs::Span span(sink, "analyzer.annotate");
        analyze(merged);
    }
    if (sink) {
        sink->counter("analyzer.nodes").add(static_cast<std::int64_t>(merged.node_count()));
        sink->counter("analyzer.edges").add(static_cast<std::int64_t>(merged.edges().size()));
        sink->counter("analyzer.conflict_edges").add(static_cast<std::int64_t>(conflict_edges));
    }
    return merged;
}

}  // namespace hermes::tdg
