// Program analyzer (§IV, Algorithm 1).
//
// Fills every TDG edge's A(a,b) — the metadata bytes the upstream MAT must
// piggyback for the downstream MAT when the two land on different switches:
//   match dependency     A(a,b) = Σ size(f), f metadata in F^a_a
//   action dependency    A(a,b) = Σ size(f), f metadata in F^a_a ∪ F^a_b
//   reverse match        A(a,b) = 0 (pure ordering; nothing is delivered)
//   successor            A(a,b) = Σ size(f), f metadata in F^a_a
// Header fields already travel in the packet and cost nothing extra, so only
// metadata fields are counted (deduplicated by name).
#pragma once

#include <vector>

#include "tdg/tdg.h"

namespace hermes::obs {
class Sink;
}  // namespace hermes::obs

namespace hermes::tdg {

// A(a,b) for one ordered MAT pair under dependency type `type`.
[[nodiscard]] int edge_metadata_bytes(const Mat& a, const Mat& b, DepType type);

// TDG_ANALYSIS: annotate every edge of `t` in place.
void analyze(Tdg& t);

// Orders field conflicts that dependency inference cannot see: pairwise
// inference only runs within a program, so after merging, MATs from
// different programs may share written or matched fields without any
// ordering edge — and the merged pipeline's behaviour would depend on
// arbitrary scheduling. For every unordered conflicting pair this adds the
// edge the paper's own taxonomy prescribes: write-write -> action
// dependency, write-then-read -> match dependency, read-then-write ->
// reverse-match dependency (earlier topological position goes first).
// Returns the number of edges added.
std::size_t add_write_conflict_edges(Tdg& t);

// PROGRAM_ANALYZER: merge the program set into T_m and analyze it.
// Throws std::invalid_argument on an empty set. A non-null `sink` records
// one span per phase (analyzer.merge / analyzer.conflict_edges /
// analyzer.annotate) and the merged TDG's size counters.
[[nodiscard]] Tdg analyze_programs(std::vector<Tdg> programs, obs::Sink* sink = nullptr);

}  // namespace hermes::tdg
