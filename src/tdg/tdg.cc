#include "tdg/tdg.h"

#include <algorithm>
#include <queue>
#include <stdexcept>

namespace hermes::tdg {

const char* to_string(DepType t) noexcept {
    switch (t) {
        case DepType::kMatch: return "match";
        case DepType::kAction: return "action";
        case DepType::kReverseMatch: return "reverse-match";
        case DepType::kSuccessor: return "successor";
    }
    return "?";
}

NodeId Tdg::add_node(Mat mat) {
    nodes_.push_back(std::move(mat));
    return nodes_.size() - 1;
}

void Tdg::add_edge(NodeId from, NodeId to, DepType type) {
    if (from >= nodes_.size() || to >= nodes_.size()) {
        throw std::out_of_range("Tdg::add_edge: bad node id");
    }
    if (from == to) throw std::invalid_argument("Tdg::add_edge: self-loop");
    if (find_edge(from, to)) throw std::invalid_argument("Tdg::add_edge: duplicate edge");
    edges_.push_back(Edge{from, to, type, 0});
}

const Mat& Tdg::node(NodeId id) const {
    if (id >= nodes_.size()) throw std::out_of_range("Tdg::node: bad id");
    return nodes_[id];
}

Mat& Tdg::node(NodeId id) {
    if (id >= nodes_.size()) throw std::out_of_range("Tdg::node: bad id");
    return nodes_[id];
}

std::optional<Edge> Tdg::find_edge(NodeId from, NodeId to) const noexcept {
    for (const Edge& e : edges_) {
        if (e.from == from && e.to == to) return e;
    }
    return std::nullopt;
}

std::vector<NodeId> Tdg::successors(NodeId id) const {
    if (id >= nodes_.size()) throw std::out_of_range("Tdg::successors: bad id");
    std::vector<NodeId> out;
    for (const Edge& e : edges_) {
        if (e.from == id) out.push_back(e.to);
    }
    return out;
}

std::vector<NodeId> Tdg::predecessors(NodeId id) const {
    if (id >= nodes_.size()) throw std::out_of_range("Tdg::predecessors: bad id");
    std::vector<NodeId> out;
    for (const Edge& e : edges_) {
        if (e.to == id) out.push_back(e.from);
    }
    return out;
}

std::vector<NodeId> Tdg::topological_order() const {
    std::vector<std::size_t> in_degree(nodes_.size(), 0);
    for (const Edge& e : edges_) ++in_degree[e.to];

    // Min-heap over node ids for deterministic tie-breaking.
    std::priority_queue<NodeId, std::vector<NodeId>, std::greater<>> ready;
    for (NodeId v = 0; v < nodes_.size(); ++v) {
        if (in_degree[v] == 0) ready.push(v);
    }
    std::vector<NodeId> order;
    order.reserve(nodes_.size());
    while (!ready.empty()) {
        const NodeId v = ready.top();
        ready.pop();
        order.push_back(v);
        for (const Edge& e : edges_) {
            if (e.from == v && --in_degree[e.to] == 0) ready.push(e.to);
        }
    }
    if (order.size() != nodes_.size()) {
        throw std::runtime_error("Tdg::topological_order: graph has a cycle");
    }
    return order;
}

bool Tdg::is_dag() const noexcept {
    try {
        (void)topological_order();
        return true;
    } catch (const std::runtime_error&) {
        return false;
    }
}

double Tdg::total_resource_units() const noexcept {
    double total = 0.0;
    for (const Mat& m : nodes_) total += m.resource_units();
    return total;
}

std::int64_t Tdg::total_metadata_bytes() const noexcept {
    std::int64_t total = 0;
    for (const Edge& e : edges_) total += e.metadata_bytes;
    return total;
}

NodeId Tdg::node_by_name(const std::string& name) const {
    std::optional<NodeId> found;
    for (NodeId v = 0; v < nodes_.size(); ++v) {
        if (nodes_[v].name() == name) {
            if (found) throw std::out_of_range("Tdg::node_by_name: ambiguous '" + name + "'");
            found = v;
        }
    }
    if (!found) throw std::out_of_range("Tdg::node_by_name: no node '" + name + "'");
    return *found;
}

}  // namespace hermes::tdg
