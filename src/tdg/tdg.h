// Table dependency graph (TDG).
//
// A TDG is a DAG whose nodes are MATs and whose directed edges are typed MAT
// dependencies (Jose et al., NSDI'15; §IV of the paper). The analyzer
// annotates each edge with A(a,b) — the metadata bytes MAT a must deliver to
// MAT b when they are placed on different switches.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "tdg/mat.h"

namespace hermes::tdg {

using NodeId = std::size_t;

// Dependency types T(a,b) (§IV).
enum class DepType : std::uint8_t {
    kMatch,         // M: b matches a field modified by a
    kAction,        // A: a and b modify a common field
    kReverseMatch,  // R: b modifies a field matched by a (ordering only)
    kSuccessor,     // S: a's result gates whether b executes
};

[[nodiscard]] const char* to_string(DepType t) noexcept;

struct Edge {
    NodeId from = 0;
    NodeId to = 0;
    DepType type = DepType::kMatch;
    // A(a,b): metadata bytes carried from `from` to `to` when they are on
    // different switches. Filled by the analyzer (0 until analyzed; always 0
    // for reverse-match edges).
    int metadata_bytes = 0;
};

class Tdg {
public:
    Tdg() = default;

    // Adds a MAT and returns its node id (ids are dense indices).
    NodeId add_node(Mat mat);

    // Adds a typed dependency edge. Throws std::out_of_range on bad ids,
    // std::invalid_argument on self-loops or duplicate (from,to) edges.
    void add_edge(NodeId from, NodeId to, DepType type);

    [[nodiscard]] std::size_t node_count() const noexcept { return nodes_.size(); }
    [[nodiscard]] std::size_t edge_count() const noexcept { return edges_.size(); }
    [[nodiscard]] const Mat& node(NodeId id) const;
    [[nodiscard]] Mat& node(NodeId id);
    [[nodiscard]] const std::vector<Edge>& edges() const noexcept { return edges_; }
    [[nodiscard]] std::vector<Edge>& edges() noexcept { return edges_; }

    // Edge between two specific nodes, if present.
    [[nodiscard]] std::optional<Edge> find_edge(NodeId from, NodeId to) const noexcept;

    [[nodiscard]] std::vector<NodeId> successors(NodeId id) const;
    [[nodiscard]] std::vector<NodeId> predecessors(NodeId id) const;

    // Kahn topological order; throws std::runtime_error if the graph has a
    // cycle (a TDG must be a DAG). Ties are broken by node id, so the order
    // is deterministic.
    [[nodiscard]] std::vector<NodeId> topological_order() const;

    [[nodiscard]] bool is_dag() const noexcept;

    // Sum of R(a) over all nodes — used by the heuristic's fit test.
    [[nodiscard]] double total_resource_units() const noexcept;

    // Sum of A(a,b) over all edges (after analysis).
    [[nodiscard]] std::int64_t total_metadata_bytes() const noexcept;

    // Node id by MAT name; throws std::out_of_range if absent or ambiguous
    // names exist (names are not required to be unique after merging).
    [[nodiscard]] NodeId node_by_name(const std::string& name) const;

private:
    std::vector<Mat> nodes_;
    std::vector<Edge> edges_;
};

}  // namespace hermes::tdg
