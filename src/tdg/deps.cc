#include "tdg/deps.h"

namespace hermes::tdg {

namespace {
bool shares_name(const std::vector<Field>& xs, const std::vector<Field>& ys) {
    for (const Field& x : xs) {
        for (const Field& y : ys) {
            if (x.name == y.name) return true;
        }
    }
    return false;
}
}  // namespace

std::optional<DepType> infer_dependency(const Mat& a, const Mat& b, bool gated) {
    if (shares_name(a.modified_fields(), b.match_fields())) return DepType::kMatch;
    if (shares_name(a.modified_fields(), b.modified_fields())) return DepType::kAction;
    if (gated) return DepType::kSuccessor;
    if (shares_name(a.match_fields(), b.modified_fields())) return DepType::kReverseMatch;
    return std::nullopt;
}

}  // namespace hermes::tdg
