#include "tdg/mat.h"

#include <algorithm>
#include <set>
#include <stdexcept>

namespace hermes::tdg {

Mat::Mat(std::string name, std::vector<Field> match_fields, std::vector<Action> actions,
         std::int64_t rule_capacity, double resource_units, MatchKind match_kind)
    : name_(std::move(name)),
      match_fields_(std::move(match_fields)),
      actions_(std::move(actions)),
      rule_capacity_(rule_capacity),
      resource_units_(resource_units),
      match_kind_(match_kind) {
    if (name_.empty()) throw std::invalid_argument("Mat: empty name");
    if (rule_capacity_ < 0) throw std::invalid_argument("Mat: negative rule capacity");
    if (resource_units_ < 0.0) throw std::invalid_argument("Mat: negative resources");
    std::set<std::string> seen;
    for (const Action& a : actions_) {
        for (const Field& f : a.writes) {
            if (seen.insert(f.name).second) modified_fields_.push_back(f);
        }
    }
}

bool Mat::matches_field(const std::string& field_name) const noexcept {
    return std::any_of(match_fields_.begin(), match_fields_.end(),
                       [&](const Field& f) { return f.name == field_name; });
}

bool Mat::modifies_field(const std::string& field_name) const noexcept {
    return std::any_of(modified_fields_.begin(), modified_fields_.end(),
                       [&](const Field& f) { return f.name == field_name; });
}

void Mat::add_rule(Rule rule) {
    if (static_cast<std::int64_t>(rules_.size()) >= rule_capacity_) {
        throw std::runtime_error("Mat::add_rule: capacity exhausted for " + name_);
    }
    if (rule.action_index >= actions_.size()) {
        throw std::out_of_range("Mat::add_rule: bad action index in " + name_);
    }
    rules_.push_back(std::move(rule));
}

bool Mat::same_structure(const Mat& other) const noexcept {
    return match_kind_ == other.match_kind_ && rule_capacity_ == other.rule_capacity_ &&
           match_fields_ == other.match_fields_ && actions_ == other.actions_;
}

}  // namespace hermes::tdg
