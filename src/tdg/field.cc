#include "tdg/field.h"

#include <set>
#include <stdexcept>

namespace hermes::tdg {

namespace {
Field make(std::string name, FieldKind kind, int size_bytes) {
    if (name.empty()) throw std::invalid_argument("field: empty name");
    if (size_bytes <= 0) throw std::invalid_argument("field: non-positive size");
    return Field{std::move(name), kind, size_bytes};
}
}  // namespace

Field header_field(std::string name, int size_bytes) {
    return make(std::move(name), FieldKind::kHeader, size_bytes);
}

Field metadata_field(std::string name, int size_bytes) {
    return make(std::move(name), FieldKind::kMetadata, size_bytes);
}

namespace common_metadata {
Field switch_identifier() { return metadata_field("meta.switch_id", 4); }
Field queue_lengths() { return metadata_field("meta.queue_lengths", 6); }
Field timestamps() { return metadata_field("meta.timestamps", 12); }
Field counter_index() { return metadata_field("meta.counter_index", 4); }
}  // namespace common_metadata

int metadata_bytes(const std::vector<Field>& fields) {
    std::set<std::string> seen;
    int total = 0;
    for (const Field& f : fields) {
        if (!f.is_metadata()) continue;
        if (seen.insert(f.name).second) total += f.size_bytes;
    }
    return total;
}

}  // namespace hermes::tdg
