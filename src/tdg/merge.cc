#include "tdg/merge.h"

#include <stdexcept>
#include <utility>

namespace hermes::tdg {

Tdg graph_union(const Tdg& t1, const Tdg& t2) {
    Tdg out;
    for (NodeId v = 0; v < t1.node_count(); ++v) out.add_node(t1.node(v));
    const std::size_t offset = t1.node_count();
    for (NodeId v = 0; v < t2.node_count(); ++v) out.add_node(t2.node(v));
    for (const Edge& e : t1.edges()) out.add_edge(e.from, e.to, e.type);
    for (const Edge& e : t2.edges()) out.add_edge(e.from + offset, e.to + offset, e.type);
    return out;
}

namespace {

// Rebuilds `t` with node `victim` contracted into `survivor`. Returns the
// candidate graph; the caller decides whether to keep it (DAG check).
Tdg contract(const Tdg& t, NodeId survivor, NodeId victim) {
    Tdg out;
    std::vector<NodeId> remap(t.node_count());
    NodeId next = 0;
    for (NodeId v = 0; v < t.node_count(); ++v) {
        if (v == victim) continue;
        remap[v] = next++;
        out.add_node(t.node(v));
    }
    remap[victim] = remap[survivor];
    for (const Edge& e : t.edges()) {
        const NodeId from = remap[e.from];
        const NodeId to = remap[e.to];
        if (from == to) continue;  // edge between the twins disappears
        if (out.find_edge(from, to)) continue;
        out.add_edge(from, to, e.type);
    }
    return out;
}

}  // namespace

std::size_t deduplicate(Tdg& t, std::size_t new_from) {
    std::size_t eliminated = 0;
    bool progress = true;
    while (progress) {
        progress = false;
        for (NodeId i = 0; i < t.node_count() && !progress; ++i) {
            // Only pairs touching the fresh suffix need scanning.
            const NodeId j_begin = std::max<NodeId>(i + 1, new_from);
            for (NodeId j = j_begin; j < t.node_count() && !progress; ++j) {
                if (!t.node(i).same_structure(t.node(j))) continue;
                Tdg candidate = contract(t, i, j);
                if (!candidate.is_dag()) continue;  // contraction would cycle
                t = std::move(candidate);
                ++eliminated;
                // Contraction renumbers the suffix; rescan it conservatively.
                if (new_from > 0) --new_from;
                progress = true;
            }
        }
    }
    return eliminated;
}

Tdg merge(const Tdg& t1, const Tdg& t2) {
    Tdg merged = graph_union(t1, t2);
    deduplicate(merged, t1.node_count());
    return merged;
}

Tdg merge_all(std::vector<Tdg> tdgs) {
    if (tdgs.empty()) throw std::invalid_argument("merge_all: empty program set");
    // Each incoming TDG is deduplicated internally first, then only its
    // nodes are compared against the accumulated (already deduplicated)
    // prefix — quadratic-in-total-size scans happen once, not per merge.
    Tdg merged = std::move(tdgs.front());
    deduplicate(merged);
    for (std::size_t i = 1; i < tdgs.size(); ++i) {
        deduplicate(tdgs[i]);
        const std::size_t prefix = merged.node_count();
        merged = graph_union(merged, tdgs[i]);
        deduplicate(merged, prefix);
    }
    return merged;
}

}  // namespace hermes::tdg
