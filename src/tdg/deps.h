// Dependency-type inference between MATs.
//
// The paper (§IV) classifies the dependency T(a,b) of an ordered MAT pair,
// where a precedes b in program order:
//   M (match):         b matches a field modified by a  (f ∈ F^a_a ∩ F^m_b)
//   A (action):        a and b modify a common field    (f ∈ F^a_a ∩ F^a_b)
//   R (reverse match): b modifies a field matched by a  (f ∈ F^m_a ∩ F^a_b)
//   S (successor):     a's result gates b's execution (explicit in program)
// When several hold, the strictest ordering requirement wins:
// match > action > successor > reverse-match.
#pragma once

#include <optional>

#include "tdg/tdg.h"

namespace hermes::tdg {

// Infers T(a,b) for the ordered pair (a precedes b). `gated` marks an
// explicit control (successor) relation declared by the program. Returns
// nullopt when the MATs are independent.
[[nodiscard]] std::optional<DepType> infer_dependency(const Mat& a, const Mat& b,
                                                      bool gated = false);

}  // namespace hermes::tdg
