// Match-action table (MAT) model.
//
// A MAT carries the five properties the paper's analyzer consumes (§IV):
//   F^m_a  match fields          (match_fields)
//   A_a    actions               (actions)
//   F^a_a  action-modified fields (modified_fields(), derived from actions)
//   R_a    user-specified rules  (rules)
//   C_a    rule capacity         (rule_capacity)
// plus the resource requirement R(a) used by constraint (9).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "tdg/field.h"

namespace hermes::tdg {

// An action names the fields whose values it writes. (The concrete compute —
// hash, add, register update — is irrelevant to placement; only the write
// set matters for dependency typing and metadata sizing.)
struct Action {
    std::string name;
    std::vector<Field> writes;

    friend bool operator==(const Action&, const Action&) = default;
};

// A user rule: an abstract match key plus the index of the action it fires.
struct Rule {
    std::string match_key;
    std::size_t action_index = 0;

    friend bool operator==(const Rule&, const Rule&) = default;
};

enum class MatchKind : std::uint8_t { kExact, kLpm, kTernary, kRange };

class Mat {
public:
    Mat(std::string name, std::vector<Field> match_fields, std::vector<Action> actions,
        std::int64_t rule_capacity, double resource_units,
        MatchKind match_kind = MatchKind::kExact);

    [[nodiscard]] const std::string& name() const noexcept { return name_; }
    [[nodiscard]] const std::vector<Field>& match_fields() const noexcept {
        return match_fields_;
    }
    [[nodiscard]] const std::vector<Action>& actions() const noexcept { return actions_; }
    [[nodiscard]] const std::vector<Rule>& rules() const noexcept { return rules_; }
    [[nodiscard]] std::int64_t rule_capacity() const noexcept { return rule_capacity_; }
    [[nodiscard]] double resource_units() const noexcept { return resource_units_; }
    [[nodiscard]] MatchKind match_kind() const noexcept { return match_kind_; }

    // F^a_a: union of all action write sets (duplicates by name removed).
    [[nodiscard]] const std::vector<Field>& modified_fields() const noexcept {
        return modified_fields_;
    }

    // True if `field_name` appears among the match fields / modified fields.
    [[nodiscard]] bool matches_field(const std::string& field_name) const noexcept;
    [[nodiscard]] bool modifies_field(const std::string& field_name) const noexcept;

    // Install a rule; throws std::runtime_error when capacity is exhausted
    // or std::out_of_range when the action index is invalid.
    void add_rule(Rule rule);

    // Two MATs are *redundant* (SPEED merging, §IV) when every placement-
    // relevant property matches: match fields, actions, match kind, and rule
    // capacity. Names and installed rules are not compared — redundancy is
    // about structure, not identity.
    [[nodiscard]] bool same_structure(const Mat& other) const noexcept;

private:
    std::string name_;
    std::vector<Field> match_fields_;
    std::vector<Action> actions_;
    std::vector<Field> modified_fields_;
    std::vector<Rule> rules_;
    std::int64_t rule_capacity_;
    double resource_units_;
    MatchKind match_kind_;
};

}  // namespace hermes::tdg
