// Discrete-event core.
//
// EventHeap is the engine's hot priority queue: a flat 4-ary min-heap of
// 24-byte (time, order, payload) entries. Four-way branching halves the
// sift-down depth of a binary heap and keeps each level inside one cache
// line, which matters when a shard pops tens of millions of events. Entries
// carry no behavior — `payload` is an index into the owning shard's
// Arena<BatchEvent> pool — so pushing an event never allocates.
//
// Ordering is (time_us, order) ascending. `order` is the determinism
// tie-break: the engine packs (flow, hop, batch) into it so simultaneous
// events pop in one fixed order at any shard/thread count; EventQueue packs
// a scheduling sequence number for its documented FIFO-among-equals rule.
//
// EventQueue is the legacy closure-based interface (same API as before this
// file's rewrite), now a thin adapter: an EventHeap for ordering plus an
// Arena<Callback> pool for the closures, instead of a std::priority_queue of
// heap-allocated std::functions.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/arena.h"

namespace hermes::sim {

struct EventKey {
    double time_us = 0.0;
    std::uint64_t order = 0;      // deterministic tie-break at equal times
    std::uint32_t payload = 0;    // pool index (meaning owned by the caller)

    [[nodiscard]] bool before(const EventKey& other) const noexcept {
        if (time_us != other.time_us) return time_us < other.time_us;
        return order < other.order;
    }
};

class EventHeap {
public:
    void push(const EventKey& key);
    // Undefined on an empty heap (callers check empty() first).
    [[nodiscard]] const EventKey& top() const noexcept { return heap_.front(); }
    EventKey pop();

    [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
    [[nodiscard]] std::size_t size() const noexcept { return heap_.size(); }
    void reserve(std::size_t n) { heap_.reserve(n); }
    void clear() noexcept { heap_.clear(); }

private:
    static constexpr std::size_t kArity = 4;
    std::vector<EventKey> heap_;
};

// Legacy callback event queue (kept for the library's small single-threaded
// simulations and its existing tests). Scheduling is O(log n) with pooled
// closure storage; semantics are unchanged: time order, FIFO among
// simultaneous events, callbacks may schedule more events, scheduling into
// the past throws std::invalid_argument.
class EventQueue {
public:
    using Callback = std::function<void()>;

    void schedule(double at_us, Callback callback);

    // Runs events in time order until the queue drains. Returns the time of
    // the last executed event (0 when nothing ran).
    double run();

    // Executes at most `limit` events; returns how many ran.
    std::size_t run_steps(std::size_t limit);

    [[nodiscard]] double now() const noexcept { return now_us_; }
    [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
    [[nodiscard]] std::size_t pending() const noexcept { return heap_.size(); }

private:
    void run_one();

    EventHeap heap_;
    Arena<Callback> pool_{256};
    double now_us_ = 0.0;
    std::uint64_t next_seq_ = 0;
};

}  // namespace hermes::sim
