// Discrete-event core: a time-ordered event queue with a stable tie-break so
// simulations are fully deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace hermes::sim {

class EventQueue {
public:
    using Callback = std::function<void()>;

    // Schedules `callback` at absolute time `at_us` (microseconds). Throws
    // std::invalid_argument when scheduling into the past.
    void schedule(double at_us, Callback callback);

    // Runs events in time order until the queue drains. Returns the time of
    // the last executed event (0 when nothing ran).
    double run();

    // Executes at most `limit` events; returns how many ran.
    std::size_t run_steps(std::size_t limit);

    [[nodiscard]] double now() const noexcept { return now_us_; }
    [[nodiscard]] bool empty() const noexcept { return queue_.empty(); }
    [[nodiscard]] std::size_t pending() const noexcept { return queue_.size(); }

private:
    struct Event {
        double time_us;
        std::uint64_t seq;
        Callback callback;
    };
    struct Later {
        bool operator()(const Event& a, const Event& b) const noexcept {
            if (a.time_us != b.time_us) return a.time_us > b.time_us;
            return a.seq > b.seq;  // FIFO among simultaneous events
        }
    };

    std::priority_queue<Event, std::vector<Event>, Later> queue_;
    double now_us_ = 0.0;
    std::uint64_t next_seq_ = 0;
};

}  // namespace hermes::sim
