#include "sim/replay.h"

#include <algorithm>

#include "core/objective.h"
#include "core/repair.h"
#include "sim/engine.h"
#include "obs/obs.h"

namespace hermes::sim {

namespace {

// Packet count of one flow under the given per-packet metadata overhead.
// Mirrors simulate_flow's packetization without running the event loop.
std::int64_t packet_count(FlowSpec spec, std::int64_t overhead_bytes) {
    spec.overhead_bytes =
        static_cast<int>(std::min<std::int64_t>(overhead_bytes, spec.mtu_bytes));
    int payload = 0;
    try {
        payload = effective_payload(spec);
    } catch (const std::invalid_argument&) {
        // Overhead leaves no payload room: every byte needs its own packet's
        // worth of headers; approximate with one packet per payload byte.
        return std::max<std::int64_t>(1, spec.payload_bytes_total);
    }
    return (spec.payload_bytes_total + payload - 1) / payload;
}

}  // namespace

ReplayReport replay_failure_window(const tdg::Tdg& t, const net::Network& net,
                                   const core::Deployment& before,
                                   const core::Deployment& after,
                                   const ReplayConfig& config,
                                   net::PathOracle* oracle) {
    obs::Sink* const sink = config.sim.sink;
    obs::Span span(sink, "replay");
    ReplayReport report;

    report.pre_amax_bytes = core::max_pair_metadata(t, before);
    report.post_amax_bytes = after.empty() ? 0 : core::max_pair_metadata(t, after);
    report.amax_delta_bytes = report.post_amax_bytes - report.pre_amax_bytes;

    // The old deployment carries pre-repair flows only when the failures did
    // not actually break it (a fault window can miss the deployment
    // entirely).
    const bool before_alive = core::classify_damage(t, net, before).intact();
    const bool after_alive =
        !after.empty() && core::classify_damage(t, net, after).intact();

    const double interval = config.flow_interval_us > 0.0 ? config.flow_interval_us
                                                          : config.window_us;
    std::vector<double> post_launches;
    for (double at = 0.0; at < config.window_us; at += interval) {
        ++report.flows_total;
        const bool pre_repair = at < config.repair_done_us;
        const core::Deployment& carrier = pre_repair ? before : after;
        const bool alive = pre_repair ? before_alive : after_alive;
        if (alive) {
            if (!pre_repair) post_launches.push_back(at);
            continue;
        }
        ++report.flows_lost;
        const std::int64_t amax = carrier.empty()
                                      ? report.pre_amax_bytes
                                      : core::max_pair_metadata(t, carrier);
        const std::int64_t lost = packet_count(config.flow, amax);
        if (pre_repair) report.packets_lost_before_repair += lost;
        if (interval <= 0.0) break;  // degenerate config: one flow max
    }

    // Every post-repair launch rides the repaired deployment concurrently
    // through the traffic engine — flows contend for the route's FIFO
    // transmitters. The headline post_fct_us is the first post-repair flow's
    // completion: FIFO ordering leaves it untouched by the later launches,
    // so the number matches the old one-representative-flow measurement.
    double post_fct = 0.0;
    if (after_alive) {
        FlowSpec spec = config.flow;
        spec.overhead_bytes = static_cast<int>(
            std::min<std::int64_t>(report.post_amax_bytes, spec.mtu_bytes));
        const auto hops = deployment_hops(t, net, after, oracle);
        EngineConfig engine_config;
        engine_config.link_bandwidth_gbps = config.sim.link_bandwidth_gbps;
        engine_config.threads = config.sim_threads;
        engine_config.sink = sink;
        Engine engine(engine_config);
        const RouteId route = engine.add_route(hops);
        // A window with no post-repair launch still reports the repaired
        // deployment's single-flow FCT, as before.
        if (post_launches.empty()) post_launches.push_back(0.0);
        std::vector<FlowId> flows;
        flows.reserve(post_launches.size());
        for (const double at : post_launches) {
            flows.push_back(engine.add_flow(spec, route, at));
        }
        engine.run();
        post_fct = engine.result(flows.front()).fct_us;
    }
    report.post_fct_us = post_fct;

    if (sink != nullptr) {
        sink->counter("replay.flows").add(report.flows_total);
        sink->counter("replay.flows_lost").add(report.flows_lost);
        sink->counter("replay.packets_lost").add(report.packets_lost_before_repair);
    }
    return report;
}

}  // namespace hermes::sim
