// Flow-level network simulation (the paper's testbed substitute).
//
// Models a message split into MTU-bound packets crossing a sequence of
// store-and-forward hops (links with bandwidth + propagation, switches with
// processing latency, FIFO transmission per link). Per-packet metadata
// overhead steals MTU payload space — the application needs more packets for
// the same message — which is exactly the FCT/goodput degradation mechanism
// of §II-B.
#pragma once

#include <cstdint>
#include <vector>

#include "core/deployment.h"
#include "net/path_oracle.h"
#include "net/paths.h"

namespace hermes::obs {
class Sink;
}  // namespace hermes::obs

namespace hermes::sim {

struct HopSpec {
    double propagation_us = 0.0;     // link propagation t_l
    double switch_latency_us = 0.0;  // receiving switch's t_s
};

struct SimConfig {
    double link_bandwidth_gbps = 100.0;  // the testbed's 100 Gbps links
    // Non-null: each simulate_flow call records a flowsim.flow span plus
    // flowsim.packets / flowsim.events counters.
    obs::Sink* sink = nullptr;
};

struct FlowSpec {
    std::int64_t payload_bytes_total = 0;  // application message size
    int mtu_bytes = 1500;
    int base_header_bytes = 40;  // Ethernet/IP/transport headers
    int overhead_bytes = 0;      // piggybacked metadata per packet
};

struct FlowResult {
    std::int64_t packets = 0;
    int payload_per_packet = 0;  // effective MSS after overhead
    double fct_us = 0.0;
    double goodput_gbps = 0.0;
};

// Effective payload per packet under the MTU and metadata overhead; throws
// std::invalid_argument when the overhead leaves no payload room.
[[nodiscard]] int effective_payload(const FlowSpec& spec);

// Event-driven simulation of one flow across `hops` (hop i = link i followed
// by its receiving node). Packets leave the sender back-to-back at line rate.
// A thin adapter over sim::Engine (engine.h); results are bit-identical to
// simulate_flow_reference, enforced by test.
[[nodiscard]] FlowResult simulate_flow(const std::vector<HopSpec>& hops,
                                       const FlowSpec& spec, const SimConfig& config = {});

// The pre-engine closure-based single-flow simulator, retained verbatim as
// the physics oracle the engine is tested against.
[[nodiscard]] FlowResult simulate_flow_reference(const std::vector<HopSpec>& hops,
                                                 const FlowSpec& spec,
                                                 const SimConfig& config = {});

// Hop list of a concrete network path (links + downstream switch latencies).
// Consults live adjacency: throws std::invalid_argument when the path visits
// a failed switch or uses a missing/failed link.
[[nodiscard]] std::vector<HopSpec> hops_from_path(const net::Network& net,
                                                  const net::Path& path);

// End-to-end hop list induced by a deployment: the occupied switches in
// traversal order, expanded through the deployment's routes (shortest path
// when a consecutive pair has no recorded route), with an ingress hop in
// front. Used by Exp#4/Exp#5's FCT and goodput measurements. Pass a shared
// net::PathOracle to answer the fallback shortest paths from cache.
// Consults live adjacency: a recorded route that crosses failed hardware is
// re-resolved through the oracle (or shortest path); throws
// std::runtime_error when an occupied switch is down or a traversal pair has
// no live path.
[[nodiscard]] std::vector<HopSpec> deployment_hops(const tdg::Tdg& t,
                                                   const net::Network& net,
                                                   const core::Deployment& d,
                                                   net::PathOracle* oracle = nullptr);

}  // namespace hermes::sim
