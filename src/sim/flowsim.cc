#include "sim/flowsim.h"

#include <cmath>
#include <functional>
#include <stdexcept>

#include "core/objective.h"
#include "obs/obs.h"
#include "sim/engine.h"
#include "sim/events.h"

namespace hermes::sim {

int effective_payload(const FlowSpec& spec) {
    if (spec.payload_bytes_total < 0) {
        throw std::invalid_argument("effective_payload: negative payload");
    }
    if (spec.mtu_bytes <= 0) {
        throw std::invalid_argument("effective_payload: non-positive MTU");
    }
    if (spec.base_header_bytes < 0 || spec.overhead_bytes < 0) {
        throw std::invalid_argument(
            "effective_payload: negative header or overhead bytes");
    }
    if (spec.mtu_bytes <= spec.base_header_bytes) {
        throw std::invalid_argument(
            "effective_payload: MTU does not fit the base headers");
    }
    const int room = spec.mtu_bytes - spec.base_header_bytes - spec.overhead_bytes;
    if (room <= 0) {
        throw std::invalid_argument(
            "effective_payload: metadata overhead leaves no payload room in the MTU");
    }
    return room;
}

FlowResult simulate_flow(const std::vector<HopSpec>& hops, const FlowSpec& spec,
                         const SimConfig& config) {
    if (config.link_bandwidth_gbps <= 0.0) {
        throw std::invalid_argument("simulate_flow: non-positive bandwidth");
    }
    obs::Span span(config.sink, "flowsim.flow");
    EngineConfig engine_config;
    engine_config.link_bandwidth_gbps = config.link_bandwidth_gbps;
    engine_config.threads = 1;
    Engine engine(engine_config);
    const RouteId route = engine.add_route(hops);
    const FlowId flow = engine.add_flow(spec, route);
    engine.run();
    const FlowResult result = engine.result(flow);
    if (config.sink != nullptr) {
        config.sink->counter("flowsim.packets").add(result.packets);
        config.sink->counter("flowsim.events").add(engine.stats().events);
    }
    return result;
}

FlowResult simulate_flow_reference(const std::vector<HopSpec>& hops,
                                   const FlowSpec& spec, const SimConfig& config) {
    if (config.link_bandwidth_gbps <= 0.0) {
        throw std::invalid_argument("simulate_flow: non-positive bandwidth");
    }
    obs::Span span(config.sink, "flowsim.flow");
    std::int64_t events = 0;
    FlowResult result;
    result.payload_per_packet = effective_payload(spec);
    result.packets = spec.payload_bytes_total == 0
                         ? 0
                         : (spec.payload_bytes_total + result.payload_per_packet - 1) /
                               result.payload_per_packet;
    if (result.packets == 0) return result;

    // Wire size of a full packet; the final packet may be shorter.
    const std::int64_t full_wire =
        result.payload_per_packet + spec.base_header_bytes + spec.overhead_bytes;
    const std::int64_t last_payload =
        spec.payload_bytes_total - (result.packets - 1) * result.payload_per_packet;
    const std::int64_t last_wire = last_payload + spec.base_header_bytes + spec.overhead_bytes;

    auto tx_time_us = [&](std::int64_t wire_bytes) {
        return static_cast<double>(wire_bytes) * 8.0 / (config.link_bandwidth_gbps * 1e3);
    };

    // Store-and-forward DES: hop h has a FIFO transmitter that frees at
    // free_at[h]; a packet finishing hop h is handed to hop h+1 after the
    // hop's propagation and the receiving node's processing latency.
    EventQueue queue;
    std::vector<double> free_at(hops.size(), 0.0);
    double completion_us = 0.0;
    std::int64_t received = 0;

    // One closure per (packet, hop) arrival.
    std::function<void(std::int64_t, std::size_t, double)> arrive =
        [&](std::int64_t packet, std::size_t hop, double at_us) {
            ++events;
            if (hop == hops.size()) {
                ++received;
                completion_us = at_us;
                return;
            }
            const std::int64_t wire = packet == result.packets - 1 ? last_wire : full_wire;
            const double start = std::max(at_us, free_at[hop]);
            const double done = start + tx_time_us(wire);
            free_at[hop] = done;
            const double delivered =
                done + hops[hop].propagation_us + hops[hop].switch_latency_us;
            queue.schedule(delivered,
                           [&arrive, packet, hop, delivered] {
                               arrive(packet, hop + 1, delivered);
                           });
        };

    // Sender emits back-to-back at line rate (hop 0's FIFO enforces pacing,
    // so all packets can be injected at t=0).
    for (std::int64_t p = 0; p < result.packets; ++p) {
        queue.schedule(0.0, [&arrive, p] { arrive(p, 0, 0.0); });
    }
    queue.run();

    if (received != result.packets) {
        throw std::logic_error("simulate_flow: packets lost in simulation");
    }
    result.fct_us = completion_us;
    result.goodput_gbps =
        static_cast<double>(spec.payload_bytes_total) * 8.0 / (result.fct_us * 1e3);
    if (config.sink != nullptr) {
        config.sink->counter("flowsim.packets").add(result.packets);
        config.sink->counter("flowsim.events").add(events);
    }
    return result;
}

std::vector<HopSpec> hops_from_path(const net::Network& net, const net::Path& path) {
    for (const net::SwitchId s : path.switches) {
        if (!net.switch_up(s)) {
            throw std::invalid_argument("hops_from_path: path visits a failed switch");
        }
    }
    std::vector<HopSpec> hops;
    for (std::size_t i = 1; i < path.switches.size(); ++i) {
        const auto latency = net.link_latency(path.switches[i - 1], path.switches[i]);
        if (!latency) {
            throw std::invalid_argument("hops_from_path: path uses a missing link");
        }
        hops.push_back(HopSpec{*latency, net.props(path.switches[i]).latency_us});
    }
    return hops;
}

namespace {

// A recorded route is only usable while every switch it visits is up and
// every link it crosses is live; failures must force a re-resolution rather
// than silently simulating traffic through dead hardware.
bool path_alive(const net::Network& net, const net::Path& path) {
    for (const net::SwitchId s : path.switches) {
        if (!net.switch_up(s)) return false;
    }
    for (std::size_t i = 1; i < path.switches.size(); ++i) {
        if (!net.link_latency(path.switches[i - 1], path.switches[i])) return false;
    }
    return true;
}

}  // namespace

std::vector<HopSpec> deployment_hops(const tdg::Tdg& t, const net::Network& net,
                                     const core::Deployment& d,
                                     net::PathOracle* oracle) {
    const std::vector<net::SwitchId> order = core::traversal_order(t, d);
    std::vector<HopSpec> hops;
    if (order.empty()) return hops;
    for (const net::SwitchId s : order) {
        if (!net.switch_up(s)) {
            throw std::runtime_error("deployment_hops: deployment occupies a failed switch");
        }
    }
    // Ingress hop into the first occupied switch.
    hops.push_back(HopSpec{0.0, net.props(order.front()).latency_us});
    for (std::size_t i = 1; i < order.size(); ++i) {
        const auto it = d.routes.find({order[i - 1], order[i]});
        net::Path path;
        if (it != d.routes.end() && path_alive(net, it->second)) {
            path = it->second;
        } else {
            // No recorded route, or the recorded route crosses failed
            // hardware: resolve a live shortest path instead.
            auto sp = oracle ? oracle->path(order[i - 1], order[i])
                             : net::shortest_path(net, order[i - 1], order[i]);
            if (!sp) {
                throw std::runtime_error("deployment_hops: traversal pair disconnected");
            }
            path = std::move(*sp);
        }
        const std::vector<HopSpec> leg = hops_from_path(net, path);
        hops.insert(hops.end(), leg.begin(), leg.end());
    }
    return hops;
}

}  // namespace hermes::sim
