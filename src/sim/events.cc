#include "sim/events.h"

#include <stdexcept>
#include <utility>

namespace hermes::sim {

void EventHeap::push(const EventKey& key) {
    std::size_t i = heap_.size();
    heap_.push_back(key);
    while (i > 0) {
        const std::size_t parent = (i - 1) / kArity;
        if (!heap_[i].before(heap_[parent])) break;
        std::swap(heap_[i], heap_[parent]);
        i = parent;
    }
}

EventKey EventHeap::pop() {
    EventKey out = heap_.front();
    heap_.front() = heap_.back();
    heap_.pop_back();
    std::size_t i = 0;
    const std::size_t n = heap_.size();
    for (;;) {
        const std::size_t first = i * kArity + 1;
        if (first >= n) break;
        std::size_t best = first;
        const std::size_t last = std::min(first + kArity, n);
        for (std::size_t c = first + 1; c < last; ++c) {
            if (heap_[c].before(heap_[best])) best = c;
        }
        if (!heap_[best].before(heap_[i])) break;
        std::swap(heap_[i], heap_[best]);
        i = best;
    }
    return out;
}

void EventQueue::schedule(double at_us, Callback callback) {
    if (at_us < now_us_) {
        throw std::invalid_argument("EventQueue::schedule: time travels backwards");
    }
    const std::uint32_t slot = pool_.alloc();
    pool_[slot] = std::move(callback);
    heap_.push(EventKey{at_us, next_seq_++, slot});
}

void EventQueue::run_one() {
    const EventKey key = heap_.pop();
    now_us_ = key.time_us;
    // Move the closure out before running it: the callback may schedule,
    // which can reuse the freed slot.
    Callback cb = std::move(pool_[key.payload]);
    pool_.free(key.payload);
    cb();
}

double EventQueue::run() {
    double last = now_us_;
    while (!heap_.empty()) {
        run_one();
        last = now_us_;
    }
    return last;
}

std::size_t EventQueue::run_steps(std::size_t limit) {
    std::size_t ran = 0;
    while (ran < limit && !heap_.empty()) {
        run_one();
        ++ran;
    }
    return ran;
}

}  // namespace hermes::sim
