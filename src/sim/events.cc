#include "sim/events.h"

#include <stdexcept>
#include <utility>

namespace hermes::sim {

void EventQueue::schedule(double at_us, Callback callback) {
    if (at_us < now_us_) {
        throw std::invalid_argument("EventQueue::schedule: time travels backwards");
    }
    queue_.push(Event{at_us, next_seq_++, std::move(callback)});
}

double EventQueue::run() {
    double last = now_us_;
    while (!queue_.empty()) {
        // The callback may schedule more events; copy out before popping.
        Event e = std::move(const_cast<Event&>(queue_.top()));
        queue_.pop();
        now_us_ = e.time_us;
        last = e.time_us;
        e.callback();
    }
    return last;
}

std::size_t EventQueue::run_steps(std::size_t limit) {
    std::size_t ran = 0;
    while (ran < limit && !queue_.empty()) {
        Event e = std::move(const_cast<Event&>(queue_.top()));
        queue_.pop();
        now_us_ = e.time_us;
        e.callback();
        ++ran;
    }
    return ran;
}

}  // namespace hermes::sim
