#include "sim/arena.h"

namespace hermes::sim {

std::string to_string(const ArenaStats& stats) {
    std::string out = "live ";
    out += std::to_string(stats.live);
    out += " (peak " + std::to_string(stats.peak_live) + ")";
    out += ", allocs " + std::to_string(stats.allocations);
    out += " (reused " + std::to_string(stats.reuses) + ")";
    out += ", capacity " + std::to_string(stats.capacity);
    out += " in " + std::to_string(stats.blocks) + " blocks";
    return out;
}

}  // namespace hermes::sim
