// One shard of the sharded traffic engine: the links it owns, their FIFO
// transmitter state, an arena-pooled event heap, and outboxes toward every
// other shard.
//
// Ownership rules (these are what make the engine race-free without locks):
//  - Every link belongs to exactly one shard. Only that shard's event loop
//    reads or writes the link's transmitter (free_at_us) and pending count.
//  - A shard's heap and event pool are touched only by the shard's worker
//    thread during a window, and only by the coordinator between windows.
//  - Cross-shard handoffs travel by value through `outbox[dst]`; the source
//    appends during its window, the coordinator drains into the destination
//    heap at the barrier. Conservative lookahead (engine.h) guarantees the
//    handoff's timestamp is at or beyond the window bound, so no shard ever
//    sees an event from its past.
//
// Determinism: the heap key's tie-break packs (flow, hop, runt) — a total
// order over simultaneous events that is independent of arrival order, so
// any shard/thread count pops the same sequence and computes the same
// timestamps bit for bit.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/arena.h"
#include "sim/events.h"

namespace hermes::sim {

// Transmitter + topology state of one simulated link (a directed hop: the
// wire plus the receiving node's processing latency).
struct LinkState {
    double propagation_us = 0.0;
    double switch_latency_us = 0.0;
    double free_at_us = 0.0;         // FIFO transmitter frees at this instant
    std::uint32_t shard = 0;         // owning shard
    std::uint32_t pending_flows = 0; // route occurrences not yet fully past
};

// Derived per-flow state (packetization precomputed at admission).
struct FlowState {
    std::int64_t packets = 0;
    std::int64_t payload_bytes_total = 0;
    std::int64_t full_wire = 0;        // wire bytes of a full packet
    std::int64_t last_wire = 0;        // wire bytes of the final packet
    int payload_per_packet = 0;
    std::uint32_t route_offset = 0;    // into the engine's flat link-id array
    std::uint32_t route_len = 0;
    double start_us = 0.0;
    double completion_us = 0.0;        // delivery of the last packet
    std::int64_t received = 0;
    bool fastpath = false;             // delivery was produced analytically
};

// A contiguous run of back-to-back packets of one flow arriving at one hop.
// Batching is what makes line-rate trains O(1) events per hop: a flow is at
// most two batches (the full packets and the final short packet), and a
// batch stays contiguous across same-bandwidth hops, so its transit of a
// link is one max() and two additions.
struct BatchEvent {
    double time_us = 0.0;     // arrival of the batch's first packet
    std::uint32_t flow = 0;
    std::uint32_t hop = 0;    // index into the flow's route
    std::int64_t first = 0;   // first packet ordinal
    std::int64_t count = 0;
};

// Read-mostly view of the engine state a shard loop needs. Flows and links
// are written under the ownership rules above; everything else is immutable
// during run().
struct ShardEnv {
    LinkState* links = nullptr;
    FlowState* flows = nullptr;
    const std::uint32_t* route_links = nullptr;  // flat route → link ids
    double bandwidth_denom_us = 0.0;  // link_bandwidth_gbps * 1e3
    bool fastforward = true;          // in-run batch fast-forwarding enabled
};

class Shard {
public:
    Shard(std::uint32_t id, std::uint32_t shard_count, std::size_t max_events);

    // Enqueues a batch into this shard's heap (pool-backed). Throws
    // std::runtime_error when the configured event-pool cap is exhausted.
    void schedule(const BatchEvent& event);

    // Processes every event strictly before `end_us`, updating link and flow
    // state and appending cross-shard handoffs to the outboxes.
    void run_window(const ShardEnv& env, double end_us);

    [[nodiscard]] bool idle() const noexcept { return heap_.empty(); }
    // Time of the earliest pending event (call only when !idle()).
    [[nodiscard]] double next_time_us() const noexcept { return heap_.top().time_us; }

    [[nodiscard]] std::uint32_t id() const noexcept { return id_; }
    [[nodiscard]] std::vector<std::vector<BatchEvent>>& outboxes() noexcept {
        return outbox_;
    }
    [[nodiscard]] std::int64_t events() const noexcept { return events_; }
    [[nodiscard]] std::int64_t fastpath_flows() const noexcept { return fastpath_flows_; }
    [[nodiscard]] const ArenaStats& pool_stats() const noexcept { return pool_.stats(); }

    // Busy-time accounting for shard.idle_ns (maintained by the engine; only
    // touched when a sink is attached, so the hot loop reads no clock).
    std::int64_t busy_ns = 0;

private:
    void process(const ShardEnv& env, const BatchEvent& event);
    // True when every link from `from_hop` to the end of the route is owned
    // by this shard and carries no other flow — the in-run fast-forward
    // condition (safe: nothing can arrive ahead of us on any of them).
    [[nodiscard]] bool can_fastforward(const ShardEnv& env, const FlowState& flow,
                                       std::uint32_t from_hop) const noexcept;

    std::uint32_t id_;
    EventHeap heap_;
    Arena<BatchEvent> pool_;
    std::vector<std::vector<BatchEvent>> outbox_;  // one per destination shard
    std::int64_t events_ = 0;
    std::int64_t fastpath_flows_ = 0;
};

}  // namespace hermes::sim
