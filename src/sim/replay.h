// Traffic replay across a failure window (the robustness companion to
// flowsim's steady-state FCT/goodput measurements).
//
// Models the operational timeline of one failure episode: at t=0 the
// failures have landed (the network passed in is in its post-failure state),
// at t=repair_done_us the repaired deployment takes over. Flows launch at a
// fixed interval across the window; a flow launched before the repair
// completes rides the old deployment and is lost when the failures broke it
// (its packets are counted against packets_lost_before_repair), while flows
// after the repair are simulated end to end on the repaired deployment.
// Everything is deterministic — no randomness, no wall clock.
#pragma once

#include <cstdint>

#include "core/deployment.h"
#include "net/path_oracle.h"
#include "sim/flowsim.h"

namespace hermes::sim {

struct ReplayConfig {
    double window_us = 1000.0;       // failure window length
    double repair_done_us = 100.0;   // instant the repaired deployment activates
    double flow_interval_us = 100.0; // one flow launches every interval, from t=0
    FlowSpec flow{};                 // per-flow message shape (overhead_bytes is
                                     // overridden per deployment's A_max)
    SimConfig sim{};                 // link bandwidth + obs sink
    // Worker threads for the post-repair traffic engine (sim::Engine);
    // results are thread-count invariant, so this is purely a speed knob.
    int sim_threads = 1;
};

struct ReplayReport {
    std::int64_t flows_total = 0;
    std::int64_t flows_lost = 0;
    // Packets of the lost flows, sized by the pre-failure deployment's
    // metadata overhead — the paper's lost-work measure for Exp-style
    // failure runs.
    std::int64_t packets_lost_before_repair = 0;
    // FCT of one flow on the repaired deployment (0 when no flow ran on it).
    double post_fct_us = 0.0;
    // A_max of the two deployments and their difference (post - pre): the
    // metadata price paid for surviving the failure.
    std::int64_t pre_amax_bytes = 0;
    std::int64_t post_amax_bytes = 0;
    std::int64_t amax_delta_bytes = 0;
};

// Replays the window on `net` (already in its post-failure state). `before`
// is the deployment that was live when the failures hit, `after` the
// repaired one (pass `before` again for a no-op repair; an empty `after`
// means the repair failed and post-repair flows are lost too). A non-null
// sink in config.sim records replay.flows / replay.flows_lost /
// replay.packets_lost counters under a "replay" span.
[[nodiscard]] ReplayReport replay_failure_window(const tdg::Tdg& t,
                                                 const net::Network& net,
                                                 const core::Deployment& before,
                                                 const core::Deployment& after,
                                                 const ReplayConfig& config = {},
                                                 net::PathOracle* oracle = nullptr);

}  // namespace hermes::sim
