#include "sim/shard.h"

#include <algorithm>
#include <stdexcept>

namespace hermes::sim {

namespace {

// Heap tie-break: (flow, hop, runt) packed so simultaneous events pop in one
// fixed order at any shard/thread count. The runt bit orders a flow's final
// short packet behind its full-packet train at equal timestamps (injection
// schedules both at the same instant).
std::uint64_t order_key(const BatchEvent& e, bool runt) noexcept {
    return (static_cast<std::uint64_t>(e.flow) << 18) |
           (static_cast<std::uint64_t>(e.hop & 0xffff) << 2) | (runt ? 1u : 0u);
}

bool is_runt(const BatchEvent& e, const FlowState& f) noexcept {
    return e.first == f.packets - 1;
}

}  // namespace

Shard::Shard(std::uint32_t id, std::uint32_t shard_count, std::size_t max_events)
    : id_(id), pool_(4096, max_events), outbox_(shard_count) {}

void Shard::schedule(const BatchEvent& event) {
    const std::uint32_t slot = pool_.alloc();
    if (slot == kArenaNull) {
        throw std::runtime_error("sim::Shard: event pool exhausted (max_events cap)");
    }
    pool_[slot] = event;
    // The runt bit only needs to order batches of the same flow at the same
    // hop; first==0 batches are the train, anything else the runt.
    heap_.push(EventKey{event.time_us, order_key(event, event.first != 0),
                        slot});
}

void Shard::run_window(const ShardEnv& env, double end_us) {
    while (!heap_.empty() && heap_.top().time_us < end_us) {
        const EventKey key = heap_.pop();
        const BatchEvent event = pool_[key.payload];
        pool_.free(key.payload);
        ++events_;
        process(env, event);
    }
}

bool Shard::can_fastforward(const ShardEnv& env, const FlowState& flow,
                            std::uint32_t from_hop) const noexcept {
    for (std::uint32_t h = from_hop; h < flow.route_len; ++h) {
        const LinkState& link = env.links[env.route_links[flow.route_offset + h]];
        if (link.shard != id_ || link.pending_flows != 1) return false;
    }
    return true;
}

void Shard::process(const ShardEnv& env, const BatchEvent& event) {
    FlowState& flow = env.flows[event.flow];
    const bool runt = is_runt(event, flow);
    const std::int64_t wire = runt ? flow.last_wire : flow.full_wire;
    const double tx = static_cast<double>(wire) * 8.0 / env.bandwidth_denom_us;
    const double occupy = static_cast<double>(event.count) * tx;

    std::uint32_t hop = event.hop;
    double arrival = event.time_us;
    std::uint32_t inline_hops = 0;
    for (;;) {
        LinkState& link = env.links[env.route_links[flow.route_offset + hop]];
        const double start = std::max(arrival, link.free_at_us);
        link.free_at_us = start + occupy;
        const double depart = link.propagation_us + link.switch_latency_us;
        // The flow is fully past this link once its final packet departs.
        if (runt) --link.pending_flows;
        if (hop + 1 == flow.route_len) {
            const double delivered = link.free_at_us + depart;
            flow.received += event.count;
            if (delivered > flow.completion_us) flow.completion_us = delivered;
            if (runt && inline_hops > 0) {
                flow.fastpath = true;
                ++fastpath_flows_;
            }
            return;
        }
        const double next_arrival = (start + tx) + depart;
        if (env.fastforward && event.first == 0 &&
            can_fastforward(env, flow, hop + 1)) {
            // No other flow can reach any remaining link before us, and they
            // are all shard-local: advance the batch analytically instead of
            // bouncing it through the heap. Only the flow's leading batch
            // (the train, or the sole batch of a one-packet flow) may do
            // this: pending_flows counts flows, not batches, so a trailing
            // runt would otherwise see pending == 1 and advance through
            // links its own train still has queued events for, transmitting
            // ahead of it.
            ++hop;
            arrival = next_arrival;
            ++inline_hops;
            continue;
        }
        const BatchEvent next{next_arrival, event.flow, hop + 1, event.first,
                              event.count};
        const std::uint32_t dest =
            env.links[env.route_links[flow.route_offset + hop + 1]].shard;
        if (dest == id_) {
            schedule(next);
        } else {
            outbox_[dest].push_back(next);
        }
        return;
    }
}

}  // namespace hermes::sim
