// Network-wide parallel discrete-event traffic engine.
//
// Admits many concurrent flows, models per-link FIFO transmission contention
// between them, and scales three ways:
//
//  1. Switch-domain sharding (conservative lookahead). Links are partitioned
//     into shards; each shard runs its own event loop on its own thread
//     inside conflict-free time windows. The window bound is
//     `min pending event time + lookahead`, where the lookahead is the
//     smallest propagation + switch latency of any consecutive hop pair an
//     event-carrying flow crosses between shards (flows delivered by the
//     admission fast path never produce events, so their routes don't
//     shrink the bound) — a batch finishing transmission during a window
//     cannot reach another shard before the bound, so shards never see an
//     event from their past. Hop pairs with zero delay are merged into one shard
//     (union-find) so the lookahead is always positive; when no route
//     crosses shards the lookahead is infinite and every shard runs to
//     completion in a single window.
//
//  2. Flat arena-allocated pools and a d-ary heap per shard (arena.h,
//     events.h, shard.h): no per-event allocation, no closures.
//
//  3. A flow-level fast path. At admission, flows are processed in start
//     order and a flow whose use of every route link is *time-serialized*
//     against every other flow's — earlier flows provably past the link
//     before it arrives, later flows provably unable to reach the link
//     before its last packet has left — is advanced analytically, running
//     the event loop's own batch recurrence (train then runt, the same
//     floating-point operations in the same order as Shard::process, so
//     timestamps and the link free-times left behind are bit-identical)
//     without creating a single event. Exclusive links are just the
//     degenerate case; shared links qualify whenever the sharing is
//     temporally disjoint. A flow that fails the criterion is injected and
//     permanently taints its links against later analytic admissions.
//     During the run, a batch whose remaining links are all shard-local and
//     carry no other event-borne flow fast-forwards to delivery in one step
//     (shard.h). Batched packetization (two batches per flow: the
//     full-packet train and the final short packet) makes back-to-back
//     line-rate trains O(1) events per hop.
//
// Determinism: results are bit-identical at any shard/thread count. Each
// link's transmitter is owned by one shard, events tie-break on
// (time, flow, hop, batch), the admission pass runs single-threaded before
// sharding starts, and the in-run fast-forward only fires when no competing
// event-borne flow exists, so every link observes the same arrival sequence
// regardless of how the loops are scheduled. Diagnostics (event counts,
// fast-path hit rate, window count) DO vary with the shard count;
// timestamps never do.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "sim/flowsim.h"
#include "sim/shard.h"

namespace hermes::sim {

using LinkId = std::uint32_t;
using RouteId = std::uint32_t;
using FlowId = std::uint32_t;

struct EngineConfig {
    double link_bandwidth_gbps = 100.0;  // shared line rate, as in SimConfig
    // Worker threads for the sharded loop; <= 1 runs every shard inline on
    // the caller's thread. 0 picks std::thread::hardware_concurrency().
    int threads = 1;
    // Link shards; 0 = one shard per worker thread. Clamped to the link
    // count. The shard count changes scheduling and diagnostics, never
    // results.
    int shards = 0;
    // Disables both fast paths (admission-time analytic flows and in-run
    // batch fast-forwarding); every flow then travels the per-batch event
    // path. For tests and for measuring the fast path's worth.
    bool enable_fastpath = true;
    // Cap on each shard's live event-pool slots (0 = unbounded); exhaustion
    // throws std::runtime_error from run().
    std::size_t max_events_per_shard = 0;
    // Non-null: the run records sim.flows / sim.events / sim.fastpath_flows
    // / sim.fastpath_serialized / sim.window_syncs counters, a sim.fct_us
    // histogram, per-shard
    // sim.shard<k>.idle_ns counters, and one sim.window span per shard per
    // window on the worker lanes.
    obs::Sink* sink = nullptr;
};

struct EngineStats {
    std::int64_t flows = 0;
    std::int64_t packets = 0;          // total packets across all flows
    std::int64_t events = 0;           // batch events popped from the heaps
    std::int64_t fastpath_flows = 0;   // flows delivered analytically
    // Analytic admissions whose route shares at least one link with another
    // flow (time-serialized reuse, not exclusive ownership).
    std::int64_t fastpath_serialized = 0;
    std::int64_t window_syncs = 0;     // barrier synchronizations
    int shards = 0;
    double lookahead_us = 0.0;         // conservative window bound (inf = one window)
    double horizon_us = 0.0;           // latest delivery instant
};

class Engine {
public:
    explicit Engine(const EngineConfig& config = {});

    // A directed hop: the wire (propagation) plus the receiving node's
    // processing latency. Negative latencies throw std::invalid_argument.
    LinkId add_link(double propagation_us, double switch_latency_us);

    // A route is an ordered link sequence shared by any number of flows
    // (flows sharing a link contend for its FIFO transmitter). An empty
    // route delivers at injection time. Throws on unknown link ids or more
    // than 65535 hops (the heap tie-break packs the hop index).
    RouteId add_route(const std::vector<LinkId>& links);
    // Convenience: fresh private links, one per hop — the single-flow
    // adapter's shape, where each hop is its own transmitter.
    RouteId add_route(const std::vector<HopSpec>& hops);

    // Admits one flow: `spec`'s message is packetized exactly as
    // simulate_flow does (effective_payload validation included) and its
    // packets leave the source back-to-back at line rate from `start_us`.
    FlowId add_flow(const FlowSpec& spec, RouteId route, double start_us = 0.0);

    // Simulates every admitted flow to completion. Call once.
    void run();

    // Completed flow's result; fct_us is completion minus start.
    [[nodiscard]] FlowResult result(FlowId flow) const;
    [[nodiscard]] double completion_us(FlowId flow) const;

    [[nodiscard]] std::size_t flow_count() const noexcept { return flows_.size(); }
    [[nodiscard]] std::size_t link_count() const noexcept { return links_.size(); }
    [[nodiscard]] const EngineStats& stats() const noexcept { return stats_; }

private:
    void partition_links(int shard_count);
    void fastpath_admission();
    void compute_lookahead();
    void inject(FlowId flow);
    void sync_mailboxes();
    void run_windows(int workers);
    [[nodiscard]] double next_event_time() const noexcept;

    EngineConfig config_;
    std::vector<LinkState> links_;
    std::vector<std::uint32_t> route_links_;  // flat route → link ids
    std::vector<std::pair<std::uint32_t, std::uint32_t>> routes_;  // offset, len
    std::vector<FlowState> flows_;
    std::vector<Shard> shards_;
    double lookahead_us_ = 0.0;
    EngineStats stats_;
    bool ran_ = false;
};

// Interns network paths into shared engine links: two paths crossing the
// same directed (from, to) network link get the same engine link, so flows
// whose routes overlap contend for its transmitter. One interner per engine.
// Link latencies come from the network's live adjacency (dead links throw,
// as in hops_from_path).
class PathInterner {
public:
    RouteId add_path(Engine& engine, const net::Network& net, const net::Path& path);

private:
    std::unordered_map<std::uint64_t, LinkId> links_;  // (from << 32 | to)
};

}  // namespace hermes::sim
