// Models of the paper's two physical setups:
//  - the §II-B motivation rig (one Tofino switch looping layer-3 routing
//    five times between two hosts), and
//  - the §VI-A evaluation testbed (three 32x100 Gbps Tofino switches in a
//    linear topology).
#pragma once

#include "net/network.h"
#include "sim/flowsim.h"

namespace hermes::sim {

// ---- §II-B motivation experiment ----------------------------------------

struct MotivationConfig {
    int hop_count = 5;                  // a DCN flow crosses five switches
    double link_propagation_us = 0.5;   // intra-testbed cabling
    double switch_latency_us = 1.0;     // Tofino forwarding latency
    std::int64_t packets = 100'000;     // paper: 1e6; scaled, results are ratios
    int ethernet_mtu = 1500;
    int base_header_bytes = 40;
};

struct MotivationPoint {
    int packet_size = 0;       // original wire packet size (512/1024/1500)
    int overhead_bytes = 0;    // metadata added per packet
    double fct_us = 0.0;
    double goodput_gbps = 0.0;
    double fct_increase = 0.0;      // vs the zero-overhead run (e.g. 0.15 = +15%)
    double goodput_decrease = 0.0;  // vs the zero-overhead run
};

// Runs the flow with `overhead_bytes` of metadata per packet and normalizes
// against the zero-overhead run of the same packet size. The MTU adaptation
// of §II-B is applied: the wire packet grows until it hits the Ethernet MTU,
// after which payload shrinks.
[[nodiscard]] MotivationPoint run_motivation(const MotivationConfig& config,
                                             int packet_size, int overhead_bytes);

// ---- §VI-A linear Tofino testbed ----------------------------------------

struct TestbedConfig {
    std::size_t switch_count = 3;
    int stages = 6;               // scaled-down Tofino profile (see DESIGN.md):
                                  // keeps the paper's resource-pressure regime
                                  // with our compact program models
    double stage_capacity = 1.0;
    double switch_latency_us = 1.0;
    double link_latency_us = 5.0;  // short intra-rack 100 Gbps links
};

// Linear all-programmable topology mirroring the paper's testbed.
[[nodiscard]] net::Network make_testbed(const TestbedConfig& config = {});

}  // namespace hermes::sim
