#include "sim/engine.h"

#include <algorithm>
#include <atomic>
#include <barrier>
#include <limits>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>

#include "obs/obs.h"

namespace hermes::sim {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

}  // namespace

Engine::Engine(const EngineConfig& config) : config_(config) {
    if (config_.link_bandwidth_gbps <= 0.0) {
        throw std::invalid_argument("sim::Engine: non-positive bandwidth");
    }
}

LinkId Engine::add_link(double propagation_us, double switch_latency_us) {
    if (propagation_us < 0.0 || switch_latency_us < 0.0) {
        throw std::invalid_argument("sim::Engine: negative link latency");
    }
    LinkState link;
    link.propagation_us = propagation_us;
    link.switch_latency_us = switch_latency_us;
    links_.push_back(link);
    return static_cast<LinkId>(links_.size() - 1);
}

RouteId Engine::add_route(const std::vector<LinkId>& links) {
    if (links.size() > 0xffff) {
        throw std::invalid_argument("sim::Engine: route exceeds 65535 hops");
    }
    for (const LinkId l : links) {
        if (l >= links_.size()) {
            throw std::invalid_argument("sim::Engine: unknown link id in route");
        }
    }
    const auto offset = static_cast<std::uint32_t>(route_links_.size());
    route_links_.insert(route_links_.end(), links.begin(), links.end());
    routes_.emplace_back(offset, static_cast<std::uint32_t>(links.size()));
    return static_cast<RouteId>(routes_.size() - 1);
}

RouteId Engine::add_route(const std::vector<HopSpec>& hops) {
    std::vector<LinkId> links;
    links.reserve(hops.size());
    for (const HopSpec& hop : hops) {
        links.push_back(add_link(hop.propagation_us, hop.switch_latency_us));
    }
    return add_route(links);
}

FlowId Engine::add_flow(const FlowSpec& spec, RouteId route, double start_us) {
    if (ran_) throw std::logic_error("sim::Engine: add_flow after run()");
    if (route >= routes_.size()) {
        throw std::invalid_argument("sim::Engine: unknown route id");
    }
    FlowState flow;
    flow.payload_bytes_total = spec.payload_bytes_total;
    flow.payload_per_packet = effective_payload(spec);
    flow.packets = spec.payload_bytes_total == 0
                       ? 0
                       : (spec.payload_bytes_total + flow.payload_per_packet - 1) /
                             flow.payload_per_packet;
    flow.full_wire =
        flow.payload_per_packet + spec.base_header_bytes + spec.overhead_bytes;
    const std::int64_t last_payload =
        flow.packets == 0 ? 0
                          : spec.payload_bytes_total -
                                (flow.packets - 1) * flow.payload_per_packet;
    flow.last_wire = last_payload + spec.base_header_bytes + spec.overhead_bytes;
    flow.route_offset = routes_[route].first;
    flow.route_len = routes_[route].second;
    flow.start_us = start_us;
    flow.completion_us = start_us;
    for (std::uint32_t h = 0; h < flow.route_len; ++h) {
        ++links_[route_links_[flow.route_offset + h]].pending_flows;
    }
    stats_.packets += flow.packets;
    flows_.push_back(flow);
    return static_cast<FlowId>(flows_.size() - 1);
}

void Engine::partition_links(int shard_count) {
    // Union-find over links: consecutive hop pairs with zero inter-hop delay
    // must share a shard, or the conservative lookahead would be zero.
    std::vector<std::uint32_t> parent(links_.size());
    std::iota(parent.begin(), parent.end(), 0u);
    const auto find = [&](std::uint32_t x) {
        while (parent[x] != x) x = parent[x] = parent[parent[x]];
        return x;
    };
    for (const auto& [offset, len] : routes_) {
        for (std::uint32_t i = 0; i + 1 < len; ++i) {
            const std::uint32_t a = route_links_[offset + i];
            const std::uint32_t b = route_links_[offset + i + 1];
            const double delay =
                links_[a].propagation_us + links_[a].switch_latency_us;
            if (delay <= 0.0) parent[std::max(find(a), find(b))] = std::min(find(a), find(b));
        }
    }
    // Components weighted by route occupancy, placed heaviest-first onto the
    // lightest shard — deterministic for a fixed link/route admission order.
    struct Component {
        std::uint32_t root = 0;
        std::uint64_t weight = 0;
    };
    std::vector<Component> components;
    std::vector<std::uint32_t> component_of(links_.size(), 0xffffffffu);
    for (std::uint32_t l = 0; l < links_.size(); ++l) {
        const std::uint32_t root = find(l);
        if (component_of[root] == 0xffffffffu) {
            component_of[root] = static_cast<std::uint32_t>(components.size());
            components.push_back({root, 0});
        }
        components[component_of[root]].weight += links_[l].pending_flows + 1;
    }
    const int effective = std::max(
        1, std::min<int>(shard_count, static_cast<int>(std::max<std::size_t>(
                                          1, components.size()))));
    std::sort(components.begin(), components.end(),
              [](const Component& a, const Component& b) {
                  if (a.weight != b.weight) return a.weight > b.weight;
                  return a.root < b.root;
              });
    std::vector<std::uint64_t> shard_weight(static_cast<std::size_t>(effective), 0);
    std::vector<std::uint32_t> shard_of_root(links_.size(), 0);
    for (const Component& c : components) {
        std::uint32_t best = 0;
        for (std::uint32_t s = 1; s < shard_weight.size(); ++s) {
            if (shard_weight[s] < shard_weight[best]) best = s;
        }
        shard_weight[best] += c.weight;
        shard_of_root[c.root] = best;
    }
    for (std::uint32_t l = 0; l < links_.size(); ++l) {
        links_[l].shard = shard_of_root[find(l)];
    }

    shards_.clear();
    shards_.reserve(static_cast<std::size_t>(effective));
    for (int s = 0; s < effective; ++s) {
        shards_.emplace_back(static_cast<std::uint32_t>(s),
                             static_cast<std::uint32_t>(effective),
                             config_.max_events_per_shard);
    }
    stats_.shards = effective;
}

void Engine::compute_lookahead() {
    // Conservative lookahead: the smallest delay of any cross-shard hop
    // transition a live (event-carrying) flow can make. Routes whose flows
    // were all delivered analytically at admission never produce an event,
    // so they must not shrink the window bound. Infinite when nothing
    // crosses shards: every shard then runs to completion in one window.
    lookahead_us_ = kInf;
    for (const FlowState& flow : flows_) {
        if (flow.fastpath || flow.packets == 0 || flow.route_len == 0) continue;
        for (std::uint32_t i = 0; i + 1 < flow.route_len; ++i) {
            const LinkState& a = links_[route_links_[flow.route_offset + i]];
            const LinkState& b = links_[route_links_[flow.route_offset + i + 1]];
            if (a.shard == b.shard) continue;
            lookahead_us_ =
                std::min(lookahead_us_, a.propagation_us + a.switch_latency_us);
        }
    }
    stats_.lookahead_us = lookahead_us_;
}

void Engine::fastpath_admission() {
    // Zero-packet flows never transmit: deliver them immediately and release
    // their admission claim on pending_flows, so a payload-free flow cannot
    // pin a link's contention count above the fast-forward threshold forever.
    const auto deliver_empty = [this](FlowState& flow) {
        flow.received = flow.packets;
        if (flow.packets == 0) {
            for (std::uint32_t h = 0; h < flow.route_len; ++h) {
                --links_[route_links_[flow.route_offset + h]].pending_flows;
            }
        }
    };
    if (!config_.enable_fastpath) {
        for (FlowId id = 0; id < flows_.size(); ++id) {
            FlowState& flow = flows_[id];
            if (flow.packets == 0 || flow.route_len == 0) {
                deliver_empty(flow);
                continue;
            }
            inject(id);
        }
        return;
    }

    // Time-serialized analytic admission. A flow does not need exclusive
    // links to be advanced without events — it only needs its use of every
    // link to be serialized against every other flow's use: flows processed
    // earlier must be fully past the link before this flow's first packet
    // can arrive, and flows processed later must not be able to reach the
    // link before this flow's last packet has left its transmitter. Both
    // halves come from processing flows in (start, id) order and keeping,
    // per link, a cursor over its occupant flows in that same order: when a
    // flow is admitted analytically, its criterion guarantees every
    // not-yet-processed occupant starts at or after the link's new free
    // instant, so the FIFO order the event loop would produce is exactly
    // "everything admitted so far, then everyone else" — and max(arrival,
    // free_at) reproduces it. A flow that fails the criterion is injected
    // into the event loop and permanently taints its links (its batches
    // reach them at times only the event loop knows), which bars later
    // analytic admissions there.
    const double denom = config_.link_bandwidth_gbps * 1e3;
    std::vector<FlowId> order(flows_.size());
    std::iota(order.begin(), order.end(), 0u);
    std::stable_sort(order.begin(), order.end(), [this](FlowId a, FlowId b) {
        return flows_[a].start_us < flows_[b].start_us;
    });
    // CSR of each link's transmitting occupants in admission order. Each
    // occurrence also carries a lower bound on when that flow's first packet
    // can arrive at that link: its start plus the propagation and switch
    // latency of every upstream hop (transmission times only push the true
    // arrival later, so dropping them keeps the bound safe). `bound` is then
    // folded into a per-link suffix minimum, so one lookup at the cursor
    // bounds the earliest arrival of *every* not-yet-processed occupant.
    std::vector<std::uint32_t> offset(links_.size() + 1, 0);
    for (const FlowState& flow : flows_) {
        if (flow.packets == 0) continue;
        for (std::uint32_t h = 0; h < flow.route_len; ++h) {
            ++offset[route_links_[flow.route_offset + h] + 1];
        }
    }
    for (std::size_t l = 1; l < offset.size(); ++l) offset[l] += offset[l - 1];
    std::vector<FlowId> occupants(offset.back());
    std::vector<double> bound(offset.back());
    std::vector<std::uint32_t> cursor(offset.begin(), offset.end() - 1);
    for (const FlowId id : order) {
        const FlowState& flow = flows_[id];
        if (flow.packets == 0) continue;
        double earliest = flow.start_us;
        for (std::uint32_t h = 0; h < flow.route_len; ++h) {
            const LinkId l = route_links_[flow.route_offset + h];
            occupants[cursor[l]] = id;
            bound[cursor[l]++] = earliest;
            earliest += links_[l].propagation_us + links_[l].switch_latency_us;
        }
    }
    for (std::size_t l = 0; l < links_.size(); ++l) {
        for (std::uint32_t k = offset[l + 1]; k-- > offset[l] + 1;) {
            bound[k - 1] = std::min(bound[k - 1], bound[k]);
        }
    }
    std::copy(offset.begin(), offset.end() - 1, cursor.begin());

    std::vector<std::uint8_t> tainted(links_.size(), 0);
    std::vector<double> saved;      // free_at checkpoint for a rejected dry run
    std::vector<FlowId> rejected;   // injected after the pass, in id order
    for (const FlowId id : order) {
        FlowState& flow = flows_[id];
        if (flow.packets == 0 || flow.route_len == 0) {
            deliver_empty(flow);
            continue;
        }
        bool eligible = true;
        bool shared = false;
        for (std::uint32_t h = 0; h < flow.route_len; ++h) {
            const LinkId l = route_links_[flow.route_offset + h];
            while (cursor[l] < offset[l + 1] && occupants[cursor[l]] == id) {
                ++cursor[l];
            }
            if (tainted[l]) {
                eligible = false;
                shared = true;
            } else if (cursor[l] < offset[l + 1]) {
                shared = true;
            }
        }
        if (eligible) {
            saved.clear();
            for (std::uint32_t h = 0; h < flow.route_len; ++h) {
                saved.push_back(links_[route_links_[flow.route_offset + h]].free_at_us);
            }
            double completion = flow.start_us;
            if (shared) {
                // Batch recurrence — the full-packet train, then the runt —
                // mirroring Shard::process operation for operation. Other
                // flows (event-borne ones included) read the free_at values
                // this flow leaves behind, so they must be bit-identical to
                // what the event loop would have written.
                const auto advance = [&](std::int64_t count, std::int64_t wire) {
                    const double tx = static_cast<double>(wire) * 8.0 / denom;
                    const double occupy = static_cast<double>(count) * tx;
                    double arrival = flow.start_us;
                    for (std::uint32_t h = 0; h < flow.route_len; ++h) {
                        LinkState& link =
                            links_[route_links_[flow.route_offset + h]];
                        const double start = std::max(arrival, link.free_at_us);
                        link.free_at_us = start + occupy;
                        const double depart =
                            link.propagation_us + link.switch_latency_us;
                        if (h + 1 == flow.route_len) {
                            const double delivered = link.free_at_us + depart;
                            if (delivered > completion) completion = delivered;
                            return;
                        }
                        arrival = (start + tx) + depart;
                    }
                };
                if (flow.packets > 1) advance(flow.packets - 1, flow.full_wire);
                advance(1, flow.last_wire);
            } else {
                // Exclusive route: nobody ever reads these links again, so
                // use the exact per-packet store-and-forward recurrence in
                // its dependency order — packet p at hop h reads the arrival
                // from (p, h-1) and the transmitter time left by (p-1, h) —
                // keeping single-flow results bit-identical to the
                // per-packet reference (flowsim.h) as the adapter tests
                // assert.
                const double tx_full =
                    static_cast<double>(flow.full_wire) * 8.0 / denom;
                const double tx_last =
                    static_cast<double>(flow.last_wire) * 8.0 / denom;
                for (std::int64_t p = 0; p < flow.packets; ++p) {
                    const double tx = p == flow.packets - 1 ? tx_last : tx_full;
                    double at = flow.start_us;
                    for (std::uint32_t h = 0; h < flow.route_len; ++h) {
                        LinkState& link =
                            links_[route_links_[flow.route_offset + h]];
                        const double start = std::max(at, link.free_at_us);
                        const double done = start + tx;
                        link.free_at_us = done;
                        at = done + link.propagation_us + link.switch_latency_us;
                    }
                    completion = at;
                }
            }
            // Serialization criterion, per link: no not-yet-processed
            // occupant may be able to arrive at the link before the instant
            // this flow's last packet leaves its transmitter (its new
            // free_at). The suffix-min arrival bound at the cursor covers
            // all of them in one comparison.
            for (std::uint32_t h = 0; eligible && h < flow.route_len; ++h) {
                const LinkId l = route_links_[flow.route_offset + h];
                eligible = cursor[l] == offset[l + 1] ||
                           bound[cursor[l]] >= links_[l].free_at_us;
            }
            if (eligible) {
                for (std::uint32_t h = 0; h < flow.route_len; ++h) {
                    --links_[route_links_[flow.route_offset + h]].pending_flows;
                }
                flow.completion_us = completion;
                flow.received = flow.packets;
                flow.fastpath = true;
                if (shared) ++stats_.fastpath_serialized;
                continue;
            }
            for (std::uint32_t h = flow.route_len; h-- > 0;) {
                links_[route_links_[flow.route_offset + h]].free_at_us = saved[h];
            }
        }
        for (std::uint32_t h = 0; h < flow.route_len; ++h) {
            tainted[route_links_[flow.route_offset + h]] = 1;
        }
        rejected.push_back(id);
    }
    // Heap pop order is fully determined by (time, flow, hop, batch), so the
    // injection order cannot change results; id order keeps the per-shard
    // event pools filling exactly as they did before this pass existed.
    std::sort(rejected.begin(), rejected.end());
    for (const FlowId id : rejected) inject(id);
}

void Engine::inject(FlowId id) {
    const FlowState& flow = flows_[id];
    Shard& shard = shards_[links_[route_links_[flow.route_offset]].shard];
    if (flow.packets > 1) {
        shard.schedule(BatchEvent{flow.start_us, id, 0, 0, flow.packets - 1});
    }
    shard.schedule(BatchEvent{flow.start_us, id, 0, flow.packets - 1, 1});
}

double Engine::next_event_time() const noexcept {
    double next = kInf;
    for (const Shard& shard : shards_) {
        if (!shard.idle()) next = std::min(next, shard.next_time_us());
    }
    return next;
}

void Engine::sync_mailboxes() {
    for (Shard& src : shards_) {
        auto& outboxes = src.outboxes();
        for (std::uint32_t dst = 0; dst < outboxes.size(); ++dst) {
            for (const BatchEvent& event : outboxes[dst]) {
                shards_[dst].schedule(event);
            }
            outboxes[dst].clear();
        }
    }
}

void Engine::run_windows(int workers) {
    obs::Sink* const sink = config_.sink;
    const ShardEnv env{links_.data(), flows_.data(), route_links_.data(),
                       config_.link_bandwidth_gbps * 1e3, config_.enable_fastpath};
    const auto run_shard = [&](Shard& shard, double end_us) {
        if (shard.idle() || shard.next_time_us() >= end_us) return;
        if (sink != nullptr) {
            const std::int64_t t0 = obs::now_ns();
            obs::Span span(sink, "sim.window");
            shard.run_window(env, end_us);
            span.end();
            shard.busy_ns += obs::now_ns() - t0;
        } else {
            shard.run_window(env, end_us);
        }
    };

    if (workers <= 1 || shards_.size() <= 1) {
        for (;;) {
            const double next = next_event_time();
            if (next == kInf) break;
            const double end = lookahead_us_ == kInf ? kInf : next + lookahead_us_;
            for (Shard& shard : shards_) run_shard(shard, end);
            sync_mailboxes();
            ++stats_.window_syncs;
        }
        return;
    }

    const auto count = static_cast<std::uint32_t>(
        std::min<std::size_t>(static_cast<std::size_t>(workers), shards_.size()));
    std::atomic<bool> done{false};
    double window_end = 0.0;  // written by the coordinator before each window
    std::barrier start_barrier(count + 1), end_barrier(count + 1);
    {
        std::vector<std::jthread> pool;
        pool.reserve(count);
        for (std::uint32_t w = 0; w < count; ++w) {
            pool.emplace_back([&, w] {
                if (sink != nullptr) {
                    sink->name_thread("sim.worker" + std::to_string(w));
                }
                for (;;) {
                    start_barrier.arrive_and_wait();
                    if (done.load(std::memory_order_relaxed)) return;
                    for (std::size_t s = w; s < shards_.size(); s += count) {
                        run_shard(shards_[s], window_end);
                    }
                    end_barrier.arrive_and_wait();
                }
            });
        }
        for (;;) {
            const double next = next_event_time();
            if (next == kInf) {
                done.store(true, std::memory_order_relaxed);
                start_barrier.arrive_and_wait();
                break;
            }
            window_end = lookahead_us_ == kInf ? kInf : next + lookahead_us_;
            start_barrier.arrive_and_wait();
            end_barrier.arrive_and_wait();
            sync_mailboxes();
            ++stats_.window_syncs;
        }
    }  // jthread joins here: obs flushes after this are safe
}

void Engine::run() {
    if (ran_) throw std::logic_error("sim::Engine: run() called twice");
    ran_ = true;
    obs::Sink* const sink = config_.sink;
    const std::int64_t wall_start = sink != nullptr ? obs::now_ns() : 0;

    int workers = config_.threads;
    if (workers <= 0) {
        workers = static_cast<int>(std::thread::hardware_concurrency());
        if (workers <= 0) workers = 1;
    }
    const int shard_count = config_.shards > 0 ? config_.shards : workers;
    partition_links(shard_count);
    fastpath_admission();
    compute_lookahead();
    run_windows(workers);

    stats_.flows = static_cast<std::int64_t>(flows_.size());
    stats_.events = 0;
    stats_.fastpath_flows = 0;
    double horizon = 0.0;
    for (const Shard& shard : shards_) stats_.events += shard.events();
    for (const FlowState& flow : flows_) {
        if (flow.received != flow.packets) {
            throw std::logic_error("sim::Engine: packets lost in simulation");
        }
        if (flow.fastpath) ++stats_.fastpath_flows;
        horizon = std::max(horizon, flow.completion_us);
    }
    stats_.horizon_us = horizon;

    if (sink != nullptr) {
        const std::int64_t wall_ns = obs::now_ns() - wall_start;
        sink->counter("sim.flows").add(stats_.flows);
        sink->counter("sim.events").add(stats_.events);
        sink->counter("sim.fastpath_flows").add(stats_.fastpath_flows);
        sink->counter("sim.fastpath_serialized").add(stats_.fastpath_serialized);
        sink->counter("sim.window_syncs").add(stats_.window_syncs);
        obs::Histogram& fct =
            sink->histogram("sim.fct_us", obs::geometric_bounds(1.0, 4.0, 16));
        for (const FlowState& flow : flows_) {
            fct.observe(flow.completion_us - flow.start_us);
        }
        for (const Shard& shard : shards_) {
            const std::int64_t idle = std::max<std::int64_t>(0, wall_ns - shard.busy_ns);
            sink->counter("sim.shard" + std::to_string(shard.id()) + ".idle_ns")
                .add(idle);
        }
    }
}

double Engine::completion_us(FlowId flow) const {
    if (!ran_) throw std::logic_error("sim::Engine: results before run()");
    return flows_[flow].completion_us;
}

FlowResult Engine::result(FlowId flow) const {
    if (!ran_) throw std::logic_error("sim::Engine: results before run()");
    const FlowState& state = flows_[flow];
    FlowResult result;
    result.packets = state.packets;
    result.payload_per_packet = state.payload_per_packet;
    if (state.packets == 0) return result;
    result.fct_us = state.completion_us - state.start_us;
    result.goodput_gbps = static_cast<double>(state.payload_bytes_total) * 8.0 /
                          (result.fct_us * 1e3);
    return result;
}

RouteId PathInterner::add_path(Engine& engine, const net::Network& net,
                               const net::Path& path) {
    std::vector<LinkId> links;
    links.reserve(path.switches.size());
    for (std::size_t i = 1; i < path.switches.size(); ++i) {
        const net::SwitchId a = path.switches[i - 1];
        const net::SwitchId b = path.switches[i];
        const std::uint64_t key =
            (static_cast<std::uint64_t>(static_cast<std::uint32_t>(a)) << 32) |
            static_cast<std::uint32_t>(b);
        const auto it = links_.find(key);
        if (it != links_.end()) {
            links.push_back(it->second);
            continue;
        }
        const auto latency = net.link_latency(a, b);
        if (!latency) {
            throw std::invalid_argument("PathInterner: path uses a missing link");
        }
        const LinkId id = engine.add_link(*latency, net.props(b).latency_us);
        links_.emplace(key, id);
        links.push_back(id);
    }
    return engine.add_route(links);
}

}  // namespace hermes::sim
