#include "sim/testbed.h"

#include <algorithm>
#include <stdexcept>

namespace hermes::sim {

namespace {

FlowResult run_once(const MotivationConfig& config, int packet_size, int overhead_bytes) {
    const int wire = std::min(packet_size + overhead_bytes, config.ethernet_mtu);
    FlowSpec spec;
    spec.mtu_bytes = wire;
    spec.base_header_bytes = config.base_header_bytes;
    spec.overhead_bytes = overhead_bytes;
    spec.payload_bytes_total =
        config.packets * static_cast<std::int64_t>(packet_size - config.base_header_bytes);

    std::vector<HopSpec> hops(static_cast<std::size_t>(config.hop_count),
                              HopSpec{config.link_propagation_us, config.switch_latency_us});
    return simulate_flow(hops, spec);
}

}  // namespace

MotivationPoint run_motivation(const MotivationConfig& config, int packet_size,
                               int overhead_bytes) {
    if (packet_size <= config.base_header_bytes) {
        throw std::invalid_argument("run_motivation: packet smaller than headers");
    }
    if (overhead_bytes < 0) {
        throw std::invalid_argument("run_motivation: negative overhead");
    }
    const FlowResult baseline = run_once(config, packet_size, 0);
    const FlowResult loaded = run_once(config, packet_size, overhead_bytes);

    MotivationPoint point;
    point.packet_size = packet_size;
    point.overhead_bytes = overhead_bytes;
    point.fct_us = loaded.fct_us;
    point.goodput_gbps = loaded.goodput_gbps;
    point.fct_increase = loaded.fct_us / baseline.fct_us - 1.0;
    point.goodput_decrease = 1.0 - loaded.goodput_gbps / baseline.goodput_gbps;
    return point;
}

net::Network make_testbed(const TestbedConfig& config) {
    if (config.switch_count == 0) throw std::invalid_argument("make_testbed: no switches");
    net::Network net;
    for (std::size_t i = 0; i < config.switch_count; ++i) {
        net::SwitchProps props;
        props.name = "tofino" + std::to_string(i);
        props.programmable = true;
        props.stages = config.stages;
        props.stage_capacity = config.stage_capacity;
        props.latency_us = config.switch_latency_us;
        net.add_switch(std::move(props));
    }
    for (std::size_t i = 1; i < config.switch_count; ++i) {
        net.add_link(i - 1, i, config.link_latency_us);
    }
    return net;
}

}  // namespace hermes::sim
