// Flat arena-allocated object pools for the traffic simulator.
//
// The engine churns through millions of short-lived event and flow records;
// per-object `new` (and the pointer-chasing std::function closures the old
// event loop used) dominate its profile long before the physics do. An
// Arena<T> hands out stable 32-bit indices into block-allocated storage and
// recycles them through an index-linked LIFO free list: alloc and free are
// O(1), nothing ever moves, and a drained simulation leaves its blocks warm
// for the next one. Pools are single-owner by design — each shard owns its
// own pools and no lock is ever taken (see shard.h for the ownership rules).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace hermes::sim {

// Sentinel "no slot" index (also the exhaustion signal from alloc()).
inline constexpr std::uint32_t kArenaNull = 0xffffffffu;

struct ArenaStats {
    std::size_t live = 0;            // currently allocated slots
    std::size_t peak_live = 0;       // high-water mark of live
    std::uint64_t allocations = 0;   // total alloc() successes
    std::uint64_t reuses = 0;        // allocations served from the free list
    std::size_t capacity = 0;        // slots backed by blocks
    std::size_t blocks = 0;          // blocks allocated
};

// One-line human-readable summary (bench/debug output).
[[nodiscard]] std::string to_string(const ArenaStats& stats);

template <typename T>
class Arena {
public:
    // `block_size` slots are allocated at a time; `max_items` caps the total
    // slot count (0 = unbounded). T must be default-constructible; slots are
    // reused by assignment, never destroyed until the arena dies.
    explicit Arena(std::size_t block_size = 4096, std::size_t max_items = 0)
        : block_size_(block_size == 0 ? 1 : block_size), max_items_(max_items) {}

    // Returns a slot index, or kArenaNull when max_items is exhausted.
    [[nodiscard]] std::uint32_t alloc() {
        std::uint32_t idx;
        if (free_head_ != kArenaNull) {
            idx = free_head_;
            free_head_ = next_free_[idx];
            ++stats_.reuses;
        } else {
            if (max_items_ != 0 && used_ >= max_items_) return kArenaNull;
            if (used_ == stats_.capacity) grow();
            idx = static_cast<std::uint32_t>(used_++);
        }
        ++stats_.allocations;
        if (++stats_.live > stats_.peak_live) stats_.peak_live = stats_.live;
        return idx;
    }

    // Returns `idx` to the free list (LIFO, so reuse is cache-warm).
    void free(std::uint32_t idx) {
        next_free_[idx] = free_head_;
        free_head_ = idx;
        --stats_.live;
    }

    [[nodiscard]] T& operator[](std::uint32_t idx) noexcept {
        return blocks_[idx / block_size_][idx % block_size_];
    }
    [[nodiscard]] const T& operator[](std::uint32_t idx) const noexcept {
        return blocks_[idx / block_size_][idx % block_size_];
    }

    // Forgets every allocation but keeps the blocks — the next simulation
    // reuses the warm storage without touching the heap.
    void reset() noexcept {
        used_ = 0;
        free_head_ = kArenaNull;
        stats_.live = 0;
    }

    [[nodiscard]] const ArenaStats& stats() const noexcept { return stats_; }

private:
    void grow() {
        blocks_.push_back(std::make_unique<T[]>(block_size_));
        stats_.capacity += block_size_;
        next_free_.resize(stats_.capacity, kArenaNull);
        ++stats_.blocks;
    }

    std::size_t block_size_;
    std::size_t max_items_;
    std::size_t used_ = 0;  // slots handed out at least once
    std::uint32_t free_head_ = kArenaNull;
    std::vector<std::unique_ptr<T[]>> blocks_;
    std::vector<std::uint32_t> next_free_;  // per-slot free-list link
    ArenaStats stats_;
};

}  // namespace hermes::sim
