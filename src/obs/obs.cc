#include "obs/obs.h"

#include <algorithm>
#include <stdexcept>

namespace hermes::obs {

namespace {

// Process-wide lane ids: one per OS thread, assigned on the thread's first
// span so lanes are numbered in order of appearance.
std::atomic<std::uint32_t> g_next_tid{1};
thread_local std::uint32_t t_tid = 0;

std::uint32_t this_thread_tid() {
    if (t_tid == 0) t_tid = g_next_tid.fetch_add(1, std::memory_order_relaxed);
    return t_tid;
}

// Thread-local (sink id -> buffer) cache. Sink ids are process-unique and
// never reused, so a stale entry for a destroyed sink can never be looked up
// again — it is just a few idle bytes until the thread exits.
struct LocalRef {
    std::uint64_t sink_id = 0;
    void* buffer = nullptr;
};
thread_local std::vector<LocalRef> t_refs;

std::atomic<std::uint64_t> g_next_sink_id{1};

}  // namespace

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
    for (std::size_t i = 1; i < bounds_.size(); ++i) {
        if (!(bounds_[i - 1] < bounds_[i])) {
            throw std::invalid_argument("obs::Histogram: bounds must be ascending");
        }
    }
    buckets_ = std::make_unique<std::atomic<std::int64_t>[]>(bounds_.size() + 1);
    for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i] = 0;
}

void Histogram::observe(double value) noexcept {
    const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
    const auto idx = static_cast<std::size_t>(it - bounds_.begin());
    buckets_[idx].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    double expected = sum_.load(std::memory_order_relaxed);
    while (!sum_.compare_exchange_weak(expected, expected + value,
                                       std::memory_order_relaxed)) {
    }
}

std::vector<std::int64_t> Histogram::counts() const {
    std::vector<std::int64_t> out(bounds_.size() + 1);
    for (std::size_t i = 0; i < out.size(); ++i) {
        out[i] = buckets_[i].load(std::memory_order_relaxed);
    }
    return out;
}

double Histogram::quantile(double q) const {
    const std::vector<std::int64_t> buckets = counts();
    std::int64_t total = 0;
    for (const std::int64_t c : buckets) total += c;
    if (total == 0) return 0.0;
    q = std::min(std::max(q, 0.0), 1.0);
    // Rank of the target observation (1-based), then walk the buckets.
    const double rank = q * static_cast<double>(total);
    std::int64_t seen = 0;
    for (std::size_t i = 0; i < buckets.size(); ++i) {
        if (buckets[i] == 0) continue;
        const auto before = static_cast<double>(seen);
        seen += buckets[i];
        if (static_cast<double>(seen) < rank) continue;
        const double lo = i == 0 ? 0.0 : bounds_[i - 1];
        if (i >= bounds_.size()) return lo;  // overflow bucket: no upper bound
        const double hi = bounds_[i];
        const double within = (rank - before) / static_cast<double>(buckets[i]);
        return lo + (hi - lo) * std::min(std::max(within, 0.0), 1.0);
    }
    return bounds_.empty() ? 0.0 : bounds_.back();
}

std::vector<double> geometric_bounds(double first, double factor, std::size_t count) {
    std::vector<double> bounds;
    bounds.reserve(count);
    double b = first;
    for (std::size_t i = 0; i < count; ++i) {
        bounds.push_back(b);
        b *= factor;
    }
    return bounds;
}

Sink::Sink()
    : id_(g_next_sink_id.fetch_add(1, std::memory_order_relaxed)), epoch_ns_(now_ns()) {}

Sink::~Sink() = default;

Counter& Sink::counter(std::string_view name) {
    const std::lock_guard lk(mu_);
    auto it = counters_.find(name);
    if (it == counters_.end()) {
        it = counters_.emplace(std::string(name), std::make_unique<Counter>()).first;
    }
    return *it->second;
}

Histogram& Sink::histogram(std::string_view name, std::vector<double> bounds) {
    const std::lock_guard lk(mu_);
    auto it = histograms_.find(name);
    if (it == histograms_.end()) {
        it = histograms_
                 .emplace(std::string(name), std::make_unique<Histogram>(std::move(bounds)))
                 .first;
    }
    return *it->second;
}

Sink::ThreadBuffer& Sink::local_buffer() {
    for (const LocalRef& r : t_refs) {
        if (r.sink_id == id_) return *static_cast<ThreadBuffer*>(r.buffer);
    }
    auto buffer = std::make_unique<ThreadBuffer>();
    buffer->tid = this_thread_tid();
    ThreadBuffer* raw = buffer.get();
    {
        const std::lock_guard lk(mu_);
        buffers_.push_back(std::move(buffer));
    }
    t_refs.push_back(LocalRef{id_, raw});
    return *raw;
}

void Sink::record_span(const char* name, std::int64_t start_ns, std::int64_t end_ns) {
    ThreadBuffer& buffer = local_buffer();
    buffer.events.push_back(TraceEvent{name, start_ns, end_ns, buffer.tid});
}

void Sink::name_thread(std::string name) {
    const std::uint32_t tid = this_thread_tid();
    const std::lock_guard lk(mu_);
    thread_names_[tid] = std::move(name);
}

std::vector<TraceEvent> Sink::events() const {
    std::vector<TraceEvent> out;
    {
        const std::lock_guard lk(mu_);
        for (const auto& buffer : buffers_) {
            out.insert(out.end(), buffer->events.begin(), buffer->events.end());
        }
    }
    std::sort(out.begin(), out.end(), [](const TraceEvent& a, const TraceEvent& b) {
        if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
        if (a.tid != b.tid) return a.tid < b.tid;
        return a.end_ns > b.end_ns;  // enclosing span first
    });
    return out;
}

std::vector<Sink::CounterValue> Sink::counters() const {
    const std::lock_guard lk(mu_);
    std::vector<CounterValue> out;
    out.reserve(counters_.size());
    for (const auto& [name, counter] : counters_) {
        out.push_back(CounterValue{name, counter->value()});
    }
    return out;
}

std::vector<Sink::HistogramValue> Sink::histograms() const {
    const std::lock_guard lk(mu_);
    std::vector<HistogramValue> out;
    out.reserve(histograms_.size());
    for (const auto& [name, h] : histograms_) {
        out.push_back(HistogramValue{name, h->bounds(), h->counts(), h->count(), h->sum()});
    }
    return out;
}

std::map<std::uint32_t, std::string> Sink::thread_names() const {
    const std::lock_guard lk(mu_);
    return thread_names_;
}

}  // namespace hermes::obs
