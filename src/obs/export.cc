#include "obs/export.h"

#include <cmath>
#include <cstdio>
#include <fstream>

namespace hermes::obs {

namespace {

// Minimal JSON string escaping (control characters, quote, backslash).
std::string json_escape(std::string_view s) {
    std::string out;
    out.reserve(s.size() + 2);
    for (const char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                    out += buf;
                } else {
                    out += c;
                }
        }
    }
    return out;
}

// Fixed three-decimal microseconds (trace_event ts/dur are in us). Printed
// via snprintf so the output is locale-independent.
std::string us_fixed(std::int64_t ns) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.3f", static_cast<double>(ns) / 1000.0);
    return buf;
}

std::string json_number(double v) {
    if (!std::isfinite(v)) return "null";
    if (v == std::floor(v) && std::abs(v) < 9.0e15) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
        return buf;
    }
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

}  // namespace

void write_chrome_trace(const Sink& sink, std::ostream& os) {
    const std::int64_t epoch = sink.epoch_ns();
    os << "[";
    bool first = true;
    for (const auto& [tid, name] : sink.thread_names()) {
        if (!first) os << ",";
        first = false;
        os << "\n{\"ph\":\"M\",\"pid\":1,\"tid\":" << tid
           << ",\"name\":\"thread_name\",\"args\":{\"name\":\"" << json_escape(name)
           << "\"}}";
    }
    for (const TraceEvent& e : sink.events()) {
        if (!first) os << ",";
        first = false;
        os << "\n{\"ph\":\"X\",\"pid\":1,\"tid\":" << e.tid << ",\"name\":\""
           << json_escape(e.name) << "\",\"ts\":" << us_fixed(e.start_ns - epoch)
           << ",\"dur\":" << us_fixed(e.end_ns - e.start_ns) << "}";
    }
    os << "\n]\n";
}

void write_metrics_json(const Sink& sink, std::ostream& os) {
    os << "{\n  \"counters\": {";
    bool first = true;
    for (const Sink::CounterValue& c : sink.counters()) {
        if (!first) os << ",";
        first = false;
        os << "\n    \"" << json_escape(c.name) << "\": " << c.value;
    }
    os << (first ? "" : "\n  ") << "},\n  \"histograms\": {";
    first = true;
    for (const Sink::HistogramValue& h : sink.histograms()) {
        if (!first) os << ",";
        first = false;
        os << "\n    \"" << json_escape(h.name) << "\": {\"bounds\": [";
        for (std::size_t i = 0; i < h.bounds.size(); ++i) {
            os << (i ? ", " : "") << json_number(h.bounds[i]);
        }
        os << "], \"counts\": [";
        for (std::size_t i = 0; i < h.counts.size(); ++i) {
            os << (i ? ", " : "") << h.counts[i];
        }
        os << "], \"count\": " << h.count << ", \"sum\": " << json_number(h.sum) << "}";
    }
    os << (first ? "" : "\n  ") << "}\n}\n";
}

bool write_chrome_trace_file(const Sink& sink, const std::string& path) {
    std::ofstream out(path);
    if (!out) return false;
    write_chrome_trace(sink, out);
    return static_cast<bool>(out);
}

bool write_metrics_json_file(const Sink& sink, const std::string& path) {
    std::ofstream out(path);
    if (!out) return false;
    write_metrics_json(sink, out);
    return static_cast<bool>(out);
}

}  // namespace hermes::obs
