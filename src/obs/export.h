// Exporters for obs::Sink snapshots.
//
// Chrome trace: a JSON array of trace_event "X" (complete) events — one per
// recorded span, timestamped in microseconds relative to the sink epoch,
// with one lane per thread — plus "M" metadata events carrying thread
// names. Open the file in chrome://tracing or https://ui.perfetto.dev.
//
// Metrics: a single flat JSON object,
//   {"counters": {name: value, ...},
//    "histograms": {name: {"bounds": [...], "counts": [...],
//                          "count": N, "sum": S}, ...}}
// with name-sorted keys, so bench tooling and CI can diff runs with jq.
#pragma once

#include <ostream>
#include <string>

#include "obs/obs.h"

namespace hermes::obs {

void write_chrome_trace(const Sink& sink, std::ostream& os);
void write_metrics_json(const Sink& sink, std::ostream& os);

// File variants; false (with no file written or a partial file) when the
// path cannot be opened or the stream fails.
[[nodiscard]] bool write_chrome_trace_file(const Sink& sink, const std::string& path);
[[nodiscard]] bool write_metrics_json_file(const Sink& sink, const std::string& path);

}  // namespace hermes::obs
