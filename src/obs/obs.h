// Pipeline observability: low-overhead tracing spans and process metrics.
//
// One obs::Sink represents one observed run (a CLI invocation, a bench
// sweep, a test). Instrumented code receives a `Sink*` through
// core::CommonOptions — never through a global — and wraps phases in RAII
// obs::Span objects and bumps obs::Counter / obs::Histogram entries looked
// up by name. A null sink disables everything: Span construction is two
// pointer stores and one branch, counter lookups are skipped by the caller,
// and no clock is read — the instrumented hot paths (the branch-and-bound
// node loop, the greedy anchor search) run at their uninstrumented speed.
//
// Concurrency model:
//  - Span completion appends to a per-thread buffer owned by the sink. The
//    append takes no lock (only the owning thread touches its buffer); the
//    buffer is registered with the sink once, under the sink mutex, on the
//    thread's first span against that sink.
//  - Counters and histograms are shared atomics: `counter(name)` returns a
//    stable reference that may be cached and bumped from any thread.
//  - Flush (events() / the exporters in obs/export.h) merges the thread
//    buffers under the sink mutex. It must not run concurrently with span
//    recording: flush after the instrumented phase's worker threads have
//    been joined. Hermes's pipelines all join their pools before returning,
//    so flushing between pipeline calls is always safe.
//
// Exporters live in obs/export.h: Chrome trace_event JSON (open in
// chrome://tracing or https://ui.perfetto.dev) and a flat metrics JSON that
// bench tooling and CI diff with jq.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace hermes::obs {

// Monotonic nanoseconds (steady clock).
[[nodiscard]] inline std::int64_t now_ns() noexcept {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

// One completed span. `name` must have static storage duration (the
// instrumentation passes string literals), which keeps recording
// allocation-free.
struct TraceEvent {
    const char* name = "";
    std::int64_t start_ns = 0;
    std::int64_t end_ns = 0;
    std::uint32_t tid = 0;  // process-unique lane id (assigned per thread)
};

// Monotonic counter. add() is wait-free and safe from any thread.
class Counter {
public:
    void add(std::int64_t delta) noexcept {
        value_.fetch_add(delta, std::memory_order_relaxed);
    }
    [[nodiscard]] std::int64_t value() const noexcept {
        return value_.load(std::memory_order_relaxed);
    }

private:
    std::atomic<std::int64_t> value_{0};
};

// Fixed-bucket histogram: `bounds` are ascending inclusive upper bounds,
// with an implicit overflow bucket at the end. observe() is wait-free.
class Histogram {
public:
    explicit Histogram(std::vector<double> bounds);

    void observe(double value) noexcept;

    [[nodiscard]] const std::vector<double>& bounds() const noexcept { return bounds_; }
    // bounds().size() + 1 entries; the last is the overflow bucket.
    [[nodiscard]] std::vector<std::int64_t> counts() const;
    [[nodiscard]] std::int64_t count() const noexcept {
        return count_.load(std::memory_order_relaxed);
    }
    [[nodiscard]] double sum() const noexcept {
        return sum_.load(std::memory_order_relaxed);
    }

    // Estimated value at quantile q in [0, 1], linearly interpolated within
    // the bucket holding the q-th observation (bucket lower bound = previous
    // upper bound, 0 for the first; the overflow bucket reports its lower
    // bound). 0 when empty. Serve latency p50/p99 publishing uses this.
    [[nodiscard]] double quantile(double q) const;

private:
    std::vector<double> bounds_;
    std::unique_ptr<std::atomic<std::int64_t>[]> buckets_;
    std::atomic<std::int64_t> count_{0};
    std::atomic<double> sum_{0.0};
};

// Geometric bucket bounds: {first, first*factor, ...} (count entries).
[[nodiscard]] std::vector<double> geometric_bounds(double first, double factor,
                                                   std::size_t count);

class Sink {
public:
    Sink();
    ~Sink();
    Sink(const Sink&) = delete;
    Sink& operator=(const Sink&) = delete;

    // Named metric registry. The returned references stay valid for the
    // sink's lifetime; hot loops should look a metric up once and cache the
    // reference. A histogram's bounds are fixed by its first registration.
    [[nodiscard]] Counter& counter(std::string_view name);
    [[nodiscard]] Histogram& histogram(std::string_view name, std::vector<double> bounds);

    // Appends one completed span to the calling thread's buffer. Normally
    // called by ~Span; also the test seam for deterministic exporter
    // fixtures (timestamps are taken verbatim).
    void record_span(const char* name, std::int64_t start_ns, std::int64_t end_ns);

    // Labels the calling thread's lane in the trace export.
    void name_thread(std::string name);

    struct CounterValue {
        std::string name;
        std::int64_t value = 0;
    };
    struct HistogramValue {
        std::string name;
        std::vector<double> bounds;
        std::vector<std::int64_t> counts;
        std::int64_t count = 0;
        double sum = 0.0;
    };

    // Snapshots, name-sorted (deterministic for golden files). events() is
    // sorted by (start, tid) and merges every registered thread buffer; see
    // the flush contract in the file comment.
    [[nodiscard]] std::vector<TraceEvent> events() const;
    [[nodiscard]] std::vector<CounterValue> counters() const;
    [[nodiscard]] std::vector<HistogramValue> histograms() const;
    [[nodiscard]] std::map<std::uint32_t, std::string> thread_names() const;

    // Trace timestamps are exported relative to this epoch (defaults to the
    // construction instant). Overridable so tests can pin exact exporter
    // output.
    [[nodiscard]] std::int64_t epoch_ns() const noexcept { return epoch_ns_; }
    void set_epoch_ns(std::int64_t ns) noexcept { epoch_ns_ = ns; }

private:
    struct ThreadBuffer {
        std::vector<TraceEvent> events;
        std::uint32_t tid = 0;
    };

    [[nodiscard]] ThreadBuffer& local_buffer();

    const std::uint64_t id_;  // process-unique; keys the thread-local cache
    std::int64_t epoch_ns_;
    mutable std::mutex mu_;
    std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
    std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
    std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
    std::map<std::uint32_t, std::string> thread_names_;
};

// RAII trace span. With a null sink the constructor is two stores and a
// branch — no clock read, no allocation — so instrumentation left in place
// costs nothing when observability is off.
class Span {
public:
    Span(Sink* sink, const char* name) noexcept
        : sink_(sink), name_(name), start_ns_(sink ? now_ns() : 0) {}
    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;
    ~Span() { end(); }

    // Ends the span early (idempotent).
    void end() {
        if (sink_ == nullptr) return;
        sink_->record_span(name_, start_ns_, now_ns());
        sink_ = nullptr;
    }

private:
    Sink* sink_;
    const char* name_;
    std::int64_t start_ns_;
};

}  // namespace hermes::obs
