#include "net/network.h"

#include <queue>
#include <stdexcept>

namespace hermes::net {

SwitchId Network::add_switch(SwitchProps props) {
    if (props.stages <= 0) throw std::invalid_argument("add_switch: stages must be > 0");
    if (props.stage_capacity <= 0.0) {
        throw std::invalid_argument("add_switch: stage capacity must be > 0");
    }
    if (props.latency_us < 0.0) {
        throw std::invalid_argument("add_switch: negative latency");
    }
    if (props.name.empty()) props.name = "sw" + std::to_string(switches_.size());
    switches_.push_back(std::move(props));
    adjacency_.emplace_back();
    return switches_.size() - 1;
}

void Network::add_link(SwitchId a, SwitchId b, double latency_us) {
    if (a >= switches_.size() || b >= switches_.size()) {
        throw std::out_of_range("add_link: bad switch id");
    }
    if (a == b) throw std::invalid_argument("add_link: self-loop");
    if (latency_us < 0.0) throw std::invalid_argument("add_link: negative latency");
    if (link_latency(a, b)) throw std::invalid_argument("add_link: duplicate link");
    links_.push_back(Link{a, b, latency_us});
    adjacency_[a].emplace_back(b, latency_us);
    adjacency_[b].emplace_back(a, latency_us);
}

const SwitchProps& Network::props(SwitchId u) const {
    if (u >= switches_.size()) throw std::out_of_range("props: bad switch id");
    return switches_[u];
}

SwitchProps& Network::props(SwitchId u) {
    if (u >= switches_.size()) throw std::out_of_range("props: bad switch id");
    return switches_[u];
}

std::vector<SwitchId> Network::neighbors(SwitchId u) const {
    if (u >= switches_.size()) throw std::out_of_range("neighbors: bad switch id");
    std::vector<SwitchId> out;
    out.reserve(adjacency_[u].size());
    for (const auto& [v, lat] : adjacency_[u]) out.push_back(v);
    return out;
}

const std::vector<std::pair<SwitchId, double>>& Network::adjacency(SwitchId u) const {
    if (u >= switches_.size()) throw std::out_of_range("adjacency: bad switch id");
    return adjacency_[u];
}

std::optional<double> Network::link_latency(SwitchId a, SwitchId b) const noexcept {
    if (a >= switches_.size() || b >= switches_.size()) return std::nullopt;
    for (const auto& [v, lat] : adjacency_[a]) {
        if (v == b) return lat;
    }
    return std::nullopt;
}

std::vector<SwitchId> Network::programmable_switches() const {
    std::vector<SwitchId> out;
    for (SwitchId u = 0; u < switches_.size(); ++u) {
        if (switches_[u].programmable) out.push_back(u);
    }
    return out;
}

double Network::total_programmable_capacity() const noexcept {
    double total = 0.0;
    for (const SwitchProps& s : switches_) {
        if (s.programmable) total += s.stages * s.stage_capacity;
    }
    return total;
}

bool Network::is_connected() const {
    if (switches_.empty()) return true;
    std::vector<bool> seen(switches_.size(), false);
    std::queue<SwitchId> frontier;
    frontier.push(0);
    seen[0] = true;
    std::size_t visited = 0;
    while (!frontier.empty()) {
        const SwitchId u = frontier.front();
        frontier.pop();
        ++visited;
        for (const auto& [v, lat] : adjacency_[u]) {
            if (!seen[v]) {
                seen[v] = true;
                frontier.push(v);
            }
        }
    }
    return visited == switches_.size();
}

}  // namespace hermes::net
