#include "net/network.h"

#include <algorithm>
#include <queue>
#include <stdexcept>

namespace hermes::net {

SwitchId Network::add_switch(SwitchProps props) {
    if (props.stages <= 0) throw std::invalid_argument("add_switch: stages must be > 0");
    if (props.stage_capacity <= 0.0) {
        throw std::invalid_argument("add_switch: stage capacity must be > 0");
    }
    if (props.latency_us < 0.0) {
        throw std::invalid_argument("add_switch: negative latency");
    }
    if (props.name.empty()) props.name = "sw" + std::to_string(switches_.size());
    switches_.push_back(std::move(props));
    switch_up_.push_back(1);
    adjacency_.emplace_back();
    ++epoch_;
    return switches_.size() - 1;
}

void Network::add_link(SwitchId a, SwitchId b, double latency_us) {
    if (a >= switches_.size() || b >= switches_.size()) {
        throw std::out_of_range("add_link: bad switch id");
    }
    if (a == b) throw std::invalid_argument("add_link: self-loop");
    if (latency_us < 0.0) throw std::invalid_argument("add_link: negative latency");
    for (const Link& l : links_) {
        if ((l.a == a && l.b == b) || (l.a == b && l.b == a)) {
            throw std::invalid_argument("add_link: duplicate link");
        }
    }
    links_.push_back(Link{a, b, latency_us, true});
    if (link_usable(links_.back())) attach(links_.back());
    ++epoch_;
}

const SwitchProps& Network::props(SwitchId u) const {
    if (u >= switches_.size()) throw std::out_of_range("props: bad switch id");
    return switches_[u];
}

SwitchProps& Network::props(SwitchId u) {
    if (u >= switches_.size()) throw std::out_of_range("props: bad switch id");
    return switches_[u];
}

std::vector<SwitchId> Network::neighbors(SwitchId u) const {
    if (u >= switches_.size()) throw std::out_of_range("neighbors: bad switch id");
    std::vector<SwitchId> out;
    out.reserve(adjacency_[u].size());
    for (const auto& [v, lat] : adjacency_[u]) out.push_back(v);
    return out;
}

const std::vector<std::pair<SwitchId, double>>& Network::adjacency(SwitchId u) const {
    if (u >= switches_.size()) throw std::out_of_range("adjacency: bad switch id");
    return adjacency_[u];
}

std::optional<double> Network::link_latency(SwitchId a, SwitchId b) const noexcept {
    if (a >= switches_.size() || b >= switches_.size()) return std::nullopt;
    for (const auto& [v, lat] : adjacency_[a]) {
        if (v == b) return lat;
    }
    return std::nullopt;
}

bool Network::switch_up(SwitchId u) const {
    if (u >= switches_.size()) throw std::out_of_range("switch_up: bad switch id");
    return switch_up_[u] != 0;
}

bool Network::link_up(SwitchId a, SwitchId b) const noexcept {
    return link_latency(a, b).has_value();
}

void Network::attach(const Link& l) {
    adjacency_[l.a].emplace_back(l.b, l.latency_us);
    adjacency_[l.b].emplace_back(l.a, l.latency_us);
}

void Network::detach(SwitchId a, SwitchId b) {
    std::erase_if(adjacency_[a], [&](const auto& p) { return p.first == b; });
    std::erase_if(adjacency_[b], [&](const auto& p) { return p.first == a; });
}

bool Network::fail_link(SwitchId a, SwitchId b) {
    if (a >= switches_.size() || b >= switches_.size()) {
        throw std::out_of_range("fail_link: bad switch id");
    }
    for (Link& l : links_) {
        if ((l.a != a || l.b != b) && (l.a != b || l.b != a)) continue;
        if (!l.up) return false;
        if (link_usable(l)) detach(l.a, l.b);
        l.up = false;
        ++epoch_;
        return true;
    }
    return false;
}

bool Network::recover_link(SwitchId a, SwitchId b) {
    if (a >= switches_.size() || b >= switches_.size()) {
        throw std::out_of_range("recover_link: bad switch id");
    }
    for (Link& l : links_) {
        if ((l.a != a || l.b != b) && (l.a != b || l.b != a)) continue;
        if (l.up) return false;
        l.up = true;
        if (link_usable(l)) attach(l);
        ++epoch_;
        return true;
    }
    return false;
}

bool Network::fail_switch(SwitchId u) {
    if (u >= switches_.size()) throw std::out_of_range("fail_switch: bad switch id");
    if (switch_up_[u] == 0) return false;
    // Detach every currently-usable incident link; their own up flags are
    // untouched so recovery restores exactly the pre-failure state.
    for (const Link& l : links_) {
        if (l.a != u && l.b != u) continue;
        if (link_usable(l)) detach(l.a, l.b);
    }
    switch_up_[u] = 0;
    ++epoch_;
    return true;
}

bool Network::recover_switch(SwitchId u) {
    if (u >= switches_.size()) throw std::out_of_range("recover_switch: bad switch id");
    if (switch_up_[u] != 0) return false;
    switch_up_[u] = 1;
    for (const Link& l : links_) {
        if (l.a != u && l.b != u) continue;
        if (link_usable(l)) attach(l);
    }
    ++epoch_;
    return true;
}

std::size_t Network::live_link_count() const noexcept {
    std::size_t n = 0;
    for (const Link& l : links_) {
        if (link_usable(l)) ++n;
    }
    return n;
}

std::vector<SwitchId> Network::programmable_switches() const {
    std::vector<SwitchId> out;
    for (SwitchId u = 0; u < switches_.size(); ++u) {
        if (switches_[u].programmable && switch_up_[u] != 0) out.push_back(u);
    }
    return out;
}

double Network::total_programmable_capacity() const noexcept {
    double total = 0.0;
    for (SwitchId u = 0; u < switches_.size(); ++u) {
        const SwitchProps& s = switches_[u];
        if (s.programmable && switch_up_[u] != 0) total += s.stages * s.stage_capacity;
    }
    return total;
}

bool Network::is_connected() const {
    std::size_t live = 0;
    SwitchId start = 0;
    for (SwitchId u = 0; u < switches_.size(); ++u) {
        if (switch_up_[u] != 0) {
            if (live == 0) start = u;
            ++live;
        }
    }
    if (live == 0) return true;
    std::vector<bool> seen(switches_.size(), false);
    std::queue<SwitchId> frontier;
    frontier.push(start);
    seen[start] = true;
    std::size_t visited = 0;
    while (!frontier.empty()) {
        const SwitchId u = frontier.front();
        frontier.pop();
        ++visited;
        for (const auto& [v, lat] : adjacency_[u]) {
            if (!seen[v]) {
                seen[v] = true;
                frontier.push(v);
            }
        }
    }
    return visited == live;
}

}  // namespace hermes::net
