// Substrate network model (§V-A).
//
// An undirected graph G = (V_G, E_G) of switches and links. Each switch
// carries the paper's four properties: programmability P(u), stage count
// C_stage, per-stage resource capacity C_res, and maximum transmission
// latency t_s(u). Each link carries its transmission latency t_l(u,v).
//
// Fault model: switches and links can fail and recover at runtime
// (fail_switch / fail_link / recover_*). Failed elements keep their ids and
// properties, but disappear from the live adjacency — every path computation,
// programmable_switches(), and capacity total sees only the surviving
// topology. A link is usable iff itself and both endpoints are up.
//
// Epoch contract: every topology mutation (adding or failing/recovering
// switches and links) bumps epoch(). Long-lived consumers that cache derived
// structure — net::PathOracle above all — snapshot the epoch and treat a
// mutation they were not told about as a contract violation. Mutating switch
// properties through the non-const props() accessor is invisible to the
// network; callers doing so must call bump_epoch() themselves.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace hermes::net {

using SwitchId = std::size_t;

struct SwitchProps {
    std::string name;
    bool programmable = false;
    int stages = 12;               // C_stage (Tofino-class default)
    double stage_capacity = 1.0;   // C_res, normalized resource units/stage
    double latency_us = 1.0;       // t_s(u)
};

struct Link {
    SwitchId a = 0;
    SwitchId b = 0;
    double latency_us = 0.0;  // t_l(a,b)
    bool up = true;           // false after fail_link (independent of endpoint state)
};

class Network {
public:
    SwitchId add_switch(SwitchProps props);

    // Undirected link; throws on bad ids, self-loops, duplicates, or
    // negative latency.
    void add_link(SwitchId a, SwitchId b, double latency_us);

    [[nodiscard]] std::size_t switch_count() const noexcept { return switches_.size(); }
    [[nodiscard]] std::size_t link_count() const noexcept { return links_.size(); }
    [[nodiscard]] const SwitchProps& props(SwitchId u) const;
    // Mutable property access does NOT bump the epoch (the network cannot see
    // what the caller changes); call bump_epoch() after mutating through it.
    [[nodiscard]] SwitchProps& props(SwitchId u);
    // All links ever added, including failed ones (check Link::up).
    [[nodiscard]] const std::vector<Link>& links() const noexcept { return links_; }

    // Live neighbors only.
    [[nodiscard]] std::vector<SwitchId> neighbors(SwitchId u) const;
    // Live neighbor list with link latencies, by reference — the
    // allocation-free form every Dijkstra relaxation loop should iterate.
    [[nodiscard]] const std::vector<std::pair<SwitchId, double>>& adjacency(
        SwitchId u) const;
    // Latency of the live link (a,b); nullopt when absent, failed, or either
    // endpoint is down.
    [[nodiscard]] std::optional<double> link_latency(SwitchId a, SwitchId b) const noexcept;

    // ---- fault surface ---------------------------------------------------

    // Monotonic mutation counter: bumped by add_switch, add_link, and every
    // successful fail_*/recover_* call.
    [[nodiscard]] std::uint64_t epoch() const noexcept { return epoch_; }
    // Manual bump for mutations the network cannot observe (props()).
    void bump_epoch() noexcept { ++epoch_; }

    [[nodiscard]] bool switch_up(SwitchId u) const;
    // True when the link exists, is itself up, and both endpoints are up.
    [[nodiscard]] bool link_up(SwitchId a, SwitchId b) const noexcept;

    // Takes the link (a,b) down / brings it back. Return false (and do not
    // bump the epoch) when the link does not exist or is already in the
    // requested state. Recovering a link whose endpoint is down succeeds (the
    // link's own flag flips) but it stays unusable until the switch recovers.
    bool fail_link(SwitchId a, SwitchId b);
    bool recover_link(SwitchId a, SwitchId b);

    // Takes switch u down / brings it back, detaching or reattaching every
    // incident link whose own up flag (and other endpoint) allows it. False
    // when already in the requested state; throws on bad ids.
    bool fail_switch(SwitchId u);
    bool recover_switch(SwitchId u);

    // Live link count (both endpoints and the link itself up).
    [[nodiscard]] std::size_t live_link_count() const noexcept;

    // Ids of all live programmable switches, ascending.
    [[nodiscard]] std::vector<SwitchId> programmable_switches() const;

    // Total switch deployment capacity: Σ stages · stage_capacity over live
    // programmable switches.
    [[nodiscard]] double total_programmable_capacity() const noexcept;

    // Connectivity of the surviving topology (down switches excluded; an
    // all-down or empty network counts as connected).
    [[nodiscard]] bool is_connected() const;

private:
    [[nodiscard]] bool link_usable(const Link& l) const noexcept {
        return l.up && switch_up_[l.a] != 0 && switch_up_[l.b] != 0;
    }
    void attach(const Link& l);
    void detach(SwitchId a, SwitchId b);

    std::vector<SwitchProps> switches_;
    std::vector<Link> links_;
    std::vector<std::uint8_t> switch_up_;
    // Live adjacency only: kept in sync with the up/down state.
    std::vector<std::vector<std::pair<SwitchId, double>>> adjacency_;
    std::uint64_t epoch_ = 0;
};

}  // namespace hermes::net
