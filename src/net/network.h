// Substrate network model (§V-A).
//
// An undirected graph G = (V_G, E_G) of switches and links. Each switch
// carries the paper's four properties: programmability P(u), stage count
// C_stage, per-stage resource capacity C_res, and maximum transmission
// latency t_s(u). Each link carries its transmission latency t_l(u,v).
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

namespace hermes::net {

using SwitchId = std::size_t;

struct SwitchProps {
    std::string name;
    bool programmable = false;
    int stages = 12;               // C_stage (Tofino-class default)
    double stage_capacity = 1.0;   // C_res, normalized resource units/stage
    double latency_us = 1.0;       // t_s(u)
};

struct Link {
    SwitchId a = 0;
    SwitchId b = 0;
    double latency_us = 0.0;  // t_l(a,b)
};

class Network {
public:
    SwitchId add_switch(SwitchProps props);

    // Undirected link; throws on bad ids, self-loops, duplicates, or
    // negative latency.
    void add_link(SwitchId a, SwitchId b, double latency_us);

    [[nodiscard]] std::size_t switch_count() const noexcept { return switches_.size(); }
    [[nodiscard]] std::size_t link_count() const noexcept { return links_.size(); }
    [[nodiscard]] const SwitchProps& props(SwitchId u) const;
    [[nodiscard]] SwitchProps& props(SwitchId u);
    [[nodiscard]] const std::vector<Link>& links() const noexcept { return links_; }

    [[nodiscard]] std::vector<SwitchId> neighbors(SwitchId u) const;
    // Neighbor list with link latencies, by reference — the allocation-free
    // form every Dijkstra relaxation loop should iterate.
    [[nodiscard]] const std::vector<std::pair<SwitchId, double>>& adjacency(
        SwitchId u) const;
    [[nodiscard]] std::optional<double> link_latency(SwitchId a, SwitchId b) const noexcept;

    // Ids of all programmable switches, ascending.
    [[nodiscard]] std::vector<SwitchId> programmable_switches() const;

    // Total switch deployment capacity: Σ stages · stage_capacity over
    // programmable switches.
    [[nodiscard]] double total_programmable_capacity() const noexcept;

    [[nodiscard]] bool is_connected() const;

private:
    std::vector<SwitchProps> switches_;
    std::vector<Link> links_;
    std::vector<std::vector<std::pair<SwitchId, double>>> adjacency_;
};

}  // namespace hermes::net
