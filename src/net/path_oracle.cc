#include "net/path_oracle.h"

#include <algorithm>
#include <limits>
#include <mutex>
#include <queue>
#include <stdexcept>

namespace hermes::net {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

PathOracle::PathOracle(const Network& net)
    : net_(&net), trees_(net.switch_count()) {}

const PathOracle::Tree& PathOracle::tree(SwitchId src) {
    if (src >= trees_.size()) throw std::out_of_range("PathOracle: bad switch id");
    {
        std::shared_lock lock(mutex_);
        if (trees_[src]) {
            tree_hits_.fetch_add(1, std::memory_order_relaxed);
            return *trees_[src];
        }
    }
    // Full single-source Dijkstra with the cost model of net/paths.h. The
    // (distance, switch-id) queue ordering and strict-< relaxation make the
    // parent chain to any destination identical to the pairwise early-exit
    // Dijkstra's, so reconstructed paths are bit-identical to shortest_path.
    //
    // Computed outside the lock so concurrent misses on different sources
    // run their Dijkstras in parallel; two threads racing on the same source
    // just do the (deterministic) work twice and the first publish wins.
    const std::size_t n = net_->switch_count();
    auto t = std::make_shared<Tree>();
    t->dist.assign(n, kInf);
    t->parent.assign(n, n);
    using QueueItem = std::pair<double, SwitchId>;
    std::priority_queue<QueueItem, std::vector<QueueItem>, std::greater<>> frontier;
    t->dist[src] = net_->props(src).latency_us;
    frontier.emplace(t->dist[src], src);
    while (!frontier.empty()) {
        const auto [d, u] = frontier.top();
        frontier.pop();
        if (d > t->dist[u]) continue;
        for (const auto& [v, link] : net_->adjacency(u)) {
            const double nd = d + link + net_->props(v).latency_us;
            if (nd < t->dist[v]) {
                t->dist[v] = nd;
                t->parent[v] = u;
                frontier.emplace(nd, v);
            }
        }
    }
    std::unique_lock lock(mutex_);
    if (trees_[src]) {
        tree_hits_.fetch_add(1, std::memory_order_relaxed);
        return *trees_[src];
    }
    tree_misses_.fetch_add(1, std::memory_order_relaxed);
    trees_[src] = std::move(t);
    return *trees_[src];
}

const std::vector<double>& PathOracle::latencies(SwitchId src) { return tree(src).dist; }

std::optional<Path> PathOracle::path(SwitchId src, SwitchId dst) {
    if (src >= trees_.size() || dst >= trees_.size()) {
        throw std::out_of_range("PathOracle: bad switch id");
    }
    if (src == dst) return Path{{src}, net_->props(src).latency_us};
    const Tree& t = tree(src);
    if (t.dist[dst] == kInf) return std::nullopt;
    Path p;
    p.latency_us = t.dist[dst];
    for (SwitchId v = dst;; v = t.parent[v]) {
        p.switches.push_back(v);
        if (v == src) break;
    }
    std::reverse(p.switches.begin(), p.switches.end());
    return p;
}

double PathOracle::path_latency(SwitchId src, SwitchId dst) {
    if (src >= trees_.size() || dst >= trees_.size()) {
        throw std::out_of_range("PathOracle: bad switch id");
    }
    if (src == dst) return net_->props(src).latency_us;
    return tree(src).dist[dst];
}

std::vector<Path> PathOracle::k_paths(SwitchId src, SwitchId dst, std::size_t k) {
    if (src >= trees_.size() || dst >= trees_.size()) {
        throw std::out_of_range("PathOracle: bad switch id");
    }
    if (k == 0) return {};
    const std::uint64_t key =
        static_cast<std::uint64_t>(src) * trees_.size() + static_cast<std::uint64_t>(dst);
    {
        std::shared_lock lock(mutex_);
        const auto it = k_cache_.find(key);
        // A cached entry answers the request when it was computed with at
        // least k, or when Yen already exhausted every loop-free path (it
        // returned fewer paths than asked for).
        if (it != k_cache_.end() &&
            (k <= it->second.k_computed ||
             it->second.paths.size() < it->second.k_computed)) {
            k_hits_.fetch_add(1, std::memory_order_relaxed);
            const std::vector<Path>& cached = it->second.paths;
            return {cached.begin(),
                    cached.begin() + static_cast<std::ptrdiff_t>(
                                         std::min(k, cached.size()))};
        }
    }
    std::unique_lock lock(mutex_);
    auto& entry = k_cache_[key];
    if (k > entry.k_computed && entry.paths.size() >= entry.k_computed) {
        k_misses_.fetch_add(1, std::memory_order_relaxed);
        entry.paths = k_shortest_paths(*net_, src, dst, k);
        entry.k_computed = k;
    } else {
        k_hits_.fetch_add(1, std::memory_order_relaxed);
    }
    return {entry.paths.begin(),
            entry.paths.begin() +
                static_cast<std::ptrdiff_t>(std::min(k, entry.paths.size()))};
}

void PathOracle::invalidate() {
    std::unique_lock lock(mutex_);
    for (auto& slot : trees_) slot.reset();
    k_cache_.clear();
}

PathOracle::Stats PathOracle::stats() const noexcept {
    Stats s;
    s.tree_hits = tree_hits_.load(std::memory_order_relaxed);
    s.tree_misses = tree_misses_.load(std::memory_order_relaxed);
    s.k_hits = k_hits_.load(std::memory_order_relaxed);
    s.k_misses = k_misses_.load(std::memory_order_relaxed);
    return s;
}

}  // namespace hermes::net
