#include "net/path_oracle.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <mutex>
#include <queue>
#include <stdexcept>

namespace hermes::net {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();

// True when `path` traverses the undirected link (a,b) as a hop.
bool path_uses_link(const Path& p, SwitchId a, SwitchId b) noexcept {
    for (std::size_t i = 0; i + 1 < p.switches.size(); ++i) {
        const SwitchId x = p.switches[i];
        const SwitchId y = p.switches[i + 1];
        if ((x == a && y == b) || (x == b && y == a)) return true;
    }
    return false;
}
}  // namespace

PathOracle::PathOracle(const Network& net)
    : net_(&net), trees_(net.switch_count()), observed_epoch_(net.epoch()) {}

void PathOracle::check_epoch() {
    const std::uint64_t live = net_->epoch();
    if (observed_epoch_.load(std::memory_order_acquire) == live) return;
    // The Network was mutated without an on_*()/invalidate() notification —
    // a contract violation that would otherwise silently serve paths through
    // dead links. Debug builds fail fast; release builds self-heal by
    // dropping every cache.
    assert(false &&
           "PathOracle: Network mutated without on_*()/invalidate() notification");
    std::unique_lock lock(mutex_);
    if (observed_epoch_.load(std::memory_order_relaxed) == net_->epoch()) return;
    for (auto& slot : trees_) slot.reset();
    k_cache_.clear();
    observed_epoch_.store(net_->epoch(), std::memory_order_release);
}

const PathOracle::Tree& PathOracle::tree(SwitchId src) {
    if (src >= trees_.size()) throw std::out_of_range("PathOracle: bad switch id");
    {
        std::shared_lock lock(mutex_);
        if (trees_[src]) {
            tree_hits_.fetch_add(1, std::memory_order_relaxed);
            return *trees_[src];
        }
    }
    // Full single-source Dijkstra with the cost model of net/paths.h. The
    // (distance, switch-id) queue ordering and strict-< relaxation make the
    // parent chain to any destination identical to the pairwise early-exit
    // Dijkstra's, so reconstructed paths are bit-identical to shortest_path.
    //
    // Computed outside the lock so concurrent misses on different sources
    // run their Dijkstras in parallel; two threads racing on the same source
    // just do the (deterministic) work twice and the first publish wins.
    const std::size_t n = net_->switch_count();
    auto t = std::make_shared<Tree>();
    t->dist.assign(n, kInf);
    t->parent.assign(n, n);
    using QueueItem = std::pair<double, SwitchId>;
    std::priority_queue<QueueItem, std::vector<QueueItem>, std::greater<>> frontier;
    t->dist[src] = net_->props(src).latency_us;
    frontier.emplace(t->dist[src], src);
    while (!frontier.empty()) {
        const auto [d, u] = frontier.top();
        frontier.pop();
        if (d > t->dist[u]) continue;
        for (const auto& [v, link] : net_->adjacency(u)) {
            const double nd = d + link + net_->props(v).latency_us;
            if (nd < t->dist[v]) {
                t->dist[v] = nd;
                t->parent[v] = u;
                frontier.emplace(nd, v);
            }
        }
    }
    std::unique_lock lock(mutex_);
    if (trees_[src]) {
        tree_hits_.fetch_add(1, std::memory_order_relaxed);
        return *trees_[src];
    }
    tree_misses_.fetch_add(1, std::memory_order_relaxed);
    trees_[src] = std::move(t);
    return *trees_[src];
}

const std::vector<double>& PathOracle::latencies(SwitchId src) {
    check_epoch();
    return tree(src).dist;
}

std::optional<Path> PathOracle::path(SwitchId src, SwitchId dst) {
    if (src >= trees_.size() || dst >= trees_.size()) {
        throw std::out_of_range("PathOracle: bad switch id");
    }
    check_epoch();
    if (!net_->switch_up(src) || !net_->switch_up(dst)) return std::nullopt;
    if (src == dst) return Path{{src}, net_->props(src).latency_us};
    const Tree& t = tree(src);
    if (t.dist[dst] == kInf) return std::nullopt;
    Path p;
    p.latency_us = t.dist[dst];
    for (SwitchId v = dst;; v = t.parent[v]) {
        p.switches.push_back(v);
        if (v == src) break;
    }
    std::reverse(p.switches.begin(), p.switches.end());
    return p;
}

double PathOracle::path_latency(SwitchId src, SwitchId dst) {
    if (src >= trees_.size() || dst >= trees_.size()) {
        throw std::out_of_range("PathOracle: bad switch id");
    }
    check_epoch();
    if (!net_->switch_up(src) || !net_->switch_up(dst)) return kInf;
    if (src == dst) return net_->props(src).latency_us;
    return tree(src).dist[dst];
}

std::vector<Path> PathOracle::k_paths(SwitchId src, SwitchId dst, std::size_t k) {
    if (src >= trees_.size() || dst >= trees_.size()) {
        throw std::out_of_range("PathOracle: bad switch id");
    }
    check_epoch();
    if (k == 0) return {};
    const std::uint64_t key =
        static_cast<std::uint64_t>(src) * trees_.size() + static_cast<std::uint64_t>(dst);
    {
        std::shared_lock lock(mutex_);
        const auto it = k_cache_.find(key);
        // A cached entry answers the request when it was computed with at
        // least k, or when Yen already exhausted every loop-free path (it
        // returned fewer paths than asked for).
        if (it != k_cache_.end() &&
            (k <= it->second.k_computed ||
             it->second.paths.size() < it->second.k_computed)) {
            k_hits_.fetch_add(1, std::memory_order_relaxed);
            const std::vector<Path>& cached = it->second.paths;
            return {cached.begin(),
                    cached.begin() + static_cast<std::ptrdiff_t>(
                                         std::min(k, cached.size()))};
        }
    }
    std::unique_lock lock(mutex_);
    auto& entry = k_cache_[key];
    if (k > entry.k_computed && entry.paths.size() >= entry.k_computed) {
        k_misses_.fetch_add(1, std::memory_order_relaxed);
        entry.paths = k_shortest_paths(*net_, src, dst, k);
        entry.k_computed = k;
    } else {
        k_hits_.fetch_add(1, std::memory_order_relaxed);
    }
    return {entry.paths.begin(),
            entry.paths.begin() +
                static_cast<std::ptrdiff_t>(std::min(k, entry.paths.size()))};
}

template <typename TreePred, typename KPred>
void PathOracle::evict_if(TreePred&& drop_tree, KPred&& drop_k) {
    std::unique_lock lock(mutex_);
    std::uint64_t dropped_trees = 0;
    for (auto& slot : trees_) {
        if (slot && drop_tree(*slot)) {
            slot.reset();
            ++dropped_trees;
        }
    }
    std::uint64_t dropped_k = 0;
    for (auto it = k_cache_.begin(); it != k_cache_.end();) {
        if (drop_k(it->first, it->second)) {
            it = k_cache_.erase(it);
            ++dropped_k;
        } else {
            ++it;
        }
    }
    tree_evictions_.fetch_add(dropped_trees, std::memory_order_relaxed);
    k_evictions_.fetch_add(dropped_k, std::memory_order_relaxed);
    observed_epoch_.store(net_->epoch(), std::memory_order_release);
}

void PathOracle::on_link_down(SwitchId a, SwitchId b) {
    if (a >= trees_.size() || b >= trees_.size()) {
        throw std::out_of_range("PathOracle: bad switch id");
    }
    // A tree is stale only when the dead link is one of its tree edges; every
    // other tree's parent chains avoid the link entirely and stay exact. A
    // cached k-set is stale only when one of its paths hops the link: the
    // removal deletes exactly the paths that used it from the global ranking,
    // so a set not containing it keeps the same first-k prefix.
    evict_if(
        [&](const Tree& t) { return t.parent[a] == b || t.parent[b] == a; },
        [&](std::uint64_t, const KEntry& e) {
            return std::any_of(e.paths.begin(), e.paths.end(),
                               [&](const Path& p) { return path_uses_link(p, a, b); });
        });
}

void PathOracle::on_link_up(SwitchId a, SwitchId b) {
    if (a >= trees_.size() || b >= trees_.size()) {
        throw std::out_of_range("PathOracle: bad switch id");
    }
    // A recovered link can only change a tree when routing through it would
    // improve some label: dist[a] + t_l + t_s(b) < dist[b] (or symmetric).
    // k-sets are dropped wholesale: a new path can displace any cached rank.
    const auto latency = net_->link_latency(a, b);
    const double lat = latency ? *latency : 0.0;
    const double ts_a = net_->props(a).latency_us;
    const double ts_b = net_->props(b).latency_us;
    evict_if(
        [&](const Tree& t) {
            if (!latency) return false;  // endpoint still down: nothing usable changed
            return t.dist[a] + lat + ts_b < t.dist[b] ||
                   t.dist[b] + lat + ts_a < t.dist[a];
        },
        [&](std::uint64_t, const KEntry&) { return latency.has_value(); });
}

void PathOracle::on_switch_down(SwitchId u) {
    if (u >= trees_.size()) throw std::out_of_range("PathOracle: bad switch id");
    // Trees routing *through* u (u is some node's parent) or rooted at it are
    // stale; trees where u is a leaf keep every other destination exact, and
    // the down-endpoint guards in path()/path_latency() cover queries to u.
    evict_if(
        [&](const Tree& t) {
            if (t.dist[u] == kInf) return false;
            if (t.parent[u] == trees_.size() && t.dist[u] != kInf) {
                // u is the root (parent sentinel + finite dist): drop.
                return true;
            }
            return std::any_of(t.parent.begin(), t.parent.end(),
                               [&](SwitchId p) { return p == u; });
        },
        [&](std::uint64_t, const KEntry& e) {
            return std::any_of(e.paths.begin(), e.paths.end(),
                               [&](const Path& p) { return p.contains(u); });
        });
}

void PathOracle::on_switch_up(SwitchId u) {
    if (u >= trees_.size()) throw std::out_of_range("PathOracle: bad switch id");
    // Equivalent to every incident live link coming up at once: a tree is
    // affected when any of them could improve a label. Cached trees computed
    // while u was down hold dist[u] = inf, so any live neighbor with a finite
    // label triggers the drop.
    const double ts_u = net_->props(u).latency_us;
    const auto& incident = net_->adjacency(u);
    evict_if(
        [&](const Tree& t) {
            for (const auto& [v, lat] : incident) {
                if (t.dist[v] + lat + ts_u < t.dist[u]) return true;
                if (t.dist[u] + lat + net_->props(v).latency_us < t.dist[v]) return true;
            }
            return false;
        },
        [&](std::uint64_t, const KEntry&) { return !incident.empty(); });
}

void PathOracle::invalidate() {
    std::unique_lock lock(mutex_);
    for (auto& slot : trees_) slot.reset();
    k_cache_.clear();
    observed_epoch_.store(net_->epoch(), std::memory_order_release);
}

PathOracle::Stats PathOracle::stats() const noexcept {
    Stats s;
    s.tree_hits = tree_hits_.load(std::memory_order_relaxed);
    s.tree_misses = tree_misses_.load(std::memory_order_relaxed);
    s.k_hits = k_hits_.load(std::memory_order_relaxed);
    s.k_misses = k_misses_.load(std::memory_order_relaxed);
    s.tree_evictions = tree_evictions_.load(std::memory_order_relaxed);
    s.k_evictions = k_evictions_.load(std::memory_order_relaxed);
    return s;
}

}  // namespace hermes::net
