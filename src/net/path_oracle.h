// Memoized path provider over one Network.
//
// Every consumer of the optimization pipeline (greedy anchor search, the
// MILP formulation's P(u,v) sets, incremental deployment, the baselines'
// route wiring, the flow simulator) asks the same shortest-path questions
// about the same substrate graph over and over. The oracle computes one
// full single-source Dijkstra tree (parents + distances) per source, caches
// it, and reconstructs pairwise Paths from the tree; k-shortest-path sets
// are cached per (src, dst) keyed on the largest k computed so far.
//
// Results are bit-identical to the free functions in net/paths.h: the tree
// Dijkstra uses the same cost model, the same strict-< relaxation, and the
// same (distance, switch-id) priority ordering, so the parent chain to any
// destination matches the early-exit pairwise Dijkstra exactly.
//
// Invalidation contract (epoch-based): the oracle snapshots Network::epoch()
// at construction and after every invalidation, and every accessor checks
// the snapshot against the live epoch. Mutating the Network and then querying
// the oracle WITHOUT telling it is a contract violation: debug builds assert;
// release builds self-heal by dropping every cache (correct, but forfeits all
// memoization — fix the caller). The ways to tell it, cheapest first:
//   - on_link_down / on_link_up / on_switch_down / on_switch_up after the
//     matching Network::fail_* / recover_* call (fault::Injector does this):
//     caches are dropped selectively — only Dijkstra trees that actually used
//     the failed element (or could improve through the recovered one) and
//     k-path entries whose cached paths traverse it are evicted; trees of
//     unaffected sources survive. Call after EVERY mutation, in order.
//   - invalidate(): drops everything. Required after latency changes through
//     props() (+ bump_epoch()); adding switches requires a new oracle instead
//     (per-source slots are sized at construction).
// After a switch failure handled via on_switch_down, surviving trees may
// still hold finite latencies(src)[u] entries for the down leaf switch u;
// path()/path_latency() guard against down endpoints, raw latencies()
// consumers must filter by Network::switch_up() themselves (every in-repo
// consumer iterates programmable_switches(), which already excludes them).
// All accessors are safe to call concurrently.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "net/paths.h"

namespace hermes::net {

class PathOracle {
public:
    explicit PathOracle(const Network& net);

    [[nodiscard]] const Network& network() const noexcept { return *net_; }

    // Single-source shortest-path latencies; identical to
    // shortest_latencies(net, src). The reference stays valid until any
    // invalidation or destruction.
    [[nodiscard]] const std::vector<double>& latencies(SwitchId src);

    // Shortest path between two switches; identical to
    // shortest_path(net, src, dst). Reconstructed from the cached tree.
    // nullopt when disconnected or either endpoint is down.
    [[nodiscard]] std::optional<Path> path(SwitchId src, SwitchId dst);

    // Latency of the shortest src->dst path without materializing it
    // (infinity when disconnected or either endpoint is down).
    [[nodiscard]] double path_latency(SwitchId src, SwitchId dst);

    // Up to k loop-free shortest paths; identical to
    // k_shortest_paths(net, src, dst, k). Cached per (src, dst): a request
    // with smaller k slices the cached result, a larger k recomputes once.
    [[nodiscard]] std::vector<Path> k_paths(SwitchId src, SwitchId dst, std::size_t k);

    // Selective invalidation after one matching Network mutation (see the
    // epoch contract above). Each call syncs the oracle to the network's
    // current epoch, so call them once per mutation, in mutation order.
    void on_link_down(SwitchId a, SwitchId b);
    void on_link_up(SwitchId a, SwitchId b);
    void on_switch_down(SwitchId u);
    void on_switch_up(SwitchId u);

    // Drops every cached tree and k-path set and syncs the epoch. Required
    // after link or switch latency changes; adding switches requires a new
    // oracle instead.
    void invalidate();

    struct Stats {
        std::uint64_t tree_hits = 0;
        std::uint64_t tree_misses = 0;  // Dijkstra runs
        std::uint64_t k_hits = 0;
        std::uint64_t k_misses = 0;  // Yen runs
        std::uint64_t tree_evictions = 0;  // trees dropped by selective sync
        std::uint64_t k_evictions = 0;     // k-entries dropped by selective sync
    };
    [[nodiscard]] Stats stats() const noexcept;

private:
    struct Tree {
        std::vector<double> dist;       // t_p to every switch (inf = unreachable)
        std::vector<SwitchId> parent;   // parent[v] on the tree; n for src/unreached
    };
    struct KEntry {
        std::size_t k_computed = 0;  // the k the paths were computed with
        std::vector<Path> paths;
    };

    [[nodiscard]] const Tree& tree(SwitchId src);
    // Asserts (debug) / self-heals (release) the epoch contract; see above.
    void check_epoch();
    // Drops trees/k-entries matched by the predicates and syncs the epoch.
    template <typename TreePred, typename KPred>
    void evict_if(TreePred&& drop_tree, KPred&& drop_k);

    const Network* net_;
    // One slot per source; a published Tree is immutable and the slot array
    // never resizes, so readers may use a Tree after dropping the lock.
    std::vector<std::shared_ptr<const Tree>> trees_;
    std::unordered_map<std::uint64_t, KEntry> k_cache_;
    mutable std::shared_mutex mutex_;
    std::atomic<std::uint64_t> observed_epoch_;
    std::atomic<std::uint64_t> tree_hits_{0};
    std::atomic<std::uint64_t> tree_misses_{0};
    std::atomic<std::uint64_t> k_hits_{0};
    std::atomic<std::uint64_t> k_misses_{0};
    std::atomic<std::uint64_t> tree_evictions_{0};
    std::atomic<std::uint64_t> k_evictions_{0};
};

}  // namespace hermes::net
