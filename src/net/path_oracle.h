// Memoized path provider over one immutable Network.
//
// Every consumer of the optimization pipeline (greedy anchor search, the
// MILP formulation's P(u,v) sets, incremental deployment, the baselines'
// route wiring, the flow simulator) asks the same shortest-path questions
// about the same substrate graph over and over. The oracle computes one
// full single-source Dijkstra tree (parents + distances) per source, caches
// it, and reconstructs pairwise Paths from the tree; k-shortest-path sets
// are cached per (src, dst) keyed on the largest k computed so far.
//
// Results are bit-identical to the free functions in net/paths.h: the tree
// Dijkstra uses the same cost model, the same strict-< relaxation, and the
// same (distance, switch-id) priority ordering, so the parent chain to any
// destination matches the early-exit pairwise Dijkstra exactly.
//
// Invalidation contract: the oracle holds a reference to the Network and
// assumes the topology and every latency is frozen for the oracle's
// lifetime. Mutating the Network (add_switch / add_link / props()) makes
// cached trees stale; the caller must call invalidate() afterwards — or,
// when switches were added, construct a fresh oracle (per-source slots are
// sized at construction). All accessors are safe to call concurrently.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "net/paths.h"

namespace hermes::net {

class PathOracle {
public:
    explicit PathOracle(const Network& net);

    [[nodiscard]] const Network& network() const noexcept { return *net_; }

    // Single-source shortest-path latencies; identical to
    // shortest_latencies(net, src). The reference stays valid until
    // invalidate() or destruction.
    [[nodiscard]] const std::vector<double>& latencies(SwitchId src);

    // Shortest path between two switches; identical to
    // shortest_path(net, src, dst). Reconstructed from the cached tree.
    [[nodiscard]] std::optional<Path> path(SwitchId src, SwitchId dst);

    // Latency of the shortest src->dst path without materializing it
    // (infinity when disconnected).
    [[nodiscard]] double path_latency(SwitchId src, SwitchId dst);

    // Up to k loop-free shortest paths; identical to
    // k_shortest_paths(net, src, dst, k). Cached per (src, dst): a request
    // with smaller k slices the cached result, a larger k recomputes once.
    [[nodiscard]] std::vector<Path> k_paths(SwitchId src, SwitchId dst, std::size_t k);

    // Drops every cached tree and k-path set. Required after the underlying
    // Network's link or switch latencies change; adding switches requires a
    // new oracle instead.
    void invalidate();

    struct Stats {
        std::uint64_t tree_hits = 0;
        std::uint64_t tree_misses = 0;  // Dijkstra runs
        std::uint64_t k_hits = 0;
        std::uint64_t k_misses = 0;  // Yen runs
    };
    [[nodiscard]] Stats stats() const noexcept;

private:
    struct Tree {
        std::vector<double> dist;       // t_p to every switch (inf = unreachable)
        std::vector<SwitchId> parent;   // parent[v] on the tree; n for src/unreached
    };
    struct KEntry {
        std::size_t k_computed = 0;  // the k the paths were computed with
        std::vector<Path> paths;
    };

    [[nodiscard]] const Tree& tree(SwitchId src);

    const Network* net_;
    // One slot per source; a published Tree is immutable and the slot array
    // never resizes, so readers may use a Tree after dropping the lock.
    std::vector<std::shared_ptr<const Tree>> trees_;
    std::unordered_map<std::uint64_t, KEntry> k_cache_;
    mutable std::shared_mutex mutex_;
    std::atomic<std::uint64_t> tree_hits_{0};
    std::atomic<std::uint64_t> tree_misses_{0};
    std::atomic<std::uint64_t> k_hits_{0};
    std::atomic<std::uint64_t> k_misses_{0};
};

}  // namespace hermes::net
