#include "net/paths.h"

#include <algorithm>
#include <limits>
#include <queue>
#include <set>
#include <stdexcept>

namespace hermes::net {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();

using EdgeKey = std::pair<SwitchId, SwitchId>;

EdgeKey edge_key(SwitchId a, SwitchId b) { return {std::min(a, b), std::max(a, b)}; }

// Dijkstra from src to dst avoiding banned nodes/edges; returns the path or
// nullopt. Cost = sum of switch latencies (both endpoints of every hop,
// counted once per switch) + link latencies.
std::optional<Path> dijkstra(const Network& net, SwitchId src, SwitchId dst,
                             const std::set<SwitchId>& banned_nodes,
                             const std::set<EdgeKey>& banned_edges) {
    const std::size_t n = net.switch_count();
    if (src >= n || dst >= n) throw std::out_of_range("dijkstra: bad switch id");
    if (banned_nodes.count(src) || banned_nodes.count(dst)) return std::nullopt;

    std::vector<double> dist(n, kInf);
    std::vector<SwitchId> parent(n, n);
    using QueueItem = std::pair<double, SwitchId>;
    std::priority_queue<QueueItem, std::vector<QueueItem>, std::greater<>> frontier;

    dist[src] = net.props(src).latency_us;
    frontier.emplace(dist[src], src);
    while (!frontier.empty()) {
        const auto [d, u] = frontier.top();
        frontier.pop();
        if (d > dist[u]) continue;
        if (u == dst) break;
        for (const SwitchId v : net.neighbors(u)) {
            if (banned_nodes.count(v) || banned_edges.count(edge_key(u, v))) continue;
            const double link = *net.link_latency(u, v);
            const double nd = d + link + net.props(v).latency_us;
            if (nd < dist[v]) {
                dist[v] = nd;
                parent[v] = u;
                frontier.emplace(nd, v);
            }
        }
    }
    if (dist[dst] == kInf) return std::nullopt;

    Path p;
    p.latency_us = dist[dst];
    for (SwitchId v = dst;; v = parent[v]) {
        p.switches.push_back(v);
        if (v == src) break;
    }
    std::reverse(p.switches.begin(), p.switches.end());
    return p;
}
}  // namespace

bool Path::contains(SwitchId u) const noexcept {
    return std::find(switches.begin(), switches.end(), u) != switches.end();
}

double path_latency(const Network& net, const std::vector<SwitchId>& sw) {
    if (sw.empty()) return 0.0;
    double total = net.props(sw.front()).latency_us;
    for (std::size_t i = 1; i < sw.size(); ++i) {
        const auto link = net.link_latency(sw[i - 1], sw[i]);
        if (!link) {
            throw std::invalid_argument("path_latency: switches " +
                                        std::to_string(sw[i - 1]) + " and " +
                                        std::to_string(sw[i]) + " are not linked");
        }
        total += *link + net.props(sw[i]).latency_us;
    }
    return total;
}

std::vector<double> shortest_latencies(const Network& net, SwitchId src) {
    const std::size_t n = net.switch_count();
    if (src >= n) throw std::out_of_range("shortest_latencies: bad switch id");
    std::vector<double> dist(n, kInf);
    using QueueItem = std::pair<double, SwitchId>;
    std::priority_queue<QueueItem, std::vector<QueueItem>, std::greater<>> frontier;
    dist[src] = net.props(src).latency_us;
    frontier.emplace(dist[src], src);
    while (!frontier.empty()) {
        const auto [d, u] = frontier.top();
        frontier.pop();
        if (d > dist[u]) continue;
        for (const SwitchId v : net.neighbors(u)) {
            const double nd = d + *net.link_latency(u, v) + net.props(v).latency_us;
            if (nd < dist[v]) {
                dist[v] = nd;
                frontier.emplace(nd, v);
            }
        }
    }
    return dist;
}

std::optional<Path> shortest_path(const Network& net, SwitchId src, SwitchId dst) {
    if (src == dst) {
        if (src >= net.switch_count()) throw std::out_of_range("shortest_path: bad id");
        return Path{{src}, net.props(src).latency_us};
    }
    return dijkstra(net, src, dst, {}, {});
}

std::vector<Path> k_shortest_paths(const Network& net, SwitchId src, SwitchId dst,
                                   std::size_t k) {
    std::vector<Path> result;
    if (k == 0) return result;
    auto first = shortest_path(net, src, dst);
    if (!first) return result;
    result.push_back(std::move(*first));
    if (src == dst) return result;

    // Candidate pool ordered by latency; lexicographic switch sequence used
    // only as a deterministic tie-break.
    auto cmp = [](const Path& a, const Path& b) {
        if (a.latency_us != b.latency_us) return a.latency_us < b.latency_us;
        return a.switches < b.switches;
    };
    std::vector<Path> candidates;

    while (result.size() < k) {
        const Path& last = result.back();
        for (std::size_t i = 0; i + 1 < last.switches.size(); ++i) {
            const SwitchId spur = last.switches[i];
            const std::vector<SwitchId> root(last.switches.begin(),
                                             last.switches.begin() +
                                                 static_cast<std::ptrdiff_t>(i) + 1);
            std::set<EdgeKey> banned_edges;
            for (const Path& p : result) {
                if (p.switches.size() > i &&
                    std::equal(root.begin(), root.end(), p.switches.begin()) &&
                    p.switches.size() > i + 1) {
                    banned_edges.insert(edge_key(p.switches[i], p.switches[i + 1]));
                }
            }
            std::set<SwitchId> banned_nodes(root.begin(), root.end() - 1);
            const auto spur_path = dijkstra(net, spur, dst, banned_nodes, banned_edges);
            if (!spur_path) continue;

            Path total;
            total.switches = root;
            total.switches.insert(total.switches.end(), spur_path->switches.begin() + 1,
                                  spur_path->switches.end());
            total.latency_us = path_latency(net, total.switches);
            const bool duplicate =
                std::any_of(result.begin(), result.end(),
                            [&](const Path& p) { return p.switches == total.switches; }) ||
                std::any_of(candidates.begin(), candidates.end(), [&](const Path& p) {
                    return p.switches == total.switches;
                });
            if (!duplicate) candidates.push_back(std::move(total));
        }
        if (candidates.empty()) break;
        const auto best = std::min_element(candidates.begin(), candidates.end(), cmp);
        result.push_back(*best);
        candidates.erase(best);
    }
    return result;
}

}  // namespace hermes::net
