#include "net/paths.h"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <queue>
#include <stdexcept>

namespace hermes::net {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();

// Undirected edge key packed into one integer so Yen's banned-edge set can
// be a sorted flat vector probed by binary search instead of a node-based
// std::set (the spur loop builds and probes these sets thousands of times
// on WAN-scale graphs).
std::uint64_t edge_key(std::size_t n, SwitchId a, SwitchId b) {
    return static_cast<std::uint64_t>(std::min(a, b)) * n + std::max(a, b);
}

// Dijkstra from src to dst avoiding banned nodes/edges; returns the path or
// nullopt. Cost = sum of switch latencies (both endpoints of every hop,
// counted once per switch) + link latencies. banned_nodes is empty (= none)
// or a node-indexed flag vector; banned_edges is a sorted span of packed
// edge keys.
std::optional<Path> dijkstra(const Network& net, SwitchId src, SwitchId dst,
                             const std::vector<char>& banned_nodes,
                             const std::vector<std::uint64_t>& banned_edges) {
    const std::size_t n = net.switch_count();
    if (src >= n || dst >= n) throw std::out_of_range("dijkstra: bad switch id");
    const auto banned = [&](SwitchId v) {
        return !banned_nodes.empty() && banned_nodes[v] != 0;
    };
    if (banned(src) || banned(dst)) return std::nullopt;

    std::vector<double> dist(n, kInf);
    std::vector<SwitchId> parent(n, n);
    using QueueItem = std::pair<double, SwitchId>;
    std::priority_queue<QueueItem, std::vector<QueueItem>, std::greater<>> frontier;

    dist[src] = net.props(src).latency_us;
    frontier.emplace(dist[src], src);
    while (!frontier.empty()) {
        const auto [d, u] = frontier.top();
        frontier.pop();
        if (d > dist[u]) continue;
        if (u == dst) break;
        for (const auto& [v, link] : net.adjacency(u)) {
            if (banned(v) || std::binary_search(banned_edges.begin(), banned_edges.end(),
                                                edge_key(n, u, v))) {
                continue;
            }
            const double nd = d + link + net.props(v).latency_us;
            if (nd < dist[v]) {
                dist[v] = nd;
                parent[v] = u;
                frontier.emplace(nd, v);
            }
        }
    }
    if (dist[dst] == kInf) return std::nullopt;

    Path p;
    p.latency_us = dist[dst];
    for (SwitchId v = dst;; v = parent[v]) {
        p.switches.push_back(v);
        if (v == src) break;
    }
    std::reverse(p.switches.begin(), p.switches.end());
    return p;
}
}  // namespace

bool Path::contains(SwitchId u) const noexcept {
    return std::find(switches.begin(), switches.end(), u) != switches.end();
}

double path_latency(const Network& net, const std::vector<SwitchId>& sw) {
    if (sw.empty()) return 0.0;
    double total = net.props(sw.front()).latency_us;
    for (std::size_t i = 1; i < sw.size(); ++i) {
        const auto link = net.link_latency(sw[i - 1], sw[i]);
        if (!link) {
            throw std::invalid_argument("path_latency: switches " +
                                        std::to_string(sw[i - 1]) + " and " +
                                        std::to_string(sw[i]) + " are not linked");
        }
        total += *link + net.props(sw[i]).latency_us;
    }
    return total;
}

std::vector<double> shortest_latencies(const Network& net, SwitchId src) {
    const std::size_t n = net.switch_count();
    if (src >= n) throw std::out_of_range("shortest_latencies: bad switch id");
    std::vector<double> dist(n, kInf);
    using QueueItem = std::pair<double, SwitchId>;
    std::priority_queue<QueueItem, std::vector<QueueItem>, std::greater<>> frontier;
    dist[src] = net.props(src).latency_us;
    frontier.emplace(dist[src], src);
    while (!frontier.empty()) {
        const auto [d, u] = frontier.top();
        frontier.pop();
        if (d > dist[u]) continue;
        for (const auto& [v, link] : net.adjacency(u)) {
            const double nd = d + link + net.props(v).latency_us;
            if (nd < dist[v]) {
                dist[v] = nd;
                frontier.emplace(nd, v);
            }
        }
    }
    return dist;
}

std::optional<Path> shortest_path(const Network& net, SwitchId src, SwitchId dst) {
    if (src == dst) {
        if (src >= net.switch_count()) throw std::out_of_range("shortest_path: bad id");
        return Path{{src}, net.props(src).latency_us};
    }
    return dijkstra(net, src, dst, {}, {});
}

std::vector<Path> k_shortest_paths(const Network& net, SwitchId src, SwitchId dst,
                                   std::size_t k) {
    std::vector<Path> result;
    if (k == 0) return result;
    auto first = shortest_path(net, src, dst);
    if (!first) return result;
    result.push_back(std::move(*first));
    if (src == dst) return result;

    // Candidate pool ordered by latency; lexicographic switch sequence used
    // only as a deterministic tie-break.
    auto cmp = [](const Path& a, const Path& b) {
        if (a.latency_us != b.latency_us) return a.latency_us < b.latency_us;
        return a.switches < b.switches;
    };
    std::vector<Path> candidates;

    const std::size_t n = net.switch_count();
    std::vector<char> banned_nodes(n, 0);
    std::vector<std::uint64_t> banned_edges;
    while (result.size() < k) {
        const Path& last = result.back();
        for (std::size_t i = 0; i + 1 < last.switches.size(); ++i) {
            const SwitchId spur = last.switches[i];
            const std::vector<SwitchId> root(last.switches.begin(),
                                             last.switches.begin() +
                                                 static_cast<std::ptrdiff_t>(i) + 1);
            banned_edges.clear();
            for (const Path& p : result) {
                if (p.switches.size() > i &&
                    std::equal(root.begin(), root.end(), p.switches.begin()) &&
                    p.switches.size() > i + 1) {
                    banned_edges.push_back(edge_key(n, p.switches[i], p.switches[i + 1]));
                }
            }
            std::sort(banned_edges.begin(), banned_edges.end());
            banned_edges.erase(std::unique(banned_edges.begin(), banned_edges.end()),
                               banned_edges.end());
            for (std::size_t r = 0; r + 1 < root.size(); ++r) banned_nodes[root[r]] = 1;
            const auto spur_path = dijkstra(net, spur, dst, banned_nodes, banned_edges);
            for (std::size_t r = 0; r + 1 < root.size(); ++r) banned_nodes[root[r]] = 0;
            if (!spur_path) continue;

            Path total;
            total.switches = root;
            total.switches.insert(total.switches.end(), spur_path->switches.begin() + 1,
                                  spur_path->switches.end());
            total.latency_us = path_latency(net, total.switches);
            const bool duplicate =
                std::any_of(result.begin(), result.end(),
                            [&](const Path& p) { return p.switches == total.switches; }) ||
                std::any_of(candidates.begin(), candidates.end(), [&](const Path& p) {
                    return p.switches == total.switches;
                });
            if (!duplicate) candidates.push_back(std::move(total));
        }
        if (candidates.empty()) break;
        const auto best = std::min_element(candidates.begin(), candidates.end(), cmp);
        result.push_back(*best);
        candidates.erase(best);
    }
    return result;
}

}  // namespace hermes::net
