// The ten WAN topologies of Table III.
//
// The paper selects ten real-world WAN topologies from the Internet Topology
// Zoo. The Zoo dataset itself is external, so we regenerate connected random
// WAN graphs with the node/edge counts of Table III and the paper's property
// settings (50% programmable switches configured like Tofino, t_s = 1 us,
// t_l ~ U(1 ms, 10 ms)). Graphs are deterministic per topology id.
//
// Table III in the available paper text is partially garbled: only IDs
// 2 (70/85), 5 (73/70), 7 (68/92), 9 (74/92), and 10 (69/98) are readable,
// and ID 5's 70 edges cannot connect 73 nodes. Missing/inconsistent cells
// are filled with values in the same range (65-76 nodes, 78-98 edges);
// ID 5 is repaired to 73/90. Substitution documented in DESIGN.md.
#pragma once

#include <cstdint>

#include "net/builders.h"
#include "net/network.h"

namespace hermes::net {

inline constexpr int kTopologyCount = 10;

struct TopologyShape {
    int id = 0;  // 1-based, as in Table III
    std::size_t nodes = 0;
    std::size_t edges = 0;
};

// The Table III row for one topology id in [1, 10]; throws std::out_of_range
// otherwise.
[[nodiscard]] TopologyShape table3_shape(int id);

// Builds topology `id` with the paper's property settings. `seed` perturbs
// the random structure (defaults to a fixed per-id seed used by the
// benchmarks).
[[nodiscard]] Network table3_topology(int id, std::uint64_t seed = 0x7e23);

// Same, with custom property configuration.
[[nodiscard]] Network table3_topology(int id, const TopologyConfig& config,
                                      std::uint64_t seed);

}  // namespace hermes::net
