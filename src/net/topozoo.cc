#include "net/topozoo.h"

#include <array>
#include <stdexcept>

namespace hermes::net {

namespace {
// Readable Table III cells kept verbatim; unreadable cells filled in-range;
// id 5's edge count repaired for connectivity (see header comment).
constexpr std::array<TopologyShape, kTopologyCount> kShapes{{
    {1, 65, 78},
    {2, 70, 85},
    {3, 72, 88},
    {4, 71, 80},
    {5, 73, 90},
    {6, 66, 81},
    {7, 68, 92},
    {8, 76, 90},
    {9, 74, 92},
    {10, 69, 98},
}};
}  // namespace

TopologyShape table3_shape(int id) {
    if (id < 1 || id > kTopologyCount) {
        throw std::out_of_range("table3_shape: id must be in [1, 10]");
    }
    return kShapes[static_cast<std::size_t>(id - 1)];
}

Network table3_topology(int id, std::uint64_t seed) {
    return table3_topology(id, TopologyConfig{}, seed);
}

Network table3_topology(int id, const TopologyConfig& config, std::uint64_t seed) {
    const TopologyShape shape = table3_shape(id);
    util::SplitMix64 rng(seed * 0x9e3779b97f4a7c15ULL + static_cast<std::uint64_t>(id));
    return random_topology(shape.nodes, shape.edges, config, rng);
}

}  // namespace hermes::net
