// Topology constructors for tests, examples, and benchmarks.
#pragma once

#include <cstdint>

#include "net/network.h"
#include "util/rng.h"

namespace hermes::net {

// Common property knobs applied to every generated switch/link.
struct TopologyConfig {
    double programmable_fraction = 0.5;  // paper: 50% of switches
    int stages = 12;                     // C_stage
    double stage_capacity = 1.0;         // C_res
    double switch_latency_us = 1.0;      // t_s(u) = 1 us
    double min_link_latency_us = 1000.0;  // t_l ~ U(1 ms, 10 ms)
    double max_link_latency_us = 10000.0;
};

// n switches in a chain: 0-1-2-...-(n-1). All switches programmable (this is
// the shape of the paper's 3-switch Tofino testbed).
[[nodiscard]] Network linear_topology(std::size_t n, const TopologyConfig& config,
                                      util::SplitMix64& rng);

// Ring of n switches.
[[nodiscard]] Network ring_topology(std::size_t n, const TopologyConfig& config,
                                    util::SplitMix64& rng);

// Star: switch 0 is the hub.
[[nodiscard]] Network star_topology(std::size_t n, const TopologyConfig& config,
                                    util::SplitMix64& rng);

// k-ary fat-tree (k even): k^2/4 core, k^2/2 aggregation, k^2/2 edge
// switches with the standard wiring.
[[nodiscard]] Network fat_tree_topology(int k, const TopologyConfig& config,
                                        util::SplitMix64& rng);

// Connected random graph: a random spanning tree plus extra random edges
// until `edges` total (edges must be >= n-1 and <= n(n-1)/2).
[[nodiscard]] Network random_topology(std::size_t n, std::size_t edges,
                                      const TopologyConfig& config,
                                      util::SplitMix64& rng);

}  // namespace hermes::net
