#include "net/builders.h"

#include <set>
#include <stdexcept>
#include <string>

namespace hermes::net {

namespace {

SwitchProps make_props(const TopologyConfig& config, bool programmable, std::string name) {
    SwitchProps p;
    p.name = std::move(name);
    p.programmable = programmable;
    p.stages = config.stages;
    p.stage_capacity = config.stage_capacity;
    p.latency_us = config.switch_latency_us;
    return p;
}

double link_latency(const TopologyConfig& config, util::SplitMix64& rng) {
    return rng.uniform_real(config.min_link_latency_us, config.max_link_latency_us);
}

// Adds n switches; `programmable_fraction` of them (rounded up, at least one
// when n > 0) are programmable, chosen uniformly at random.
void add_switches(Network& net, std::size_t n, const TopologyConfig& config,
                  util::SplitMix64& rng, bool all_programmable = false) {
    std::size_t programmable_count = n;
    if (!all_programmable) {
        programmable_count = static_cast<std::size_t>(
            static_cast<double>(n) * config.programmable_fraction + 0.5);
        if (n > 0 && programmable_count == 0) programmable_count = 1;
    }
    const auto chosen_vec = rng.sample_indices(n, programmable_count);
    const std::set<std::size_t> chosen(chosen_vec.begin(), chosen_vec.end());
    for (std::size_t i = 0; i < n; ++i) {
        net.add_switch(make_props(config, chosen.count(i) > 0, "sw" + std::to_string(i)));
    }
}

}  // namespace

Network linear_topology(std::size_t n, const TopologyConfig& config,
                        util::SplitMix64& rng) {
    if (n == 0) throw std::invalid_argument("linear_topology: n must be > 0");
    Network net;
    add_switches(net, n, config, rng, /*all_programmable=*/true);
    for (std::size_t i = 1; i < n; ++i) {
        net.add_link(i - 1, i, link_latency(config, rng));
    }
    return net;
}

Network ring_topology(std::size_t n, const TopologyConfig& config, util::SplitMix64& rng) {
    if (n < 3) throw std::invalid_argument("ring_topology: n must be >= 3");
    Network net;
    add_switches(net, n, config, rng);
    for (std::size_t i = 0; i < n; ++i) {
        net.add_link(i, (i + 1) % n, link_latency(config, rng));
    }
    return net;
}

Network star_topology(std::size_t n, const TopologyConfig& config, util::SplitMix64& rng) {
    if (n < 2) throw std::invalid_argument("star_topology: n must be >= 2");
    Network net;
    add_switches(net, n, config, rng);
    for (std::size_t i = 1; i < n; ++i) {
        net.add_link(0, i, link_latency(config, rng));
    }
    return net;
}

Network fat_tree_topology(int k, const TopologyConfig& config, util::SplitMix64& rng) {
    if (k < 2 || k % 2 != 0) {
        throw std::invalid_argument("fat_tree_topology: k must be even and >= 2");
    }
    const std::size_t pods = static_cast<std::size_t>(k);
    const std::size_t half = pods / 2;
    const std::size_t core_count = half * half;
    const std::size_t agg_count = pods * half;
    const std::size_t edge_count = pods * half;
    Network net;
    add_switches(net, core_count + agg_count + edge_count, config, rng);

    auto core_id = [&](std::size_t i) { return i; };
    auto agg_id = [&](std::size_t pod, std::size_t i) {
        return core_count + pod * half + i;
    };
    auto edge_id = [&](std::size_t pod, std::size_t i) {
        return core_count + agg_count + pod * half + i;
    };
    for (std::size_t pod = 0; pod < pods; ++pod) {
        for (std::size_t a = 0; a < half; ++a) {
            for (std::size_t e = 0; e < half; ++e) {
                net.add_link(agg_id(pod, a), edge_id(pod, e), link_latency(config, rng));
            }
            for (std::size_t c = 0; c < half; ++c) {
                net.add_link(agg_id(pod, a), core_id(a * half + c),
                             link_latency(config, rng));
            }
        }
    }
    return net;
}

Network random_topology(std::size_t n, std::size_t edges, const TopologyConfig& config,
                        util::SplitMix64& rng) {
    if (n == 0) throw std::invalid_argument("random_topology: n must be > 0");
    if (edges + 1 < n) throw std::invalid_argument("random_topology: too few edges");
    if (edges > n * (n - 1) / 2) {
        throw std::invalid_argument("random_topology: too many edges");
    }
    Network net;
    add_switches(net, n, config, rng);

    // Random spanning tree: attach each new switch to a random earlier one.
    std::set<std::pair<SwitchId, SwitchId>> used;
    for (std::size_t i = 1; i < n; ++i) {
        const auto j = static_cast<SwitchId>(rng.uniform_int(0, static_cast<std::int64_t>(i) - 1));
        net.add_link(j, i, link_latency(config, rng));
        used.insert({std::min<SwitchId>(j, i), std::max<SwitchId>(j, i)});
    }
    while (net.link_count() < edges) {
        const auto a = static_cast<SwitchId>(rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
        const auto b = static_cast<SwitchId>(rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
        if (a == b) continue;
        const auto key = std::make_pair(std::min(a, b), std::max(a, b));
        if (used.count(key)) continue;
        net.add_link(a, b, link_latency(config, rng));
        used.insert(key);
    }
    return net;
}

}  // namespace hermes::net
