// Path computation over the substrate network.
//
// Path latency follows the paper's t_p(p): the sum of t_s(u) over every
// switch on the path (endpoints included) plus t_l(l) over every link.
// The optimization framework's P(u,v) path sets are produced here with
// Yen's k-shortest-paths algorithm over Dijkstra.
#pragma once

#include <optional>
#include <vector>

#include "net/network.h"

namespace hermes::net {

struct Path {
    std::vector<SwitchId> switches;  // ordered, src first, dst last
    double latency_us = 0.0;         // t_p(p)

    [[nodiscard]] std::size_t hop_count() const noexcept {
        return switches.empty() ? 0 : switches.size() - 1;
    }
    [[nodiscard]] bool contains(SwitchId u) const noexcept;
};

// Latency of an explicit switch sequence; throws std::invalid_argument if
// consecutive switches are not linked.
[[nodiscard]] double path_latency(const Network& net, const std::vector<SwitchId>& sw);

// Single-source shortest-path latencies (Dijkstra over t_s + t_l).
// Unreachable switches get infinity.
[[nodiscard]] std::vector<double> shortest_latencies(const Network& net, SwitchId src);

// Shortest path between two switches, if any. src == dst yields the trivial
// one-switch path with latency t_s(src).
[[nodiscard]] std::optional<Path> shortest_path(const Network& net, SwitchId src,
                                                SwitchId dst);

// Yen's algorithm: up to k loop-free shortest paths, ascending latency.
[[nodiscard]] std::vector<Path> k_shortest_paths(const Network& net, SwitchId src,
                                                 SwitchId dst, std::size_t k);

}  // namespace hermes::net
