// CRC32C (Castagnoli, polynomial 0x1EDC6F41, reflected) checksums.
//
// Used by the serve journal (core/journal.h) to frame write-ahead records:
// every record carries the CRC of its payload so recovery can distinguish a
// torn tail write from valid history. The implementation is a plain
// table-driven software CRC — the journal is fsync-bound, not checksum-bound
// — with an incremental form for streaming callers.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace hermes::util {

// CRC32C of `data`, matching the common reflected-output convention
// (crc32c("123456789") == 0xE3069283).
[[nodiscard]] std::uint32_t crc32c(std::string_view data) noexcept;
[[nodiscard]] std::uint32_t crc32c(const void* data, std::size_t size) noexcept;

// Incremental form: seed with crc32c_init(), fold chunks with
// crc32c_update(), finish with crc32c_final(). crc32c(x) ==
// crc32c_final(crc32c_update(crc32c_init(), x)).
[[nodiscard]] constexpr std::uint32_t crc32c_init() noexcept { return 0xFFFFFFFFu; }
[[nodiscard]] std::uint32_t crc32c_update(std::uint32_t state, const void* data,
                                          std::size_t size) noexcept;
[[nodiscard]] constexpr std::uint32_t crc32c_final(std::uint32_t state) noexcept {
    return state ^ 0xFFFFFFFFu;
}

}  // namespace hermes::util
