#include "util/table.h"

#include <algorithm>
#include <cstdint>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace hermes::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
    if (headers_.empty()) throw std::invalid_argument("Table: no headers");
}

void Table::add_row(std::vector<std::string> cells) {
    if (cells.size() != headers_.size()) {
        throw std::invalid_argument("Table::add_row: cell count mismatch");
    }
    rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    return os.str();
}

std::string Table::num(std::int64_t v) { return std::to_string(v); }

void Table::print(std::ostream& os, const std::string& title) const {
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            widths[c] = std::max(widths[c], row[c].size());
        }
    }
    if (!title.empty()) os << "== " << title << " ==\n";
    auto emit_row = [&](const std::vector<std::string>& row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << std::left << std::setw(static_cast<int>(widths[c]) + 2) << row[c];
        }
        os << '\n';
    };
    emit_row(headers_);
    std::size_t total = 0;
    for (std::size_t w : widths) total += w + 2;
    os << std::string(total, '-') << '\n';
    for (const auto& row : rows_) emit_row(row);
}

namespace {
std::string csv_escape(const std::string& cell) {
    if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
    std::string out = "\"";
    for (char ch : cell) {
        if (ch == '"') out += "\"\"";
        else out += ch;
    }
    out += '"';
    return out;
}
}  // namespace

void Table::write_csv(std::ostream& os) const {
    auto emit = [&](const std::vector<std::string>& row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            if (c) os << ',';
            os << csv_escape(row[c]);
        }
        os << '\n';
    };
    emit(headers_);
    for (const auto& row : rows_) emit(row);
}

}  // namespace hermes::util
