#include "util/status.h"

namespace hermes::util {

std::string Status::to_string() const {
    if (ok()) return "ok";
    std::string out;
    if (loc_.line > 0) {
        out += loc_.file.empty() ? "<input>" : loc_.file;
        out += ':';
        out += std::to_string(loc_.line);
        if (loc_.col > 0) {
            out += ':';
            out += std::to_string(loc_.col);
        }
        out += ": ";
    } else if (!loc_.file.empty()) {
        out += loc_.file;
        out += ": ";
    }
    out += message_;
    return out;
}

void Status::throw_if_error() const {
    if (ok()) return;
    if (code_ == StatusCode::kInvalidInput) throw std::invalid_argument(to_string());
    throw std::runtime_error(to_string());
}

}  // namespace hermes::util
