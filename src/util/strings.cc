#include "util/strings.h"

#include <cctype>
#include <charconv>
#include <cstdint>
#include <stdexcept>

namespace hermes::util {

std::string_view trim(std::string_view s) noexcept {
    auto is_space = [](char c) { return std::isspace(static_cast<unsigned char>(c)) != 0; };
    while (!s.empty() && is_space(s.front())) s.remove_prefix(1);
    while (!s.empty() && is_space(s.back())) s.remove_suffix(1);
    return s;
}

std::vector<std::string> split(std::string_view s, char sep) {
    std::vector<std::string> out;
    std::size_t begin = 0;
    while (begin <= s.size()) {
        const std::size_t end = s.find(sep, begin);
        const std::string_view piece =
            trim(s.substr(begin, end == std::string_view::npos ? std::string_view::npos
                                                               : end - begin));
        if (!piece.empty()) out.emplace_back(piece);
        if (end == std::string_view::npos) break;
        begin = end + 1;
    }
    return out;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
    std::string out;
    for (std::size_t i = 0; i < parts.size(); ++i) {
        if (i) out += sep;
        out += parts[i];
    }
    return out;
}

bool starts_with(std::string_view s, std::string_view prefix) noexcept {
    return s.substr(0, prefix.size()) == prefix;
}

std::int64_t parse_int(std::string_view s) {
    s = trim(s);
    std::int64_t value = 0;
    const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
    if (ec != std::errc{} || ptr != s.data() + s.size()) {
        throw std::invalid_argument("parse_int: bad integer '" + std::string(s) + "'");
    }
    return value;
}

double parse_double(std::string_view s) {
    s = trim(s);
    // std::from_chars for double is unreliable across libstdc++ versions; use stod.
    try {
        std::size_t used = 0;
        const double v = std::stod(std::string(s), &used);
        if (used != s.size()) throw std::invalid_argument("trailing junk");
        return v;
    } catch (const std::exception&) {
        throw std::invalid_argument("parse_double: bad number '" + std::string(s) + "'");
    }
}

}  // namespace hermes::util
