// Console table rendering for experiment output.
//
// Every bench binary prints the rows/series the paper reports through this
// helper so all experiment output is uniformly aligned and can additionally
// be dumped as CSV for plotting.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace hermes::util {

class Table {
public:
    // Column headers fix the column count; every row must match it.
    explicit Table(std::vector<std::string> headers);

    void add_row(std::vector<std::string> cells);

    // Convenience: formats arithmetic cells with operator<< semantics.
    // Doubles are printed with `precision` digits after the decimal point.
    static std::string num(double v, int precision = 2);
    static std::string num(std::int64_t v);

    [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }
    [[nodiscard]] std::size_t column_count() const noexcept { return headers_.size(); }

    // Render with padded columns, a header underline, and `title` on top.
    void print(std::ostream& os, const std::string& title = "") const;

    // RFC-4180-ish CSV (cells containing comma/quote/newline get quoted).
    void write_csv(std::ostream& os) const;

private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

}  // namespace hermes::util
