#include "util/json.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace hermes::util {

namespace {
const Json kNullJson{};
}  // namespace

const Json& Json::get(std::string_view key) const noexcept {
    if (type_ != Type::kObject) return kNullJson;
    for (const auto& [k, v] : object_) {
        if (k == key) return v;
    }
    return kNullJson;
}

bool Json::contains_null_key(std::string_view key) const noexcept {
    if (type_ != Type::kObject) return false;
    for (const auto& [k, v] : object_) {
        if (k == key) return true;
    }
    return false;
}

void Json::set(std::string key, Json value) {
    if (type_ != Type::kObject) {
        *this = Json(JsonObject{});
    }
    for (auto& [k, v] : object_) {
        if (k == key) {
            v = std::move(value);
            return;
        }
    }
    object_.emplace_back(std::move(key), std::move(value));
}

void append_json_string(std::string& out, std::string_view s) {
    out.push_back('"');
    for (const char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof buf, "\\u%04x", c);
                    out += buf;
                } else {
                    out.push_back(c);
                }
        }
    }
    out.push_back('"');
}

void Json::dump_to(std::string& out) const {
    switch (type_) {
        case Type::kNull: out += "null"; return;
        case Type::kBool: out += bool_ ? "true" : "false"; return;
        case Type::kInt: out += std::to_string(int_); return;
        case Type::kDouble: {
            if (!std::isfinite(double_)) {
                out += "null";
                return;
            }
            char buf[32];
            std::snprintf(buf, sizeof buf, "%.17g", double_);
            // Trim to the shortest form that round-trips.
            for (int prec = 1; prec < 17; ++prec) {
                char shorter[32];
                std::snprintf(shorter, sizeof shorter, "%.*g", prec, double_);
                if (std::strtod(shorter, nullptr) == double_) {
                    out += shorter;
                    return;
                }
            }
            out += buf;
            return;
        }
        case Type::kString: append_json_string(out, string_); return;
        case Type::kArray: {
            out.push_back('[');
            for (std::size_t i = 0; i < array_.size(); ++i) {
                if (i > 0) out.push_back(',');
                array_[i].dump_to(out);
            }
            out.push_back(']');
            return;
        }
        case Type::kObject: {
            out.push_back('{');
            for (std::size_t i = 0; i < object_.size(); ++i) {
                if (i > 0) out.push_back(',');
                append_json_string(out, object_[i].first);
                out.push_back(':');
                object_[i].second.dump_to(out);
            }
            out.push_back('}');
            return;
        }
    }
}

std::string Json::dump() const {
    std::string out;
    dump_to(out);
    return out;
}

namespace {

class Parser {
public:
    explicit Parser(std::string_view text) : text_(text) {}

    StatusOr<Json> run() {
        skip_ws();
        Json value;
        if (Status s = parse_value(value); !s.ok()) return s;
        skip_ws();
        if (pos_ != text_.size()) return error("trailing characters after JSON value");
        return value;
    }

private:
    [[nodiscard]] Status error(std::string message) const {
        SourceLoc loc;
        loc.line = 1;
        loc.col = static_cast<int>(pos_) + 1;
        return Status::invalid(std::move(message), loc);
    }

    void skip_ws() {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
                text_[pos_] == '\r')) {
            ++pos_;
        }
    }

    [[nodiscard]] bool eat(char c) {
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    Status parse_value(Json& out) {
        if (pos_ >= text_.size()) return error("unexpected end of input");
        switch (text_[pos_]) {
            case '{': return parse_object(out);
            case '[': return parse_array(out);
            case '"': return parse_string_value(out);
            case 't':
                if (text_.substr(pos_, 4) == "true") {
                    pos_ += 4;
                    out = Json(true);
                    return {};
                }
                return error("invalid literal");
            case 'f':
                if (text_.substr(pos_, 5) == "false") {
                    pos_ += 5;
                    out = Json(false);
                    return {};
                }
                return error("invalid literal");
            case 'n':
                if (text_.substr(pos_, 4) == "null") {
                    pos_ += 4;
                    out = Json();
                    return {};
                }
                return error("invalid literal");
            default: return parse_number(out);
        }
    }

    Status parse_object(Json& out) {
        ++pos_;  // '{'
        JsonObject object;
        skip_ws();
        if (eat('}')) {
            out = Json(std::move(object));
            return {};
        }
        while (true) {
            skip_ws();
            if (pos_ >= text_.size() || text_[pos_] != '"') {
                return error("expected object key string");
            }
            std::string key;
            if (Status s = parse_string(key); !s.ok()) return s;
            skip_ws();
            if (!eat(':')) return error("expected ':' after object key");
            skip_ws();
            Json value;
            if (Status s = parse_value(value); !s.ok()) return s;
            // Last duplicate wins, matching common relaxed decoders.
            bool replaced = false;
            for (auto& [k, v] : object) {
                if (k == key) {
                    v = std::move(value);
                    replaced = true;
                    break;
                }
            }
            if (!replaced) object.emplace_back(std::move(key), std::move(value));
            skip_ws();
            if (eat(',')) continue;
            if (eat('}')) break;
            return error("expected ',' or '}' in object");
        }
        out = Json(std::move(object));
        return {};
    }

    Status parse_array(Json& out) {
        ++pos_;  // '['
        JsonArray array;
        skip_ws();
        if (eat(']')) {
            out = Json(std::move(array));
            return {};
        }
        while (true) {
            skip_ws();
            Json value;
            if (Status s = parse_value(value); !s.ok()) return s;
            array.push_back(std::move(value));
            skip_ws();
            if (eat(',')) continue;
            if (eat(']')) break;
            return error("expected ',' or ']' in array");
        }
        out = Json(std::move(array));
        return {};
    }

    Status parse_string_value(Json& out) {
        std::string s;
        if (Status st = parse_string(s); !st.ok()) return st;
        out = Json(std::move(s));
        return {};
    }

    Status parse_string(std::string& out) {
        ++pos_;  // opening quote
        out.clear();
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c == '"') {
                ++pos_;
                return {};
            }
            if (c == '\\') {
                ++pos_;
                if (pos_ >= text_.size()) return error("unterminated escape");
                const char e = text_[pos_++];
                switch (e) {
                    case '"': out.push_back('"'); break;
                    case '\\': out.push_back('\\'); break;
                    case '/': out.push_back('/'); break;
                    case 'b': out.push_back('\b'); break;
                    case 'f': out.push_back('\f'); break;
                    case 'n': out.push_back('\n'); break;
                    case 'r': out.push_back('\r'); break;
                    case 't': out.push_back('\t'); break;
                    case 'u': {
                        if (pos_ + 4 > text_.size()) return error("truncated \\u escape");
                        unsigned code = 0;
                        for (int i = 0; i < 4; ++i) {
                            const char h = text_[pos_++];
                            code <<= 4;
                            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
                            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
                            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
                            else return error("invalid \\u escape digit");
                        }
                        // UTF-8 encode the BMP code point (surrogate pairs
                        // are passed through as two 3-byte sequences; the
                        // protocol carries ASCII in practice).
                        if (code < 0x80) {
                            out.push_back(static_cast<char>(code));
                        } else if (code < 0x800) {
                            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
                            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
                        } else {
                            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
                            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
                            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
                        }
                        break;
                    }
                    default: return error("invalid escape character");
                }
                continue;
            }
            if (static_cast<unsigned char>(c) < 0x20) {
                return error("unescaped control character in string");
            }
            out.push_back(c);
            ++pos_;
        }
        return error("unterminated string");
    }

    Status parse_number(Json& out) {
        const std::size_t start = pos_;
        if (eat('-')) {}
        while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
            ++pos_;
        }
        bool integral = true;
        if (eat('.')) {
            integral = false;
            while (pos_ < text_.size() &&
                   std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
                ++pos_;
            }
        }
        if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
            integral = false;
            ++pos_;
            if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
            while (pos_ < text_.size() &&
                   std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
                ++pos_;
            }
        }
        const std::string_view token = text_.substr(start, pos_ - start);
        if (token.empty() || token == "-") return error("invalid number");
        if (integral) {
            std::int64_t value = 0;
            const auto [ptr, ec] =
                std::from_chars(token.data(), token.data() + token.size(), value);
            if (ec == std::errc() && ptr == token.data() + token.size()) {
                out = Json(value);
                return {};
            }
            // Out-of-range integers fall through to the double path.
        }
        double value = 0.0;
        const auto [ptr, ec] =
            std::from_chars(token.data(), token.data() + token.size(), value);
        if (ec != std::errc() || ptr != token.data() + token.size()) {
            return error("invalid number");
        }
        out = Json(value);
        return {};
    }

    std::string_view text_;
    std::size_t pos_ = 0;
};

}  // namespace

StatusOr<Json> parse_json(std::string_view text) { return Parser(text).run(); }

}  // namespace hermes::util
