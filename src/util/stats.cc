#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace hermes::util {

void RunningStats::add(double x) noexcept {
    ++n_;
    if (n_ == 1) {
        mean_ = min_ = max_ = x;
        m2_ = 0.0;
        return;
    }
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
}

double RunningStats::variance() const noexcept {
    if (n_ < 2) return 0.0;
    return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double mean(const std::vector<double>& xs) noexcept {
    RunningStats s;
    for (double x : xs) s.add(x);
    return s.mean();
}

double stddev(const std::vector<double>& xs) noexcept {
    RunningStats s;
    for (double x : xs) s.add(x);
    return s.stddev();
}

double percentile(std::vector<double> xs, double q) {
    if (xs.empty()) throw std::invalid_argument("percentile: empty input");
    if (q < 0.0 || q > 100.0) throw std::invalid_argument("percentile: q out of range");
    std::sort(xs.begin(), xs.end());
    if (xs.size() == 1) return xs.front();
    const double pos = q / 100.0 * static_cast<double>(xs.size() - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, xs.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return xs[lo] + frac * (xs[hi] - xs[lo]);
}

}  // namespace hermes::util
