// Small descriptive-statistics helpers used by benchmarks and the simulator.
#pragma once

#include <cstddef>
#include <vector>

namespace hermes::util {

// Online mean/variance accumulator (Welford's algorithm).
class RunningStats {
public:
    void add(double x) noexcept;

    [[nodiscard]] std::size_t count() const noexcept { return n_; }
    [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
    // Sample variance (n-1 denominator); 0 for fewer than two samples.
    [[nodiscard]] double variance() const noexcept;
    [[nodiscard]] double stddev() const noexcept;
    [[nodiscard]] double min() const noexcept { return n_ ? min_ : 0.0; }
    [[nodiscard]] double max() const noexcept { return n_ ? max_ : 0.0; }

private:
    std::size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

// Mean of a vector; 0 for an empty vector.
[[nodiscard]] double mean(const std::vector<double>& xs) noexcept;

// Sample standard deviation; 0 for fewer than two samples.
[[nodiscard]] double stddev(const std::vector<double>& xs) noexcept;

// Linear-interpolated percentile, q in [0, 100]. Throws on empty input or
// out-of-range q.
[[nodiscard]] double percentile(std::vector<double> xs, double q);

}  // namespace hermes::util
