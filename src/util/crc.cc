#include "util/crc.h"

#include <array>

namespace hermes::util {

namespace {

// Reflected CRC32C lookup table, generated once at first use.
const std::array<std::uint32_t, 256>& table() {
    static const std::array<std::uint32_t, 256> t = [] {
        std::array<std::uint32_t, 256> out{};
        constexpr std::uint32_t kPolyReflected = 0x82F63B78u;  // 0x1EDC6F41 reversed
        for (std::uint32_t i = 0; i < 256; ++i) {
            std::uint32_t crc = i;
            for (int bit = 0; bit < 8; ++bit) {
                crc = (crc & 1u) != 0 ? (crc >> 1) ^ kPolyReflected : crc >> 1;
            }
            out[i] = crc;
        }
        return out;
    }();
    return t;
}

}  // namespace

std::uint32_t crc32c_update(std::uint32_t state, const void* data,
                            std::size_t size) noexcept {
    const auto& t = table();
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < size; ++i) {
        state = t[(state ^ p[i]) & 0xFFu] ^ (state >> 8);
    }
    return state;
}

std::uint32_t crc32c(const void* data, std::size_t size) noexcept {
    return crc32c_final(crc32c_update(crc32c_init(), data, size));
}

std::uint32_t crc32c(std::string_view data) noexcept {
    return crc32c(data.data(), data.size());
}

}  // namespace hermes::util
