#include "util/rng.h"

#include <cmath>
#include <numeric>

namespace hermes::util {

std::int64_t SplitMix64::uniform_int(std::int64_t lo, std::int64_t hi) {
    if (lo > hi) throw std::invalid_argument("uniform_int: lo > hi");
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    if (span == 0) {  // full 64-bit range
        return static_cast<std::int64_t>((*this)());
    }
    // Rejection sampling to remove modulo bias.
    const std::uint64_t limit = max() - max() % span;
    std::uint64_t r = (*this)();
    while (r >= limit) r = (*this)();
    return lo + static_cast<std::int64_t>(r % span);
}

double SplitMix64::uniform_real(double lo, double hi) {
    if (lo > hi) throw std::invalid_argument("uniform_real: lo > hi");
    // 53 random mantissa bits -> uniform in [0,1).
    const double unit = static_cast<double>((*this)() >> 11) * 0x1.0p-53;
    return lo + unit * (hi - lo);
}

bool SplitMix64::chance(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return uniform_real(0.0, 1.0) < p;
}

std::vector<std::size_t> SplitMix64::sample_indices(std::size_t n, std::size_t k) {
    if (k > n) throw std::invalid_argument("sample_indices: k > n");
    std::vector<std::size_t> all(n);
    std::iota(all.begin(), all.end(), std::size_t{0});
    // Partial Fisher-Yates: the first k slots end up as the sample.
    for (std::size_t i = 0; i < k; ++i) {
        const auto j = static_cast<std::size_t>(
            uniform_int(static_cast<std::int64_t>(i), static_cast<std::int64_t>(n) - 1));
        std::swap(all[i], all[j]);
    }
    all.resize(k);
    return all;
}

}  // namespace hermes::util
