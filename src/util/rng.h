// Deterministic pseudo-random number generation for the whole project.
//
// All randomness in Hermes (synthetic program generation, topology
// generation, simulation jitter) flows through an explicitly seeded
// SplitMix64 generator so that every experiment is reproducible from its
// seed alone. No global RNG state exists anywhere in the library.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

namespace hermes::util {

// SplitMix64: tiny, fast, high-quality 64-bit generator (Steele et al.).
// Satisfies the UniformRandomBitGenerator concept so it can also feed
// <random> distributions if ever needed.
class SplitMix64 {
public:
    using result_type = std::uint64_t;

    explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

    static constexpr result_type min() noexcept { return 0; }
    static constexpr result_type max() noexcept { return ~std::uint64_t{0}; }

    result_type operator()() noexcept {
        std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

    // Uniform integer in [lo, hi] (inclusive). Throws if lo > hi.
    std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

    // Uniform double in [lo, hi).
    double uniform_real(double lo, double hi);

    // Bernoulli trial with success probability p in [0, 1].
    bool chance(double p);

    // Fisher-Yates shuffle.
    template <typename T>
    void shuffle(std::vector<T>& v) {
        for (std::size_t i = v.size(); i > 1; --i) {
            const auto j =
                static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(i) - 1));
            using std::swap;
            swap(v[i - 1], v[j]);
        }
    }

    // Sample k distinct indices from [0, n) without replacement.
    std::vector<std::size_t> sample_indices(std::size_t n, std::size_t k);

    // Pick one element of a non-empty vector uniformly.
    template <typename T>
    const T& pick(const std::vector<T>& v) {
        if (v.empty()) throw std::invalid_argument("SplitMix64::pick: empty vector");
        return v[static_cast<std::size_t>(
            uniform_int(0, static_cast<std::int64_t>(v.size()) - 1))];
    }

private:
    std::uint64_t state_;
};

}  // namespace hermes::util
