// String helpers shared by the program/topology parsers.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace hermes::util {

// Strip ASCII whitespace from both ends.
[[nodiscard]] std::string_view trim(std::string_view s) noexcept;

// Split on `sep`, trimming each piece; empty pieces are dropped.
[[nodiscard]] std::vector<std::string> split(std::string_view s, char sep);

// Join with `sep`.
[[nodiscard]] std::string join(const std::vector<std::string>& parts,
                               std::string_view sep);

// True if `s` begins with `prefix`.
[[nodiscard]] bool starts_with(std::string_view s, std::string_view prefix) noexcept;

// Parse a non-negative integer; throws std::invalid_argument with context on
// malformed input.
[[nodiscard]] std::int64_t parse_int(std::string_view s);

// Parse a double; throws std::invalid_argument with context on malformed input.
[[nodiscard]] double parse_double(std::string_view s);

}  // namespace hermes::util
