// Minimal JSON value model for the serve wire protocol (core/serve.h).
//
// The daemon speaks line-delimited JSON, so this is a small, strict,
// allocation-friendly parser/serializer — not a general-purpose JSON
// library. Objects preserve no duplicate keys (last wins), numbers are
// doubles with an exact int64 fast path, and serialization is deterministic
// (object keys in insertion order, shortest round-trip number form for
// integers). Parse errors come back as util::Status with a 1-based column.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/status.h"

namespace hermes::util {

class Json;

using JsonArray = std::vector<Json>;
// Insertion-ordered object: pair list + lookup by linear scan (protocol
// objects carry < 10 keys).
using JsonObject = std::vector<std::pair<std::string, Json>>;

class Json {
public:
    enum class Type : std::uint8_t { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

    Json() = default;  // null
    Json(std::nullptr_t) {}                                       // NOLINT
    Json(bool b) : type_(Type::kBool), bool_(b) {}                // NOLINT
    Json(std::int64_t i) : type_(Type::kInt), int_(i) {}          // NOLINT
    Json(int i) : type_(Type::kInt), int_(i) {}                   // NOLINT
    Json(std::size_t i)                                           // NOLINT
        : type_(Type::kInt), int_(static_cast<std::int64_t>(i)) {}
    Json(double d) : type_(Type::kDouble), double_(d) {}          // NOLINT
    Json(std::string s) : type_(Type::kString), string_(std::move(s)) {}  // NOLINT
    Json(const char* s) : type_(Type::kString), string_(s) {}     // NOLINT
    Json(JsonArray a) : type_(Type::kArray), array_(std::move(a)) {}      // NOLINT
    Json(JsonObject o) : type_(Type::kObject), object_(std::move(o)) {}   // NOLINT

    [[nodiscard]] Type type() const noexcept { return type_; }
    [[nodiscard]] bool is_null() const noexcept { return type_ == Type::kNull; }
    [[nodiscard]] bool is_bool() const noexcept { return type_ == Type::kBool; }
    [[nodiscard]] bool is_number() const noexcept {
        return type_ == Type::kInt || type_ == Type::kDouble;
    }
    [[nodiscard]] bool is_int() const noexcept { return type_ == Type::kInt; }
    [[nodiscard]] bool is_string() const noexcept { return type_ == Type::kString; }
    [[nodiscard]] bool is_array() const noexcept { return type_ == Type::kArray; }
    [[nodiscard]] bool is_object() const noexcept { return type_ == Type::kObject; }

    // Typed accessors; they do not coerce (bool_value on a number is false
    // etc.) except number access, which widens the int fast path to double.
    [[nodiscard]] bool bool_value() const noexcept { return is_bool() && bool_; }
    [[nodiscard]] std::int64_t int_value() const noexcept {
        if (type_ == Type::kInt) return int_;
        if (type_ == Type::kDouble) return static_cast<std::int64_t>(double_);
        return 0;
    }
    [[nodiscard]] double double_value() const noexcept {
        if (type_ == Type::kDouble) return double_;
        if (type_ == Type::kInt) return static_cast<double>(int_);
        return 0.0;
    }
    [[nodiscard]] const std::string& string_value() const noexcept { return string_; }
    [[nodiscard]] const JsonArray& array() const noexcept { return array_; }
    [[nodiscard]] const JsonObject& object() const noexcept { return object_; }

    // Object field lookup; null-typed static sentinel when absent (or when
    // this value is not an object).
    [[nodiscard]] const Json& get(std::string_view key) const noexcept;
    [[nodiscard]] bool has(std::string_view key) const noexcept {
        return !get(key).is_null() || contains_null_key(key);
    }

    // Builder-style append for objects (duplicate keys overwrite in place).
    void set(std::string key, Json value);

    // Compact single-line serialization (no trailing newline). Non-finite
    // doubles serialize as null per JSON's number grammar.
    [[nodiscard]] std::string dump() const;
    void dump_to(std::string& out) const;

private:
    [[nodiscard]] bool contains_null_key(std::string_view key) const noexcept;

    Type type_ = Type::kNull;
    bool bool_ = false;
    std::int64_t int_ = 0;
    double double_ = 0.0;
    std::string string_;
    JsonArray array_;
    JsonObject object_;
};

// Parses exactly one JSON value spanning the whole input (trailing
// whitespace allowed, trailing garbage is an error). kInvalidInput with a
// 1-based column in the SourceLoc on malformed input.
[[nodiscard]] StatusOr<Json> parse_json(std::string_view text);

// Escapes `s` into a JSON string literal including the surrounding quotes.
void append_json_string(std::string& out, std::string_view s);

}  // namespace hermes::util
