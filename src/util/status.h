// Unified error reporting for the text front ends (prog/parser, p4/frontend)
// and, since the Engine redesign, the solve pipeline (core/hermes.h,
// core/engine.h).
//
// A Status carries an error code, a message, and the source location the
// diagnostic points at; to_string() renders the conventional
// "file:line:col: message" form every front end and the CLI print. The
// try_* entry points (prog::try_parse_program, p4::try_compile,
// core::try_deploy_greedy, ...) return StatusOr<T>; the historical throwing
// entry points remain as thin wrappers whose exception types are unchanged
// (std::invalid_argument for malformed input, std::runtime_error for I/O
// failures and infeasible instances).
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>

namespace hermes::util {

// Where a diagnostic points: file (empty = in-memory source), 1-based line
// (0 = whole input), 1-based column (0 = unknown).
struct SourceLoc {
    std::string file;
    int line = 0;
    int col = 0;
};

enum class StatusCode : std::uint8_t {
    kOk = 0,
    kInvalidInput,  // malformed source (throw_if_error -> std::invalid_argument)
    kIo,            // unreadable file   (throw_if_error -> std::runtime_error)
    kInfeasible,    // no feasible deployment within the configured limits
                    // (throw_if_error -> std::runtime_error, matching the
                    // historical deploy_greedy/deploy_optimal contract)
    kUnavailable,   // solver stopped before producing any incumbent (budget
                    // exhausted); also rethrown as std::runtime_error
    kResourceExhausted,  // request exceeded a configured admission cap
                         // (bytes per request, ops per epoch, staged-queue
                         // depth); retryable once the current epoch drains
};

class Status {
public:
    Status() = default;  // ok

    [[nodiscard]] static Status invalid(std::string message, SourceLoc loc = {}) {
        return Status(StatusCode::kInvalidInput, std::move(message), std::move(loc));
    }
    [[nodiscard]] static Status io(std::string message, SourceLoc loc = {}) {
        return Status(StatusCode::kIo, std::move(message), std::move(loc));
    }
    [[nodiscard]] static Status infeasible(std::string message) {
        return Status(StatusCode::kInfeasible, std::move(message), {});
    }
    [[nodiscard]] static Status unavailable(std::string message) {
        return Status(StatusCode::kUnavailable, std::move(message), {});
    }
    [[nodiscard]] static Status resource_exhausted(std::string message) {
        return Status(StatusCode::kResourceExhausted, std::move(message), {});
    }

    [[nodiscard]] bool ok() const noexcept { return code_ == StatusCode::kOk; }
    [[nodiscard]] StatusCode code() const noexcept { return code_; }
    [[nodiscard]] const std::string& message() const noexcept { return message_; }
    [[nodiscard]] const SourceLoc& loc() const noexcept { return loc_; }

    // Same status with the location's file filled in (parsers report
    // file-less locations; file loaders patch the path in afterwards).
    [[nodiscard]] Status with_file(std::string file) const {
        Status s = *this;
        s.loc_.file = std::move(file);
        return s;
    }

    // "file:line:col: message", omitting unknown parts; "<input>" stands in
    // for the file of in-memory sources when a line is known. "ok" when ok().
    [[nodiscard]] std::string to_string() const;

    // No-op when ok; otherwise throws the exception type the historical
    // APIs threw for this class of error, with to_string() as the message.
    void throw_if_error() const;

private:
    Status(StatusCode code, std::string message, SourceLoc loc)
        : code_(code), message_(std::move(message)), loc_(std::move(loc)) {}

    StatusCode code_ = StatusCode::kOk;
    std::string message_;
    SourceLoc loc_;
};

// Exception that carries a Status. Derives std::invalid_argument so code
// (and tests) that treats parse failures as invalid_argument keeps working;
// the try_* entry points catch it and return the Status instead. Reserved
// for kInvalidInput-class errors.
class StatusError : public std::invalid_argument {
public:
    explicit StatusError(Status status)
        : std::invalid_argument(status.to_string()), status_(std::move(status)) {}

    [[nodiscard]] const Status& status() const noexcept { return status_; }

private:
    Status status_;
};

// Minimal value-or-status holder for the try_* front-end entry points.
template <typename T>
class StatusOr {
public:
    StatusOr(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
    StatusOr(Status status) : status_(std::move(status)) {}  // NOLINT

    [[nodiscard]] bool ok() const noexcept { return status_.ok(); }
    [[nodiscard]] const Status& status() const noexcept { return status_; }

    // Accessors throw on a non-ok holder — the same exception type the
    // historical throwing entry points used for that error class
    // (std::invalid_argument for kInvalidInput, std::runtime_error
    // otherwise) — so `try_x(...).value()` is a drop-in for the deleted
    // throwing wrappers.
    [[nodiscard]] T& value() & {
        status_.throw_if_error();
        return *value_;
    }
    [[nodiscard]] const T& value() const& {
        status_.throw_if_error();
        return *value_;
    }
    [[nodiscard]] T&& value() && {
        status_.throw_if_error();
        return std::move(*value_);
    }

private:
    std::optional<T> value_;
    Status status_;
};

}  // namespace hermes::util
