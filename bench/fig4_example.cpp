// Figure 4: the paper's worked example of the greedy heuristic. Builds the
// five-MAT TDG, splits it with Algorithm 2, deploys it on three two-MAT
// switches, and prints each step alongside the paper's narrative values.
#include <iostream>

#include "core/greedy.h"
#include "core/objective.h"
#include "core/verifier.h"
#include "sim/testbed.h"
#include "util/table.h"

int main() {
    using namespace hermes;
    using tdg::DepType;
    using tdg::NodeId;

    tdg::Tdg t;
    for (const char* n : {"a", "b", "c", "d", "e"}) {
        t.add_node(tdg::Mat(n, {tdg::header_field(std::string("h_") + n, 2)},
                            {tdg::Action{"act", {tdg::metadata_field(
                                                    std::string("m_") + n, 4)}}},
                            16, 1.0));
    }
    auto edge = [&](NodeId from, NodeId to, int bytes) {
        t.add_edge(from, to, DepType::kMatch);
        t.edges().back().metadata_bytes = bytes;
    };
    edge(0, 1, 2);
    edge(0, 2, 2);
    edge(1, 2, 5);
    edge(2, 3, 1);
    edge(2, 4, 2);
    edge(3, 4, 2);

    std::cout << "Fig 4 TDG: a-2->b, a-2->c, b-5->c, c-1->d, c-2->e, d-2->e\n"
              << "Each switch tolerates two unit-size MATs (2 stages x 1.0).\n\n";

    sim::TestbedConfig config;
    config.switch_count = 3;
    config.stages = 2;
    const net::Network n = sim::make_testbed(config);

    const core::GreedyResult result = core::greedy_deploy(t, n);

    util::Table segments({"segment", "MATs"});
    for (std::size_t i = 0; i < result.segments.size(); ++i) {
        std::string members;
        for (const NodeId v : result.segments[i]) {
            if (!members.empty()) members += ", ";
            members += t.node(v).name();
        }
        segments.add_row({"S" + std::to_string(i + 1), members});
    }
    segments.print(std::cout, "Fig 4(b)-(c): TDG segments after splitting");

    const std::int64_t overhead = core::max_pair_metadata(t, result.deployment);
    std::cout << "\nMaximum per-packet byte overhead: " << overhead
              << " bytes (paper narrative: 4 bytes)\n";
    const core::VerificationReport report = core::verify(t, n, result.deployment);
    std::cout << "Deployment verified: " << (report.ok ? "yes" : "NO") << "\n";
    return report.ok && overhead == 4 ? 0 : 1;
}
